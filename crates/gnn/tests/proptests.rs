//! Property tests for the GNN: forward-pass invariants over random
//! graphs and configurations, and serialization round trips.

use ancstr_gnn::model::Combiner;
use ancstr_gnn::{GnnConfig, GnnModel, GraphTensors};
use ancstr_graph::{HetMultigraph, VertexId};
use ancstr_netlist::PortType;
use ancstr_nn::Matrix;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = GraphTensors> {
    prop::collection::vec((0usize..8, 0usize..8, 0usize..4), 0..24).prop_map(|edges| {
        let mut g = HetMultigraph::with_vertices(0..8);
        for (u, v, p) in edges {
            if u != v {
                g.add_edge(VertexId(u), VertexId(v), PortType::ALL[p]);
            }
        }
        GraphTensors::from_multigraph(&g)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Embeddings are finite, shaped n × D, and deterministic for any
    /// graph, seed, layer count, and combiner.
    #[test]
    fn forward_invariants(
        t in arb_graph(),
        seed in 0u64..100,
        layers in 1usize..4,
        mean in any::<bool>(),
    ) {
        let combiner = if mean { Combiner::MeanLinear } else { Combiner::Gru };
        let model = GnnModel::new(GnnConfig { dim: 6, layers, seed, combiner });
        let x = Matrix::from_fn(8, 6, |r, c| ((r * 5 + c) % 7) as f64 * 0.1 - 0.3);
        let z1 = model.embed(&t, &x);
        let z2 = model.embed(&t, &x);
        prop_assert_eq!(z1.shape(), (8, 6));
        prop_assert!(z1.is_finite());
        prop_assert_eq!(z1, z2);
    }

    /// Serialization round trip is exact for any configuration.
    #[test]
    fn serialize_round_trip(
        seed in 0u64..100,
        layers in 1usize..4,
        dim in 2usize..8,
        mean in any::<bool>(),
    ) {
        let combiner = if mean { Combiner::MeanLinear } else { Combiner::Gru };
        let model = GnnModel::new(GnnConfig { dim, layers, seed, combiner });
        let back = GnnModel::from_text(&model.to_text()).expect("round trip parses");
        prop_assert_eq!(back, model);
    }

    /// Vertices with identical features and no edges embed identically
    /// (no positional leakage).
    #[test]
    fn isolated_vertices_are_exchangeable(seed in 0u64..100) {
        let g = HetMultigraph::with_vertices(0..5);
        let t = GraphTensors::from_multigraph(&g);
        let model = GnnModel::new(GnnConfig { dim: 4, layers: 2, seed, ..GnnConfig::default() });
        let x = Matrix::filled(5, 4, 0.2);
        let z = model.embed(&t, &x);
        for v in 1..5 {
            for c in 0..4 {
                prop_assert!((z[(0, c)] - z[(v, c)]).abs() < 1e-12);
            }
        }
    }

    /// Neighbour sampling never *adds* edges and is the identity above
    /// the max in-degree.
    #[test]
    fn sampling_is_contractive(t in arb_graph(), k in 1usize..6, seed in 0u64..50) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let s = t.sampled(k, &mut rng);
        prop_assert!(s.edge_count() <= t.edge_count());
        let mut rng2 = StdRng::seed_from_u64(seed);
        let id = t.sampled(10_000, &mut rng2);
        prop_assert_eq!(id.edge_count(), t.edge_count());
    }
}
