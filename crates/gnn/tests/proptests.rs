//! Property tests for the GNN: forward-pass invariants over random
//! graphs and configurations, and serialization round trips.

use ancstr_gnn::model::Combiner;
use ancstr_gnn::{open_sealed, seal, GnnConfig, GnnModel, GraphTensors};
use ancstr_graph::{HetMultigraph, VertexId};
use ancstr_netlist::PortType;
use ancstr_nn::Matrix;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = GraphTensors> {
    prop::collection::vec((0usize..8, 0usize..8, 0usize..4), 0..24).prop_map(|edges| {
        let mut g = HetMultigraph::with_vertices(0..8);
        for (u, v, p) in edges {
            if u != v {
                g.add_edge(VertexId(u), VertexId(v), PortType::ALL[p]);
            }
        }
        GraphTensors::from_multigraph(&g)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Embeddings are finite, shaped n × D, and deterministic for any
    /// graph, seed, layer count, and combiner.
    #[test]
    fn forward_invariants(
        t in arb_graph(),
        seed in 0u64..100,
        layers in 1usize..4,
        mean in any::<bool>(),
    ) {
        let combiner = if mean { Combiner::MeanLinear } else { Combiner::Gru };
        let model = GnnModel::new(GnnConfig { dim: 6, layers, seed, combiner });
        let x = Matrix::from_fn(8, 6, |r, c| ((r * 5 + c) % 7) as f64 * 0.1 - 0.3);
        let z1 = model.embed(&t, &x);
        let z2 = model.embed(&t, &x);
        prop_assert_eq!(z1.shape(), (8, 6));
        prop_assert!(z1.is_finite());
        prop_assert_eq!(z1, z2);
    }

    /// Serialization round trip is exact for any configuration.
    #[test]
    fn serialize_round_trip(
        seed in 0u64..100,
        layers in 1usize..4,
        dim in 2usize..8,
        mean in any::<bool>(),
    ) {
        let combiner = if mean { Combiner::MeanLinear } else { Combiner::Gru };
        let model = GnnModel::new(GnnConfig { dim, layers, seed, combiner });
        let back = GnnModel::from_text(&model.to_text()).expect("round trip parses");
        prop_assert_eq!(back, model);
    }

    /// Vertices with identical features and no edges embed identically
    /// (no positional leakage).
    #[test]
    fn isolated_vertices_are_exchangeable(seed in 0u64..100) {
        let g = HetMultigraph::with_vertices(0..5);
        let t = GraphTensors::from_multigraph(&g);
        let model = GnnModel::new(GnnConfig { dim: 4, layers: 2, seed, ..GnnConfig::default() });
        let x = Matrix::filled(5, 4, 0.2);
        let z = model.embed(&t, &x);
        for v in 1..5 {
            for c in 0..4 {
                prop_assert!((z[(0, c)] - z[(v, c)]).abs() < 1e-12);
            }
        }
    }

    /// Sealing any model yields a bit-identical payload on open, and the
    /// checksummed round trip reproduces the model exactly.
    #[test]
    fn sealed_round_trip_is_bit_identical(
        seed in 0u64..100,
        layers in 1usize..4,
        dim in 2usize..8,
        mean in any::<bool>(),
    ) {
        let combiner = if mean { Combiner::MeanLinear } else { Combiner::Gru };
        let model = GnnModel::new(GnnConfig { dim, layers, seed, combiner });
        let payload = model.to_text();
        let sealed = seal("model", &payload);
        let opened = open_sealed("model", &sealed).expect("clean seal opens");
        prop_assert_eq!(opened, payload.as_str());
        let back = GnnModel::from_text_checksummed(&model.to_text_checksummed())
            .expect("checksummed round trip parses");
        prop_assert_eq!(back, model);
    }

    /// Corrupting any single byte of a sealed artifact — any position,
    /// any non-zero bit flip — yields a typed checksum error, never a
    /// panic and never silent acceptance.
    #[test]
    fn any_single_byte_corruption_is_detected(
        seed in 0u64..50,
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let model = GnnModel::new(GnnConfig { dim: 4, layers: 2, seed, ..GnnConfig::default() });
        let sealed = seal("model", &model.to_text());
        let mut bytes = sealed.clone().into_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= xor;
        let corrupt = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert!(corrupt != sealed, "xor is non-zero, text must change");
        let err = open_sealed("model", &corrupt).expect_err("corruption must be caught");
        prop_assert!(!err.to_string().is_empty());
    }

    /// Truncating a sealed artifact at any point is always detected:
    /// the footer is written last, so losing the tail loses the seal.
    #[test]
    fn any_truncation_is_detected(seed in 0u64..50, keep_frac in 0.0f64..1.0) {
        let model = GnnModel::new(GnnConfig { dim: 4, layers: 2, seed, ..GnnConfig::default() });
        let sealed = seal("model", &model.to_text());
        let keep = ((sealed.len() - 1) as f64 * keep_frac) as usize;
        let truncated: String = sealed.chars().take(keep).collect();
        prop_assert!(open_sealed("model", &truncated).is_err());
    }

    /// Neighbour sampling never *adds* edges and is the identity above
    /// the max in-degree.
    #[test]
    fn sampling_is_contractive(t in arb_graph(), k in 1usize..6, seed in 0u64..50) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let s = t.sampled(k, &mut rng);
        prop_assert!(s.edge_count() <= t.edge_count());
        let mut rng2 = StdRng::seed_from_u64(seed);
        let id = t.sampled(10_000, &mut rng2);
        prop_assert_eq!(id.edge_count(), t.edge_count());
    }
}
