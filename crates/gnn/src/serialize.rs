//! Plain-text model serialization, so a universal model trained once on
//! a corpus can be shipped and reused on unseen circuits (the inductive
//! deployment mode of Section IV-C) without retraining.
//!
//! Format (line-oriented, whitespace-separated):
//!
//! ```text
//! ancstr-gnn v1
//! dim 18 layers 2 seed 42
//! matrix 18 18
//! 0.123 -0.456 …           (one line per row)
//! …
//! ```
//!
//! # Checksummed artifacts
//!
//! Durable on-disk artifacts (run-store stage outputs, training
//! checkpoints) additionally carry a CRC-32 footer via [`seal`] /
//! [`open_sealed`]:
//!
//! ```text
//! <payload text, newline-terminated>
//! ancstr-seal v1 kind=<kind> len=<payload bytes> crc32=<8 hex digits>
//! ```
//!
//! The footer sits *last* so that truncation — the overwhelmingly common
//! corruption mode for a killed writer — always removes or damages it,
//! and any payload byte flip breaks the CRC. [`open_sealed`] returns a
//! typed [`ChecksumError`] rather than ever yielding a corrupt payload.
//!
//! Training checkpoints ([`crate::trainer::TrainerState`]) serialize the
//! *entire* guarded-loop state — parameters, best-loss snapshot, Adam
//! moments, RNG state, shuffle order, loss history, and recovery
//! lineage — so a killed run resumes bit-identically.

use std::error::Error;
use std::fmt;

use ancstr_nn::Matrix;

use crate::error::AnomalyCause;
use crate::model::{Combiner, GnnConfig, GnnModel};
use crate::trainer::{HealthEvent, TrainerState};

/// Error returned by [`GnnModel::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model text: {}", self.reason)
    }
}

impl Error for ParseModelError {}

fn err(reason: impl Into<String>) -> ParseModelError {
    ParseModelError { reason: reason.into() }
}

/// Why a sealed artifact failed verification ([`open_sealed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChecksumError {
    /// The `ancstr-seal` footer line is absent or malformed — the
    /// classic signature of a truncated write.
    MissingFooter,
    /// The footer is intact but belongs to a different artifact kind.
    KindMismatch {
        /// The kind the caller expected.
        expected: String,
        /// The kind the footer declares.
        found: String,
    },
    /// The payload byte count disagrees with the footer's declaration.
    LengthMismatch {
        /// Bytes the footer declares.
        declared: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload's CRC-32 disagrees with the footer's declaration.
    CrcMismatch {
        /// Checksum the footer declares.
        declared: u32,
        /// Checksum of the bytes actually present.
        computed: u32,
    },
}

impl fmt::Display for ChecksumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChecksumError::MissingFooter => {
                write!(f, "missing or malformed ancstr-seal footer (truncated write?)")
            }
            ChecksumError::KindMismatch { expected, found } => {
                write!(f, "artifact kind is `{found}`, expected `{expected}`")
            }
            ChecksumError::LengthMismatch { declared, actual } => {
                write!(f, "payload is {actual} bytes, footer declares {declared}")
            }
            ChecksumError::CrcMismatch { declared, computed } => write!(
                f,
                "payload crc32 {computed:08x} does not match footer {declared:08x}"
            ),
        }
    }
}

impl Error for ChecksumError {}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — detects every single-bit and single-byte
/// error, which is exactly the corruption class the fault-injection
/// suite replays.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Wrap a payload in the checksummed artifact envelope: the payload
/// (newline-terminated; one is added if missing) followed by a footer
/// line declaring the artifact `kind`, the payload byte count, and its
/// CRC-32. The inverse of [`open_sealed`].
pub fn seal(kind: &str, payload: &str) -> String {
    debug_assert!(
        !kind.contains(char::is_whitespace),
        "artifact kinds are single tokens"
    );
    let mut out = String::with_capacity(payload.len() + 64);
    out.push_str(payload);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    let body_len = out.len();
    let crc = crc32(out.as_bytes());
    out.push_str(&format!("ancstr-seal v1 kind={kind} len={body_len} crc32={crc:08x}\n"));
    out
}

/// Verify a sealed artifact and return its payload.
///
/// # Errors
///
/// A typed [`ChecksumError`] when the footer is missing/garbled, the
/// kind disagrees, the length disagrees (truncation), or the CRC-32
/// disagrees (bit rot). A corrupt artifact is never returned as valid.
pub fn open_sealed<'a>(kind: &str, text: &'a str) -> Result<&'a str, ChecksumError> {
    let trimmed = text.strip_suffix('\n').ok_or(ChecksumError::MissingFooter)?;
    let footer_at = trimmed.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let footer = &trimmed[footer_at..];
    let payload = &text[..footer_at];

    let tokens: Vec<&str> = footer.split_whitespace().collect();
    let ["ancstr-seal", "v1", kind_kv, len_kv, crc_kv] = tokens.as_slice() else {
        return Err(ChecksumError::MissingFooter);
    };
    let found_kind =
        kind_kv.strip_prefix("kind=").ok_or(ChecksumError::MissingFooter)?;
    let declared_len: usize = len_kv
        .strip_prefix("len=")
        .and_then(|v| v.parse().ok())
        .ok_or(ChecksumError::MissingFooter)?;
    let declared_crc = crc_kv
        .strip_prefix("crc32=")
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or(ChecksumError::MissingFooter)?;

    if found_kind != kind {
        return Err(ChecksumError::KindMismatch {
            expected: kind.to_owned(),
            found: found_kind.to_owned(),
        });
    }
    if payload.len() != declared_len {
        return Err(ChecksumError::LengthMismatch {
            declared: declared_len,
            actual: payload.len(),
        });
    }
    let computed = crc32(payload.as_bytes());
    if computed != declared_crc {
        return Err(ChecksumError::CrcMismatch { declared: declared_crc, computed });
    }
    Ok(payload)
}

/// Append one `matrix r c` block (declaration + rows) to `out`.
fn write_matrix(out: &mut String, m: &Matrix) {
    out.push_str(&format!("matrix {} {}\n", m.rows(), m.cols()));
    for r in 0..m.rows() {
        let row: Vec<String> = m.row(r).iter().map(|v| format!("{v:?}")).collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
}

/// Read the rows of a declared `rows × cols` matrix, rejecting
/// non-finite values and shape drift.
fn read_matrix_rows(
    lines: &mut std::str::Lines<'_>,
    rows: usize,
    cols: usize,
    context: &str,
) -> Result<Matrix, ParseModelError> {
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let row_line = lines.next().ok_or_else(|| err(format!("truncated {context}")))?;
        let values: Vec<f64> = row_line
            .split_whitespace()
            .map(|v| v.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| err(format!("bad value in {context}")))?;
        // `"NaN".parse::<f64>()` succeeds, so non-finite weights must be
        // rejected explicitly: a matrix carrying them would silently
        // poison every downstream cosine score.
        if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
            return Err(err(format!("non-finite weight {bad} in {context} row {r}")));
        }
        if values.len() != cols {
            return Err(err(format!(
                "{context} row has {} values, expected {cols}",
                values.len()
            )));
        }
        m.row_mut(r).copy_from_slice(&values);
    }
    Ok(m)
}

/// Read one full `matrix` block (declaration line + rows).
fn read_matrix(lines: &mut std::str::Lines<'_>, context: &str) -> Result<Matrix, ParseModelError> {
    let decl = lines.next().ok_or_else(|| err(format!("missing {context} matrix")))?;
    let mut t = decl.split_whitespace();
    if t.next() != Some("matrix") {
        return Err(err(format!("expected `matrix` for {context}, got `{decl}`")));
    }
    let rows: usize = t
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(format!("bad {context} matrix rows")))?;
    let cols: usize = t
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(format!("bad {context} matrix cols")))?;
    read_matrix_rows(lines, rows, cols, context)
}

/// Serialize one matrix as a standalone text block (declaration + rows),
/// e.g. for the run store's embeddings artifact. Inverse of
/// [`matrix_from_text`]; round trips are bit-exact.
pub fn matrix_to_text(m: &Matrix) -> String {
    let mut out = String::new();
    write_matrix(&mut out, m);
    out
}

/// Parse a [`matrix_to_text`] block.
///
/// # Errors
///
/// [`ParseModelError`] on truncation, shape drift, or non-finite values.
pub fn matrix_from_text(text: &str) -> Result<Matrix, ParseModelError> {
    let mut lines = text.lines();
    let m = read_matrix(&mut lines, "matrix")?;
    if lines.any(|l| !l.trim().is_empty()) {
        return Err(err("trailing data after matrix block"));
    }
    Ok(m)
}

impl GnnModel {
    /// Serialize the model (configuration + every parameter matrix) to
    /// text. The inverse of [`GnnModel::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::from("ancstr-gnn v1\n");
        let c = self.config();
        let combiner = match c.combiner {
            Combiner::Gru => "gru",
            Combiner::MeanLinear => "mean",
        };
        out.push_str(&format!(
            "dim {} layers {} seed {} combiner {}\n",
            c.dim, c.layers, c.seed, combiner
        ));
        for m in self.matrices() {
            out.push_str(&format!("matrix {} {}\n", m.rows(), m.cols()));
            for r in 0..m.rows() {
                let row: Vec<String> = m.row(r).iter().map(|v| format!("{v:?}")).collect();
                out.push_str(&row.join(" "));
                out.push('\n');
            }
        }
        out
    }

    /// Deserialize a model from [`GnnModel::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns [`ParseModelError`] on version/shape/number mismatches.
    pub fn from_text(text: &str) -> Result<GnnModel, ParseModelError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| err("empty input"))?;
        if header.trim() != "ancstr-gnn v1" {
            return Err(err(format!("unsupported header `{header}`")));
        }
        let config_line = lines.next().ok_or_else(|| err("missing config line"))?;
        let tokens: Vec<&str> = config_line.split_whitespace().collect();
        let (head, combiner) = match tokens.as_slice() {
            [a, b, c, d, e, f] => ([*a, *b, *c, *d, *e, *f], Combiner::Gru),
            [a, b, c, d, e, f, k_comb, comb] => {
                if *k_comb != "combiner" {
                    return Err(err("expected `combiner` keyword"));
                }
                let combiner = match *comb {
                    "gru" => Combiner::Gru,
                    "mean" => Combiner::MeanLinear,
                    other => return Err(err(format!("unknown combiner `{other}`"))),
                };
                ([*a, *b, *c, *d, *e, *f], combiner)
            }
            _ => return Err(err("config line needs `dim N layers K seed S [combiner C]`")),
        };
        let [k_dim, dim, k_layers, layers, k_seed, seed] = head;
        if k_dim != "dim" || k_layers != "layers" || k_seed != "seed" {
            return Err(err("config line keywords are dim/layers/seed"));
        }
        let config = GnnConfig {
            dim: dim.parse().map_err(|_| err("bad dim"))?,
            layers: layers.parse().map_err(|_| err("bad layers"))?,
            seed: seed.parse().map_err(|_| err("bad seed"))?,
            combiner,
        };

        let mut model = GnnModel::new(config);
        let expected = model.param_count();
        let mut matrices = Vec::with_capacity(expected);
        while let Some(line) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut t = line.split_whitespace();
            if t.next() != Some("matrix") {
                return Err(err(format!("expected `matrix`, got `{line}`")));
            }
            let rows: usize = t
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad matrix rows"))?;
            let cols: usize = t
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad matrix cols"))?;
            let m = read_matrix_rows(&mut lines, rows, cols, &format!("matrix {}", matrices.len()))?;
            matrices.push(m);
        }
        if matrices.len() != expected {
            return Err(err(format!(
                "model has {} matrices, expected {expected}",
                matrices.len()
            )));
        }
        for (slot, m) in model.matrices_mut().into_iter().zip(matrices) {
            if slot.shape() != m.shape() {
                return Err(err(format!(
                    "matrix shape {:?} does not fit slot {:?}",
                    m.shape(),
                    slot.shape()
                )));
            }
            *slot = m;
        }
        Ok(model)
    }

    /// [`GnnModel::to_text`] wrapped in the [`seal`] envelope (kind
    /// `model`), for durable run-store artifacts.
    pub fn to_text_checksummed(&self) -> String {
        seal("model", &self.to_text())
    }

    /// Verify and deserialize a [`GnnModel::to_text_checksummed`]
    /// artifact.
    ///
    /// # Errors
    ///
    /// [`ParseModelError`] naming the checksum failure or the structural
    /// parse failure; a corrupt artifact is never returned as a model.
    pub fn from_text_checksummed(text: &str) -> Result<GnnModel, ParseModelError> {
        let payload = open_sealed("model", text).map_err(|e| err(e.to_string()))?;
        GnnModel::from_text(payload)
    }

    /// A stable 64-bit FNV-1a fingerprint of the model's serialized
    /// form (configuration + every weight, bit-exact). Two models share
    /// a fingerprint exactly when [`GnnModel::to_text`] round trips
    /// them identically, which makes it the right token for result
    /// cache keys and for naming which weights a long-lived service is
    /// currently holding warm.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.to_text().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

fn parse_kv<'a>(
    tokens: &mut std::str::SplitWhitespace<'a>,
    key: &str,
) -> Result<&'a str, ParseModelError> {
    match (tokens.next(), tokens.next()) {
        (Some(k), Some(v)) if k == key => Ok(v),
        other => Err(err(format!("expected `{key} <value>`, got {other:?}"))),
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, ParseModelError> {
    v.parse().map_err(|_| err(format!("bad {what} `{v}`")))
}

/// Parse an `f64` that may legitimately be `inf` (the best-loss field
/// before any epoch completes) but never NaN.
fn parse_loss(v: &str, what: &str) -> Result<f64, ParseModelError> {
    let x: f64 = v.parse().map_err(|_| err(format!("bad {what} `{v}`")))?;
    if x.is_nan() {
        return Err(err(format!("{what} is NaN")));
    }
    Ok(x)
}

impl TrainerState {
    /// The checkpoint artifact kind used by the [`seal`] envelope.
    pub const ARTIFACT_KIND: &'static str = "checkpoint";

    /// Serialize the full guarded-loop state, [`seal`]ed with kind
    /// [`TrainerState::ARTIFACT_KIND`]. The inverse of
    /// [`TrainerState::from_text`]; round trips are bit-exact, which is
    /// what makes crash/resume reproduce an uninterrupted run.
    pub fn to_text(&self) -> String {
        let c = &self.gnn;
        let combiner = match c.combiner {
            Combiner::Gru => "gru",
            Combiner::MeanLinear => "mean",
        };
        let mut out = String::from("ancstr-ckpt v1\n");
        out.push_str(&format!(
            "dim {} layers {} seed {} combiner {}\n",
            c.dim, c.layers, c.seed, combiner
        ));
        out.push_str(&format!(
            "epoch {} attempt {} train-seed {} clipped {} adam-steps {}\n",
            self.epoch_losses.len(),
            self.attempt,
            self.seed,
            self.clipped_steps,
            self.adam_steps,
        ));
        out.push_str(&format!("best-loss {:?}\n", self.best_loss));
        let losses: Vec<String> = self.epoch_losses.iter().map(|v| format!("{v:?}")).collect();
        out.push_str(&format!("losses {}\n", losses.join(" ")));
        let rng: Vec<String> = self.rng.iter().map(u64::to_string).collect();
        out.push_str(&format!("rng {}\n", rng.join(" ")));
        let order: Vec<String> = self.order.iter().map(usize::to_string).collect();
        out.push_str(&format!("order {}\n", order.join(" ")));
        out.push_str(&format!("retries {}\n", self.retries.len()));
        for e in &self.retries {
            let cause = match e.cause {
                AnomalyCause::NonFiniteLoss(v) => format!("loss {v:?}"),
                AnomalyCause::NonFiniteGradient => "grad".to_owned(),
                AnomalyCause::Diverged { loss, best } => format!("diverged {loss:?} {best:?}"),
            };
            out.push_str(&format!(
                "retry {} {} {} {cause}\n",
                e.epoch, e.attempt, e.reseeded_to
            ));
        }
        out.push_str(&format!("params {}\n", self.params.len()));
        for m in &self.params {
            write_matrix(&mut out, m);
        }
        out.push_str(&format!("best-params {}\n", self.best_params.len()));
        for m in &self.best_params {
            write_matrix(&mut out, m);
        }
        out.push_str(&format!("moments {}\n", self.adam_moments.len()));
        for (m, v) in &self.adam_moments {
            write_matrix(&mut out, m);
            write_matrix(&mut out, v);
        }
        seal(Self::ARTIFACT_KIND, &out)
    }

    /// Verify the envelope and deserialize a checkpoint.
    ///
    /// # Errors
    ///
    /// [`ParseModelError`] on checksum or structural failure. A
    /// truncated, bit-flipped, or otherwise damaged checkpoint always
    /// fails here — resume falls back to an older one instead of
    /// loading garbage.
    pub fn from_text(text: &str) -> Result<TrainerState, ParseModelError> {
        let payload =
            open_sealed(Self::ARTIFACT_KIND, text).map_err(|e| err(e.to_string()))?;
        let mut lines = payload.lines();
        let header = lines.next().ok_or_else(|| err("empty checkpoint"))?;
        if header.trim() != "ancstr-ckpt v1" {
            return Err(err(format!("unsupported checkpoint header `{header}`")));
        }

        let config_line = lines.next().ok_or_else(|| err("missing config line"))?;
        let mut t = config_line.split_whitespace();
        let dim: usize = parse_num(parse_kv(&mut t, "dim")?, "dim")?;
        let layers: usize = parse_num(parse_kv(&mut t, "layers")?, "layers")?;
        let model_seed: u64 = parse_num(parse_kv(&mut t, "seed")?, "seed")?;
        let combiner = match parse_kv(&mut t, "combiner")? {
            "gru" => Combiner::Gru,
            "mean" => Combiner::MeanLinear,
            other => return Err(err(format!("unknown combiner `{other}`"))),
        };
        let gnn = GnnConfig { dim, layers, seed: model_seed, combiner };

        let progress = lines.next().ok_or_else(|| err("missing progress line"))?;
        let mut t = progress.split_whitespace();
        let epoch: usize = parse_num(parse_kv(&mut t, "epoch")?, "epoch")?;
        let attempt: usize = parse_num(parse_kv(&mut t, "attempt")?, "attempt")?;
        let seed: u64 = parse_num(parse_kv(&mut t, "train-seed")?, "train-seed")?;
        let clipped_steps: usize = parse_num(parse_kv(&mut t, "clipped")?, "clipped")?;
        let adam_steps: u64 = parse_num(parse_kv(&mut t, "adam-steps")?, "adam-steps")?;

        let loss_line = lines.next().ok_or_else(|| err("missing best-loss line"))?;
        let mut t = loss_line.split_whitespace();
        let best_loss = parse_loss(parse_kv(&mut t, "best-loss")?, "best-loss")?;

        let losses_line = lines.next().ok_or_else(|| err("missing losses line"))?;
        let mut t = losses_line.split_whitespace();
        if t.next() != Some("losses") {
            return Err(err("expected `losses` line"));
        }
        let epoch_losses: Vec<f64> = t
            .map(|v| parse_loss(v, "epoch loss"))
            .collect::<Result<_, _>>()?;
        if epoch_losses.len() != epoch {
            return Err(err(format!(
                "checkpoint declares epoch {epoch} but carries {} losses",
                epoch_losses.len()
            )));
        }

        let rng_line = lines.next().ok_or_else(|| err("missing rng line"))?;
        let mut t = rng_line.split_whitespace();
        if t.next() != Some("rng") {
            return Err(err("expected `rng` line"));
        }
        let rng_words: Vec<u64> = t
            .map(|v| parse_num(v, "rng word"))
            .collect::<Result<_, _>>()?;
        let rng: [u64; 4] = rng_words
            .try_into()
            .map_err(|_| err("rng line needs exactly 4 words"))?;

        let order_line = lines.next().ok_or_else(|| err("missing order line"))?;
        let mut t = order_line.split_whitespace();
        if t.next() != Some("order") {
            return Err(err("expected `order` line"));
        }
        let order: Vec<usize> = t
            .map(|v| parse_num(v, "order index"))
            .collect::<Result<_, _>>()?;

        let retries_line = lines.next().ok_or_else(|| err("missing retries line"))?;
        let mut t = retries_line.split_whitespace();
        let n_retries: usize = parse_num(parse_kv(&mut t, "retries")?, "retries")?;
        let mut retries = Vec::with_capacity(n_retries);
        for _ in 0..n_retries {
            let line = lines.next().ok_or_else(|| err("truncated retries"))?;
            let mut t = line.split_whitespace();
            if t.next() != Some("retry") {
                return Err(err(format!("expected `retry`, got `{line}`")));
            }
            let epoch: usize =
                parse_num(t.next().ok_or_else(|| err("retry epoch"))?, "retry epoch")?;
            let attempt: usize =
                parse_num(t.next().ok_or_else(|| err("retry attempt"))?, "retry attempt")?;
            let reseeded_to: u64 =
                parse_num(t.next().ok_or_else(|| err("retry reseed"))?, "retry reseed")?;
            let cause = match t.next() {
                Some("grad") => AnomalyCause::NonFiniteGradient,
                Some("loss") => {
                    let v: f64 =
                        parse_num(t.next().ok_or_else(|| err("retry loss"))?, "retry loss")?;
                    AnomalyCause::NonFiniteLoss(v)
                }
                Some("diverged") => {
                    let loss = parse_loss(
                        t.next().ok_or_else(|| err("retry diverged loss"))?,
                        "retry diverged loss",
                    )?;
                    let best = parse_loss(
                        t.next().ok_or_else(|| err("retry diverged best"))?,
                        "retry diverged best",
                    )?;
                    AnomalyCause::Diverged { loss, best }
                }
                other => return Err(err(format!("unknown retry cause {other:?}"))),
            };
            retries.push(HealthEvent { epoch, attempt, cause, reseeded_to });
        }

        let read_block = |lines: &mut std::str::Lines<'_>,
                          key: &str|
         -> Result<Vec<Matrix>, ParseModelError> {
            let line = lines.next().ok_or_else(|| err(format!("missing {key} line")))?;
            let mut t = line.split_whitespace();
            let n: usize = parse_num(parse_kv(&mut t, key)?, key)?;
            (0..n).map(|i| read_matrix(lines, &format!("{key}[{i}]"))).collect()
        };
        let params = read_block(&mut lines, "params")?;
        let best_params = read_block(&mut lines, "best-params")?;

        let line = lines.next().ok_or_else(|| err("missing moments line"))?;
        let mut t = line.split_whitespace();
        let n_moments: usize = parse_num(parse_kv(&mut t, "moments")?, "moments")?;
        let mut adam_moments = Vec::with_capacity(n_moments);
        for i in 0..n_moments {
            let m = read_matrix(&mut lines, &format!("moment-m[{i}]"))?;
            let v = read_matrix(&mut lines, &format!("moment-v[{i}]"))?;
            adam_moments.push((m, v));
        }
        if lines.any(|l| !l.trim().is_empty()) {
            return Err(err("trailing data after checkpoint"));
        }

        Ok(TrainerState {
            gnn,
            params,
            best_params,
            best_loss,
            epoch_losses,
            attempt,
            seed,
            rng,
            order,
            adam_steps,
            adam_moments,
            clipped_steps,
            retries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensors::GraphTensors;
    use ancstr_graph::{HetMultigraph, VertexId};
    use ancstr_netlist::PortType;

    fn sample_model() -> GnnModel {
        GnnModel::new(GnnConfig { dim: 5, layers: 2, seed: 77, ..GnnConfig::default() })
    }

    #[test]
    fn round_trip_is_exact() {
        let model = sample_model();
        let text = model.to_text();
        let back = GnnModel::from_text(&text).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn round_tripped_model_embeds_identically() {
        let model = sample_model();
        let back = GnnModel::from_text(&model.to_text()).unwrap();
        let mut g = HetMultigraph::with_vertices(0..4);
        g.add_edge(VertexId(0), VertexId(1), PortType::Drain);
        g.add_edge(VertexId(2), VertexId(3), PortType::Gate);
        let t = GraphTensors::from_multigraph(&g);
        let x = Matrix::filled(4, 5, 0.3);
        assert_eq!(model.embed(&t, &x), back.embed(&t, &x));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(GnnModel::from_text("").is_err());
        assert!(GnnModel::from_text("wrong header\n").is_err());
        assert!(GnnModel::from_text("ancstr-gnn v1\ndim x layers 2 seed 1\n").is_err());
        // Truncated body.
        let model = sample_model();
        let text = model.to_text();
        let cut: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(GnnModel::from_text(&cut).is_err());
        // Corrupted value.
        let bad = text.replacen("matrix 5 5", "matrix 5 4", 1);
        assert!(GnnModel::from_text(&bad).is_err());
    }

    #[test]
    fn rejects_non_finite_weights() {
        let model = sample_model();
        let text = model.to_text();
        // Replace the first weight of the first matrix with each
        // non-finite spelling `f64::parse` accepts.
        let first_row = text.lines().nth(3).expect("first weight row");
        let first_value = first_row.split_whitespace().next().unwrap();
        for bad in ["NaN", "inf", "-inf", "infinity"] {
            let poisoned = text.replacen(first_value, bad, 1);
            let err = GnnModel::from_text(&poisoned).unwrap_err();
            assert!(
                err.reason.contains("non-finite"),
                "`{bad}` must be rejected, got: {err}"
            );
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_an_error_not_a_panic() {
        let model = sample_model();
        let text = model.to_text();
        let total = text.lines().count();
        // Cutting the file after any prefix of lines must yield a typed
        // error (or, for the empty tail case, a complete model).
        for keep in 0..total {
            let cut: String = text.lines().take(keep).collect::<Vec<_>>().join("\n");
            assert!(GnnModel::from_text(&cut).is_err(), "prefix of {keep} lines accepted");
        }
        assert!(GnnModel::from_text(&text).is_ok());
    }

    #[test]
    fn corrupt_values_and_headers_are_typed_errors() {
        let model = sample_model();
        let text = model.to_text();
        // A letter where a number belongs.
        let garbled = text.replacen("matrix 5 5\n", "matrix 5 5\nx", 1);
        assert!(GnnModel::from_text(&garbled).is_err());
        // Matrix count mismatch: drop one whole matrix block.
        let lines: Vec<&str> = text.lines().collect();
        let last_matrix = lines.iter().rposition(|l| l.starts_with("matrix")).unwrap();
        let dropped = lines[..last_matrix].join("\n");
        let err = GnnModel::from_text(&dropped).unwrap_err();
        assert!(err.reason.contains("matrices"), "{err}");
        // Oversized declared shape that doesn't fit its slot.
        let bad_shape = text.replacen("matrix 1 5", "matrix 5 1", 1);
        assert!(GnnModel::from_text(&bad_shape).is_err());
    }

    #[test]
    fn full_precision_survives() {
        let model = sample_model();
        let back = GnnModel::from_text(&model.to_text()).unwrap();
        for (a, b) in model.matrices().iter().zip(back.matrices()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact round trip");
            }
        }
    }

    #[test]
    fn seal_round_trips_and_names_its_failures() {
        let sealed = seal("model", "payload line\nmore\n");
        assert_eq!(open_sealed("model", &sealed).unwrap(), "payload line\nmore\n");
        assert!(matches!(
            open_sealed("checkpoint", &sealed).unwrap_err(),
            ChecksumError::KindMismatch { .. }
        ));
        assert!(matches!(
            open_sealed("model", "no footer at all\n").unwrap_err(),
            ChecksumError::MissingFooter
        ));
        // Any truncation destroys the footer (it is written last).
        for cut in 0..sealed.len() {
            assert!(
                open_sealed("model", &sealed[..cut]).is_err(),
                "truncation at byte {cut} accepted"
            );
        }
    }

    #[test]
    fn checksummed_model_rejects_in_payload_tampering() {
        let model = sample_model();
        let sealed = model.to_text_checksummed();
        let back = GnnModel::from_text_checksummed(&sealed).unwrap();
        assert_eq!(back, model);
        // A value swap that the plain parser would happily accept is
        // caught by the CRC.
        let first_weight_line = sealed.lines().nth(3).unwrap();
        let first_value = first_weight_line.split_whitespace().next().unwrap();
        let tampered = sealed.replacen(first_value, "0.5", 1);
        assert_ne!(tampered, sealed);
        let err = GnnModel::from_text_checksummed(&tampered).unwrap_err();
        assert!(err.reason.contains("crc32") || err.reason.contains("declares"), "{err}");
    }

    #[test]
    fn checksummed_model_rejects_truncated_envelope() {
        // Truncation anywhere — including cuts that leave a complete,
        // parseable model body but a damaged footer — is rejected with
        // a typed error, never a panic: the reload endpoint feeds
        // arbitrary request bodies straight into this parser.
        let sealed = sample_model().to_text_checksummed();
        for keep in [0, 1, sealed.len() / 4, sealed.len() / 2, sealed.len() - 1] {
            let mut cut = keep;
            while cut > 0 && !sealed.is_char_boundary(cut) {
                cut -= 1;
            }
            let err = GnnModel::from_text_checksummed(&sealed[..cut]).unwrap_err();
            assert!(
                err.reason.contains("footer")
                    || err.reason.contains("declares")
                    || err.reason.contains("crc32"),
                "cut at {keep}: unexpected error {err}"
            );
        }
        // A whole-line truncation keeps the text well-formed but the
        // declared length cannot match.
        let without_last_payload_line: Vec<&str> = {
            let lines: Vec<&str> = sealed.lines().collect();
            let n = lines.len();
            lines[..n - 2].iter().copied().chain(lines[n - 1..].iter().copied()).collect()
        };
        let shortened = format!("{}\n", without_last_payload_line.join("\n"));
        let err = GnnModel::from_text_checksummed(&shortened).unwrap_err();
        assert!(err.reason.contains("declares"), "{err}");
    }

    #[test]
    fn checksummed_model_rejects_crc_mismatch() {
        // Flip one payload byte for another of equal width: length
        // still matches the footer, so only the CRC can catch it.
        let sealed = sample_model().to_text_checksummed();
        let flipped = if sealed.contains("0.") {
            sealed.replacen("0.", "1.", 1)
        } else {
            sealed.replacen('1', "2", 1)
        };
        assert_ne!(flipped, sealed);
        assert_eq!(flipped.len(), sealed.len(), "same-width tamper");
        let err = GnnModel::from_text_checksummed(&flipped).unwrap_err();
        assert!(err.reason.contains("crc32"), "{err}");
    }

    #[test]
    fn checksummed_model_rejects_version_skew() {
        // A well-sealed artifact (valid CRC) whose payload declares an
        // unknown format version: the seal passes, the parser rejects.
        let future = sample_model().to_text().replacen("ancstr-gnn v1", "ancstr-gnn v9", 1);
        let sealed = seal("model", &future);
        assert!(open_sealed("model", &sealed).is_ok(), "seal itself is valid");
        let err = GnnModel::from_text_checksummed(&sealed).unwrap_err();
        assert!(err.reason.contains("unsupported header"), "{err}");
        // Same for a sealed-with-the-wrong-kind envelope.
        let wrong_kind = seal("checkpoint", &sample_model().to_text());
        let err = GnnModel::from_text_checksummed(&wrong_kind).unwrap_err();
        assert!(err.reason.contains("kind"), "{err}");
    }

    #[test]
    fn fingerprint_tracks_weight_identity() {
        let a = sample_model();
        assert_eq!(a.fingerprint(), a.fingerprint());
        // A round-tripped model is bit-identical, so it shares the
        // fingerprint.
        let back = GnnModel::from_text(&a.to_text()).unwrap();
        assert_eq!(back.fingerprint(), a.fingerprint());
        // Different seed → different weights → different fingerprint.
        let b = GnnModel::new(GnnConfig { dim: 5, layers: 2, seed: 78, ..GnnConfig::default() });
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    fn sample_state() -> TrainerState {
        let model = sample_model();
        let params: Vec<Matrix> = model.matrices().into_iter().cloned().collect();
        let adam_moments = params
            .iter()
            .map(|m| {
                (
                    Matrix::filled(m.rows(), m.cols(), 0.01),
                    Matrix::filled(m.rows(), m.cols(), 0.002),
                )
            })
            .collect();
        TrainerState {
            gnn: model.config().clone(),
            best_params: params.clone(),
            params,
            best_loss: 0.123_456_789_012_345_6,
            epoch_losses: vec![1.5, 0.9, 0.123_456_789_012_345_6],
            attempt: 1,
            seed: 0xDEAD_BEEF_CAFE,
            rng: [u64::MAX, 2, 3, 0x0123_4567_89AB_CDEF],
            order: vec![2, 0, 1],
            adam_steps: 42,
            adam_moments,
            clipped_steps: 3,
            retries: vec![
                HealthEvent {
                    epoch: 1,
                    attempt: 0,
                    cause: AnomalyCause::NonFiniteGradient,
                    reseeded_to: 99,
                },
                HealthEvent {
                    epoch: 2,
                    attempt: 1,
                    cause: AnomalyCause::Diverged { loss: 50.5, best: 0.9 },
                    reseeded_to: 0xBEEF,
                },
            ],
        }
    }

    #[test]
    fn trainer_state_round_trip_is_exact() {
        let state = sample_state();
        let back = TrainerState::from_text(&state.to_text()).unwrap();
        assert_eq!(back, state);
        // RNG words and seeds survive at full u64 width.
        assert_eq!(back.rng[0], u64::MAX);
        // Losses survive bit-exactly.
        assert_eq!(back.best_loss.to_bits(), state.best_loss.to_bits());
    }

    #[test]
    fn trainer_state_with_infinite_best_loss_round_trips() {
        // Before the first completed epoch, best_loss is +inf; NaN is
        // still rejected.
        let mut state = sample_state();
        state.best_loss = f64::INFINITY;
        state.epoch_losses.clear();
        let back = TrainerState::from_text(&state.to_text()).unwrap();
        assert_eq!(back.best_loss, f64::INFINITY);
        assert_eq!(back, state);
    }

    #[test]
    fn trainer_state_rejects_corruption() {
        let text = sample_state().to_text();
        // Any truncation is caught by the seal.
        for keep in [0, 1, text.len() / 2, text.len() - 1] {
            let mut cut = keep;
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            assert!(TrainerState::from_text(&text[..cut]).is_err(), "keep {keep}");
        }
        // A sealed-but-wrong-kind artifact is rejected.
        let model_sealed = sample_model().to_text_checksummed();
        let err = TrainerState::from_text(&model_sealed).unwrap_err();
        assert!(err.reason.contains("kind"), "{err}");
        // In-payload tampering is caught by the CRC.
        let tampered = text.replacen("epoch 3", "epoch 4", 1);
        assert_ne!(tampered, text);
        assert!(TrainerState::from_text(&tampered).is_err());
    }
}
