//! Plain-text model serialization, so a universal model trained once on
//! a corpus can be shipped and reused on unseen circuits (the inductive
//! deployment mode of Section IV-C) without retraining.
//!
//! Format (line-oriented, whitespace-separated):
//!
//! ```text
//! ancstr-gnn v1
//! dim 18 layers 2 seed 42
//! matrix 18 18
//! 0.123 -0.456 …           (one line per row)
//! …
//! ```

use std::error::Error;
use std::fmt;

use ancstr_nn::Matrix;

use crate::model::{Combiner, GnnConfig, GnnModel};

/// Error returned by [`GnnModel::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model text: {}", self.reason)
    }
}

impl Error for ParseModelError {}

fn err(reason: impl Into<String>) -> ParseModelError {
    ParseModelError { reason: reason.into() }
}

impl GnnModel {
    /// Serialize the model (configuration + every parameter matrix) to
    /// text. The inverse of [`GnnModel::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::from("ancstr-gnn v1\n");
        let c = self.config();
        let combiner = match c.combiner {
            Combiner::Gru => "gru",
            Combiner::MeanLinear => "mean",
        };
        out.push_str(&format!(
            "dim {} layers {} seed {} combiner {}\n",
            c.dim, c.layers, c.seed, combiner
        ));
        for m in self.matrices() {
            out.push_str(&format!("matrix {} {}\n", m.rows(), m.cols()));
            for r in 0..m.rows() {
                let row: Vec<String> = m.row(r).iter().map(|v| format!("{v:?}")).collect();
                out.push_str(&row.join(" "));
                out.push('\n');
            }
        }
        out
    }

    /// Deserialize a model from [`GnnModel::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns [`ParseModelError`] on version/shape/number mismatches.
    pub fn from_text(text: &str) -> Result<GnnModel, ParseModelError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| err("empty input"))?;
        if header.trim() != "ancstr-gnn v1" {
            return Err(err(format!("unsupported header `{header}`")));
        }
        let config_line = lines.next().ok_or_else(|| err("missing config line"))?;
        let tokens: Vec<&str> = config_line.split_whitespace().collect();
        let (head, combiner) = match tokens.as_slice() {
            [a, b, c, d, e, f] => ([*a, *b, *c, *d, *e, *f], Combiner::Gru),
            [a, b, c, d, e, f, k_comb, comb] => {
                if *k_comb != "combiner" {
                    return Err(err("expected `combiner` keyword"));
                }
                let combiner = match *comb {
                    "gru" => Combiner::Gru,
                    "mean" => Combiner::MeanLinear,
                    other => return Err(err(format!("unknown combiner `{other}`"))),
                };
                ([*a, *b, *c, *d, *e, *f], combiner)
            }
            _ => return Err(err("config line needs `dim N layers K seed S [combiner C]`")),
        };
        let [k_dim, dim, k_layers, layers, k_seed, seed] = head;
        if k_dim != "dim" || k_layers != "layers" || k_seed != "seed" {
            return Err(err("config line keywords are dim/layers/seed"));
        }
        let config = GnnConfig {
            dim: dim.parse().map_err(|_| err("bad dim"))?,
            layers: layers.parse().map_err(|_| err("bad layers"))?,
            seed: seed.parse().map_err(|_| err("bad seed"))?,
            combiner,
        };

        let mut model = GnnModel::new(config);
        let expected = model.param_count();
        let mut matrices = Vec::with_capacity(expected);
        while let Some(line) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut t = line.split_whitespace();
            if t.next() != Some("matrix") {
                return Err(err(format!("expected `matrix`, got `{line}`")));
            }
            let rows: usize = t
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad matrix rows"))?;
            let cols: usize = t
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad matrix cols"))?;
            let mut m = Matrix::zeros(rows, cols);
            for r in 0..rows {
                let row_line = lines.next().ok_or_else(|| err("truncated matrix"))?;
                let values: Vec<f64> = row_line
                    .split_whitespace()
                    .map(|v| v.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err("bad matrix value"))?;
                // `"NaN".parse::<f64>()` succeeds, so non-finite weights
                // must be rejected explicitly: a model carrying them
                // would silently poison every downstream cosine score.
                if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
                    return Err(err(format!(
                        "non-finite weight {bad} in matrix {} row {r}",
                        matrices.len()
                    )));
                }
                if values.len() != cols {
                    return Err(err(format!(
                        "matrix row has {} values, expected {cols}",
                        values.len()
                    )));
                }
                m.row_mut(r).copy_from_slice(&values);
            }
            matrices.push(m);
        }
        if matrices.len() != expected {
            return Err(err(format!(
                "model has {} matrices, expected {expected}",
                matrices.len()
            )));
        }
        for (slot, m) in model.matrices_mut().into_iter().zip(matrices) {
            if slot.shape() != m.shape() {
                return Err(err(format!(
                    "matrix shape {:?} does not fit slot {:?}",
                    m.shape(),
                    slot.shape()
                )));
            }
            *slot = m;
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensors::GraphTensors;
    use ancstr_graph::{HetMultigraph, VertexId};
    use ancstr_netlist::PortType;

    fn sample_model() -> GnnModel {
        GnnModel::new(GnnConfig { dim: 5, layers: 2, seed: 77, ..GnnConfig::default() })
    }

    #[test]
    fn round_trip_is_exact() {
        let model = sample_model();
        let text = model.to_text();
        let back = GnnModel::from_text(&text).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn round_tripped_model_embeds_identically() {
        let model = sample_model();
        let back = GnnModel::from_text(&model.to_text()).unwrap();
        let mut g = HetMultigraph::with_vertices(0..4);
        g.add_edge(VertexId(0), VertexId(1), PortType::Drain);
        g.add_edge(VertexId(2), VertexId(3), PortType::Gate);
        let t = GraphTensors::from_multigraph(&g);
        let x = Matrix::filled(4, 5, 0.3);
        assert_eq!(model.embed(&t, &x), back.embed(&t, &x));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(GnnModel::from_text("").is_err());
        assert!(GnnModel::from_text("wrong header\n").is_err());
        assert!(GnnModel::from_text("ancstr-gnn v1\ndim x layers 2 seed 1\n").is_err());
        // Truncated body.
        let model = sample_model();
        let text = model.to_text();
        let cut: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(GnnModel::from_text(&cut).is_err());
        // Corrupted value.
        let bad = text.replacen("matrix 5 5", "matrix 5 4", 1);
        assert!(GnnModel::from_text(&bad).is_err());
    }

    #[test]
    fn rejects_non_finite_weights() {
        let model = sample_model();
        let text = model.to_text();
        // Replace the first weight of the first matrix with each
        // non-finite spelling `f64::parse` accepts.
        let first_row = text.lines().nth(3).expect("first weight row");
        let first_value = first_row.split_whitespace().next().unwrap();
        for bad in ["NaN", "inf", "-inf", "infinity"] {
            let poisoned = text.replacen(first_value, bad, 1);
            let err = GnnModel::from_text(&poisoned).unwrap_err();
            assert!(
                err.reason.contains("non-finite"),
                "`{bad}` must be rejected, got: {err}"
            );
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_an_error_not_a_panic() {
        let model = sample_model();
        let text = model.to_text();
        let total = text.lines().count();
        // Cutting the file after any prefix of lines must yield a typed
        // error (or, for the empty tail case, a complete model).
        for keep in 0..total {
            let cut: String = text.lines().take(keep).collect::<Vec<_>>().join("\n");
            assert!(GnnModel::from_text(&cut).is_err(), "prefix of {keep} lines accepted");
        }
        assert!(GnnModel::from_text(&text).is_ok());
    }

    #[test]
    fn corrupt_values_and_headers_are_typed_errors() {
        let model = sample_model();
        let text = model.to_text();
        // A letter where a number belongs.
        let garbled = text.replacen("matrix 5 5\n", "matrix 5 5\nx", 1);
        assert!(GnnModel::from_text(&garbled).is_err());
        // Matrix count mismatch: drop one whole matrix block.
        let lines: Vec<&str> = text.lines().collect();
        let last_matrix = lines.iter().rposition(|l| l.starts_with("matrix")).unwrap();
        let dropped = lines[..last_matrix].join("\n");
        let err = GnnModel::from_text(&dropped).unwrap_err();
        assert!(err.reason.contains("matrices"), "{err}");
        // Oversized declared shape that doesn't fit its slot.
        let bad_shape = text.replacen("matrix 1 5", "matrix 5 1", 1);
        assert!(GnnModel::from_text(&bad_shape).is_err());
    }

    #[test]
    fn full_precision_survives() {
        let model = sample_model();
        let back = GnnModel::from_text(&model.to_text()).unwrap();
        for (a, b) in model.matrices().iter().zip(back.matrices()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact round trip");
            }
        }
    }
}
