//! The unsupervised graph-context loss of Eq. 2:
//!
//! ```text
//! L(z_v) = − Σ_{u ∈ N_in(v)} log σ(z_uᵀ z_v)
//!          − Σ_{i=1}^{B} E_{ũ ~ Neg(v)} log(1 − σ(z_ũᵀ z_v))
//! ```
//!
//! Positives are the 1-hop in-neighbours; `Neg(v)` is a unigram
//! distribution over in-degrees raised to the 3/4 power (word2vec
//! style), excluding `v` itself and, when possible, its in-neighbours.
//! `log(1 − σ(x)) = log σ(−x)` is used for numerical stability.

use rand::Rng;

use ancstr_nn::{NodeId, Tape};

use crate::tensors::GraphTensors;

/// Configuration of the Eq. 2 loss.
#[derive(Debug, Clone, PartialEq)]
pub struct LossConfig {
    /// Negative samples per vertex (`B`; paper: 5).
    pub negative_samples: usize,
    /// Divide the summed loss by the number of terms so the gradient
    /// scale is independent of graph size. The paper optimizes the plain
    /// sum `L_tot`; normalization only rescales the learning rate.
    pub normalize: bool,
}

impl Default for LossConfig {
    fn default() -> LossConfig {
        LossConfig { negative_samples: 5, normalize: true }
    }
}

/// The positive/negative index pairs for one training pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextBatch {
    /// Positive pairs `(u, v)` with `u ∈ N_in(v)`.
    pub positives: Vec<(usize, usize)>,
    /// Negative pairs `(ũ, v)`.
    pub negatives: Vec<(usize, usize)>,
}

impl ContextBatch {
    /// Draw a batch for every vertex of `tensors`.
    ///
    /// Positive pairs enumerate all distinct 1-hop in-neighbours.
    /// Negatives are sampled from the degree^(3/4) unigram distribution;
    /// up to 10 redraws avoid `v` itself and its in-neighbours, after
    /// which the last draw is kept (matching the usual word2vec
    /// implementation compromise).
    pub fn sample(tensors: &GraphTensors, config: &LossConfig, rng: &mut impl Rng) -> ContextBatch {
        let n = tensors.vertex_count();
        let mut positives = Vec::new();
        for v in 0..n {
            for &u in tensors.in_neighbors(v) {
                positives.push((u, v));
            }
        }

        // Unigram distribution ∝ (in_degree + 1)^0.75.
        let weights: Vec<f64> = (0..n)
            .map(|v| ((tensors.in_degree(v) + 1) as f64).powf(0.75))
            .collect();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        let total = acc;

        let mut negatives = Vec::new();
        if n > 1 && total > 0.0 {
            for v in 0..n {
                let forbidden = tensors.in_neighbors(v);
                for _ in 0..config.negative_samples {
                    let mut pick = 0;
                    for _attempt in 0..10 {
                        let r = rng.gen::<f64>() * total;
                        pick = cumulative.partition_point(|&c| c < r).min(n - 1);
                        if pick != v && !forbidden.contains(&pick) {
                            break;
                        }
                    }
                    negatives.push((pick, v));
                }
            }
        }
        ContextBatch { positives, negatives }
    }

    /// Number of loss terms.
    pub fn len(&self) -> usize {
        self.positives.len() + self.negatives.len()
    }

    /// Whether the batch carries no terms.
    pub fn is_empty(&self) -> bool {
        self.positives.is_empty() && self.negatives.is_empty()
    }
}

/// Record the Eq. 2 loss on `tape` given the final embeddings node `z`
/// (shape `n × D`). Returns a `1 × 1` loss node.
///
/// # Panics
///
/// Panics if the batch is empty (there is nothing to optimize).
pub fn context_loss(
    tape: &mut Tape,
    z: NodeId,
    batch: &ContextBatch,
    config: &LossConfig,
) -> NodeId {
    assert!(!batch.is_empty(), "cannot build a loss from an empty batch");
    let mut terms: Vec<NodeId> = Vec::new();

    if !batch.positives.is_empty() {
        let (us, vs): (Vec<usize>, Vec<usize>) = batch.positives.iter().copied().unzip();
        let zu = tape.gather_rows(z, us);
        let zv = tape.gather_rows(z, vs);
        let dots = tape.row_dot(zu, zv);
        let ls = tape.log_sigmoid(dots);
        let s = tape.sum(ls);
        terms.push(tape.neg(s));
    }
    if !batch.negatives.is_empty() {
        let (us, vs): (Vec<usize>, Vec<usize>) = batch.negatives.iter().copied().unzip();
        let zu = tape.gather_rows(z, us);
        let zv = tape.gather_rows(z, vs);
        let dots = tape.row_dot(zu, zv);
        // log(1 − σ(x)) = log σ(−x)
        let neg_dots = tape.neg(dots);
        let ls = tape.log_sigmoid(neg_dots);
        let s = tape.sum(ls);
        terms.push(tape.neg(s));
    }

    let mut loss = terms[0];
    for &t in &terms[1..] {
        loss = tape.add(loss, t);
    }
    if config.normalize {
        loss = tape.scale(loss, 1.0 / batch.len() as f64);
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_graph::{HetMultigraph, VertexId};
    use ancstr_netlist::PortType;
    use ancstr_nn::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tensors() -> GraphTensors {
        let mut g = HetMultigraph::with_vertices(0..6);
        for i in 0..5 {
            g.add_edge(VertexId(i), VertexId(i + 1), PortType::Drain);
            g.add_edge(VertexId(i + 1), VertexId(i), PortType::Gate);
        }
        GraphTensors::from_multigraph(&g)
    }

    #[test]
    fn batch_counts() {
        let t = tensors();
        let cfg = LossConfig::default();
        let batch = ContextBatch::sample(&t, &cfg, &mut StdRng::seed_from_u64(1));
        // 10 directed in-neighbour pairs on the bidirected line.
        assert_eq!(batch.positives.len(), 10);
        assert_eq!(batch.negatives.len(), 6 * 5);
        assert_eq!(batch.len(), 40);
        assert!(!batch.is_empty());
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let t = tensors();
        let cfg = LossConfig::default();
        let a = ContextBatch::sample(&t, &cfg, &mut StdRng::seed_from_u64(9));
        let b = ContextBatch::sample(&t, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn negatives_mostly_avoid_self_and_neighbors() {
        let t = tensors();
        let cfg = LossConfig { negative_samples: 20, normalize: true };
        let batch = ContextBatch::sample(&t, &cfg, &mut StdRng::seed_from_u64(3));
        let bad = batch
            .negatives
            .iter()
            .filter(|&&(u, v)| u == v || t.in_neighbors(v).contains(&u))
            .count();
        // Retries make collisions rare on this graph.
        assert!(bad * 10 < batch.negatives.len(), "{bad} bad of {}", batch.negatives.len());
    }

    #[test]
    fn loss_is_positive_and_decreases_for_aligned_embeddings() {
        let t = tensors();
        let cfg = LossConfig::default();
        let batch = ContextBatch::sample(&t, &cfg, &mut StdRng::seed_from_u64(2));

        // Random embeddings.
        let eval = |z: Matrix| -> f64 {
            let mut tape = Tape::new();
            let zn = tape.leaf(z);
            let loss = context_loss(&mut tape, zn, &batch, &cfg);
            tape.value(loss)[(0, 0)]
        };
        let random = eval(Matrix::from_fn(6, 4, |r, c| ((r * 7 + c * 3) % 5) as f64 * 0.1 - 0.2));
        assert!(random > 0.0);

        // "Perfect" embeddings: neighbours identical & large, far pairs
        // opposite. On the line graph give alternating ±: neighbours then
        // have negative dots — should be *worse* than aligned.
        let aligned = eval(Matrix::filled(6, 4, 1.0));
        let alternating = eval(Matrix::from_fn(6, 4, |r, _| if r % 2 == 0 { 2.0 } else { -2.0 }));
        assert!(aligned < alternating);
    }

    #[test]
    fn gradient_flows_from_loss_to_embeddings() {
        let t = tensors();
        let cfg = LossConfig::default();
        let batch = ContextBatch::sample(&t, &cfg, &mut StdRng::seed_from_u64(4));
        let mut tape = Tape::new();
        let z = tape.leaf(Matrix::filled(6, 4, 0.1));
        let loss = context_loss(&mut tape, z, &batch, &cfg);
        let grads = tape.backward(loss);
        let g = grads.grad(z).expect("embeddings influence the loss");
        assert!(g.is_finite());
        assert!(g.max_abs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let mut tape = Tape::new();
        let z = tape.leaf(Matrix::zeros(2, 2));
        let batch = ContextBatch { positives: vec![], negatives: vec![] };
        let _ = context_loss(&mut tape, z, &batch, &LossConfig::default());
    }

    #[test]
    fn isolated_graph_yields_negative_only_batch() {
        let g = HetMultigraph::with_vertices(0..4);
        let t = GraphTensors::from_multigraph(&g);
        let batch = ContextBatch::sample(&t, &LossConfig::default(), &mut StdRng::seed_from_u64(5));
        assert!(batch.positives.is_empty());
        assert!(!batch.negatives.is_empty());
    }
}
