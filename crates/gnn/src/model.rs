//! The Eq. 1 model: K layers of edge-type-conditioned aggregation
//! combined by a GRU.
//!
//! ```text
//! h_v^{(k)} = GRU(h_v^{(k-1)}, Σ_{u ∈ N_in(v)} W_{e_uv} · h_u^{(k-1)})
//! ```
//!
//! with one weight matrix per edge type (`|W| = 4`).

use rand::rngs::StdRng;
use rand::SeedableRng;

use ancstr_netlist::PortType;
use ancstr_nn::init::xavier_uniform;
use ancstr_nn::{GruCell, GruLeaves, Matrix, NodeId, Tape};

use crate::tensors::GraphTensors;

/// How a layer combines the aggregated message with the previous state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Combiner {
    /// The paper's choice (Eq. 1, following GGNN \[22\]): a gated
    /// recurrent unit.
    Gru,
    /// GraphSAGE-style \[12\] ablation: `h' = tanh((h + m)/2 · W + b)` —
    /// an ungated mean of state and message through one linear layer.
    MeanLinear,
}

/// Hyper-parameters of the GNN.
#[derive(Debug, Clone, PartialEq)]
pub struct GnnConfig {
    /// Feature / hidden dimension `D` (the paper uses 18, matching the
    /// Table II input features).
    pub dim: usize,
    /// Number of layers `K` (paper: 2 — features aggregate from 2-hop
    /// neighbourhoods).
    pub layers: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
    /// State/message combiner (the paper's GRU by default).
    pub combiner: Combiner,
}

impl Default for GnnConfig {
    fn default() -> GnnConfig {
        GnnConfig { dim: 18, layers: 2, seed: 0xA5C7, combiner: Combiner::Gru }
    }
}

/// One layer: four edge-type transforms plus the GRU combiner.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    edge_weights: Vec<Matrix>,
    gru: GruCell,
}

/// Tape leaves for one layer during a recorded forward pass.
#[derive(Debug, Clone)]
pub struct LayerLeaves {
    edge_weights: Vec<NodeId>,
    gru: GruLeaves,
}

/// The trained model: weights for every layer.
#[derive(Debug, Clone, PartialEq)]
pub struct GnnModel {
    config: GnnConfig,
    layers: Vec<Layer>,
}

/// All tape leaves of a recorded forward pass, used by the trainer to
/// collect gradients in [`GnnModel::matrices_mut`] order.
#[derive(Debug, Clone)]
pub struct ModelLeaves {
    layers: Vec<LayerLeaves>,
}

impl ModelLeaves {
    /// Leaf ids flattened in [`GnnModel::matrices`] order.
    pub fn ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend_from_slice(&l.edge_weights);
            out.extend_from_slice(l.gru.ids());
        }
        out
    }
}

impl GnnModel {
    /// A freshly initialized model.
    ///
    /// # Panics
    ///
    /// Panics if `config.dim == 0` or `config.layers == 0`.
    pub fn new(config: GnnConfig) -> GnnModel {
        assert!(config.dim > 0, "dimension must be positive");
        assert!(config.layers > 0, "need at least one layer");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let layers = (0..config.layers)
            .map(|_| Layer {
                edge_weights: (0..PortType::COUNT)
                    .map(|_| xavier_uniform(config.dim, config.dim, &mut rng))
                    .collect(),
                gru: GruCell::new(config.dim, config.dim, &mut rng),
            })
            .collect();
        GnnModel { config, layers }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &GnnConfig {
        &self.config
    }

    /// All parameter matrices in a stable order (per layer: the four
    /// edge-type transforms, then the GRU's nine matrices).
    pub fn matrices(&self) -> Vec<&Matrix> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend(l.edge_weights.iter());
            out.extend(l.gru.matrices().iter());
        }
        out
    }

    /// Mutable access to the parameters, same order as
    /// [`GnnModel::matrices`].
    pub fn matrices_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out = Vec::new();
        for l in &mut self.layers {
            let (ew, gru) = (&mut l.edge_weights, &mut l.gru);
            out.extend(ew.iter_mut());
            out.extend(gru.matrices_mut().iter_mut());
        }
        out
    }

    /// Number of parameter matrices.
    pub fn param_count(&self) -> usize {
        self.layers.len() * (PortType::COUNT + GruCell::PARAM_COUNT)
    }

    /// Whether every parameter is finite (no NaN/Inf — e.g. after
    /// deserialization or a training run worth distrusting).
    pub fn is_finite(&self) -> bool {
        self.matrices().iter().all(|m| m.is_finite())
    }

    /// Record a full forward pass on `tape`, returning the final hidden
    /// state node and the parameter leaves (for gradient collection).
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong column count or row count.
    pub fn forward_on_tape(
        &self,
        tape: &mut Tape,
        tensors: &GraphTensors,
        features: &Matrix,
    ) -> (NodeId, ModelLeaves) {
        assert_eq!(
            features.cols(),
            self.config.dim,
            "feature dimension must match the model"
        );
        assert_eq!(
            features.rows(),
            tensors.vertex_count(),
            "one feature row per vertex"
        );
        // Shared handles: every pass over this graph reuses the same
        // operators, so their cached CSR views are built exactly once
        // per graph instead of re-sorted per GRU step.
        let adj: Vec<_> = PortType::ALL
            .iter()
            .map(|&p| tape.sparse(tensors.adjacency_shared(p)))
            .collect();

        let mut h = tape.leaf(features.clone());
        let mut leaves = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let w_ids: Vec<NodeId> = layer
                .edge_weights
                .iter()
                .map(|w| tape.leaf(w.clone()))
                .collect();
            let gru_leaves = layer.gru.leaves(tape);

            // message = Σ_τ A_τ · (H · W_τ)
            let mut message: Option<NodeId> = None;
            for (w, &a) in w_ids.iter().zip(&adj) {
                let hw = tape.matmul(h, *w);
                let m = tape.spmm(a, hw);
                message = Some(match message {
                    Some(acc) => tape.add(acc, m),
                    None => m,
                });
            }
            let message = message.expect("PortType::COUNT > 0");
            h = match self.config.combiner {
                Combiner::Gru => GruCell::forward(tape, &gru_leaves, message, h),
                Combiner::MeanLinear => {
                    // h' = tanh(((h + m)/2) · W + b), reusing the GRU's
                    // candidate weights (unused parameters simply get
                    // zero gradients).
                    let w = gru_leaves.ids()[2]; // Wh
                    let b = gru_leaves.ids()[8]; // bh
                    let sum = tape.add(h, message);
                    let half = tape.scale(sum, 0.5);
                    let lin = tape.matmul(half, w);
                    let biased = tape.add_row(lin, b);
                    tape.tanh(biased)
                }
            };
            leaves.push(LayerLeaves { edge_weights: w_ids, gru: gru_leaves });
        }
        (h, ModelLeaves { layers: leaves })
    }

    /// Inference: the final feature representation `Z = H^{(K)}` for
    /// every vertex (no gradients retained).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (see [`GnnModel::forward_on_tape`]).
    pub fn embed(&self, tensors: &GraphTensors, features: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let (h, _) = self.forward_on_tape(&mut tape, tensors, features);
        tape.value(h).clone()
    }

    /// Batched inference: embed several independent graphs in one
    /// forward pass over their block-diagonal fusion
    /// ([`GraphTensors::block_diagonal`] + [`Matrix::vstack`]), then
    /// split the stacked hidden state back into per-graph matrices.
    ///
    /// Byte-identical to calling [`GnnModel::embed`] per part: every op
    /// in the forward pass (dense matmul, block-diagonal spmm, the GRU's
    /// element-wise gates, row-broadcast bias) computes each output row
    /// from that row's inputs alone, so fusing only changes how rows are
    /// grouped for dispatch. By the same argument a non-finite feature
    /// row poisons only its own part's rows — batch-mates of a poisoned
    /// request still get correct bytes. Both properties are pinned by
    /// this crate's tests and re-asserted end-to-end in
    /// `tests/serve_batch.rs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (see [`GnnModel::forward_on_tape`])
    /// and if `parts` is empty.
    pub fn embed_batch(&self, parts: &[(&GraphTensors, &Matrix)]) -> Vec<Matrix> {
        assert!(!parts.is_empty(), "embed_batch needs at least one part");
        for (tensors, features) in parts {
            assert_eq!(
                features.rows(),
                tensors.vertex_count(),
                "one feature row per vertex in every part"
            );
        }
        let tensor_refs: Vec<&GraphTensors> = parts.iter().map(|(t, _)| *t).collect();
        let feature_refs: Vec<&Matrix> = parts.iter().map(|(_, f)| *f).collect();
        let fused = GraphTensors::block_diagonal(&tensor_refs);
        let stacked = Matrix::vstack(&feature_refs);
        let z = self.embed(&fused, &stacked);
        let sizes: Vec<usize> = tensor_refs.iter().map(|t| t.vertex_count()).collect();
        z.split_rows(&sizes)
    }

    /// Checked [`GnnModel::embed`]: validates shapes and finiteness of
    /// both the features and the model parameters, returning a typed
    /// error instead of panicking or silently propagating NaN.
    ///
    /// # Errors
    ///
    /// See [`EmbedError`](crate::error::EmbedError).
    pub fn try_embed(
        &self,
        tensors: &GraphTensors,
        features: &Matrix,
    ) -> Result<Matrix, crate::error::EmbedError> {
        use crate::error::EmbedError;
        if features.cols() != self.config.dim {
            return Err(EmbedError::FeatureDim {
                expected: self.config.dim,
                found: features.cols(),
            });
        }
        if features.rows() != tensors.vertex_count() {
            return Err(EmbedError::FeatureRows {
                expected: tensors.vertex_count(),
                found: features.rows(),
            });
        }
        if !features.is_finite() {
            return Err(EmbedError::NonFiniteFeatures);
        }
        if !self.is_finite() {
            return Err(EmbedError::NonFiniteParameters);
        }
        Ok(self.embed(tensors, features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_graph::{HetMultigraph, VertexId};

    fn line_graph(n: usize) -> GraphTensors {
        let mut g = HetMultigraph::with_vertices(0..n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(VertexId(i), VertexId(i + 1), PortType::Drain);
            g.add_edge(VertexId(i + 1), VertexId(i), PortType::Source);
        }
        GraphTensors::from_multigraph(&g)
    }

    #[test]
    fn embed_shapes_and_determinism() {
        let cfg = GnnConfig { dim: 6, layers: 2, seed: 3, ..GnnConfig::default() };
        let model = GnnModel::new(cfg.clone());
        let t = line_graph(5);
        let x = Matrix::filled(5, 6, 0.1);
        let z1 = model.embed(&t, &x);
        let z2 = model.embed(&t, &x);
        assert_eq!(z1.shape(), (5, 6));
        assert_eq!(z1, z2);
        // Different seed → different embedding.
        let other = GnnModel::new(GnnConfig { seed: 4, ..cfg });
        assert_ne!(other.embed(&t, &x), z1);
    }

    #[test]
    fn param_count_and_ordering() {
        let model = GnnModel::new(GnnConfig { dim: 4, layers: 3, seed: 1, ..GnnConfig::default() });
        assert_eq!(model.param_count(), 3 * 13);
        assert_eq!(model.matrices().len(), 39);
        let mut m = model.clone();
        assert_eq!(m.matrices_mut().len(), 39);
    }

    #[test]
    fn isomorphic_vertices_get_identical_embeddings() {
        // A 4-cycle with uniform features: every vertex is automorphic
        // to every other, so embeddings must coincide exactly.
        let mut g = HetMultigraph::with_vertices(0..4);
        for i in 0..4 {
            let j = (i + 1) % 4;
            g.add_edge(VertexId(i), VertexId(j), PortType::Drain);
            g.add_edge(VertexId(j), VertexId(i), PortType::Drain);
        }
        let t = GraphTensors::from_multigraph(&g);
        let model = GnnModel::new(GnnConfig { dim: 5, layers: 2, seed: 11, ..GnnConfig::default() });
        let x = Matrix::filled(4, 5, 0.25);
        let z = model.embed(&t, &x);
        for v in 1..4 {
            for c in 0..5 {
                assert!(
                    (z[(0, c)] - z[(v, c)]).abs() < 1e-12,
                    "vertex {v} differs at column {c}"
                );
            }
        }
    }

    #[test]
    fn distinguishes_different_neighborhood_types() {
        // Two vertices with identical features but different incoming
        // edge types must embed differently.
        let mut g = HetMultigraph::with_vertices(0..3);
        g.add_edge(VertexId(0), VertexId(1), PortType::Gate);
        g.add_edge(VertexId(0), VertexId(2), PortType::Drain);
        let t = GraphTensors::from_multigraph(&g);
        let model = GnnModel::new(GnnConfig { dim: 4, layers: 1, seed: 5, ..GnnConfig::default() });
        let x = Matrix::filled(3, 4, 0.5);
        let z = model.embed(&t, &x);
        let row1: Vec<f64> = z.row(1).to_vec();
        let row2: Vec<f64> = z.row(2).to_vec();
        assert!(
            row1.iter().zip(&row2).any(|(a, b)| (a - b).abs() > 1e-9),
            "gate- and drain-fed vertices should differ"
        );
    }

    #[test]
    fn mean_linear_combiner_works_and_differs() {
        let t = line_graph(4);
        let x = Matrix::filled(4, 5, 0.2);
        let gru = GnnModel::new(GnnConfig { dim: 5, layers: 2, seed: 9, combiner: Combiner::Gru });
        let mean = GnnModel::new(GnnConfig {
            dim: 5,
            layers: 2,
            seed: 9,
            combiner: Combiner::MeanLinear,
        });
        let zg = gru.embed(&t, &x);
        let zm = mean.embed(&t, &x);
        assert_eq!(zm.shape(), (4, 5));
        assert!(zm.is_finite());
        assert_ne!(zg, zm, "combiners produce different embeddings");
        // tanh keeps MeanLinear outputs bounded.
        assert!(zm.max_abs() <= 1.0);
    }

    #[test]
    fn mean_linear_gradients_flow() {
        let t = line_graph(3);
        let x = Matrix::filled(3, 4, 0.3);
        let model = GnnModel::new(GnnConfig {
            dim: 4,
            layers: 1,
            seed: 2,
            combiner: Combiner::MeanLinear,
        });
        let mut tape = ancstr_nn::Tape::new();
        let (z, leaves) = model.forward_on_tape(&mut tape, &t, &x);
        let loss = tape.sum(z);
        let grads = tape.backward(loss);
        // Wh (index 2 within the layer's GRU block, offset by the 4 edge
        // weights) and bh receive gradients; the unused gates do not.
        let ids = leaves.ids();
        assert!(grads.grad(ids[4 + 2]).is_some(), "Wh gets a gradient");
        assert!(grads.grad(ids[4 + 8]).is_some(), "bh gets a gradient");
        assert!(grads.grad(ids[4]).is_none(), "Wz is unused in MeanLinear");
    }

    #[test]
    fn embed_batch_is_bit_identical_to_solo_embeds() {
        let model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 21, ..GnnConfig::default() });
        let graphs = [line_graph(5), line_graph(1), line_graph(9)];
        let feats: Vec<Matrix> = graphs
            .iter()
            .enumerate()
            .map(|(i, t)| {
                Matrix::from_fn(t.vertex_count(), 6, |r, c| {
                    ((i + 1) * (r + 2) + c) as f64 * 0.017 - 0.3
                })
            })
            .collect();
        let parts: Vec<(&GraphTensors, &Matrix)> = graphs.iter().zip(&feats).collect();
        let batched = model.embed_batch(&parts);
        assert_eq!(batched.len(), 3);
        for ((t, f), got) in parts.iter().zip(&batched) {
            let solo = model.embed(t, f);
            assert_eq!(got.shape(), solo.shape());
            for (a, b) in got.as_slice().iter().zip(solo.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batched embed diverged");
            }
        }
    }

    #[test]
    fn embed_batch_contains_poison_to_its_own_part() {
        let model = GnnModel::new(GnnConfig { dim: 4, layers: 2, seed: 8, ..GnnConfig::default() });
        let clean_t = line_graph(4);
        let clean_f = Matrix::filled(4, 4, 0.2);
        let poison_t = line_graph(3);
        let mut poison_f = Matrix::filled(3, 4, 0.1);
        poison_f[(1, 2)] = f64::NAN;
        let out = model.embed_batch(&[(&clean_t, &clean_f), (&poison_t, &poison_f)]);
        let solo = model.embed(&clean_t, &clean_f);
        for (a, b) in out[0].as_slice().iter().zip(solo.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "poison leaked across the batch");
        }
        assert!(!out[1].is_finite(), "the poisoned part keeps its NaN");
    }

    #[test]
    fn try_embed_reports_typed_errors() {
        use crate::error::EmbedError;
        let model = GnnModel::new(GnnConfig { dim: 4, layers: 1, seed: 5, ..GnnConfig::default() });
        let t = line_graph(3);
        // Wrong column count.
        let err = model.try_embed(&t, &Matrix::zeros(3, 7)).unwrap_err();
        assert_eq!(err, EmbedError::FeatureDim { expected: 4, found: 7 });
        // Wrong row count.
        let err = model.try_embed(&t, &Matrix::zeros(2, 4)).unwrap_err();
        assert_eq!(err, EmbedError::FeatureRows { expected: 3, found: 2 });
        // Non-finite features.
        let mut x = Matrix::zeros(3, 4);
        x[(1, 2)] = f64::NAN;
        assert_eq!(model.try_embed(&t, &x).unwrap_err(), EmbedError::NonFiniteFeatures);
        // Non-finite parameters.
        let mut poisoned = model.clone();
        poisoned.matrices_mut()[3][(0, 0)] = f64::INFINITY;
        assert!(!poisoned.is_finite());
        assert_eq!(
            poisoned.try_embed(&t, &Matrix::zeros(3, 4)).unwrap_err(),
            EmbedError::NonFiniteParameters
        );
        // The happy path agrees with `embed` exactly.
        let x = Matrix::filled(3, 4, 0.2);
        assert_eq!(model.try_embed(&t, &x).unwrap(), model.embed(&t, &x));
    }

    #[test]
    #[should_panic(expected = "feature dimension")]
    fn wrong_feature_dim_panics() {
        let model = GnnModel::new(GnnConfig { dim: 4, layers: 1, seed: 5, ..GnnConfig::default() });
        let t = line_graph(3);
        let x = Matrix::zeros(3, 7);
        let _ = model.embed(&t, &x);
    }

    #[test]
    fn k_layers_reach_k_hops() {
        // In a directed line 0→1→2→3 (single edge type), information from
        // vertex 0 reaches vertex K after K layers, not before.
        let n = 4;
        let mut g = HetMultigraph::with_vertices(0..n);
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1), PortType::Drain);
        }
        let t = GraphTensors::from_multigraph(&g);
        let base = Matrix::zeros(n, 3);
        let mut perturbed = base.clone();
        perturbed[(0, 0)] = 1.0;

        for k in 1..=3 {
            let model = GnnModel::new(GnnConfig { dim: 3, layers: k, seed: 2, ..GnnConfig::default() });
            let zb = model.embed(&t, &base);
            let zp = model.embed(&t, &perturbed);
            for v in 0..n {
                let changed = (0..3).any(|c| (zb[(v, c)] - zp[(v, c)]).abs() > 1e-12);
                assert_eq!(
                    changed,
                    v <= k,
                    "layers={k} vertex={v}: influence should reach exactly {k} hops"
                );
            }
        }
    }
}
