//! Unsupervised training loop: minimize `L_tot = Σ_v L(z_v)` (Eq. 2)
//! over a multi-circuit dataset with Adam.
//!
//! Two entry points share one epoch engine:
//!
//! * [`train`] — the paper-faithful loop. Panics on contract violations
//!   and applies no numerical guardrails; its arithmetic is bit-for-bit
//!   the historical behaviour.
//! * [`try_train`] — the guarded loop. Validates the dataset up front,
//!   scans every epoch's loss and gradients for NaN/Inf, clips
//!   oversized gradients, detects loss divergence, and recovers by
//!   restoring the best-loss checkpoint under a deterministically
//!   derived replacement seed, up to a bounded retry budget. On a clean
//!   run the guardrails never fire and the loss trajectory equals
//!   [`train`]'s exactly.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ancstr_nn::{Adam, Matrix};

use crate::error::{AnomalyCause, TrainError};
use crate::loss::{context_loss, ContextBatch, LossConfig};
use crate::model::GnnModel;
use crate::tensors::GraphTensors;

/// One training graph: its tensors and initial vertex features.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainGraph {
    /// Adjacency operators and neighbour lists.
    pub tensors: GraphTensors,
    /// Initial `n × D` feature matrix (Table II features).
    pub features: Matrix,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Eq. 2 loss configuration.
    pub loss: LossConfig,
    /// Seed for negative sampling and graph-order shuffling.
    pub seed: u64,
    /// Redraw negative samples every epoch (`true`, the stochastic
    /// regime) or fix them once (`false`, useful for convergence tests).
    pub resample_negatives: bool,
    /// GraphSAGE-style neighbour sampling: cap each vertex's incoming
    /// message edges at this many per pass, redrawn every epoch. `None`
    /// aggregates every neighbour (the deterministic full-sum reading of
    /// Eq. 1, and the default).
    pub neighbor_samples: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 60,
            learning_rate: 0.01,
            loss: LossConfig::default(),
            seed: 0x5EED,
            resample_negatives: true,
            neighbor_samples: None,
        }
    }
}

/// Loss trajectory returned by [`train`]: the mean per-term loss of each
/// epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// One entry per epoch: dataset-averaged loss.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if training ran for zero epochs.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Numerical-guardrail settings for [`try_train`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Clip the per-step global gradient norm to this value (`None`
    /// disables clipping). Clipping only rescales when the norm
    /// *exceeds* the bound, so healthy runs are untouched.
    pub max_grad_norm: Option<f64>,
    /// An epoch whose loss exceeds `divergence_factor × best_loss` is
    /// declared diverged (after [`HealthConfig::grace_epochs`]).
    pub divergence_factor: f64,
    /// Number of initial epochs exempt from the divergence check (early
    /// losses legitimately bounce before Adam's moments warm up).
    pub grace_epochs: usize,
    /// How many checkpoint-restore + re-seed recoveries to attempt
    /// before giving up with [`TrainError::RetriesExhausted`].
    pub max_retries: usize,
    /// Fault-injection hook for the robustness harness: poison the
    /// gradient with a NaN at this epoch — on the first attempt only, so
    /// the fault is transient and recovery must succeed.
    #[doc(hidden)]
    pub inject_nan_grad_at: Option<usize>,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            max_grad_norm: Some(1e3),
            divergence_factor: 50.0,
            grace_epochs: 3,
            max_retries: 3,
            inject_nan_grad_at: None,
        }
    }
}

/// One recovery event recorded by the guarded loop.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Epoch (0-based) at which the anomaly was detected.
    pub epoch: usize,
    /// Attempt number that hit the anomaly (0 = the original run).
    pub attempt: usize,
    /// What tripped the monitor.
    pub cause: AnomalyCause,
    /// The derived seed the retry restarted the RNG with.
    pub reseeded_to: u64,
}

/// What the guardrails did during a [`try_train`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Checkpoint-restore recoveries, in order.
    pub retries: Vec<HealthEvent>,
    /// Number of optimizer steps whose gradient was norm-clipped.
    pub clipped_steps: usize,
}

impl HealthReport {
    /// `true` when no guardrail ever fired.
    pub fn clean(&self) -> bool {
        self.retries.is_empty() && self.clipped_steps == 0
    }
}

/// SplitMix64-style derivation of the retry seed: deterministic in the
/// base seed and attempt number, decorrelated from both.
fn derive_seed(base: u64, attempt: u64) -> u64 {
    let mut z = base
        .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-epoch guardrail state threaded through [`epoch_pass`].
struct EpochGuard<'a> {
    health: &'a HealthConfig,
    epoch: usize,
    attempt: usize,
    clipped_steps: &'a mut usize,
}

/// One full pass over the dataset. With `guard: None` this is exactly
/// the historical [`train`] epoch — same RNG call sequence, same
/// arithmetic. With a guard it additionally scans gradients (abort on
/// NaN/Inf) and clips their global norm.
#[allow(clippy::too_many_arguments)]
fn epoch_pass(
    model: &mut GnnModel,
    dataset: &[TrainGraph],
    config: &TrainConfig,
    rng: &mut StdRng,
    opt: &mut Adam,
    order: &mut [usize],
    fixed_batches: &[ContextBatch],
    mut guard: Option<EpochGuard<'_>>,
) -> Result<f64, AnomalyCause> {
    order.shuffle(rng);
    let mut total = 0.0;
    let mut counted = 0usize;
    for &gi in order.iter() {
        let graph = &dataset[gi];
        let batch = if config.resample_negatives {
            ContextBatch::sample(&graph.tensors, &config.loss, rng)
        } else {
            fixed_batches[gi].clone()
        };
        if batch.is_empty() {
            continue;
        }
        let sampled;
        let tensors = match config.neighbor_samples {
            Some(k) => {
                sampled = graph.tensors.sampled(k, rng);
                &sampled
            }
            None => &graph.tensors,
        };
        let mut tape = ancstr_nn::Tape::new();
        let (z, leaves) = model.forward_on_tape(&mut tape, tensors, &graph.features);
        let loss = context_loss(&mut tape, z, &batch, &config.loss);
        let loss_value = tape.value(loss)[(0, 0)];
        let mut grads = tape.backward(loss);

        let ids = leaves.ids();
        let mut grad_mats: Vec<Matrix> = ids
            .iter()
            .map(|&id| {
                grads.take(id).unwrap_or_else(|| {
                    // A parameter can be grad-free on degenerate
                    // graphs (e.g. no edges of its type).
                    let (r, c) = tape.value(id).shape();
                    Matrix::zeros(r, c)
                })
            })
            .collect();

        if let Some(g) = guard.as_mut() {
            if g.health.inject_nan_grad_at == Some(g.epoch) && g.attempt == 0 {
                if let Some(first) = grad_mats.first_mut() {
                    if first.rows() > 0 && first.cols() > 0 {
                        first[(0, 0)] = f64::NAN;
                    }
                }
            }
            let norm_sq: f64 = grad_mats
                .iter()
                .map(|m| {
                    let n = m.frobenius_norm();
                    n * n
                })
                .sum();
            if !norm_sq.is_finite() {
                return Err(AnomalyCause::NonFiniteGradient);
            }
            if let Some(max) = g.health.max_grad_norm {
                let norm = norm_sq.sqrt();
                if norm > max {
                    let scale = max / norm;
                    for m in &mut grad_mats {
                        *m = m.scale(scale);
                    }
                    *g.clipped_steps += 1;
                }
            }
        }

        let mut params = model.matrices_mut();
        opt.step(&mut params, &grad_mats);

        total += loss_value;
        counted += 1;
    }
    Ok(if counted > 0 { total / counted as f64 } else { 0.0 })
}

/// Train `model` on `dataset` in place, returning the loss trajectory.
///
/// Graphs with no loss terms (single-vertex circuits) are skipped.
/// For the guarded, recovering variant see [`try_train`].
///
/// # Panics
///
/// Panics if `dataset` is empty or a feature matrix disagrees with its
/// graph or the model dimension.
pub fn train(model: &mut GnnModel, dataset: &[TrainGraph], config: &TrainConfig) -> TrainReport {
    assert!(!dataset.is_empty(), "training needs at least one graph");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.learning_rate);

    // Pre-sample fixed batches when not resampling.
    let fixed_batches: Vec<ContextBatch> = dataset
        .iter()
        .map(|g| ContextBatch::sample(&g.tensors, &config.loss, &mut rng))
        .collect();

    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut order: Vec<usize> = (0..dataset.len()).collect();

    for _epoch in 0..config.epochs {
        let loss = epoch_pass(
            model,
            dataset,
            config,
            &mut rng,
            &mut opt,
            &mut order,
            &fixed_batches,
            None,
        )
        .expect("unguarded epochs never abort");
        epoch_losses.push(loss);
    }
    TrainReport { epoch_losses }
}

/// Snapshot of the model's parameter matrices (the checkpoint payload).
fn snapshot(model: &GnnModel) -> Vec<Matrix> {
    model.matrices().into_iter().cloned().collect()
}

fn restore(model: &mut GnnModel, saved: &[Matrix]) {
    for (slot, m) in model.matrices_mut().into_iter().zip(saved) {
        *slot = m.clone();
    }
}

/// Guarded training: [`train`] plus NaN/Inf scans, gradient-norm
/// clipping, divergence detection, and bounded checkpoint-restore
/// recovery under deterministically derived seeds.
///
/// On an anomaly the partially-updated parameters are discarded, the
/// best-loss checkpoint is restored, and training resumes at the failed
/// epoch with a fresh RNG seeded by [`derive_seed`]`(config.seed,
/// attempt)`. A clean run returns the exact [`train`] trajectory and an
/// empty [`HealthReport`].
///
/// # Errors
///
/// * [`TrainError::EmptyDataset`] / [`TrainError::FeatureShape`] /
///   [`TrainError::NonFiniteFeatures`] /
///   [`TrainError::NonFiniteParameters`] on an invalid input;
/// * [`TrainError::RetriesExhausted`] when anomalies persist past
///   `health.max_retries` recoveries.
pub fn try_train(
    model: &mut GnnModel,
    dataset: &[TrainGraph],
    config: &TrainConfig,
    health: &HealthConfig,
) -> Result<(TrainReport, HealthReport), TrainError> {
    if dataset.is_empty() {
        return Err(TrainError::EmptyDataset);
    }
    let dim = model.config().dim;
    for (graph, g) in dataset.iter().enumerate() {
        let expected = (g.tensors.vertex_count(), dim);
        let found = g.features.shape();
        if found != expected {
            return Err(TrainError::FeatureShape { graph, expected, found });
        }
        if !g.features.is_finite() {
            return Err(TrainError::NonFiniteFeatures { graph });
        }
    }
    if !model.is_finite() {
        return Err(TrainError::NonFiniteParameters);
    }

    let mut report = HealthReport::default();
    let mut epoch_losses: Vec<f64> = Vec::with_capacity(config.epochs);
    let mut best_loss = f64::INFINITY;
    let mut best_params = snapshot(model);
    let mut attempt = 0usize;
    let mut seed = config.seed;

    'attempts: loop {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(config.learning_rate);
        let fixed_batches: Vec<ContextBatch> = dataset
            .iter()
            .map(|g| ContextBatch::sample(&g.tensors, &config.loss, &mut rng))
            .collect();
        let mut order: Vec<usize> = (0..dataset.len()).collect();

        while epoch_losses.len() < config.epochs {
            let epoch = epoch_losses.len();
            let guard = EpochGuard {
                health,
                epoch,
                attempt,
                clipped_steps: &mut report.clipped_steps,
            };
            let outcome = epoch_pass(
                model,
                dataset,
                config,
                &mut rng,
                &mut opt,
                &mut order,
                &fixed_batches,
                Some(guard),
            );
            let anomaly = match outcome {
                Err(cause) => Some(cause),
                Ok(loss) if !loss.is_finite() => Some(AnomalyCause::NonFiniteLoss(loss)),
                Ok(loss)
                    if epoch >= health.grace_epochs
                        && best_loss.is_finite()
                        && loss > health.divergence_factor * best_loss.abs().max(1e-12) =>
                {
                    Some(AnomalyCause::Diverged { loss, best: best_loss })
                }
                Ok(loss) => {
                    epoch_losses.push(loss);
                    if loss < best_loss {
                        best_loss = loss;
                        best_params = snapshot(model);
                    }
                    None
                }
            };
            if let Some(cause) = anomaly {
                if attempt >= health.max_retries {
                    return Err(TrainError::RetriesExhausted {
                        epoch,
                        retries: attempt,
                        cause,
                    });
                }
                attempt += 1;
                seed = derive_seed(config.seed, attempt as u64);
                restore(model, &best_params);
                report.retries.push(HealthEvent {
                    epoch,
                    attempt: attempt - 1,
                    cause,
                    reseeded_to: seed,
                });
                continue 'attempts;
            }
        }
        break;
    }
    Ok((TrainReport { epoch_losses }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GnnConfig;
    use ancstr_graph::{HetMultigraph, VertexId};
    use ancstr_netlist::PortType;

    /// Two mirrored "differential" clusters joined by a tail vertex.
    fn sample_graph() -> TrainGraph {
        let mut g = HetMultigraph::with_vertices(0..5);
        // 0 and 1 form one pair, 2 and 3 the other, 4 is the tail.
        for &(a, b, p) in &[
            (0usize, 1usize, PortType::Drain),
            (2, 3, PortType::Drain),
            (0, 4, PortType::Source),
            (1, 4, PortType::Source),
            (2, 4, PortType::Gate),
            (3, 4, PortType::Gate),
        ] {
            g.add_edge(VertexId(a), VertexId(b), p);
            g.add_edge(VertexId(b), VertexId(a), p);
        }
        let tensors = GraphTensors::from_multigraph(&g);
        let features = Matrix::from_fn(5, 6, |r, c| {
            // Symmetric features for the mirrored vertices.
            let class = match r {
                0 | 1 => 0,
                2 | 3 => 1,
                _ => 2,
            };
            if c == class {
                1.0
            } else {
                0.05
            }
        });
        TrainGraph { tensors, features }
    }

    #[test]
    fn loss_decreases_with_fixed_batches() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 21, ..GnnConfig::default() });
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig {
            epochs: 40,
            learning_rate: 0.02,
            resample_negatives: false,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &dataset, &cfg);
        assert_eq!(report.epoch_losses.len(), 40);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.9,
            "loss should drop ≥10%: first {first}, last {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig { epochs: 5, ..TrainConfig::default() };
        let mut m1 = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let r1 = train(&mut m1, &dataset, &cfg);
        let mut m2 = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let r2 = train(&mut m2, &dataset, &cfg);
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn trained_embeddings_align_symmetric_pairs() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 33, ..GnnConfig::default() });
        let graph = sample_graph();
        let cfg = TrainConfig {
            epochs: 80,
            learning_rate: 0.02,
            ..TrainConfig::default()
        };
        train(&mut model, std::slice::from_ref(&graph), &cfg);
        let z = model.embed(&graph.tensors, &graph.features);
        let cos = |a: usize, b: usize| {
            ancstr_nn::cosine_similarity(z.row(a), z.row(b))
        };
        // Mirrored vertices are graph-automorphic with identical
        // features, so they stay exactly aligned...
        assert!(cos(0, 1) > 0.999, "pair (0,1): {}", cos(0, 1));
        assert!(cos(2, 3) > 0.999, "pair (2,3): {}", cos(2, 3));
        // ...while differently-typed clusters separate.
        assert!(cos(0, 2) < cos(0, 1), "cross-pair should be less similar");
    }

    #[test]
    #[should_panic(expected = "at least one graph")]
    fn empty_dataset_panics() {
        let mut model = GnnModel::new(GnnConfig::default());
        let _ = train(&mut model, &[], &TrainConfig::default());
    }

    #[test]
    fn multi_graph_training_runs() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 1, ..GnnConfig::default() });
        let dataset = vec![sample_graph(), sample_graph()];
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let report = train(&mut model, &dataset, &cfg);
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn guarded_clean_run_matches_unguarded_exactly() {
        let dataset = vec![sample_graph(), sample_graph()];
        let cfg = TrainConfig { epochs: 8, ..TrainConfig::default() };
        let gc = GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() };
        let mut plain = GnnModel::new(gc.clone());
        let plain_report = train(&mut plain, &dataset, &cfg);
        let mut guarded = GnnModel::new(gc);
        let (report, health) =
            try_train(&mut guarded, &dataset, &cfg, &HealthConfig::default()).unwrap();
        // The guardrails are read-only on a healthy run: identical loss
        // trajectory, identical final weights, nothing fired.
        assert_eq!(report, plain_report);
        assert_eq!(guarded, plain);
        assert!(health.clean(), "{health:?}");
    }

    #[test]
    fn injected_nan_gradient_recovers_via_checkpoint_restore() {
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig { epochs: 10, ..TrainConfig::default() };
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let health = HealthConfig { inject_nan_grad_at: Some(4), ..HealthConfig::default() };
        let (report, hr) = try_train(&mut model, &dataset, &cfg, &health)
            .expect("transient fault must be recovered");
        assert_eq!(report.epoch_losses.len(), 10);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(model.is_finite(), "restored weights stay finite");
        assert_eq!(hr.retries.len(), 1, "{hr:?}");
        let event = &hr.retries[0];
        assert_eq!(event.epoch, 4);
        assert_eq!(event.cause, AnomalyCause::NonFiniteGradient);
        assert_ne!(event.reseeded_to, cfg.seed, "retry derives a fresh seed");
    }

    #[test]
    fn recovery_is_deterministic() {
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig { epochs: 6, ..TrainConfig::default() };
        let health = HealthConfig { inject_nan_grad_at: Some(2), ..HealthConfig::default() };
        let run = || {
            let mut m = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 5, ..GnnConfig::default() });
            let out = try_train(&mut m, &dataset, &cfg, &health).unwrap();
            (m, out)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unrecoverable_divergence_exhausts_retry_budget() {
        let dataset = vec![sample_graph()];
        // An absurd learning rate reliably blows the loss up on every
        // attempt (the saturating GRU caps it around ~3.3 rather than
        // NaN, so a tight divergence factor is what detects it), and
        // recovery cannot succeed because the cause is the config.
        let cfg = TrainConfig { epochs: 30, learning_rate: 1e12, ..TrainConfig::default() };
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let health = HealthConfig {
            max_retries: 2,
            max_grad_norm: None,
            divergence_factor: 2.0,
            grace_epochs: 0,
            ..HealthConfig::default()
        };
        let err = try_train(&mut model, &dataset, &cfg, &health).unwrap_err();
        match err {
            TrainError::RetriesExhausted { retries, .. } => assert_eq!(retries, 2),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn try_train_validates_inputs() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 1, ..GnnConfig::default() });
        let health = HealthConfig::default();
        assert_eq!(
            try_train(&mut model, &[], &TrainConfig::default(), &health).unwrap_err(),
            TrainError::EmptyDataset
        );

        let mut bad_shape = sample_graph();
        bad_shape.features = Matrix::zeros(5, 4);
        let err = try_train(&mut model, &[bad_shape], &TrainConfig::default(), &health)
            .unwrap_err();
        assert!(matches!(err, TrainError::FeatureShape { graph: 0, .. }), "{err:?}");

        let mut bad_value = sample_graph();
        bad_value.features[(0, 0)] = f64::NAN;
        let err = try_train(&mut model, &[bad_value], &TrainConfig::default(), &health)
            .unwrap_err();
        assert_eq!(err, TrainError::NonFiniteFeatures { graph: 0 });

        model.matrices_mut()[0][(0, 0)] = f64::INFINITY;
        let err = try_train(&mut model, &[sample_graph()], &TrainConfig::default(), &health)
            .unwrap_err();
        assert_eq!(err, TrainError::NonFiniteParameters);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..8).map(|a| derive_seed(0x5EED, a)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
            assert_ne!(seeds[i], 0x5EED);
        }
    }
}
