//! Unsupervised training loop: minimize `L_tot = Σ_v L(z_v)` (Eq. 2)
//! over a multi-circuit dataset with Adam.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ancstr_nn::{Adam, Matrix};

use crate::loss::{context_loss, ContextBatch, LossConfig};
use crate::model::GnnModel;
use crate::tensors::GraphTensors;

/// One training graph: its tensors and initial vertex features.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainGraph {
    /// Adjacency operators and neighbour lists.
    pub tensors: GraphTensors,
    /// Initial `n × D` feature matrix (Table II features).
    pub features: Matrix,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Eq. 2 loss configuration.
    pub loss: LossConfig,
    /// Seed for negative sampling and graph-order shuffling.
    pub seed: u64,
    /// Redraw negative samples every epoch (`true`, the stochastic
    /// regime) or fix them once (`false`, useful for convergence tests).
    pub resample_negatives: bool,
    /// GraphSAGE-style neighbour sampling: cap each vertex's incoming
    /// message edges at this many per pass, redrawn every epoch. `None`
    /// aggregates every neighbour (the deterministic full-sum reading of
    /// Eq. 1, and the default).
    pub neighbor_samples: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 60,
            learning_rate: 0.01,
            loss: LossConfig::default(),
            seed: 0x5EED,
            resample_negatives: true,
            neighbor_samples: None,
        }
    }
}

/// Loss trajectory returned by [`train`]: the mean per-term loss of each
/// epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// One entry per epoch: dataset-averaged loss.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if training ran for zero epochs.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Train `model` on `dataset` in place, returning the loss trajectory.
///
/// Graphs with no loss terms (single-vertex circuits) are skipped.
///
/// # Panics
///
/// Panics if `dataset` is empty or a feature matrix disagrees with its
/// graph or the model dimension.
pub fn train(model: &mut GnnModel, dataset: &[TrainGraph], config: &TrainConfig) -> TrainReport {
    assert!(!dataset.is_empty(), "training needs at least one graph");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.learning_rate);

    // Pre-sample fixed batches when not resampling.
    let fixed_batches: Vec<ContextBatch> = dataset
        .iter()
        .map(|g| ContextBatch::sample(&g.tensors, &config.loss, &mut rng))
        .collect();

    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut order: Vec<usize> = (0..dataset.len()).collect();

    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0;
        let mut counted = 0usize;
        for &gi in &order {
            let graph = &dataset[gi];
            let batch = if config.resample_negatives {
                ContextBatch::sample(&graph.tensors, &config.loss, &mut rng)
            } else {
                fixed_batches[gi].clone()
            };
            if batch.is_empty() {
                continue;
            }
            let sampled;
            let tensors = match config.neighbor_samples {
                Some(k) => {
                    sampled = graph.tensors.sampled(k, &mut rng);
                    &sampled
                }
                None => &graph.tensors,
            };
            let mut tape = ancstr_nn::Tape::new();
            let (z, leaves) = model.forward_on_tape(&mut tape, tensors, &graph.features);
            let loss = context_loss(&mut tape, z, &batch, &config.loss);
            let loss_value = tape.value(loss)[(0, 0)];
            let mut grads = tape.backward(loss);

            let ids = leaves.ids();
            let grad_mats: Vec<Matrix> = ids
                .iter()
                .map(|&id| {
                    grads.take(id).unwrap_or_else(|| {
                        // A parameter can be grad-free on degenerate
                        // graphs (e.g. no edges of its type).
                        let (r, c) = tape.value(id).shape();
                        Matrix::zeros(r, c)
                    })
                })
                .collect();
            let mut params = model.matrices_mut();
            opt.step(&mut params, &grad_mats);

            total += loss_value;
            counted += 1;
        }
        epoch_losses.push(if counted > 0 { total / counted as f64 } else { 0.0 });
    }
    TrainReport { epoch_losses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GnnConfig;
    use ancstr_graph::{HetMultigraph, VertexId};
    use ancstr_netlist::PortType;

    /// Two mirrored "differential" clusters joined by a tail vertex.
    fn sample_graph() -> TrainGraph {
        let mut g = HetMultigraph::with_vertices(0..5);
        // 0 and 1 form one pair, 2 and 3 the other, 4 is the tail.
        for &(a, b, p) in &[
            (0usize, 1usize, PortType::Drain),
            (2, 3, PortType::Drain),
            (0, 4, PortType::Source),
            (1, 4, PortType::Source),
            (2, 4, PortType::Gate),
            (3, 4, PortType::Gate),
        ] {
            g.add_edge(VertexId(a), VertexId(b), p);
            g.add_edge(VertexId(b), VertexId(a), p);
        }
        let tensors = GraphTensors::from_multigraph(&g);
        let features = Matrix::from_fn(5, 6, |r, c| {
            // Symmetric features for the mirrored vertices.
            let class = match r {
                0 | 1 => 0,
                2 | 3 => 1,
                _ => 2,
            };
            if c == class {
                1.0
            } else {
                0.05
            }
        });
        TrainGraph { tensors, features }
    }

    #[test]
    fn loss_decreases_with_fixed_batches() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 21, ..GnnConfig::default() });
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig {
            epochs: 40,
            learning_rate: 0.02,
            resample_negatives: false,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &dataset, &cfg);
        assert_eq!(report.epoch_losses.len(), 40);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.9,
            "loss should drop ≥10%: first {first}, last {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig { epochs: 5, ..TrainConfig::default() };
        let mut m1 = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let r1 = train(&mut m1, &dataset, &cfg);
        let mut m2 = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let r2 = train(&mut m2, &dataset, &cfg);
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn trained_embeddings_align_symmetric_pairs() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 33, ..GnnConfig::default() });
        let graph = sample_graph();
        let cfg = TrainConfig {
            epochs: 80,
            learning_rate: 0.02,
            ..TrainConfig::default()
        };
        train(&mut model, std::slice::from_ref(&graph), &cfg);
        let z = model.embed(&graph.tensors, &graph.features);
        let cos = |a: usize, b: usize| {
            ancstr_nn::cosine_similarity(z.row(a), z.row(b))
        };
        // Mirrored vertices are graph-automorphic with identical
        // features, so they stay exactly aligned...
        assert!(cos(0, 1) > 0.999, "pair (0,1): {}", cos(0, 1));
        assert!(cos(2, 3) > 0.999, "pair (2,3): {}", cos(2, 3));
        // ...while differently-typed clusters separate.
        assert!(cos(0, 2) < cos(0, 1), "cross-pair should be less similar");
    }

    #[test]
    #[should_panic(expected = "at least one graph")]
    fn empty_dataset_panics() {
        let mut model = GnnModel::new(GnnConfig::default());
        let _ = train(&mut model, &[], &TrainConfig::default());
    }

    #[test]
    fn multi_graph_training_runs() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 1, ..GnnConfig::default() });
        let dataset = vec![sample_graph(), sample_graph()];
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let report = train(&mut model, &dataset, &cfg);
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }
}
