//! Unsupervised training loop: minimize `L_tot = Σ_v L(z_v)` (Eq. 2)
//! over a multi-circuit dataset with Adam.
//!
//! Two entry points share one epoch engine:
//!
//! * [`train`] — the paper-faithful loop. Panics on contract violations
//!   and applies no numerical guardrails; its arithmetic is bit-for-bit
//!   the historical behaviour.
//! * [`try_train`] — the guarded loop. Validates the dataset up front,
//!   scans every epoch's loss and gradients for NaN/Inf, clips
//!   oversized gradients, detects loss divergence, and recovers by
//!   restoring the best-loss checkpoint under a deterministically
//!   derived replacement seed, up to a bounded retry budget. On a clean
//!   run the guardrails never fire and the loss trajectory equals
//!   [`train`]'s exactly.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ancstr_nn::{Adam, Matrix};

use crate::error::{AnomalyCause, TrainError};
use crate::loss::{context_loss, ContextBatch, LossConfig};
use crate::model::{GnnConfig, GnnModel};
use crate::tensors::GraphTensors;

/// One training graph: its tensors and initial vertex features.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainGraph {
    /// Adjacency operators and neighbour lists.
    pub tensors: GraphTensors,
    /// Initial `n × D` feature matrix (Table II features).
    pub features: Matrix,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Eq. 2 loss configuration.
    pub loss: LossConfig,
    /// Seed for negative sampling and graph-order shuffling.
    pub seed: u64,
    /// Redraw negative samples every epoch (`true`, the stochastic
    /// regime) or fix them once (`false`, useful for convergence tests).
    pub resample_negatives: bool,
    /// GraphSAGE-style neighbour sampling: cap each vertex's incoming
    /// message edges at this many per pass, redrawn every epoch. `None`
    /// aggregates every neighbour (the deterministic full-sum reading of
    /// Eq. 1, and the default).
    pub neighbor_samples: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 60,
            learning_rate: 0.01,
            loss: LossConfig::default(),
            seed: 0x5EED,
            resample_negatives: true,
            neighbor_samples: None,
        }
    }
}

/// Loss trajectory returned by [`train`]: the mean per-term loss of each
/// epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// One entry per epoch: dataset-averaged loss.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if training ran for zero epochs.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Numerical-guardrail settings for [`try_train`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Clip the per-step global gradient norm to this value (`None`
    /// disables clipping). Clipping only rescales when the norm
    /// *exceeds* the bound, so healthy runs are untouched.
    pub max_grad_norm: Option<f64>,
    /// An epoch whose loss exceeds `divergence_factor × best_loss` is
    /// declared diverged (after [`HealthConfig::grace_epochs`]).
    pub divergence_factor: f64,
    /// Number of initial epochs exempt from the divergence check (early
    /// losses legitimately bounce before Adam's moments warm up).
    pub grace_epochs: usize,
    /// How many checkpoint-restore + re-seed recoveries to attempt
    /// before giving up with [`TrainError::RetriesExhausted`].
    pub max_retries: usize,
    /// Fault-injection hook for the robustness harness: poison the
    /// gradient with a NaN at this epoch — on the first attempt only, so
    /// the fault is transient and recovery must succeed.
    #[doc(hidden)]
    pub inject_nan_grad_at: Option<usize>,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            max_grad_norm: Some(1e3),
            divergence_factor: 50.0,
            grace_epochs: 3,
            max_retries: 3,
            inject_nan_grad_at: None,
        }
    }
}

/// One recovery event recorded by the guarded loop.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Epoch (0-based) at which the anomaly was detected.
    pub epoch: usize,
    /// Attempt number that hit the anomaly (0 = the original run).
    pub attempt: usize,
    /// What tripped the monitor.
    pub cause: AnomalyCause,
    /// The derived seed the retry restarted the RNG with.
    pub reseeded_to: u64,
}

/// What the guardrails did during a [`try_train`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Checkpoint-restore recoveries, in order.
    pub retries: Vec<HealthEvent>,
    /// Number of optimizer steps whose gradient was norm-clipped.
    pub clipped_steps: usize,
}

impl HealthReport {
    /// `true` when no guardrail ever fired.
    pub fn clean(&self) -> bool {
        self.retries.is_empty() && self.clipped_steps == 0
    }
}

/// SplitMix64-style derivation of the retry seed: deterministic in the
/// base seed and attempt number, decorrelated from both.
fn derive_seed(base: u64, attempt: u64) -> u64 {
    let mut z = base
        .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-epoch training telemetry passed to [`TrainerHooks::on_epoch`].
///
/// Gradient norms are the *global* (all-parameter) L2 norms the health
/// monitor already computes; `pre`/`post` bracket the clipping step.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochTelemetry {
    /// Epoch index (0-based) this snapshot describes.
    pub epoch: usize,
    /// Recovery attempt the epoch ran under (0 = original run).
    pub attempt: usize,
    /// Mean context loss over the epoch.
    pub loss: f64,
    /// Optimizer steps taken this epoch.
    pub steps: usize,
    /// Largest pre-clip gradient norm seen this epoch.
    pub grad_norm_max: f64,
    /// Mean pre-clip gradient norm over the epoch's steps.
    pub grad_norm_mean: f64,
    /// Largest post-clip gradient norm this epoch.
    pub grad_norm_post_clip_max: f64,
    /// Steps whose gradient was norm-clipped this epoch.
    pub clipped_steps: usize,
}

/// Read-only training observer for telemetry.
///
/// Every method defaults to a no-op and nothing an observer does can
/// feed back into training: [`try_train`] / [`try_train_resumable`]
/// follow the exact same RNG call sequence and arithmetic whether or
/// not an observer is attached (proven by a unit test below).
pub trait TrainerHooks {
    /// Called after every successfully completed epoch.
    fn on_epoch(&mut self, telemetry: &EpochTelemetry) {
        let _ = telemetry;
    }

    /// Called when the health monitor recovers from an anomaly by
    /// restoring the best checkpoint and re-seeding.
    fn on_retry(&mut self, event: &HealthEvent) {
        let _ = event;
    }

    /// Called after each checkpoint write with the completed-epoch
    /// count and the sink's write latency.
    fn on_checkpoint(&mut self, completed_epochs: usize, write_time: std::time::Duration) {
        let _ = (completed_epochs, write_time);
    }

    /// Called when cooperative cancellation stops the run.
    fn on_cancelled(&mut self, after_epoch: usize) {
        let _ = after_epoch;
    }
}

/// Per-epoch gradient-norm accumulator, filled only when an observer
/// is attached (the extra square roots never touch the update math).
#[derive(Debug, Clone, Copy, Default)]
struct NormStats {
    steps: usize,
    sum: f64,
    max: f64,
    post_max: f64,
}

/// Per-epoch guardrail state threaded through [`epoch_pass`].
struct EpochGuard<'a> {
    health: &'a HealthConfig,
    epoch: usize,
    attempt: usize,
    clipped_steps: &'a mut usize,
    norms: Option<&'a mut NormStats>,
}

/// One full pass over the dataset. With `guard: None` this is exactly
/// the historical [`train`] epoch — same RNG call sequence, same
/// arithmetic. With a guard it additionally scans gradients (abort on
/// NaN/Inf) and clips their global norm.
#[allow(clippy::too_many_arguments)]
fn epoch_pass(
    model: &mut GnnModel,
    dataset: &[TrainGraph],
    config: &TrainConfig,
    rng: &mut StdRng,
    opt: &mut Adam,
    order: &mut [usize],
    fixed_batches: &[ContextBatch],
    mut guard: Option<EpochGuard<'_>>,
) -> Result<f64, AnomalyCause> {
    order.shuffle(rng);
    let mut total = 0.0;
    let mut counted = 0usize;
    for &gi in order.iter() {
        let graph = &dataset[gi];
        let batch = if config.resample_negatives {
            ContextBatch::sample(&graph.tensors, &config.loss, rng)
        } else {
            fixed_batches[gi].clone()
        };
        if batch.is_empty() {
            continue;
        }
        let sampled;
        let tensors = match config.neighbor_samples {
            Some(k) => {
                sampled = graph.tensors.sampled(k, rng);
                &sampled
            }
            None => &graph.tensors,
        };
        let mut tape = ancstr_nn::Tape::new();
        let (z, leaves) = model.forward_on_tape(&mut tape, tensors, &graph.features);
        let loss = context_loss(&mut tape, z, &batch, &config.loss);
        let loss_value = tape.value(loss)[(0, 0)];
        let mut grads = tape.backward(loss);

        let ids = leaves.ids();
        let mut grad_mats: Vec<Matrix> = ids
            .iter()
            .map(|&id| {
                grads.take(id).unwrap_or_else(|| {
                    // A parameter can be grad-free on degenerate
                    // graphs (e.g. no edges of its type).
                    let (r, c) = tape.value(id).shape();
                    Matrix::zeros(r, c)
                })
            })
            .collect();

        if let Some(g) = guard.as_mut() {
            if g.health.inject_nan_grad_at == Some(g.epoch) && g.attempt == 0 {
                if let Some(first) = grad_mats.first_mut() {
                    if first.rows() > 0 && first.cols() > 0 {
                        first[(0, 0)] = f64::NAN;
                    }
                }
            }
            let norm_sq: f64 = grad_mats
                .iter()
                .map(|m| {
                    let n = m.frobenius_norm();
                    n * n
                })
                .sum();
            if !norm_sq.is_finite() {
                return Err(AnomalyCause::NonFiniteGradient);
            }
            let mut clipped_to = None;
            if let Some(max) = g.health.max_grad_norm {
                let norm = norm_sq.sqrt();
                if norm > max {
                    let scale = max / norm;
                    for m in &mut grad_mats {
                        *m = m.scale(scale);
                    }
                    *g.clipped_steps += 1;
                    clipped_to = Some(max);
                }
            }
            if let Some(stats) = g.norms.as_deref_mut() {
                let norm = norm_sq.sqrt();
                stats.steps += 1;
                stats.sum += norm;
                stats.max = stats.max.max(norm);
                stats.post_max = stats.post_max.max(clipped_to.unwrap_or(norm));
            }
        }

        let mut params = model.matrices_mut();
        opt.step(&mut params, &grad_mats);

        total += loss_value;
        counted += 1;
    }
    Ok(if counted > 0 { total / counted as f64 } else { 0.0 })
}

/// Train `model` on `dataset` in place, returning the loss trajectory.
///
/// Graphs with no loss terms (single-vertex circuits) are skipped.
/// For the guarded, recovering variant see [`try_train`].
///
/// # Panics
///
/// Panics if `dataset` is empty or a feature matrix disagrees with its
/// graph or the model dimension.
pub fn train(model: &mut GnnModel, dataset: &[TrainGraph], config: &TrainConfig) -> TrainReport {
    assert!(!dataset.is_empty(), "training needs at least one graph");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.learning_rate);

    // Pre-sample fixed batches when not resampling.
    let fixed_batches: Vec<ContextBatch> = dataset
        .iter()
        .map(|g| ContextBatch::sample(&g.tensors, &config.loss, &mut rng))
        .collect();

    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut order: Vec<usize> = (0..dataset.len()).collect();

    for _epoch in 0..config.epochs {
        let loss = epoch_pass(
            model,
            dataset,
            config,
            &mut rng,
            &mut opt,
            &mut order,
            &fixed_batches,
            None,
        )
        .expect("unguarded epochs never abort");
        epoch_losses.push(loss);
    }
    TrainReport { epoch_losses }
}

/// Snapshot of the model's parameter matrices (the checkpoint payload).
fn snapshot(model: &GnnModel) -> Vec<Matrix> {
    model.matrices().into_iter().cloned().collect()
}

fn restore(model: &mut GnnModel, saved: &[Matrix]) {
    for (slot, m) in model.matrices_mut().into_iter().zip(saved) {
        *slot = m.clone();
    }
}

/// Complete guarded-loop state at an epoch boundary — everything needed
/// to resume training bit-identically after a crash: parameters, the
/// recovery snapshot, optimizer moments, mid-stream RNG state, the
/// shuffle permutation, and the retry lineage. Serialized/verified by
/// [`TrainerState::to_text`](TrainerState::to_text) with a CRC-sealed
/// envelope (see `serialize.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// Architecture of the model being trained (validated on resume).
    pub gnn: GnnConfig,
    /// Current model parameter matrices, in [`GnnModel::matrices`] order.
    pub params: Vec<Matrix>,
    /// Best-loss snapshot used by anomaly recovery.
    pub best_params: Vec<Matrix>,
    /// Best epoch loss so far (`+inf` before the first completed epoch).
    pub best_loss: f64,
    /// Completed epochs' losses; its length *is* the epoch counter.
    pub epoch_losses: Vec<f64>,
    /// Attempt number (0 = original run, bumped by anomaly recovery).
    pub attempt: usize,
    /// The current attempt's seed (`derive_seed` lineage from the base
    /// config seed — validated on resume so crash/resume reproduces the
    /// exact recovery path).
    pub seed: u64,
    /// Mid-attempt RNG state words ([`StdRng::state`]).
    pub rng: [u64; 4],
    /// The dataset shuffle permutation. Fisher–Yates mutates it in
    /// place across epochs, so it must survive the crash.
    pub order: Vec<usize>,
    /// Adam step counter ([`Adam::steps`]).
    pub adam_steps: u64,
    /// Adam `(first, second)` moment slots in parameter order.
    pub adam_moments: Vec<(Matrix, Matrix)>,
    /// Gradient-clip counter carried into the resumed [`HealthReport`].
    pub clipped_steps: usize,
    /// Recovery events so far, replayed into the resumed report.
    pub retries: Vec<HealthEvent>,
}

/// How a [`try_train_resumable`] run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainOutcome {
    /// All configured epochs ran.
    Completed,
    /// The cancel hook fired at an epoch boundary; a final checkpoint
    /// was flushed through the sink (when one is installed), so the run
    /// is resumable from exactly this point.
    Cancelled {
        /// Completed epochs at the moment of cancellation.
        after_epoch: usize,
    },
}

/// Checkpoint sink callback: receives the captured state; `Err` is the
/// write-failure reason and aborts training.
pub type CheckpointSink<'a> = &'a mut dyn FnMut(&TrainerState) -> Result<(), String>;

/// Durability hooks for [`try_train_resumable`]. The all-`None`
/// [`Default`] reduces the resumable loop to exactly [`try_train`].
#[derive(Default)]
pub struct ResumableHooks<'a> {
    /// Emit a checkpoint every N completed epochs (`None` disables
    /// periodic checkpoints; a cancellation flush still happens).
    pub checkpoint_every: Option<usize>,
    /// Checkpoint sink. A sink failure aborts training with
    /// [`TrainError::CheckpointWrite`] rather than silently running on
    /// without durability.
    pub on_checkpoint: Option<CheckpointSink<'a>>,
    /// Cooperative cancellation, polled at every epoch boundary.
    pub cancel: Option<&'a dyn Fn() -> bool>,
    /// Resume from this checkpointed state instead of starting fresh.
    pub resume_from: Option<TrainerState>,
    /// Read-only telemetry observer (see [`TrainerHooks`]). Attaching
    /// one never changes training results.
    pub observer: Option<&'a mut dyn TrainerHooks>,
}

#[allow(clippy::too_many_arguments)] // one slot per field of the state
fn capture_state(
    model: &GnnModel,
    best_params: &[Matrix],
    best_loss: f64,
    epoch_losses: &[f64],
    attempt: usize,
    seed: u64,
    rng: &StdRng,
    order: &[usize],
    opt: &Adam,
    report: &HealthReport,
) -> TrainerState {
    TrainerState {
        gnn: model.config().clone(),
        params: snapshot(model),
        best_params: best_params.to_vec(),
        best_loss,
        epoch_losses: epoch_losses.to_vec(),
        attempt,
        seed,
        rng: rng.state(),
        order: order.to_vec(),
        adam_steps: opt.steps(),
        adam_moments: opt.moments().to_vec(),
        clipped_steps: report.clipped_steps,
        retries: report.retries.to_vec(),
    }
}

/// Validate a resume checkpoint against the live model, dataset, and
/// configs before installing any of it.
fn validate_resume(
    state: &TrainerState,
    model: &GnnModel,
    dataset_len: usize,
    config: &TrainConfig,
) -> Result<(), TrainError> {
    let bad = |reason: String| TrainError::InvalidCheckpoint { reason };
    if state.gnn != *model.config() {
        return Err(bad(format!(
            "checkpoint model config {:?} does not match current {:?}",
            state.gnn,
            model.config()
        )));
    }
    let shapes: Vec<(usize, usize)> = model.matrices().iter().map(|m| m.shape()).collect();
    for (label, params) in [("params", &state.params), ("best-params", &state.best_params)] {
        if params.len() != shapes.len() {
            return Err(bad(format!(
                "checkpoint has {} {label} matrices, model has {}",
                params.len(),
                shapes.len()
            )));
        }
        for (i, (m, &shape)) in params.iter().zip(&shapes).enumerate() {
            if m.shape() != shape {
                return Err(bad(format!(
                    "{label}[{i}] is {:?}, model expects {shape:?}",
                    m.shape()
                )));
            }
            if !m.is_finite() {
                return Err(bad(format!("{label}[{i}] contains non-finite values")));
            }
        }
    }
    if !state.adam_moments.is_empty() && state.adam_moments.len() != shapes.len() {
        return Err(bad(format!(
            "checkpoint has {} Adam moment slots, model has {} parameters",
            state.adam_moments.len(),
            shapes.len()
        )));
    }
    for (i, ((m, v), &shape)) in state.adam_moments.iter().zip(&shapes).enumerate() {
        if m.shape() != shape || v.shape() != shape {
            return Err(bad(format!("Adam moment slot {i} disagrees with parameter shape")));
        }
        if !m.is_finite() || !v.is_finite() {
            return Err(bad(format!("Adam moment slot {i} contains non-finite values")));
        }
    }
    if state.epoch_losses.iter().any(|l| !l.is_finite()) {
        return Err(bad("checkpoint loss history contains non-finite values".into()));
    }
    if state.best_loss.is_nan() {
        return Err(bad("checkpoint best-loss is NaN".into()));
    }
    let mut seen = vec![false; dataset_len];
    if state.order.len() != dataset_len {
        return Err(bad(format!(
            "checkpoint shuffle order covers {} graphs, dataset has {dataset_len}",
            state.order.len()
        )));
    }
    for &i in &state.order {
        if i >= dataset_len || seen[i] {
            return Err(bad("checkpoint shuffle order is not a permutation".into()));
        }
        seen[i] = true;
    }
    let expected_seed = if state.attempt == 0 {
        config.seed
    } else {
        derive_seed(config.seed, state.attempt as u64)
    };
    if state.seed != expected_seed {
        return Err(bad(format!(
            "checkpoint attempt {} seed {} does not derive from config seed {}",
            state.attempt, state.seed, config.seed
        )));
    }
    Ok(())
}

/// Guarded training: [`train`] plus NaN/Inf scans, gradient-norm
/// clipping, divergence detection, and bounded checkpoint-restore
/// recovery under deterministically derived seeds.
///
/// On an anomaly the partially-updated parameters are discarded, the
/// best-loss checkpoint is restored, and training resumes at the failed
/// epoch with a fresh RNG seeded by [`derive_seed`]`(config.seed,
/// attempt)`. A clean run returns the exact [`train`] trajectory and an
/// empty [`HealthReport`].
///
/// # Errors
///
/// * [`TrainError::EmptyDataset`] / [`TrainError::FeatureShape`] /
///   [`TrainError::NonFiniteFeatures`] /
///   [`TrainError::NonFiniteParameters`] on an invalid input;
/// * [`TrainError::RetriesExhausted`] when anomalies persist past
///   `health.max_retries` recoveries.
pub fn try_train(
    model: &mut GnnModel,
    dataset: &[TrainGraph],
    config: &TrainConfig,
    health: &HealthConfig,
) -> Result<(TrainReport, HealthReport), TrainError> {
    let (report, health_report, outcome) =
        try_train_resumable(model, dataset, config, health, ResumableHooks::default())?;
    debug_assert_eq!(outcome, TrainOutcome::Completed, "no cancel hook was installed");
    Ok((report, health_report))
}

/// [`try_train`] plus durability: periodic [`TrainerState`] checkpoints,
/// cooperative cancellation at epoch boundaries (flushing a final
/// checkpoint so the run stays resumable), and resumption from a
/// checkpointed state that reproduces the uninterrupted run
/// bit-identically — including PR 1's divergence-recovery re-seeds,
/// whose lineage is validated and replayed from the checkpoint.
///
/// With default hooks this *is* [`try_train`]: same RNG call sequence,
/// same arithmetic, same results.
///
/// # Errors
///
/// Everything [`try_train`] returns, plus
/// [`TrainError::InvalidCheckpoint`] when `hooks.resume_from` disagrees
/// with the live model/dataset/config, and
/// [`TrainError::CheckpointWrite`] when the checkpoint sink fails.
pub fn try_train_resumable(
    model: &mut GnnModel,
    dataset: &[TrainGraph],
    config: &TrainConfig,
    health: &HealthConfig,
    mut hooks: ResumableHooks<'_>,
) -> Result<(TrainReport, HealthReport, TrainOutcome), TrainError> {
    if dataset.is_empty() {
        return Err(TrainError::EmptyDataset);
    }
    let dim = model.config().dim;
    for (graph, g) in dataset.iter().enumerate() {
        let expected = (g.tensors.vertex_count(), dim);
        let found = g.features.shape();
        if found != expected {
            return Err(TrainError::FeatureShape { graph, expected, found });
        }
        if !g.features.is_finite() {
            return Err(TrainError::NonFiniteFeatures { graph });
        }
    }
    if !model.is_finite() {
        return Err(TrainError::NonFiniteParameters);
    }

    let mut report = HealthReport::default();
    let mut epoch_losses: Vec<f64> = Vec::with_capacity(config.epochs);
    let mut best_loss = f64::INFINITY;
    let mut best_params = snapshot(model);
    let mut attempt = 0usize;
    let mut seed = config.seed;

    let mut resume = hooks.resume_from.take();
    if let Some(state) = &resume {
        validate_resume(state, model, dataset.len(), config)?;
        restore(model, &state.params);
        best_params = state.best_params.clone();
        best_loss = state.best_loss;
        epoch_losses = state.epoch_losses.clone();
        attempt = state.attempt;
        seed = state.seed;
        report.clipped_steps = state.clipped_steps;
        report.retries = state.retries.clone();
    }

    'attempts: loop {
        // Every attempt replays its setup from the attempt seed: the
        // fixed batches are a deterministic function of the seed, so on
        // resume we re-derive them and only then install the saved
        // mid-stream RNG state, shuffle order, and optimizer moments.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(config.learning_rate);
        let fixed_batches: Vec<ContextBatch> = dataset
            .iter()
            .map(|g| ContextBatch::sample(&g.tensors, &config.loss, &mut rng))
            .collect();
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        if let Some(state) = resume.take() {
            rng = StdRng::from_state(state.rng);
            order = state.order;
            opt = Adam::restore(config.learning_rate, state.adam_steps, state.adam_moments);
        }

        while epoch_losses.len() < config.epochs {
            let epoch = epoch_losses.len();
            if hooks.cancel.is_some_and(|cancel| cancel()) {
                if let Some(sink) = hooks.on_checkpoint.as_mut() {
                    let state = capture_state(
                        model,
                        &best_params,
                        best_loss,
                        &epoch_losses,
                        attempt,
                        seed,
                        &rng,
                        &order,
                        &opt,
                        &report,
                    );
                    let started = Instant::now();
                    sink(&state).map_err(|reason| TrainError::CheckpointWrite {
                        epoch,
                        reason,
                    })?;
                    if let Some(obs) = hooks.observer.as_deref_mut() {
                        obs.on_checkpoint(epoch, started.elapsed());
                    }
                }
                if let Some(obs) = hooks.observer.as_deref_mut() {
                    obs.on_cancelled(epoch);
                }
                return Ok((
                    TrainReport { epoch_losses },
                    report,
                    TrainOutcome::Cancelled { after_epoch: epoch },
                ));
            }
            let mut norms = hooks.observer.as_ref().map(|_| NormStats::default());
            let clipped_before = report.clipped_steps;
            let guard = EpochGuard {
                health,
                epoch,
                attempt,
                clipped_steps: &mut report.clipped_steps,
                norms: norms.as_mut(),
            };
            let outcome = epoch_pass(
                model,
                dataset,
                config,
                &mut rng,
                &mut opt,
                &mut order,
                &fixed_batches,
                Some(guard),
            );
            let anomaly = match outcome {
                Err(cause) => Some(cause),
                Ok(loss) if !loss.is_finite() => Some(AnomalyCause::NonFiniteLoss(loss)),
                Ok(loss)
                    if epoch >= health.grace_epochs
                        && best_loss.is_finite()
                        && loss > health.divergence_factor * best_loss.abs().max(1e-12) =>
                {
                    Some(AnomalyCause::Diverged { loss, best: best_loss })
                }
                Ok(loss) => {
                    epoch_losses.push(loss);
                    if loss < best_loss {
                        best_loss = loss;
                        best_params = snapshot(model);
                    }
                    if let Some(obs) = hooks.observer.as_deref_mut() {
                        let stats = norms.unwrap_or_default();
                        obs.on_epoch(&EpochTelemetry {
                            epoch,
                            attempt,
                            loss,
                            steps: stats.steps,
                            grad_norm_max: stats.max,
                            grad_norm_mean: if stats.steps > 0 {
                                stats.sum / stats.steps as f64
                            } else {
                                0.0
                            },
                            grad_norm_post_clip_max: stats.post_max,
                            clipped_steps: report.clipped_steps - clipped_before,
                        });
                    }
                    None
                }
            };
            if let Some(cause) = anomaly {
                if attempt >= health.max_retries {
                    return Err(TrainError::RetriesExhausted {
                        epoch,
                        retries: attempt,
                        cause,
                    });
                }
                attempt += 1;
                seed = derive_seed(config.seed, attempt as u64);
                restore(model, &best_params);
                report.retries.push(HealthEvent {
                    epoch,
                    attempt: attempt - 1,
                    cause,
                    reseeded_to: seed,
                });
                if let Some(obs) = hooks.observer.as_deref_mut() {
                    obs.on_retry(report.retries.last().expect("just pushed"));
                }
                continue 'attempts;
            }
            let completed = epoch_losses.len();
            if hooks.checkpoint_every.is_some_and(|every| completed.is_multiple_of(every)) {
                if let Some(sink) = hooks.on_checkpoint.as_mut() {
                    let state = capture_state(
                        model,
                        &best_params,
                        best_loss,
                        &epoch_losses,
                        attempt,
                        seed,
                        &rng,
                        &order,
                        &opt,
                        &report,
                    );
                    let started = Instant::now();
                    sink(&state).map_err(|reason| TrainError::CheckpointWrite {
                        epoch: completed,
                        reason,
                    })?;
                    if let Some(obs) = hooks.observer.as_deref_mut() {
                        obs.on_checkpoint(completed, started.elapsed());
                    }
                }
            }
        }
        break;
    }
    Ok((TrainReport { epoch_losses }, report, TrainOutcome::Completed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GnnConfig;
    use ancstr_graph::{HetMultigraph, VertexId};
    use ancstr_netlist::PortType;

    /// Two mirrored "differential" clusters joined by a tail vertex.
    fn sample_graph() -> TrainGraph {
        let mut g = HetMultigraph::with_vertices(0..5);
        // 0 and 1 form one pair, 2 and 3 the other, 4 is the tail.
        for &(a, b, p) in &[
            (0usize, 1usize, PortType::Drain),
            (2, 3, PortType::Drain),
            (0, 4, PortType::Source),
            (1, 4, PortType::Source),
            (2, 4, PortType::Gate),
            (3, 4, PortType::Gate),
        ] {
            g.add_edge(VertexId(a), VertexId(b), p);
            g.add_edge(VertexId(b), VertexId(a), p);
        }
        let tensors = GraphTensors::from_multigraph(&g);
        let features = Matrix::from_fn(5, 6, |r, c| {
            // Symmetric features for the mirrored vertices.
            let class = match r {
                0 | 1 => 0,
                2 | 3 => 1,
                _ => 2,
            };
            if c == class {
                1.0
            } else {
                0.05
            }
        });
        TrainGraph { tensors, features }
    }

    #[test]
    fn loss_decreases_with_fixed_batches() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 21, ..GnnConfig::default() });
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig {
            epochs: 40,
            learning_rate: 0.02,
            resample_negatives: false,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &dataset, &cfg);
        assert_eq!(report.epoch_losses.len(), 40);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.9,
            "loss should drop ≥10%: first {first}, last {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig { epochs: 5, ..TrainConfig::default() };
        let mut m1 = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let r1 = train(&mut m1, &dataset, &cfg);
        let mut m2 = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let r2 = train(&mut m2, &dataset, &cfg);
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn training_is_bit_identical_at_every_thread_count() {
        // The kernels under the tape (matmul/spmm/activations) fan out
        // across worker threads; the epoch loop itself is sequential
        // (SGD order is semantic). Ordered chunking must keep the whole
        // trajectory — losses and final weights — bit-identical.
        let dataset = vec![sample_graph(), sample_graph()];
        let cfg = TrainConfig { epochs: 4, ..TrainConfig::default() };
        let train_at = |t: usize| {
            ancstr_par::set_threads(t);
            let mut m =
                GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
            let r = train(&mut m, &dataset, &cfg);
            (m, r)
        };
        let (m1, r1) = train_at(1);
        for t in [2usize, 8] {
            let (mt, rt) = train_at(t);
            assert_eq!(mt, m1, "weights diverged at {t} threads");
            assert_eq!(rt, r1, "loss trajectory diverged at {t} threads");
        }
        ancstr_par::set_threads(0);
    }

    #[test]
    fn trained_embeddings_align_symmetric_pairs() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 33, ..GnnConfig::default() });
        let graph = sample_graph();
        let cfg = TrainConfig {
            epochs: 80,
            learning_rate: 0.02,
            ..TrainConfig::default()
        };
        train(&mut model, std::slice::from_ref(&graph), &cfg);
        let z = model.embed(&graph.tensors, &graph.features);
        let cos = |a: usize, b: usize| {
            ancstr_nn::cosine_similarity(z.row(a), z.row(b))
        };
        // Mirrored vertices are graph-automorphic with identical
        // features, so they stay exactly aligned...
        assert!(cos(0, 1) > 0.999, "pair (0,1): {}", cos(0, 1));
        assert!(cos(2, 3) > 0.999, "pair (2,3): {}", cos(2, 3));
        // ...while differently-typed clusters separate.
        assert!(cos(0, 2) < cos(0, 1), "cross-pair should be less similar");
    }

    #[test]
    #[should_panic(expected = "at least one graph")]
    fn empty_dataset_panics() {
        let mut model = GnnModel::new(GnnConfig::default());
        let _ = train(&mut model, &[], &TrainConfig::default());
    }

    #[test]
    fn multi_graph_training_runs() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 1, ..GnnConfig::default() });
        let dataset = vec![sample_graph(), sample_graph()];
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let report = train(&mut model, &dataset, &cfg);
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn guarded_clean_run_matches_unguarded_exactly() {
        let dataset = vec![sample_graph(), sample_graph()];
        let cfg = TrainConfig { epochs: 8, ..TrainConfig::default() };
        let gc = GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() };
        let mut plain = GnnModel::new(gc.clone());
        let plain_report = train(&mut plain, &dataset, &cfg);
        let mut guarded = GnnModel::new(gc);
        let (report, health) =
            try_train(&mut guarded, &dataset, &cfg, &HealthConfig::default()).unwrap();
        // The guardrails are read-only on a healthy run: identical loss
        // trajectory, identical final weights, nothing fired.
        assert_eq!(report, plain_report);
        assert_eq!(guarded, plain);
        assert!(health.clean(), "{health:?}");
    }

    /// Collects every observer callback for assertions.
    #[derive(Default)]
    struct RecordingHooks {
        epochs: Vec<EpochTelemetry>,
        retries: Vec<HealthEvent>,
        checkpoints: Vec<usize>,
        cancelled_after: Option<usize>,
    }

    impl TrainerHooks for RecordingHooks {
        fn on_epoch(&mut self, t: &EpochTelemetry) {
            self.epochs.push(t.clone());
        }
        fn on_retry(&mut self, e: &HealthEvent) {
            self.retries.push(e.clone());
        }
        fn on_checkpoint(&mut self, completed: usize, _write_time: std::time::Duration) {
            self.checkpoints.push(completed);
        }
        fn on_cancelled(&mut self, after_epoch: usize) {
            self.cancelled_after = Some(after_epoch);
        }
    }

    #[test]
    fn attached_observer_never_changes_training_results() {
        let dataset = vec![sample_graph(), sample_graph()];
        let cfg = TrainConfig { epochs: 8, ..TrainConfig::default() };
        let gc = GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() };

        let mut bare = GnnModel::new(gc.clone());
        let bare_out = try_train(&mut bare, &dataset, &cfg, &HealthConfig::default()).unwrap();

        let mut observed = GnnModel::new(gc);
        let mut hooks = RecordingHooks::default();
        let (report, health, outcome) = try_train_resumable(
            &mut observed,
            &dataset,
            &cfg,
            &HealthConfig::default(),
            ResumableHooks { observer: Some(&mut hooks), ..ResumableHooks::default() },
        )
        .unwrap();

        assert_eq!((report.clone(), health), bare_out, "observer is read-only");
        assert_eq!(observed, bare, "final weights are bit-identical");
        assert_eq!(outcome, TrainOutcome::Completed);

        // One telemetry record per epoch, in order, mirroring the losses.
        assert_eq!(hooks.epochs.len(), cfg.epochs);
        for (i, t) in hooks.epochs.iter().enumerate() {
            assert_eq!(t.epoch, i);
            assert_eq!(t.attempt, 0);
            assert_eq!(t.loss, report.epoch_losses[i]);
            assert!(t.steps > 0);
            assert!(t.grad_norm_max >= t.grad_norm_mean);
            assert!(t.grad_norm_max >= t.grad_norm_post_clip_max);
            assert!(t.grad_norm_mean >= 0.0);
        }
        assert!(hooks.retries.is_empty());
        assert!(hooks.cancelled_after.is_none());
    }

    #[test]
    fn observer_sees_retry_and_checkpoint_events() {
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig { epochs: 6, ..TrainConfig::default() };
        let health = HealthConfig { inject_nan_grad_at: Some(2), ..HealthConfig::default() };
        let mut model =
            GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 5, ..GnnConfig::default() });
        let mut hooks = RecordingHooks::default();
        let mut stored = Vec::new();
        let mut sink = |state: &TrainerState| {
            stored.push(state.epoch_losses.len());
            Ok(())
        };
        let (report, hr, _) = try_train_resumable(
            &mut model,
            &dataset,
            &cfg,
            &health,
            ResumableHooks {
                checkpoint_every: Some(2),
                on_checkpoint: Some(&mut sink),
                observer: Some(&mut hooks),
                ..ResumableHooks::default()
            },
        )
        .unwrap();
        assert_eq!(report.epoch_losses.len(), 6);
        assert_eq!(hooks.retries, hr.retries, "observer saw the recovery");
        assert_eq!(hooks.checkpoints, stored, "one callback per sink write");
        assert_eq!(hooks.checkpoints, vec![2, 4, 6]);
        // Epoch 2 ran twice (NaN then recovery); only the successful
        // pass produces telemetry.
        assert_eq!(hooks.epochs.len(), 6);
        assert_eq!(hooks.epochs[2].attempt, 1);
    }

    #[test]
    fn injected_nan_gradient_recovers_via_checkpoint_restore() {
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig { epochs: 10, ..TrainConfig::default() };
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let health = HealthConfig { inject_nan_grad_at: Some(4), ..HealthConfig::default() };
        let (report, hr) = try_train(&mut model, &dataset, &cfg, &health)
            .expect("transient fault must be recovered");
        assert_eq!(report.epoch_losses.len(), 10);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(model.is_finite(), "restored weights stay finite");
        assert_eq!(hr.retries.len(), 1, "{hr:?}");
        let event = &hr.retries[0];
        assert_eq!(event.epoch, 4);
        assert_eq!(event.cause, AnomalyCause::NonFiniteGradient);
        assert_ne!(event.reseeded_to, cfg.seed, "retry derives a fresh seed");
    }

    #[test]
    fn recovery_is_deterministic() {
        let dataset = vec![sample_graph()];
        let cfg = TrainConfig { epochs: 6, ..TrainConfig::default() };
        let health = HealthConfig { inject_nan_grad_at: Some(2), ..HealthConfig::default() };
        let run = || {
            let mut m = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 5, ..GnnConfig::default() });
            let out = try_train(&mut m, &dataset, &cfg, &health).unwrap();
            (m, out)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unrecoverable_divergence_exhausts_retry_budget() {
        let dataset = vec![sample_graph()];
        // An absurd learning rate reliably blows the loss up on every
        // attempt (the saturating GRU caps it around ~3.3 rather than
        // NaN, so a tight divergence factor is what detects it), and
        // recovery cannot succeed because the cause is the config.
        let cfg = TrainConfig { epochs: 30, learning_rate: 1e12, ..TrainConfig::default() };
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let health = HealthConfig {
            max_retries: 2,
            max_grad_norm: None,
            divergence_factor: 2.0,
            grace_epochs: 0,
            ..HealthConfig::default()
        };
        let err = try_train(&mut model, &dataset, &cfg, &health).unwrap_err();
        match err {
            TrainError::RetriesExhausted { retries, .. } => assert_eq!(retries, 2),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn try_train_validates_inputs() {
        let mut model = GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 1, ..GnnConfig::default() });
        let health = HealthConfig::default();
        assert_eq!(
            try_train(&mut model, &[], &TrainConfig::default(), &health).unwrap_err(),
            TrainError::EmptyDataset
        );

        let mut bad_shape = sample_graph();
        bad_shape.features = Matrix::zeros(5, 4);
        let err = try_train(&mut model, &[bad_shape], &TrainConfig::default(), &health)
            .unwrap_err();
        assert!(matches!(err, TrainError::FeatureShape { graph: 0, .. }), "{err:?}");

        let mut bad_value = sample_graph();
        bad_value.features[(0, 0)] = f64::NAN;
        let err = try_train(&mut model, &[bad_value], &TrainConfig::default(), &health)
            .unwrap_err();
        assert_eq!(err, TrainError::NonFiniteFeatures { graph: 0 });

        model.matrices_mut()[0][(0, 0)] = f64::INFINITY;
        let err = try_train(&mut model, &[sample_graph()], &TrainConfig::default(), &health)
            .unwrap_err();
        assert_eq!(err, TrainError::NonFiniteParameters);
    }

    #[test]
    fn resumable_with_no_hooks_matches_try_train() {
        let cfg = TrainConfig { epochs: 10, seed: 5, ..TrainConfig::default() };
        let dataset = vec![sample_graph()];
        let gnn = GnnConfig { dim: 6, layers: 2, seed: 3, ..GnnConfig::default() };
        let mut a = GnnModel::new(gnn.clone());
        let mut b = GnnModel::new(gnn);
        let (ra, ha) = try_train(&mut a, &dataset, &cfg, &HealthConfig::default()).unwrap();
        let (rb, hb, outcome) = try_train_resumable(
            &mut b,
            &dataset,
            &cfg,
            &HealthConfig::default(),
            ResumableHooks::default(),
        )
        .unwrap();
        assert_eq!(outcome, TrainOutcome::Completed);
        assert_eq!(ra, rb);
        assert_eq!(ha, hb);
        assert_eq!(a, b);
    }

    #[test]
    fn resume_from_any_checkpoint_is_bit_identical() {
        let cfg = TrainConfig { epochs: 8, seed: 11, ..TrainConfig::default() };
        let dataset = vec![sample_graph()];
        let gnn = GnnConfig { dim: 6, layers: 2, seed: 9, ..GnnConfig::default() };

        // Reference: one uninterrupted run, collecting every-epoch
        // checkpoints along the way.
        let mut reference = GnnModel::new(gnn.clone());
        let states = std::cell::RefCell::new(Vec::new());
        let mut sink = |s: &TrainerState| {
            states.borrow_mut().push(s.clone());
            Ok(())
        };
        let (ref_report, _, outcome) = try_train_resumable(
            &mut reference,
            &dataset,
            &cfg,
            &HealthConfig::default(),
            ResumableHooks {
                checkpoint_every: Some(1),
                on_checkpoint: Some(&mut sink),
                ..ResumableHooks::default()
            },
        )
        .unwrap();
        assert_eq!(outcome, TrainOutcome::Completed);
        let states = states.into_inner();
        assert_eq!(states.len(), cfg.epochs);

        // Restarting a fresh model from every checkpoint must land on
        // the same weights and loss trajectory, bit for bit.
        for state in states {
            let resumed_at = state.epoch_losses.len();
            let mut resumed = GnnModel::new(gnn.clone());
            let (report, _, outcome) = try_train_resumable(
                &mut resumed,
                &dataset,
                &cfg,
                &HealthConfig::default(),
                ResumableHooks { resume_from: Some(state), ..ResumableHooks::default() },
            )
            .unwrap();
            assert_eq!(outcome, TrainOutcome::Completed);
            assert_eq!(report, ref_report, "trajectory diverged resuming at {resumed_at}");
            assert_eq!(resumed, reference, "weights diverged resuming at {resumed_at}");
        }
    }

    #[test]
    fn checkpoint_survives_serialization_round_trip() {
        let cfg = TrainConfig { epochs: 6, seed: 2, ..TrainConfig::default() };
        let dataset = vec![sample_graph()];
        let gnn = GnnConfig { dim: 6, layers: 2, seed: 1, ..GnnConfig::default() };
        let mut reference = GnnModel::new(gnn.clone());
        let captured = std::cell::RefCell::new(None);
        let mut sink = |s: &TrainerState| {
            *captured.borrow_mut() = Some(s.to_text());
            Ok(())
        };
        let (ref_report, _, _) = try_train_resumable(
            &mut reference,
            &dataset,
            &cfg,
            &HealthConfig::default(),
            ResumableHooks {
                checkpoint_every: Some(3),
                on_checkpoint: Some(&mut sink),
                ..ResumableHooks::default()
            },
        )
        .unwrap();
        // Resume through the *textual* checkpoint format.
        let text = captured.into_inner().unwrap();
        let state = TrainerState::from_text(&text).unwrap();
        let mut resumed = GnnModel::new(gnn);
        let (report, _, _) = try_train_resumable(
            &mut resumed,
            &dataset,
            &cfg,
            &HealthConfig::default(),
            ResumableHooks { resume_from: Some(state), ..ResumableHooks::default() },
        )
        .unwrap();
        assert_eq!(report, ref_report);
        assert_eq!(resumed, reference);
    }

    #[test]
    fn cancellation_flushes_a_final_checkpoint_and_reports_the_epoch() {
        let cfg = TrainConfig { epochs: 10, seed: 4, ..TrainConfig::default() };
        let dataset = vec![sample_graph()];
        let mut model =
            GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 8, ..GnnConfig::default() });
        let flag = std::sync::atomic::AtomicBool::new(false);
        let states = std::cell::RefCell::new(Vec::new());
        let mut sink = |s: &TrainerState| {
            states.borrow_mut().push(s.clone());
            // Simulate a deadline firing after the second checkpoint.
            if s.epoch_losses.len() >= 4 {
                flag.store(true, std::sync::atomic::Ordering::SeqCst);
            }
            Ok(())
        };
        let cancel = || flag.load(std::sync::atomic::Ordering::SeqCst);
        let (report, _, outcome) = try_train_resumable(
            &mut model,
            &dataset,
            &cfg,
            &HealthConfig::default(),
            ResumableHooks {
                checkpoint_every: Some(2),
                on_checkpoint: Some(&mut sink),
                cancel: Some(&cancel),
                ..ResumableHooks::default()
            },
        )
        .unwrap();
        assert_eq!(outcome, TrainOutcome::Cancelled { after_epoch: 4 });
        assert_eq!(report.epoch_losses.len(), 4);
        // The final (cancellation) checkpoint carries the full state at
        // the boundary.
        let last = states.into_inner().pop().unwrap();
        assert_eq!(last.epoch_losses.len(), 4);
        assert_eq!(last.epoch_losses, report.epoch_losses);
    }

    #[test]
    fn invalid_resume_checkpoints_are_rejected_with_typed_errors() {
        let cfg = TrainConfig { epochs: 6, seed: 2, ..TrainConfig::default() };
        let dataset = vec![sample_graph()];
        let gnn = GnnConfig { dim: 6, layers: 2, seed: 1, ..GnnConfig::default() };

        // Capture a genuine checkpoint to corrupt.
        let mut model = GnnModel::new(gnn.clone());
        let captured = std::cell::RefCell::new(None);
        let mut sink = |s: &TrainerState| {
            *captured.borrow_mut() = Some(s.clone());
            Ok(())
        };
        try_train_resumable(
            &mut model,
            &dataset,
            &cfg,
            &HealthConfig::default(),
            ResumableHooks {
                checkpoint_every: Some(2),
                on_checkpoint: Some(&mut sink),
                ..ResumableHooks::default()
            },
        )
        .unwrap();
        let good = captured.into_inner().unwrap();

        let run = |state: TrainerState| {
            let mut m = GnnModel::new(gnn.clone());
            try_train_resumable(
                &mut m,
                &dataset,
                &cfg,
                &HealthConfig::default(),
                ResumableHooks { resume_from: Some(state), ..ResumableHooks::default() },
            )
            .map(|_| ())
        };
        // Config mismatch.
        let mut bad = good.clone();
        bad.gnn.seed += 1;
        assert!(matches!(run(bad), Err(TrainError::InvalidCheckpoint { .. })));
        // Non-permutation shuffle order.
        let mut bad = good.clone();
        bad.order = vec![0, 0];
        assert!(matches!(run(bad), Err(TrainError::InvalidCheckpoint { .. })));
        // Seed outside the derivation lineage.
        let mut bad = good.clone();
        bad.seed ^= 0x55;
        assert!(matches!(run(bad), Err(TrainError::InvalidCheckpoint { .. })));
        // Non-finite parameters.
        let mut bad = good.clone();
        bad.params[0][(0, 0)] = f64::NAN;
        assert!(matches!(run(bad), Err(TrainError::InvalidCheckpoint { .. })));
        // The untampered state still resumes fine.
        assert!(run(good).is_ok());
    }

    #[test]
    fn checkpoint_sink_failure_is_a_typed_error() {
        let cfg = TrainConfig { epochs: 6, seed: 2, ..TrainConfig::default() };
        let dataset = vec![sample_graph()];
        let mut model =
            GnnModel::new(GnnConfig { dim: 6, layers: 2, seed: 1, ..GnnConfig::default() });
        let mut sink = |_: &TrainerState| Err("disk full".to_owned());
        let err = try_train_resumable(
            &mut model,
            &dataset,
            &cfg,
            &HealthConfig::default(),
            ResumableHooks {
                checkpoint_every: Some(2),
                on_checkpoint: Some(&mut sink),
                ..ResumableHooks::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            TrainError::CheckpointWrite { epoch: 2, reason: "disk full".to_owned() }
        );
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..8).map(|a| derive_seed(0x5EED, a)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
            assert_ne!(seeds[i], 0x5EED);
        }
    }
}
