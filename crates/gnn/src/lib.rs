#![warn(missing_docs)]

//! The AncstrGNN graph neural network (paper Section IV-C).
//!
//! An unsupervised, inductive GNN over the heterogeneous circuit
//! multigraph:
//!
//! * [`GraphTensors`] — the multigraph as per-edge-type sparse
//!   adjacency operators;
//! * [`GnnModel`] — K layers of Eq. 1
//!   (`h_v' = GRU(h_v, Σ_{u∈N_in(v)} W_{e_uv} h_u)`, one `W` per port
//!   type);
//! * [`loss`] — the Eq. 2 negative-sampling context loss;
//! * [`train`] — Adam training over a multi-circuit dataset.
//!
//! The model is *inductive*: once trained, [`GnnModel::embed`] produces
//! vertex embeddings for unseen circuits without retraining.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ancstr_netlist::{parse::parse_spice, flat::FlatCircuit};
//! use ancstr_graph::{HetMultigraph, BuildOptions};
//! use ancstr_gnn::{GraphTensors, GnnModel, GnnConfig};
//! use ancstr_nn::Matrix;
//!
//! let nl = parse_spice("\
//! .subckt amp in out vdd vss
//! M1 out in vss vss nch w=1u l=0.1u
//! M2 out in vdd vdd pch w=2u l=0.1u
//! .ends
//! ")?;
//! let flat = FlatCircuit::elaborate(&nl)?;
//! let g = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
//! let tensors = GraphTensors::from_multigraph(&g);
//!
//! let model = GnnModel::new(GnnConfig { dim: 4, layers: 2, seed: 7, ..GnnConfig::default() });
//! let features = Matrix::filled(2, 4, 0.1);
//! let z = model.embed(&tensors, &features);
//! assert_eq!(z.shape(), (2, 4));
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod loss;
pub mod model;
pub mod serialize;
pub mod tensors;
pub mod trainer;

pub use error::{AnomalyCause, EmbedError, TrainError};
pub use loss::{context_loss, ContextBatch, LossConfig};
pub use model::{GnnConfig, GnnModel, ModelLeaves};
pub use serialize::{
    crc32, matrix_from_text, matrix_to_text, open_sealed, seal, ChecksumError, ParseModelError,
};
pub use tensors::GraphTensors;
pub use trainer::{
    train, try_train, try_train_resumable, CheckpointSink, EpochTelemetry, HealthConfig,
    HealthEvent, HealthReport, ResumableHooks, TrainConfig, TrainGraph, TrainOutcome,
    TrainReport, TrainerHooks, TrainerState,
};
