//! Typed errors for model inference and training.
//!
//! [`EmbedError`] covers inference-time validation
//! ([`GnnModel::try_embed`](crate::GnnModel::try_embed));
//! [`TrainError`] covers the guarded training loop
//! ([`try_train`](crate::trainer::try_train)), carrying the epoch and
//! attempt at which training became unrecoverable.

use std::fmt;

/// Why an anomaly was flagged during a guarded training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnomalyCause {
    /// The epoch's mean loss was NaN or infinite.
    NonFiniteLoss(f64),
    /// A gradient contained a NaN or infinity.
    NonFiniteGradient,
    /// The loss exceeded the divergence factor times the best loss seen.
    Diverged {
        /// The diverged epoch loss.
        loss: f64,
        /// The best loss on record when divergence was detected.
        best: f64,
    },
}

impl fmt::Display for AnomalyCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyCause::NonFiniteLoss(v) => write!(f, "non-finite loss {v}"),
            AnomalyCause::NonFiniteGradient => write!(f, "non-finite gradient"),
            AnomalyCause::Diverged { loss, best } => {
                write!(f, "loss {loss} diverged from best {best}")
            }
        }
    }
}

/// Error returned by [`try_train`](crate::trainer::try_train).
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The dataset had no graphs.
    EmptyDataset,
    /// A graph's feature matrix disagreed with the model or its graph.
    FeatureShape {
        /// Index of the offending graph in the dataset.
        graph: usize,
        /// Expected `(rows, cols)`: one row per vertex, model-dim cols.
        expected: (usize, usize),
        /// The feature matrix's actual shape.
        found: (usize, usize),
    },
    /// A graph's feature matrix contained NaN or infinite entries.
    NonFiniteFeatures {
        /// Index of the offending graph in the dataset.
        graph: usize,
    },
    /// The model's parameters were already non-finite before training.
    NonFiniteParameters,
    /// A resume checkpoint failed validation against the current model
    /// or dataset (config mismatch, bad shapes, inconsistent epoch
    /// counters).
    InvalidCheckpoint {
        /// What the validation found.
        reason: String,
    },
    /// The periodic checkpoint sink failed to persist a checkpoint; the
    /// run was stopped rather than continuing without durability.
    CheckpointWrite {
        /// Epoch (1-based completed-epoch count) being checkpointed.
        epoch: usize,
        /// The sink's error message.
        reason: String,
    },
    /// Every retry restored the best checkpoint and re-seeded, yet the
    /// anomaly persisted; training stopped with the budget exhausted.
    RetriesExhausted {
        /// Epoch (0-based) at which the final anomaly occurred.
        epoch: usize,
        /// Number of recovery attempts that were made.
        retries: usize,
        /// The final anomaly.
        cause: AnomalyCause,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "training needs at least one graph"),
            TrainError::FeatureShape { graph, expected, found } => write!(
                f,
                "graph {graph}: feature matrix is {found:?}, expected {expected:?} \
                 (one row per vertex, one column per model dimension)"
            ),
            TrainError::NonFiniteFeatures { graph } => {
                write!(f, "graph {graph}: feature matrix contains non-finite values")
            }
            TrainError::NonFiniteParameters => {
                write!(f, "model parameters are non-finite before training")
            }
            TrainError::InvalidCheckpoint { reason } => {
                write!(f, "resume checkpoint rejected: {reason}")
            }
            TrainError::CheckpointWrite { epoch, reason } => {
                write!(f, "failed to persist checkpoint at epoch {epoch}: {reason}")
            }
            TrainError::RetriesExhausted { epoch, retries, cause } => write!(
                f,
                "training unrecoverable at epoch {epoch} after {retries} checkpoint-restore \
                 retries: {cause}"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// Error returned by [`GnnModel::try_embed`](crate::GnnModel::try_embed).
#[derive(Debug, Clone, PartialEq)]
pub enum EmbedError {
    /// Feature column count disagrees with the model dimension.
    FeatureDim {
        /// The model dimension.
        expected: usize,
        /// The feature matrix's column count.
        found: usize,
    },
    /// Feature row count disagrees with the graph's vertex count.
    FeatureRows {
        /// The graph's vertex count.
        expected: usize,
        /// The feature matrix's row count.
        found: usize,
    },
    /// The feature matrix contains NaN or infinite entries.
    NonFiniteFeatures,
    /// The model's parameters contain NaN or infinite entries (e.g. a
    /// corrupt weight file slipped through, or training blew up).
    NonFiniteParameters,
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::FeatureDim { expected, found } => {
                write!(f, "feature dimension {found} does not match the model dimension {expected}")
            }
            EmbedError::FeatureRows { expected, found } => {
                write!(f, "feature matrix has {found} rows for a graph of {expected} vertices")
            }
            EmbedError::NonFiniteFeatures => write!(f, "feature matrix contains non-finite values"),
            EmbedError::NonFiniteParameters => {
                write!(f, "model parameters contain non-finite values")
            }
        }
    }
}

impl std::error::Error for EmbedError {}
