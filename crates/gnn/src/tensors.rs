//! Tensor form of a circuit multigraph: one sparse adjacency operator
//! per edge type, plus the neighbour lists the loss needs.

use std::sync::Arc;

use ancstr_graph::HetMultigraph;
use ancstr_netlist::PortType;
use ancstr_nn::SparseMatrix;

/// The multigraph converted to the operators Eq. 1 consumes.
///
/// `adjacency[τ][v, u]` counts edges `(u, v, τ)`, so the aggregated
/// message matrix is `Σ_τ A_τ · (H · W_τ)` — parallel edges contribute
/// multiple times, exactly as the Eq. 1 sum over `N_in(v)` does when a
/// neighbour connects through several nets.
///
/// Operators are held behind `Arc` so every tape recorded over this
/// graph shares the same [`SparseMatrix`] instances — and therefore the
/// same lazily built CSR views, constructed once per graph instead of
/// once per forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphTensors {
    n: usize,
    adjacency: Vec<Arc<SparseMatrix>>,
    in_neighbors: Vec<Vec<usize>>,
    in_degree: Vec<usize>,
}

impl GraphTensors {
    /// Convert a multigraph.
    pub fn from_multigraph(g: &HetMultigraph) -> GraphTensors {
        let n = g.vertex_count();
        let mut triplets: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); PortType::COUNT];
        for e in g.edges() {
            triplets[e.port.index()].push((e.dst.0, e.src.0, 1.0));
        }
        let adjacency = triplets
            .into_iter()
            .map(|t| Arc::new(SparseMatrix::from_triplets(n, n, t)))
            .collect();
        let in_neighbors: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                g.in_neighbors(ancstr_graph::VertexId(v))
                    .into_iter()
                    .map(|u| u.0)
                    .collect()
            })
            .collect();
        let in_degree = (0..n)
            .map(|v| g.in_degree(ancstr_graph::VertexId(v)))
            .collect();
        GraphTensors { n, adjacency, in_neighbors, in_degree }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The adjacency operator for one edge type.
    pub fn adjacency(&self, port: PortType) -> &SparseMatrix {
        &self.adjacency[port.index()]
    }

    /// The adjacency operator as a shared handle — what
    /// [`Tape::sparse`](ancstr_nn::Tape::sparse) wants, so repeated
    /// forward passes reuse one operator (and its cached CSR views)
    /// instead of cloning the triplets per pass.
    pub fn adjacency_shared(&self, port: PortType) -> Arc<SparseMatrix> {
        Arc::clone(&self.adjacency[port.index()])
    }

    /// Distinct 1-hop in-neighbours of `v` (the positive-pair set of
    /// Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_neighbors(&self, v: usize) -> &[usize] {
        &self.in_neighbors[v]
    }

    /// In-degree of `v` with parallel edges counted (negative-sampling
    /// weight basis).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_degree[v]
    }

    /// Total number of typed edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(|a| a.nnz()).sum()
    }

    /// Fuse independent graphs into one: part `k`'s vertices are
    /// renumbered by the cumulative vertex count of the parts before
    /// it, and each edge type's adjacency becomes the block-diagonal
    /// assembly of the per-part operators.
    ///
    /// No edges cross part boundaries, so a forward pass over the fused
    /// tensors with vertically stacked features computes each part's
    /// rows exactly as a solo pass would — this is what makes batched
    /// inference byte-identical to per-request inference (see
    /// [`GnnModel::embed_batch`](crate::GnnModel::embed_batch)).
    pub fn block_diagonal(parts: &[&GraphTensors]) -> GraphTensors {
        let n = parts.iter().map(|p| p.n).sum();
        let adjacency = (0..PortType::COUNT)
            .map(|t| {
                let blocks: Vec<&SparseMatrix> =
                    parts.iter().map(|p| &*p.adjacency[t]).collect();
                Arc::new(SparseMatrix::block_diagonal(&blocks))
            })
            .collect();
        let mut in_neighbors = Vec::with_capacity(n);
        let mut in_degree = Vec::with_capacity(n);
        let mut off = 0;
        for p in parts {
            for v in 0..p.n {
                in_neighbors
                    .push(p.in_neighbors[v].iter().map(|&u| u + off).collect());
                in_degree.push(p.in_degree[v]);
            }
            off += p.n;
        }
        GraphTensors { n, adjacency, in_neighbors, in_degree }
    }

    /// A *sampled* view for one training pass: every vertex keeps at
    /// most `max_in` incoming edges (uniformly chosen across all edge
    /// types), GraphSAGE-style. The paper describes its aggregator as
    /// "sample and aggregate the neighboring features"; full
    /// aggregation is the `max_in = ∞` limit, and the trainer exposes
    /// this knob for the sampling ablation.
    ///
    /// Neighbour lists and degrees (used by the loss) are kept from the
    /// full graph so positive pairs are unaffected; only the message
    /// operator is sparsified.
    pub fn sampled(&self, max_in: usize, rng: &mut impl rand::Rng) -> GraphTensors {
        use rand::seq::SliceRandom;
        // Collect each vertex's incoming triplets across types.
        let mut incoming: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); self.n];
        for (t, adj) in self.adjacency.iter().enumerate() {
            for &(dst, src, w) in adj.triplets() {
                incoming[dst].push((t, src, w));
            }
        }
        let mut triplets: Vec<Vec<(usize, usize, f64)>> =
            vec![Vec::new(); self.adjacency.len()];
        for (v, mut edges) in incoming.into_iter().enumerate() {
            if edges.len() > max_in {
                edges.shuffle(rng);
                edges.truncate(max_in);
            }
            for (t, u, w) in edges {
                triplets[t].push((v, u, w));
            }
        }
        GraphTensors {
            n: self.n,
            adjacency: triplets
                .into_iter()
                .map(|t| Arc::new(SparseMatrix::from_triplets(self.n, self.n, t)))
                .collect(),
            in_neighbors: self.in_neighbors.clone(),
            in_degree: self.in_degree.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_graph::VertexId;

    fn sample() -> GraphTensors {
        let mut g = HetMultigraph::with_vertices(0..3);
        g.add_edge(VertexId(0), VertexId(1), PortType::Drain);
        g.add_edge(VertexId(1), VertexId(0), PortType::Gate);
        g.add_edge(VertexId(2), VertexId(1), PortType::Drain);
        g.add_edge(VertexId(0), VertexId(1), PortType::Drain); // parallel
        GraphTensors::from_multigraph(&g)
    }

    #[test]
    fn adjacency_splits_by_type_and_counts_multiplicity() {
        let t = sample();
        let drain = t.adjacency(PortType::Drain).to_dense();
        assert_eq!(drain[(1, 0)], 2.0); // two parallel drain edges 0→1
        assert_eq!(drain[(1, 2)], 1.0);
        let gate = t.adjacency(PortType::Gate).to_dense();
        assert_eq!(gate[(0, 1)], 1.0);
        assert_eq!(t.adjacency(PortType::Source).nnz(), 0);
        assert_eq!(t.edge_count(), 4);
    }

    #[test]
    fn sampling_caps_in_edges_but_keeps_loss_structure() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut g = HetMultigraph::with_vertices(0..5);
        for u in 1..5 {
            g.add_edge(VertexId(u), VertexId(0), PortType::Drain);
            g.add_edge(VertexId(u), VertexId(0), PortType::Gate);
        }
        let t = GraphTensors::from_multigraph(&g);
        assert_eq!(t.edge_count(), 8);
        let mut rng = StdRng::seed_from_u64(4);
        let s = t.sampled(3, &mut rng);
        // Vertex 0 keeps at most 3 incoming messages.
        let kept: usize = PortType::ALL
            .iter()
            .map(|&p| s.adjacency(p).triplets().iter().filter(|t| t.0 == 0).count())
            .sum();
        assert_eq!(kept, 3);
        // Positive pairs / degrees come from the full graph.
        assert_eq!(s.in_neighbors(0), t.in_neighbors(0));
        assert_eq!(s.in_degree(0), t.in_degree(0));
        // Sampling below the cap is the identity.
        let id = t.sampled(100, &mut rng);
        assert_eq!(id.edge_count(), t.edge_count());
    }

    #[test]
    fn block_diagonal_offsets_vertices_and_crosses_no_edges() {
        let a = sample(); // 3 vertices, 4 edges
        let mut g = HetMultigraph::with_vertices(0..2);
        g.add_edge(VertexId(1), VertexId(0), PortType::Source);
        let b = GraphTensors::from_multigraph(&g);
        let fused = GraphTensors::block_diagonal(&[&a, &b]);
        assert_eq!(fused.vertex_count(), 5);
        assert_eq!(fused.edge_count(), a.edge_count() + b.edge_count());
        // Part A's structure is untouched; part B's shifts by 3.
        assert_eq!(fused.adjacency(PortType::Drain).to_dense()[(1, 0)], 2.0);
        assert_eq!(fused.adjacency(PortType::Source).to_dense()[(3, 4)], 1.0);
        assert_eq!(fused.in_neighbors(1), &[0, 2]);
        assert_eq!(fused.in_neighbors(3), &[4]);
        assert_eq!(fused.in_degree(1), 3);
        // No adjacency entry crosses the 3/2 block boundary.
        for p in PortType::ALL {
            for &(dst, src, _) in fused.adjacency(p).triplets() {
                assert_eq!(dst < 3, src < 3, "edge {src}->{dst} crosses parts");
            }
        }
    }

    #[test]
    fn neighbor_lists_deduplicate_but_degrees_do_not() {
        let t = sample();
        assert_eq!(t.in_neighbors(1), &[0, 2]);
        assert_eq!(t.in_degree(1), 3);
        assert_eq!(t.in_neighbors(2), &[] as &[usize]);
        assert_eq!(t.vertex_count(), 3);
    }
}
