//! The warm model registry: trained [`GnnModel`]s loaded once, shared
//! by every worker, hot-swappable while requests are in flight.
//!
//! AncstrGNN is inductive (paper Section IV-C): a model trained once on
//! a corpus generalizes to unseen netlists, so the expensive part —
//! loading and validating weights — should happen once per model, not
//! once per request. A fleet node serves *several* models at once (one
//! per PDK or circuit family), so the registry is keyed by model
//! fingerprint with LRU eviction: requests route to a model via the
//! `x-ancstr-model` header and fall back to the default entry. Each
//! resident model carries its own [`ModelHealth`] bulkhead — a
//! per-model circuit breaker that sheds *that model's* cold traffic
//! after repeated pipeline failures while every other model keeps
//! serving. Requests grab a cheap [`Arc`] snapshot and keep using it
//! even if an operator swaps or evicts the model mid-flight, so a
//! reload never corrupts an in-progress extraction. Reloads go through
//! the checksummed envelope ([`GnnModel::from_text_checksummed`]) — an
//! HTTP body is exactly the kind of transport where truncation and bit
//! rot happen, and the seal turns both into clean `400`s instead of
//! silently-wrong constraint sets.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ancstr_core::{ExtractError, ExtractorConfig, SymmetryExtractor};
use ancstr_gnn::GnnModel;
use ancstr_netlist::{parse::parse_spice, FlatCircuit};

/// The tiny built-in circuit the canary inference runs against before a
/// hot-swapped model is committed: a cross-coupled pair any usable
/// model must embed to finite vectors. Cheap enough (5 devices) to run
/// on every reload.
const CANARY_NETLIST: &str = "\
.subckt canary q qb en vdd vss
M1 q qb tail vss nch w=4u l=0.2u
M2 qb q tail vss nch w=4u l=0.2u
M3 q qb vdd vdd pch w=8u l=0.2u
M4 qb q vdd vdd pch w=8u l=0.2u
M5 tail en vss vss nch w=2u l=0.5u
.ends
";

/// Consecutive pipeline failures that trip a model's bulkhead breaker.
pub const BULKHEAD_TRIP_AFTER: u32 = 3;

/// While tripped, every Nth shed cold request is admitted as a probe —
/// a deterministic, clock-free half-open state: a healthy probe closes
/// the breaker, a failing one re-arms the rejection window.
pub const BULKHEAD_PROBE_EVERY: u64 = 8;

/// Default number of resident model slots.
pub const DEFAULT_MODEL_SLOTS: usize = 8;

/// One loaded model and the extractor built around it.
pub struct ModelEntry {
    /// The warm extractor (model + configuration), shared read-only.
    pub extractor: SymmetryExtractor,
    /// [`GnnModel::fingerprint`] of the loaded weights — part of every
    /// cache key, so a swap implicitly invalidates cached replies.
    pub fingerprint: u64,
    /// Where the weights came from (file path or reload peer), for
    /// `/healthz` and logs.
    pub source: String,
    /// Monotonic reload counter: 1 for the boot model, +1 per swap.
    pub generation: u64,
}

impl ModelEntry {
    /// The fingerprint as fixed-width hex (the form used in JSON
    /// replies, the `x-ancstr-model` routing header, and metrics
    /// labels).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}

/// Per-model failure bulkhead: a circuit breaker scoped to one resident
/// model, so a poisoned model sheds *its own* cold traffic (`503`)
/// while batch-mates behind other fingerprints keep serving. Cache hits
/// bypass the bulkhead entirely — a tripped breaker guards pipeline
/// execution, not already-computed bytes.
#[derive(Debug, Default)]
pub struct ModelHealth {
    consecutive_failures: AtomicU32,
    tripped: AtomicBool,
    trips_total: AtomicU64,
    shed_total: AtomicU64,
    probe_ticket: AtomicU64,
}

impl ModelHealth {
    /// Record a successful pipeline run: resets the failure streak and
    /// closes the breaker (a probe that succeeds heals the model).
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        self.tripped.store(false, Ordering::SeqCst);
    }

    /// Record a 500-class pipeline failure; trips the breaker after
    /// [`BULKHEAD_TRIP_AFTER`] consecutive failures.
    pub fn record_failure(&self) {
        let n = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= BULKHEAD_TRIP_AFTER && !self.tripped.swap(true, Ordering::SeqCst) {
            self.trips_total.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Admission decision for a *cold* (cache-missing) request against
    /// this model. Open breaker → admit. Tripped breaker → shed, except
    /// that every [`BULKHEAD_PROBE_EVERY`]th decision is admitted as a
    /// half-open probe. Deterministic: the probe cadence is a counter,
    /// not a clock.
    pub fn admit_cold(&self) -> bool {
        if !self.tripped.load(Ordering::SeqCst) {
            return true;
        }
        let ticket = self.probe_ticket.fetch_add(1, Ordering::SeqCst);
        if ticket % BULKHEAD_PROBE_EVERY == BULKHEAD_PROBE_EVERY - 1 {
            return true;
        }
        self.shed_total.fetch_add(1, Ordering::SeqCst);
        false
    }

    /// Whether the breaker is currently tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }

    /// Total trips (closed → open transitions).
    pub fn trips_total(&self) -> u64 {
        self.trips_total.load(Ordering::SeqCst)
    }

    /// Total cold requests shed by this bulkhead.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::SeqCst)
    }
}

/// One registry slot: the immutable entry plus its mutable health.
#[derive(Clone)]
pub struct ModelSlot {
    /// The loaded model entry.
    pub entry: Arc<ModelEntry>,
    /// The per-model bulkhead breaker.
    pub health: Arc<ModelHealth>,
}

/// Point-in-time health summary of one resident model, for
/// `/healthz/ready` and `/metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSummary {
    /// Fixed-width hex fingerprint.
    pub fingerprint: String,
    /// Reload generation.
    pub generation: u64,
    /// Whether this is the default (headerless) routing target.
    pub is_default: bool,
    /// Whether the bulkhead breaker is tripped.
    pub tripped: bool,
    /// Cold requests shed by this model's bulkhead.
    pub shed_total: u64,
    /// Breaker trips for this model.
    pub trips_total: u64,
}

/// Why an `x-ancstr-model` routing header could not be honoured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The header is not a 16-hex-digit fingerprint.
    BadFingerprint(String),
    /// No resident model has that fingerprint (never loaded, or
    /// LRU-evicted).
    NotFound(String),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::BadFingerprint(s) => {
                write!(f, "x-ancstr-model must be a 16-digit hex fingerprint, got {s:?}")
            }
            ResolveError::NotFound(s) => write!(f, "no resident model with fingerprint {s}"),
        }
    }
}

/// Why a guarded hot-swap was refused. Either way the previous models
/// keep serving — a reload can never leave the daemon without a good
/// model.
#[derive(Debug, Clone, PartialEq)]
pub enum ReloadError {
    /// The circuit breaker is open for this exact body: an earlier
    /// upload of identical bytes already failed validation, so the
    /// artifact is quarantined and re-validation is skipped.
    BreakerOpen {
        /// FNV-64 of the quarantined body.
        key: u64,
    },
    /// Validation failed now (and the body was quarantined): the
    /// checksum seal, model parse, dimension check, or canary inference
    /// rejected it.
    Rejected {
        /// Which validation step refused the upload (`seal`, `build`,
        /// or `canary`).
        step: &'static str,
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::BreakerOpen { key } => write!(
                f,
                "circuit breaker open: this model body (key {key:016x}) already failed \
                 validation and is quarantined"
            ),
            ReloadError::Rejected { step, reason } => {
                write!(f, "model rejected at {step}: {reason}")
            }
        }
    }
}

/// Point-in-time circuit-breaker state, for readiness reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerState {
    /// Distinct quarantined upload bodies.
    pub quarantined: usize,
    /// Total guarded reloads refused (first rejections + breaker hits).
    pub rejected_total: u64,
}

/// Resident models keyed by fingerprint, with LRU recency tracking.
struct Models {
    /// fingerprint → slot.
    map: HashMap<u64, ModelSlot>,
    /// recency tick → fingerprint; the smallest tick is the LRU victim.
    order: BTreeMap<u64, u64>,
    /// fingerprint → its current recency tick.
    ticks: HashMap<u64, u64>,
    tick: u64,
    /// Fingerprint the headerless route resolves to (the most recently
    /// loaded model, matching the pre-fleet single-entry semantics).
    default_fp: u64,
}

impl Models {
    fn touch(&mut self, fp: u64) {
        self.tick += 1;
        if let Some(old) = self.ticks.insert(fp, self.tick) {
            self.order.remove(&old);
        }
        self.order.insert(self.tick, fp);
    }
}

/// Shared registry of the resident models.
pub struct ModelRegistry {
    models: Mutex<Models>,
    capacity: usize,
    evictions: AtomicU64,
    generation: AtomicU64,
    /// FNV-64 keys of upload bodies that already failed validation;
    /// identical re-uploads are refused without re-validating.
    quarantined: Mutex<HashSet<u64>>,
    rejected_total: AtomicU64,
}

fn entry_from_model(
    model: GnnModel,
    source: &str,
    generation: u64,
) -> Result<ModelEntry, ExtractError> {
    let fingerprint = model.fingerprint();
    let extractor = SymmetryExtractor::try_new(ExtractorConfig::default())?.with_model(model)?;
    Ok(ModelEntry { extractor, fingerprint, source: source.to_owned(), generation })
}

/// Whether `text` carries the checksummed artifact envelope.
fn is_sealed(text: &str) -> bool {
    text.lines().next_back().is_some_and(|l| l.starts_with("ancstr-seal "))
}

/// FNV-1a 64 over the raw upload body — the quarantine key. Hashing
/// the *bytes* (not a parsed fingerprint) means even un-parseable
/// bodies get a stable identity the breaker can pin.
fn body_key(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// First-inference check: the candidate extractor must produce a clean
/// extraction of the built-in canary circuit — no error *and* no
/// quarantined devices (non-finite embeddings). Catches models that
/// deserialize fine but are numerically unusable, before any client
/// traffic sees them.
fn canary_check(extractor: &SymmetryExtractor) -> Result<(), String> {
    let netlist = parse_spice(CANARY_NETLIST).expect("built-in canary netlist parses");
    let flat = FlatCircuit::elaborate(&netlist).expect("built-in canary netlist elaborates");
    let extraction = extractor
        .try_extract(&flat)
        .map_err(|e| format!("canary inference failed: {e}"))?;
    if !extraction.detection.warnings.is_empty() {
        return Err(format!(
            "canary inference quarantined {} device(s) (non-finite embeddings)",
            extraction.detection.warnings.len()
        ));
    }
    Ok(())
}

impl ModelRegistry {
    /// Load the boot model from serialized text with the default slot
    /// capacity. Accepts both the plain [`GnnModel::to_text`] form
    /// (what `ancstr train` writes) and the sealed
    /// [`GnnModel::to_text_checksummed`] envelope; a present seal is
    /// always verified.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Model`] on malformed or corrupt text,
    /// [`ExtractError::ModelDim`] when the weights do not fit the
    /// Table II feature width.
    pub fn load(text: &str, source: &str) -> Result<ModelRegistry, ExtractError> {
        ModelRegistry::load_with_slots(text, source, DEFAULT_MODEL_SLOTS)
    }

    /// [`ModelRegistry::load`] with an explicit resident-model capacity
    /// (`--model-slots`). The boot model occupies one slot and, as the
    /// default routing target, is never the LRU victim.
    ///
    /// # Errors
    ///
    /// Those of [`ModelRegistry::load`].
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn load_with_slots(
        text: &str,
        source: &str,
        slots: usize,
    ) -> Result<ModelRegistry, ExtractError> {
        assert!(slots > 0, "the registry needs at least one model slot");
        let model = if is_sealed(text) {
            GnnModel::from_text_checksummed(text)?
        } else {
            GnnModel::from_text(text)?
        };
        let entry = Arc::new(entry_from_model(model, source, 1)?);
        let fp = entry.fingerprint;
        let mut models = Models {
            map: HashMap::new(),
            order: BTreeMap::new(),
            ticks: HashMap::new(),
            tick: 0,
            default_fp: fp,
        };
        models.map.insert(fp, ModelSlot { entry, health: Arc::new(ModelHealth::default()) });
        models.touch(fp);
        Ok(ModelRegistry {
            models: Mutex::new(models),
            capacity: slots,
            evictions: AtomicU64::new(0),
            generation: AtomicU64::new(1),
            quarantined: Mutex::new(HashSet::new()),
            rejected_total: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Models> {
        self.models.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of the default model (the headerless routing target).
    /// The `Arc` keeps the snapshot alive across a concurrent swap or
    /// eviction, so a request never observes a half-replaced model.
    pub fn current(&self) -> Arc<ModelEntry> {
        let models = self.lock();
        Arc::clone(&models.map[&models.default_fp].entry)
    }

    /// Look up a resident model by fingerprint, refreshing its LRU
    /// recency on a hit.
    pub fn get(&self, fingerprint: u64) -> Option<ModelSlot> {
        let mut models = self.lock();
        let slot = models.map.get(&fingerprint).cloned()?;
        models.touch(fingerprint);
        Some(slot)
    }

    /// Resolve an `x-ancstr-model` routing header to a resident model.
    /// An absent header routes to the default entry; a present one must
    /// be the 16-hex-digit fingerprint of a resident model.
    ///
    /// # Errors
    ///
    /// [`ResolveError::BadFingerprint`] for a malformed header,
    /// [`ResolveError::NotFound`] for an unknown or evicted model.
    pub fn resolve(&self, header: Option<&str>) -> Result<ModelSlot, ResolveError> {
        let Some(raw) = header else {
            let mut models = self.lock();
            let fp = models.default_fp;
            let slot = models.map[&fp].clone();
            models.touch(fp);
            return Ok(slot);
        };
        let trimmed = raw.trim();
        let fp = (trimmed.len() == 16)
            .then(|| u64::from_str_radix(trimmed, 16).ok())
            .flatten()
            .ok_or_else(|| ResolveError::BadFingerprint(trimmed.to_owned()))?;
        self.get(fp).ok_or_else(|| ResolveError::NotFound(format!("{fp:016x}")))
    }

    /// Insert `entry` as a resident model and make it the new default,
    /// LRU-evicting non-default entries beyond capacity. Re-inserting a
    /// resident fingerprint refreshes its entry (new generation/source)
    /// but keeps its health history — a re-upload does not launder a
    /// tripped bulkhead.
    fn install(&self, entry: Arc<ModelEntry>) {
        let mut models = self.lock();
        let fp = entry.fingerprint;
        match models.map.get_mut(&fp) {
            Some(slot) => slot.entry = entry,
            None => {
                models
                    .map
                    .insert(fp, ModelSlot { entry, health: Arc::new(ModelHealth::default()) });
            }
        }
        models.default_fp = fp;
        models.touch(fp);
        while models.map.len() > self.capacity {
            let victim = models
                .order
                .iter()
                .map(|(_, &f)| f)
                .find(|&f| f != models.default_fp);
            let Some(victim) = victim else { break };
            models.map.remove(&victim);
            if let Some(tick) = models.ticks.remove(&victim) {
                models.order.remove(&tick);
            }
            self.evictions.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Number of resident models.
    pub fn resident(&self) -> usize {
        self.lock().map.len()
    }

    /// Total LRU evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::SeqCst)
    }

    /// Health summaries of every resident model, sorted by fingerprint
    /// for stable `/healthz` and `/metrics` output.
    pub fn models(&self) -> Vec<ModelSummary> {
        let models = self.lock();
        let mut out: Vec<ModelSummary> = models
            .map
            .iter()
            .map(|(&fp, slot)| ModelSummary {
                fingerprint: format!("{fp:016x}"),
                generation: slot.entry.generation,
                is_default: fp == models.default_fp,
                tripped: slot.health.is_tripped(),
                shed_total: slot.health.shed_total(),
                trips_total: slot.health.trips_total(),
            })
            .collect();
        out.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
        out
    }

    /// Hot-load a model from a **sealed** artifact
    /// ([`GnnModel::to_text_checksummed`]) and make it the default.
    /// The strictness is the point: reload bodies travel over the
    /// network, and the CRC-32 seal converts truncation, bit flips, and
    /// version skew into typed rejections before any routing changes.
    /// On any error the previous models keep serving.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Model`] when the envelope or payload is invalid,
    /// [`ExtractError::ModelDim`] on a dimension mismatch.
    pub fn reload_sealed(&self, text: &str, source: &str) -> Result<Arc<ModelEntry>, ExtractError> {
        let model = GnnModel::from_text_checksummed(text)?;
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let entry = Arc::new(entry_from_model(model, source, generation)?);
        self.install(Arc::clone(&entry));
        Ok(entry)
    }

    /// [`ModelRegistry::reload_sealed`] behind a circuit breaker and a
    /// canary inference. Validation runs **before** the install:
    /// checksum seal → model build → first inference on the built-in
    /// canary circuit. Any failure quarantines the upload body (by byte
    /// hash), leaves the resident models serving, and opens the breaker
    /// for that exact body — an identical re-upload is refused
    /// immediately without re-running validation. This is the path
    /// `POST /v1/models` uses.
    ///
    /// # Errors
    ///
    /// [`ReloadError::BreakerOpen`] for a quarantined body,
    /// [`ReloadError::Rejected`] when validation fails now.
    pub fn reload_guarded(&self, text: &str, source: &str) -> Result<Arc<ModelEntry>, ReloadError> {
        let key = body_key(text);
        if self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).contains(&key) {
            self.rejected_total.fetch_add(1, Ordering::SeqCst);
            return Err(ReloadError::BreakerOpen { key });
        }
        let reject = |step: &'static str, reason: String| {
            self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).insert(key);
            self.rejected_total.fetch_add(1, Ordering::SeqCst);
            ReloadError::Rejected { step, reason }
        };
        let model = GnnModel::from_text_checksummed(text)
            .map_err(|e| reject("seal", e.to_string()))?;
        // Build with a placeholder generation; the real one is assigned
        // only at commit, so failed validations never burn a number.
        let candidate = entry_from_model(model, source, 0)
            .map_err(|e| reject("build", e.to_string()))?;
        canary_check(&candidate.extractor).map_err(|reason| reject("canary", reason))?;
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let entry = Arc::new(ModelEntry { generation, ..candidate });
        self.install(Arc::clone(&entry));
        Ok(entry)
    }

    /// Current circuit-breaker state, for `/healthz/ready` and metrics.
    pub fn breaker(&self) -> BreakerState {
        BreakerState {
            quarantined: self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).len(),
            rejected_total: self.rejected_total.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_gnn::GnnConfig;

    fn model(seed: u64) -> GnnModel {
        GnnModel::new(GnnConfig {
            dim: ancstr_core::FEATURE_DIM,
            layers: 2,
            seed,
            ..GnnConfig::default()
        })
    }

    #[test]
    fn loads_plain_and_sealed_boot_models() {
        let m = model(3);
        for text in [m.to_text(), m.to_text_checksummed()] {
            let reg = ModelRegistry::load(&text, "boot").unwrap();
            let entry = reg.current();
            assert_eq!(entry.fingerprint, m.fingerprint());
            assert_eq!(entry.generation, 1);
            assert_eq!(entry.source, "boot");
            assert_eq!(reg.resident(), 1);
        }
    }

    #[test]
    fn boot_load_rejects_garbage_and_corrupt_seals() {
        assert!(ModelRegistry::load("not a model", "x").is_err());
        let sealed = model(3).to_text_checksummed();
        let tampered = sealed.replacen("0.", "1.", 1);
        assert!(ModelRegistry::load(&tampered, "x").is_err());
    }

    #[test]
    fn reload_swaps_atomically_and_keeps_old_snapshots_alive() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let before = reg.current();
        let swapped = reg.reload_sealed(&model(4).to_text_checksummed(), "peer").unwrap();
        assert_eq!(swapped.generation, 2);
        assert_ne!(swapped.fingerprint, before.fingerprint);
        assert_eq!(reg.current().fingerprint, swapped.fingerprint);
        // The pre-swap snapshot still works (no use-after-swap hazard).
        assert_eq!(before.generation, 1);
        // Both models stay resident and routable.
        assert_eq!(reg.resident(), 2);
        assert!(reg.get(before.fingerprint).is_some());
    }

    /// `ModelEntry` holds a live extractor and has no `Debug`, so
    /// `unwrap_err` does not apply; this is the moral equivalent.
    fn reload_err(reg: &ModelRegistry, text: &str) -> ReloadError {
        match reg.reload_guarded(text, "peer") {
            Ok(_) => panic!("expected the reload to be rejected"),
            Err(err) => err,
        }
    }

    #[test]
    fn guarded_reload_swaps_a_good_model() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let entry = reg.reload_guarded(&model(4).to_text_checksummed(), "peer").unwrap();
        assert_eq!(entry.generation, 2);
        assert_eq!(reg.current().fingerprint, entry.fingerprint);
        assert_eq!(reg.breaker(), BreakerState::default());
    }

    #[test]
    fn guarded_reload_quarantines_and_opens_the_breaker() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let good_fp = reg.current().fingerprint;
        let tampered = model(4).to_text_checksummed().replacen("0.", "1.", 1);

        // First upload: validated, rejected, quarantined.
        let err = reload_err(&reg, &tampered);
        assert!(matches!(err, ReloadError::Rejected { step: "seal", .. }), "{err}");

        // Identical re-upload: the breaker answers without re-validating.
        let err = reload_err(&reg, &tampered);
        assert!(matches!(err, ReloadError::BreakerOpen { .. }), "{err}");
        assert_eq!(reg.breaker(), BreakerState { quarantined: 1, rejected_total: 2 });

        // The last good model never stopped serving.
        assert_eq!(reg.current().fingerprint, good_fp);
        assert_eq!(reg.current().generation, 1);
    }

    #[test]
    fn failed_validation_burns_no_generation_numbers() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let _ = reload_err(&reg, "garbage");
        let _ = reload_err(&reg, &model(5).to_text()); // unsealed
        let entry = reg.reload_guarded(&model(4).to_text_checksummed(), "peer").unwrap();
        assert_eq!(entry.generation, 2, "rejections must not consume generations");
    }

    #[test]
    fn canary_rejects_a_numerically_poisoned_extractor() {
        // Poisoned weights (not representable in a sealed upload — the
        // parser rejects NaN) still cannot sneak past the canary, which
        // guards the semantic gap between "deserializes" and "serves".
        let mut poisoned = model(9);
        poisoned.matrices_mut()[0][(0, 0)] = f64::NAN;
        let ex = SymmetryExtractor::new(ExtractorConfig::default())
            .with_model(poisoned)
            .unwrap();
        let err = canary_check(&ex).unwrap_err();
        assert!(err.contains("canary inference failed"), "{err}");
        // A healthy extractor passes.
        let ok = SymmetryExtractor::new(ExtractorConfig::default())
            .with_model(model(9))
            .unwrap();
        assert!(canary_check(&ok).is_ok());
    }

    #[test]
    fn guarded_reload_runs_the_canary_on_parseable_models() {
        // Finite but adversarial weights: ±1e308 in the same dot
        // product overflows to inf − inf = NaN during inference. The
        // seal verifies and the model parses — only the canary's first
        // inference can catch it.
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let mut bad = model(4);
        for m in bad.matrices_mut() {
            let (rows, cols) = m.shape();
            for r in 0..rows {
                for c in 0..cols {
                    m[(r, c)] = if (r + c) % 2 == 0 { 1e308 } else { -1e308 };
                }
            }
        }
        let err = reload_err(&reg, &bad.to_text_checksummed());
        assert!(
            matches!(err, ReloadError::Rejected { step: "canary", .. }),
            "expected a canary rejection, got: {err}"
        );
        assert_eq!(reg.current().generation, 1, "rollback to the last good generation");
        assert_eq!(reg.breaker().quarantined, 1);
    }

    #[test]
    fn reload_requires_the_sealed_envelope() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let err = reg
            .reload_sealed(&model(4).to_text(), "peer")
            .map(|e| e.generation)
            .unwrap_err();
        assert!(matches!(err, ExtractError::Model(_)), "{err}");
        // The failed reload left the boot model serving.
        assert_eq!(reg.current().generation, 1);
    }

    #[test]
    fn routing_header_resolves_fingerprints_and_rejects_garbage() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let boot_fp = reg.current().fingerprint;
        let other = reg.reload_sealed(&model(4).to_text_checksummed(), "peer").unwrap();

        // Headerless → default (the most recent install).
        assert_eq!(reg.resolve(None).unwrap().entry.fingerprint, other.fingerprint);
        // Explicit fingerprint → that model, even though it is no
        // longer the default.
        let hex = format!("{boot_fp:016x}");
        assert_eq!(reg.resolve(Some(&hex)).unwrap().entry.fingerprint, boot_fp);
        // Malformed and unknown fingerprints are typed errors.
        let bad = reg.resolve(Some("zz")).err().expect("malformed header rejected");
        assert!(matches!(bad, ResolveError::BadFingerprint(_)), "{bad}");
        let missing = reg
            .resolve(Some("00000000000000aa"))
            .err()
            .expect("unknown fingerprint rejected");
        assert!(matches!(missing, ResolveError::NotFound(_)), "{missing}");
    }

    #[test]
    fn lru_eviction_spares_the_default_model() {
        let reg = ModelRegistry::load_with_slots(&model(3).to_text(), "boot", 2).unwrap();
        let boot_fp = reg.current().fingerprint;
        let second = reg.reload_sealed(&model(4).to_text_checksummed(), "p").unwrap();
        assert_eq!(reg.resident(), 2);
        // Touch the boot model so the *second* model is the LRU entry…
        assert!(reg.get(boot_fp).is_some());
        // …but the third install makes itself default, so the LRU
        // victim among non-defaults is chosen: boot was touched last,
        // second is evicted.
        let third = reg.reload_sealed(&model(5).to_text_checksummed(), "p").unwrap();
        assert_eq!(reg.resident(), 2);
        assert_eq!(reg.evictions(), 1);
        assert!(reg.get(second.fingerprint).is_none(), "LRU victim evicted");
        assert!(reg.get(boot_fp).is_some());
        assert_eq!(reg.current().fingerprint, third.fingerprint);
    }

    #[test]
    fn bulkhead_trips_after_consecutive_failures_and_probes_deterministically() {
        let health = ModelHealth::default();
        assert!(health.admit_cold(), "fresh breakers admit");
        health.record_failure();
        health.record_failure();
        assert!(!health.is_tripped(), "two failures stay below the trip threshold");
        assert!(health.admit_cold());
        health.record_failure();
        assert!(health.is_tripped(), "third consecutive failure trips");
        assert_eq!(health.trips_total(), 1);

        // Tripped: exactly one admission per PROBE_EVERY decisions.
        let admitted: Vec<bool> =
            (0..BULKHEAD_PROBE_EVERY * 2).map(|_| health.admit_cold()).collect();
        assert_eq!(admitted.iter().filter(|&&a| a).count(), 2, "{admitted:?}");
        assert_eq!(health.shed_total(), BULKHEAD_PROBE_EVERY * 2 - 2);

        // A successful probe closes the breaker and resets the streak.
        health.record_success();
        assert!(!health.is_tripped());
        assert!(health.admit_cold());
        health.record_failure();
        health.record_failure();
        assert!(!health.is_tripped(), "the streak restarted after success");
    }

    #[test]
    fn bulkheads_are_per_model_and_survive_reinstall() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let boot_fp = reg.current().fingerprint;
        let other = reg.reload_sealed(&model(4).to_text_checksummed(), "p").unwrap();

        // Trip the boot model's bulkhead only.
        let boot = reg.get(boot_fp).unwrap();
        for _ in 0..BULKHEAD_TRIP_AFTER {
            boot.health.record_failure();
        }
        assert!(reg.get(boot_fp).unwrap().health.is_tripped());
        assert!(
            !reg.get(other.fingerprint).unwrap().health.is_tripped(),
            "bulkheads are isolated per model"
        );

        // Re-installing the same weights must not launder the breaker.
        let again = reg.reload_sealed(&model(3).to_text_checksummed(), "p2").unwrap();
        assert_eq!(again.fingerprint, boot_fp);
        assert!(reg.get(boot_fp).unwrap().health.is_tripped());
        assert_eq!(reg.get(boot_fp).unwrap().entry.generation, 3, "entry was refreshed");

        let summaries = reg.models();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries.iter().filter(|s| s.is_default).count(), 1);
        assert_eq!(summaries.iter().filter(|s| s.tripped).count(), 1);
    }
}
