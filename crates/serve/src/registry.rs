//! The warm model registry: one trained [`GnnModel`] loaded once,
//! shared by every worker, hot-swappable while requests are in flight.
//!
//! AncstrGNN is inductive (paper Section IV-C): a model trained once on
//! a corpus generalizes to unseen netlists, so the expensive part —
//! loading and validating weights — should happen once per model, not
//! once per request. The registry holds the current
//! [`SymmetryExtractor`] behind an [`RwLock`]'d [`Arc`]; requests grab
//! a cheap snapshot and keep using it even if an operator swaps the
//! model mid-flight, so a reload never corrupts an in-progress
//! extraction. Reloads go through the checksummed envelope
//! ([`GnnModel::from_text_checksummed`]) — an HTTP body is exactly the
//! kind of transport where truncation and bit rot happen, and the seal
//! turns both into clean `400`s instead of silently-wrong constraint
//! sets.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use ancstr_core::{ExtractError, ExtractorConfig, SymmetryExtractor};
use ancstr_gnn::GnnModel;
use ancstr_netlist::{parse::parse_spice, FlatCircuit};

/// The tiny built-in circuit the canary inference runs against before a
/// hot-swapped model is committed: a cross-coupled pair any usable
/// model must embed to finite vectors. Cheap enough (5 devices) to run
/// on every reload.
const CANARY_NETLIST: &str = "\
.subckt canary q qb en vdd vss
M1 q qb tail vss nch w=4u l=0.2u
M2 qb q tail vss nch w=4u l=0.2u
M3 q qb vdd vdd pch w=8u l=0.2u
M4 qb q vdd vdd pch w=8u l=0.2u
M5 tail en vss vss nch w=2u l=0.5u
.ends
";

/// One loaded model and the extractor built around it.
pub struct ModelEntry {
    /// The warm extractor (model + configuration), shared read-only.
    pub extractor: SymmetryExtractor,
    /// [`GnnModel::fingerprint`] of the loaded weights — part of every
    /// cache key, so a swap implicitly invalidates cached replies.
    pub fingerprint: u64,
    /// Where the weights came from (file path or reload peer), for
    /// `/healthz` and logs.
    pub source: String,
    /// Monotonic reload counter: 1 for the boot model, +1 per swap.
    pub generation: u64,
}

impl ModelEntry {
    /// The fingerprint as fixed-width hex (the form used in JSON
    /// replies and metrics labels).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}

/// Why a guarded hot-swap was refused. Either way the previous model
/// keeps serving — a reload can never leave the daemon without a good
/// model.
#[derive(Debug, Clone, PartialEq)]
pub enum ReloadError {
    /// The circuit breaker is open for this exact body: an earlier
    /// upload of identical bytes already failed validation, so the
    /// artifact is quarantined and re-validation is skipped.
    BreakerOpen {
        /// FNV-64 of the quarantined body.
        key: u64,
    },
    /// Validation failed now (and the body was quarantined): the
    /// checksum seal, model parse, dimension check, or canary inference
    /// rejected it.
    Rejected {
        /// Which validation step refused the upload (`seal`, `build`,
        /// or `canary`).
        step: &'static str,
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::BreakerOpen { key } => write!(
                f,
                "circuit breaker open: this model body (key {key:016x}) already failed \
                 validation and is quarantined"
            ),
            ReloadError::Rejected { step, reason } => {
                write!(f, "model rejected at {step}: {reason}")
            }
        }
    }
}

/// Point-in-time circuit-breaker state, for readiness reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerState {
    /// Distinct quarantined upload bodies.
    pub quarantined: usize,
    /// Total guarded reloads refused (first rejections + breaker hits).
    pub rejected_total: u64,
}

/// Shared registry of the currently-serving model.
pub struct ModelRegistry {
    current: RwLock<Arc<ModelEntry>>,
    generation: AtomicU64,
    /// FNV-64 keys of upload bodies that already failed validation;
    /// identical re-uploads are refused without re-validating.
    quarantined: Mutex<HashSet<u64>>,
    rejected_total: AtomicU64,
}

fn entry_from_model(
    model: GnnModel,
    source: &str,
    generation: u64,
) -> Result<ModelEntry, ExtractError> {
    let fingerprint = model.fingerprint();
    let extractor = SymmetryExtractor::try_new(ExtractorConfig::default())?.with_model(model)?;
    Ok(ModelEntry { extractor, fingerprint, source: source.to_owned(), generation })
}

/// Whether `text` carries the checksummed artifact envelope.
fn is_sealed(text: &str) -> bool {
    text.lines().next_back().is_some_and(|l| l.starts_with("ancstr-seal "))
}

/// FNV-1a 64 over the raw upload body — the quarantine key. Hashing
/// the *bytes* (not a parsed fingerprint) means even un-parseable
/// bodies get a stable identity the breaker can pin.
fn body_key(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// First-inference check: the candidate extractor must produce a clean
/// extraction of the built-in canary circuit — no error *and* no
/// quarantined devices (non-finite embeddings). Catches models that
/// deserialize fine but are numerically unusable, before any client
/// traffic sees them.
fn canary_check(extractor: &SymmetryExtractor) -> Result<(), String> {
    let netlist = parse_spice(CANARY_NETLIST).expect("built-in canary netlist parses");
    let flat = FlatCircuit::elaborate(&netlist).expect("built-in canary netlist elaborates");
    let extraction = extractor
        .try_extract(&flat)
        .map_err(|e| format!("canary inference failed: {e}"))?;
    if !extraction.detection.warnings.is_empty() {
        return Err(format!(
            "canary inference quarantined {} device(s) (non-finite embeddings)",
            extraction.detection.warnings.len()
        ));
    }
    Ok(())
}

impl ModelRegistry {
    /// Load the boot model from serialized text. Accepts both the
    /// plain [`GnnModel::to_text`] form (what `ancstr train` writes)
    /// and the sealed [`GnnModel::to_text_checksummed`] envelope; a
    /// present seal is always verified.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Model`] on malformed or corrupt text,
    /// [`ExtractError::ModelDim`] when the weights do not fit the
    /// Table II feature width.
    pub fn load(text: &str, source: &str) -> Result<ModelRegistry, ExtractError> {
        let model = if is_sealed(text) {
            GnnModel::from_text_checksummed(text)?
        } else {
            GnnModel::from_text(text)?
        };
        let entry = entry_from_model(model, source, 1)?;
        Ok(ModelRegistry {
            current: RwLock::new(Arc::new(entry)),
            generation: AtomicU64::new(1),
            quarantined: Mutex::new(HashSet::new()),
            rejected_total: AtomicU64::new(0),
        })
    }

    /// A snapshot of the current model. The `Arc` keeps the snapshot
    /// alive across a concurrent swap, so a request never observes a
    /// half-replaced model.
    pub fn current(&self) -> Arc<ModelEntry> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Hot-swap the serving model from a **sealed** artifact
    /// ([`GnnModel::to_text_checksummed`]). The strictness is the
    /// point: reload bodies travel over the network, and the CRC-32
    /// seal converts truncation, bit flips, and version skew into typed
    /// rejections before the old model is replaced. On any error the
    /// previous model keeps serving.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Model`] when the envelope or payload is invalid,
    /// [`ExtractError::ModelDim`] on a dimension mismatch.
    pub fn reload_sealed(&self, text: &str, source: &str) -> Result<Arc<ModelEntry>, ExtractError> {
        let model = GnnModel::from_text_checksummed(text)?;
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let entry = Arc::new(entry_from_model(model, source, generation)?);
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&entry);
        Ok(entry)
    }

    /// [`ModelRegistry::reload_sealed`] behind a circuit breaker and a
    /// canary inference. Validation runs **before** the swap: checksum
    /// seal → model build → first inference on the built-in canary
    /// circuit. Any failure quarantines the upload body (by byte hash),
    /// leaves the last good generation serving, and opens the breaker
    /// for that exact body — an identical re-upload is refused
    /// immediately without re-running validation. This is the path
    /// `POST /v1/models` uses.
    ///
    /// # Errors
    ///
    /// [`ReloadError::BreakerOpen`] for a quarantined body,
    /// [`ReloadError::Rejected`] when validation fails now.
    pub fn reload_guarded(&self, text: &str, source: &str) -> Result<Arc<ModelEntry>, ReloadError> {
        let key = body_key(text);
        if self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).contains(&key) {
            self.rejected_total.fetch_add(1, Ordering::SeqCst);
            return Err(ReloadError::BreakerOpen { key });
        }
        let reject = |step: &'static str, reason: String| {
            self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).insert(key);
            self.rejected_total.fetch_add(1, Ordering::SeqCst);
            ReloadError::Rejected { step, reason }
        };
        let model = GnnModel::from_text_checksummed(text)
            .map_err(|e| reject("seal", e.to_string()))?;
        // Build with a placeholder generation; the real one is assigned
        // only at commit, so failed validations never burn a number.
        let candidate = entry_from_model(model, source, 0)
            .map_err(|e| reject("build", e.to_string()))?;
        canary_check(&candidate.extractor).map_err(|reason| reject("canary", reason))?;
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let entry = Arc::new(ModelEntry { generation, ..candidate });
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&entry);
        Ok(entry)
    }

    /// Current circuit-breaker state, for `/healthz/ready` and metrics.
    pub fn breaker(&self) -> BreakerState {
        BreakerState {
            quarantined: self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).len(),
            rejected_total: self.rejected_total.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_gnn::GnnConfig;

    fn model(seed: u64) -> GnnModel {
        GnnModel::new(GnnConfig {
            dim: ancstr_core::FEATURE_DIM,
            layers: 2,
            seed,
            ..GnnConfig::default()
        })
    }

    #[test]
    fn loads_plain_and_sealed_boot_models() {
        let m = model(3);
        for text in [m.to_text(), m.to_text_checksummed()] {
            let reg = ModelRegistry::load(&text, "boot").unwrap();
            let entry = reg.current();
            assert_eq!(entry.fingerprint, m.fingerprint());
            assert_eq!(entry.generation, 1);
            assert_eq!(entry.source, "boot");
        }
    }

    #[test]
    fn boot_load_rejects_garbage_and_corrupt_seals() {
        assert!(ModelRegistry::load("not a model", "x").is_err());
        let sealed = model(3).to_text_checksummed();
        let tampered = sealed.replacen("0.", "1.", 1);
        assert!(ModelRegistry::load(&tampered, "x").is_err());
    }

    #[test]
    fn reload_swaps_atomically_and_keeps_old_snapshots_alive() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let before = reg.current();
        let swapped = reg.reload_sealed(&model(4).to_text_checksummed(), "peer").unwrap();
        assert_eq!(swapped.generation, 2);
        assert_ne!(swapped.fingerprint, before.fingerprint);
        assert_eq!(reg.current().fingerprint, swapped.fingerprint);
        // The pre-swap snapshot still works (no use-after-swap hazard).
        assert_eq!(before.generation, 1);
    }

    /// `ModelEntry` holds a live extractor and has no `Debug`, so
    /// `unwrap_err` does not apply; this is the moral equivalent.
    fn reload_err(reg: &ModelRegistry, text: &str) -> ReloadError {
        match reg.reload_guarded(text, "peer") {
            Ok(_) => panic!("expected the reload to be rejected"),
            Err(err) => err,
        }
    }

    #[test]
    fn guarded_reload_swaps_a_good_model() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let entry = reg.reload_guarded(&model(4).to_text_checksummed(), "peer").unwrap();
        assert_eq!(entry.generation, 2);
        assert_eq!(reg.current().fingerprint, entry.fingerprint);
        assert_eq!(reg.breaker(), BreakerState::default());
    }

    #[test]
    fn guarded_reload_quarantines_and_opens_the_breaker() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let good_fp = reg.current().fingerprint;
        let tampered = model(4).to_text_checksummed().replacen("0.", "1.", 1);

        // First upload: validated, rejected, quarantined.
        let err = reload_err(&reg, &tampered);
        assert!(matches!(err, ReloadError::Rejected { step: "seal", .. }), "{err}");

        // Identical re-upload: the breaker answers without re-validating.
        let err = reload_err(&reg, &tampered);
        assert!(matches!(err, ReloadError::BreakerOpen { .. }), "{err}");
        assert_eq!(reg.breaker(), BreakerState { quarantined: 1, rejected_total: 2 });

        // The last good model never stopped serving.
        assert_eq!(reg.current().fingerprint, good_fp);
        assert_eq!(reg.current().generation, 1);
    }

    #[test]
    fn failed_validation_burns_no_generation_numbers() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let _ = reload_err(&reg, "garbage");
        let _ = reload_err(&reg, &model(5).to_text()); // unsealed
        let entry = reg.reload_guarded(&model(4).to_text_checksummed(), "peer").unwrap();
        assert_eq!(entry.generation, 2, "rejections must not consume generations");
    }

    #[test]
    fn canary_rejects_a_numerically_poisoned_extractor() {
        // Poisoned weights (not representable in a sealed upload — the
        // parser rejects NaN) still cannot sneak past the canary, which
        // guards the semantic gap between "deserializes" and "serves".
        let mut poisoned = model(9);
        poisoned.matrices_mut()[0][(0, 0)] = f64::NAN;
        let ex = SymmetryExtractor::new(ExtractorConfig::default())
            .with_model(poisoned)
            .unwrap();
        let err = canary_check(&ex).unwrap_err();
        assert!(err.contains("canary inference failed"), "{err}");
        // A healthy extractor passes.
        let ok = SymmetryExtractor::new(ExtractorConfig::default())
            .with_model(model(9))
            .unwrap();
        assert!(canary_check(&ok).is_ok());
    }

    #[test]
    fn guarded_reload_runs_the_canary_on_parseable_models() {
        // Finite but adversarial weights: ±1e308 in the same dot
        // product overflows to inf − inf = NaN during inference. The
        // seal verifies and the model parses — only the canary's first
        // inference can catch it.
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let mut bad = model(4);
        for m in bad.matrices_mut() {
            let (rows, cols) = m.shape();
            for r in 0..rows {
                for c in 0..cols {
                    m[(r, c)] = if (r + c) % 2 == 0 { 1e308 } else { -1e308 };
                }
            }
        }
        let err = reload_err(&reg, &bad.to_text_checksummed());
        assert!(
            matches!(err, ReloadError::Rejected { step: "canary", .. }),
            "expected a canary rejection, got: {err}"
        );
        assert_eq!(reg.current().generation, 1, "rollback to the last good generation");
        assert_eq!(reg.breaker().quarantined, 1);
    }

    #[test]
    fn reload_requires_the_sealed_envelope() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let err = reg
            .reload_sealed(&model(4).to_text(), "peer")
            .map(|e| e.generation)
            .unwrap_err();
        assert!(matches!(err, ExtractError::Model(_)), "{err}");
        // The failed reload left the boot model serving.
        assert_eq!(reg.current().generation, 1);
    }
}
