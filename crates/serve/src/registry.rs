//! The warm model registry: one trained [`GnnModel`] loaded once,
//! shared by every worker, hot-swappable while requests are in flight.
//!
//! AncstrGNN is inductive (paper Section IV-C): a model trained once on
//! a corpus generalizes to unseen netlists, so the expensive part —
//! loading and validating weights — should happen once per model, not
//! once per request. The registry holds the current
//! [`SymmetryExtractor`] behind an [`RwLock`]'d [`Arc`]; requests grab
//! a cheap snapshot and keep using it even if an operator swaps the
//! model mid-flight, so a reload never corrupts an in-progress
//! extraction. Reloads go through the checksummed envelope
//! ([`GnnModel::from_text_checksummed`]) — an HTTP body is exactly the
//! kind of transport where truncation and bit rot happen, and the seal
//! turns both into clean `400`s instead of silently-wrong constraint
//! sets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use ancstr_core::{ExtractError, ExtractorConfig, SymmetryExtractor};
use ancstr_gnn::GnnModel;

/// One loaded model and the extractor built around it.
pub struct ModelEntry {
    /// The warm extractor (model + configuration), shared read-only.
    pub extractor: SymmetryExtractor,
    /// [`GnnModel::fingerprint`] of the loaded weights — part of every
    /// cache key, so a swap implicitly invalidates cached replies.
    pub fingerprint: u64,
    /// Where the weights came from (file path or reload peer), for
    /// `/healthz` and logs.
    pub source: String,
    /// Monotonic reload counter: 1 for the boot model, +1 per swap.
    pub generation: u64,
}

impl ModelEntry {
    /// The fingerprint as fixed-width hex (the form used in JSON
    /// replies and metrics labels).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}

/// Shared registry of the currently-serving model.
pub struct ModelRegistry {
    current: RwLock<Arc<ModelEntry>>,
    generation: AtomicU64,
}

fn entry_from_model(
    model: GnnModel,
    source: &str,
    generation: u64,
) -> Result<ModelEntry, ExtractError> {
    let fingerprint = model.fingerprint();
    let extractor = SymmetryExtractor::try_new(ExtractorConfig::default())?.with_model(model)?;
    Ok(ModelEntry { extractor, fingerprint, source: source.to_owned(), generation })
}

/// Whether `text` carries the checksummed artifact envelope.
fn is_sealed(text: &str) -> bool {
    text.lines().next_back().is_some_and(|l| l.starts_with("ancstr-seal "))
}

impl ModelRegistry {
    /// Load the boot model from serialized text. Accepts both the
    /// plain [`GnnModel::to_text`] form (what `ancstr train` writes)
    /// and the sealed [`GnnModel::to_text_checksummed`] envelope; a
    /// present seal is always verified.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Model`] on malformed or corrupt text,
    /// [`ExtractError::ModelDim`] when the weights do not fit the
    /// Table II feature width.
    pub fn load(text: &str, source: &str) -> Result<ModelRegistry, ExtractError> {
        let model = if is_sealed(text) {
            GnnModel::from_text_checksummed(text)?
        } else {
            GnnModel::from_text(text)?
        };
        let entry = entry_from_model(model, source, 1)?;
        Ok(ModelRegistry {
            current: RwLock::new(Arc::new(entry)),
            generation: AtomicU64::new(1),
        })
    }

    /// A snapshot of the current model. The `Arc` keeps the snapshot
    /// alive across a concurrent swap, so a request never observes a
    /// half-replaced model.
    pub fn current(&self) -> Arc<ModelEntry> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Hot-swap the serving model from a **sealed** artifact
    /// ([`GnnModel::to_text_checksummed`]). The strictness is the
    /// point: reload bodies travel over the network, and the CRC-32
    /// seal converts truncation, bit flips, and version skew into typed
    /// rejections before the old model is replaced. On any error the
    /// previous model keeps serving.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Model`] when the envelope or payload is invalid,
    /// [`ExtractError::ModelDim`] on a dimension mismatch.
    pub fn reload_sealed(&self, text: &str, source: &str) -> Result<Arc<ModelEntry>, ExtractError> {
        let model = GnnModel::from_text_checksummed(text)?;
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let entry = Arc::new(entry_from_model(model, source, generation)?);
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&entry);
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_gnn::GnnConfig;

    fn model(seed: u64) -> GnnModel {
        GnnModel::new(GnnConfig {
            dim: ancstr_core::FEATURE_DIM,
            layers: 2,
            seed,
            ..GnnConfig::default()
        })
    }

    #[test]
    fn loads_plain_and_sealed_boot_models() {
        let m = model(3);
        for text in [m.to_text(), m.to_text_checksummed()] {
            let reg = ModelRegistry::load(&text, "boot").unwrap();
            let entry = reg.current();
            assert_eq!(entry.fingerprint, m.fingerprint());
            assert_eq!(entry.generation, 1);
            assert_eq!(entry.source, "boot");
        }
    }

    #[test]
    fn boot_load_rejects_garbage_and_corrupt_seals() {
        assert!(ModelRegistry::load("not a model", "x").is_err());
        let sealed = model(3).to_text_checksummed();
        let tampered = sealed.replacen("0.", "1.", 1);
        assert!(ModelRegistry::load(&tampered, "x").is_err());
    }

    #[test]
    fn reload_swaps_atomically_and_keeps_old_snapshots_alive() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let before = reg.current();
        let swapped = reg.reload_sealed(&model(4).to_text_checksummed(), "peer").unwrap();
        assert_eq!(swapped.generation, 2);
        assert_ne!(swapped.fingerprint, before.fingerprint);
        assert_eq!(reg.current().fingerprint, swapped.fingerprint);
        // The pre-swap snapshot still works (no use-after-swap hazard).
        assert_eq!(before.generation, 1);
    }

    #[test]
    fn reload_requires_the_sealed_envelope() {
        let reg = ModelRegistry::load(&model(3).to_text(), "boot").unwrap();
        let err = reg
            .reload_sealed(&model(4).to_text(), "peer")
            .map(|e| e.generation)
            .unwrap_err();
        assert!(matches!(err, ExtractError::Model(_)), "{err}");
        // The failed reload left the boot model serving.
        assert_eq!(reg.current().generation, 1);
    }
}
