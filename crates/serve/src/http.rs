//! A minimal HTTP/1.1 message layer over blocking byte streams.
//!
//! Just enough of RFC 9112 for the extraction daemon and its load
//! client: one request per connection (`Connection: close`), header and
//! body size limits enforced while reading, `Content-Length` bodies
//! only (no chunked encoding, no keep-alive, no TLS). Keeping the
//! parser this small is what lets the crate stay dependency-free; the
//! strictness doubles as input validation — anything the parser cannot
//! account for byte-by-byte is rejected with a typed error, never
//! buffered unboundedly.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Instant;

/// Upper bound on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on the number of header lines in one request.
pub const MAX_HEADER_COUNT: usize = 64;

/// Upper bound on one header line's length in bytes.
pub const MAX_HEADER_LINE_BYTES: usize = 1024;

/// Bounds enforced while reading one request. Every limit exists so a
/// hostile client cannot make the server allocate or wait without
/// bound: the head/header limits cap memory (→ `431`), `max_body` caps
/// the payload (→ `413`), and `deadline` caps *total* read time — a
/// slowloris client trickling one byte per poll keeps each socket read
/// fast, so only a wall-clock bound across reads ends it (→ `408`).
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Largest accepted request line + headers block in bytes.
    pub max_head_bytes: usize,
    /// Most header lines accepted in one request.
    pub max_headers: usize,
    /// Longest accepted single header line in bytes.
    pub max_header_line: usize,
    /// Absolute instant by which the full request must have arrived.
    pub deadline: Option<Instant>,
}

impl ReadLimits {
    /// Default bounds with the given body limit and no deadline.
    pub fn new(max_body: usize) -> ReadLimits {
        ReadLimits {
            max_body,
            max_head_bytes: MAX_HEAD_BYTES,
            max_headers: MAX_HEADER_COUNT,
            max_header_line: MAX_HEADER_LINE_BYTES,
            deadline: None,
        }
    }

    /// These limits with a total-read-time deadline (builder style).
    pub fn with_deadline(mut self, at: Instant) -> ReadLimits {
        self.deadline = Some(at);
        self
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/extract`.
    pub path: String,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Malformed request line, header syntax, or missing framing.
    BadRequest(String),
    /// The declared body exceeds the server's limit → 413.
    BodyTooLarge {
        /// Bytes the request declared.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// The head block, a header line, or the header count exceeds its
    /// bound → 431.
    HeadTooLarge {
        /// Which bound tripped (`head bytes`, `header count`,
        /// `header line`).
        what: &'static str,
        /// The server's limit for that bound.
        limit: usize,
    },
    /// The socket timed out before a full request arrived → 408.
    Timeout,
    /// The peer closed or the socket failed mid-read.
    Io(io::Error),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ReadError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            ReadError::HeadTooLarge { what, limit } => {
                write!(f, "request {what} exceeds the limit of {limit}")
            }
            ReadError::Timeout => write!(f, "timed out reading the request"),
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
            ReadError::Timeout
        } else {
            ReadError::Io(e)
        }
    }
}

/// Read and parse one request from `stream` under `limits`.
///
/// # Errors
///
/// [`ReadError`] on malformed framing, an oversized head, header set,
/// or body, a read timeout (per-read via the socket timeout the caller
/// armed, or total via [`ReadLimits::deadline`]), or any transport
/// failure.
pub fn read_request(stream: &mut impl Read, limits: &ReadLimits) -> Result<Request, ReadError> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(ReadError::HeadTooLarge {
                what: "head bytes",
                limit: limits.max_head_bytes,
            });
        }
        if limits.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ReadError::Timeout);
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::BadRequest("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end.start])
        .map_err(|_| ReadError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::BadRequest(format!(
            "malformed request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!("unsupported version `{version}`")));
    }
    if method.is_empty() || path.is_empty() || !path.starts_with('/') {
        return Err(ReadError::BadRequest(format!(
            "malformed request line `{request_line}`"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if line.len() > limits.max_header_line {
            return Err(ReadError::HeadTooLarge {
                what: "header line",
                limit: limits.max_header_line,
            });
        }
        if headers.len() >= limits.max_headers {
            return Err(ReadError::HeadTooLarge {
                what: "header count",
                limit: limits.max_headers,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::BadRequest(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > limits.max_body {
        return Err(ReadError::BodyTooLarge { declared: content_length, limit: limits.max_body });
    }

    let mut body = buf[head_end.end..].to_vec();
    while body.len() < content_length {
        if limits.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ReadError::Timeout);
        }
        let mut chunk = vec![0u8; (content_length - body.len()).min(64 * 1024)];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    })
}

/// Where the head ends: `start` is the offset of the blank-line
/// separator, `end` the first body byte. Shared with the client-side
/// response parser.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<std::ops::Range<usize>> {
    if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(i..i + 4);
    }
    buf.windows(2).position(|w| w == b"\n\n").map(|i| i..i + 2)
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the framing set the writer always adds.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Response {
        Response { status, headers: Vec::new(), body: Vec::new() }
    }

    /// A JSON response (`application/json`).
    pub fn json(status: u16, body: &ancstr_obs::Json) -> Response {
        let mut text = body.render();
        text.push('\n');
        Response::new(status)
            .header("Content-Type", "application/json")
            .with_body(text.into_bytes())
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response::new(status)
            .header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.as_bytes().to_vec())
    }

    /// Add a header (builder style).
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Set the body (builder style).
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Serialize status line + headers + body onto `stream`. Always
    /// emits `Content-Length` and `Connection: close` — the daemon
    /// serves one request per connection.
    ///
    /// # Errors
    ///
    /// Any transport write failure.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Canonical reason phrase for the status codes the daemon emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ReadError> {
        let mut cursor = io::Cursor::new(raw.to_vec());
        read_request(&mut cursor, &ReadLimits::new(1024))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/extract HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/extract");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_bodyless_get_with_bare_lf() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"nonsense\r\n\r\n"[..],
            &b"GET /healthz SPICE/9\r\n\r\n"[..],
            &b"GET healthz HTTP/1.1\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(bad), Err(ReadError::BadRequest(_))),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n").unwrap_err();
        assert!(matches!(err, ReadError::BodyTooLarge { declared: 100000, limit: 1024 }));
    }

    #[test]
    fn truncated_body_is_an_error() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, ReadError::BadRequest(_)), "{err}");
    }

    #[test]
    fn bounds_header_count_and_line_length() {
        // One absurdly long header line.
        let long = format!(
            "GET /x HTTP/1.1\r\nx-long: {}\r\n\r\n",
            "v".repeat(MAX_HEADER_LINE_BYTES + 1)
        );
        let err = parse(long.as_bytes()).unwrap_err();
        assert!(
            matches!(err, ReadError::HeadTooLarge { what: "header line", .. }),
            "{err}"
        );

        // Too many individually-small headers.
        let mut many = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADER_COUNT {
            many.push_str(&format!("x-h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        let err = parse(many.as_bytes()).unwrap_err();
        assert!(
            matches!(err, ReadError::HeadTooLarge { what: "header count", .. }),
            "{err}"
        );

        // An oversized head block as a whole.
        let huge = format!("GET /x HTTP/1.1\r\nx: {}", "y".repeat(MAX_HEAD_BYTES + 8));
        let err = parse(huge.as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::HeadTooLarge { what: "head bytes", .. }), "{err}");

        // Exactly-at-the-bound requests still parse.
        let mut ok = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..MAX_HEADER_COUNT - 1 {
            ok.push_str(&format!("x-h{i}: v\r\n"));
        }
        ok.push_str("\r\n");
        assert!(parse(ok.as_bytes()).is_ok());
    }

    #[test]
    fn an_expired_deadline_times_the_read_out() {
        let mut cursor = io::Cursor::new(b"GET /x HT".to_vec());
        let limits = ReadLimits::new(1024)
            .with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        let err = read_request(&mut cursor, &limits).unwrap_err();
        assert!(matches!(err, ReadError::Timeout), "{err}");
    }

    #[test]
    fn response_writes_framing_headers() {
        let mut out = Vec::new();
        Response::text(200, "hi").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\nhi"), "{text}");
    }

    #[test]
    fn json_response_round_trips() {
        let body = ancstr_obs::Json::obj().set("status", "ok").set("n", 3u64);
        let mut out = Vec::new();
        Response::json(200, &body).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let json_part = text.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(ancstr_obs::json::parse(json_part.trim()).unwrap(), body);
    }
}
