//! A small blocking HTTP client for talking to the daemon.
//!
//! Used by the `loadgen` bench client and the integration tests; it
//! speaks exactly the dialect the server does (one request per
//! connection, `Content-Length` framing, read-to-EOF responses) and
//! nothing more. Two resilience-facing extras live here too: a seeded
//! [`RetryPolicy`] that honors the server's `Retry-After` hints, and
//! [`send_plan`], the executor for the deterministic fault plans
//! ([`ancstr_core::WirePlan`]) the chaos harness compiles.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use ancstr_core::{WirePlan, WireStep};

use crate::http::find_head_end;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issue one request and read the full response.
///
/// # Errors
///
/// Connection, timeout, or transport failures; a response the parser
/// cannot account for surfaces as [`io::ErrorKind::InvalidData`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<HttpReply> {
    request_with(addr, method, path, &[], body, timeout)
}

/// [`request`] with extra request headers.
///
/// # Errors
///
/// See [`request`].
pub fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> io::Result<HttpReply> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n", body.len());
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// `GET path` with an empty body.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<HttpReply> {
    request(addr, "GET", path, b"", timeout)
}

/// `POST path` with `body`.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &[u8], timeout: Duration) -> io::Result<HttpReply> {
    request(addr, "POST", path, body, timeout)
}

/// `POST path` with `body` and extra request headers.
///
/// # Errors
///
/// See [`request`].
pub fn post_with(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> io::Result<HttpReply> {
    request_with(addr, "POST", path, headers, body, timeout)
}

/// Deterministic retry schedule for shed (`503`/`429`) replies and
/// transport errors: capped exponential backoff plus seeded jitter,
/// never shorter than the server's own `Retry-After` hint.
///
/// The jitter is a pure function of `(seed, attempt)` — no wall clock,
/// no global RNG — so a test that fixes the seed sees the exact same
/// schedule every run, while a fleet of real clients (each seeded
/// differently) still de-synchronizes instead of stampeding the daemon
/// in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `1` disables retries).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt; doubles per attempt.
    pub base: Duration,
    /// Upper bound on the pre-jitter backoff.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// A sensible default schedule: 4 attempts, 50ms base, 2s cap.
    pub fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed,
        }
    }

    /// The pause before retry number `attempt` (1-based: the delay
    /// after the first failure is `delay(1, ..)`). `retry_after` is the
    /// server's hint, which acts as a floor.
    pub fn delay(&self, attempt: u32, retry_after: Option<Duration>) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        let backoff = self.base.saturating_mul(1 << doublings).min(self.cap);
        // splitmix-style scramble of (seed, attempt), then xorshift:
        // cheap, deterministic, and good enough to spread clients out.
        let mut x = self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Jitter in [0, backoff/2].
        let half = backoff.as_nanos().min(u128::from(u64::MAX)) as u64 / 2;
        let jitter = Duration::from_nanos(if half == 0 { 0 } else { x % (half + 1) });
        let delay = backoff.saturating_add(jitter);
        match retry_after {
            Some(hint) => delay.max(hint),
            None => delay,
        }
    }
}

/// [`request_with`] under a [`RetryPolicy`]: `503`/`429` replies and
/// transport errors are retried on the policy's schedule; every other
/// reply (including other errors like `400`) returns immediately. The
/// last reply or error is returned when attempts run out.
///
/// # Errors
///
/// The final transport error when every attempt failed to get a reply.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
    policy: &RetryPolicy,
) -> io::Result<HttpReply> {
    let attempts = policy.max_attempts.max(1);
    for attempt in 1..=attempts {
        let last = attempt == attempts;
        match request_with(addr, method, path, headers, body, timeout) {
            Ok(reply) if (reply.status == 503 || reply.status == 429) && !last => {
                let hint = reply
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(Duration::from_secs);
                std::thread::sleep(policy.delay(attempt, hint));
            }
            Ok(reply) => return Ok(reply),
            Err(err) => {
                if last {
                    return Err(err);
                }
                std::thread::sleep(policy.delay(attempt, None));
            }
        }
    }
    unreachable!("the loop always returns on its last attempt")
}

/// What came back from replaying a fault plan.
#[derive(Debug)]
pub struct PlanOutcome {
    /// The server's reply, when it sent a parseable one.
    pub reply: Option<HttpReply>,
    /// A send step failed mid-plan (the server cut the connection).
    pub write_error: bool,
}

/// Replay a compiled chaos [`WirePlan`] against the daemon: send each
/// fragment, honor each pause, half-close the write side, and read
/// whatever reply the server managed to produce. Transport failures
/// mid-plan are an expected outcome (the server is allowed to cut off
/// an abusive connection), so they are reported in the outcome rather
/// than as errors.
///
/// # Errors
///
/// Only failures to establish the connection at all.
pub fn send_plan(addr: SocketAddr, plan: &WirePlan, timeout: Duration) -> io::Result<PlanOutcome> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut write_error = false;
    for step in &plan.steps {
        match step {
            WireStep::Send(bytes) => {
                if stream.write_all(bytes).and_then(|()| stream.flush()).is_err() {
                    write_error = true;
                    break;
                }
            }
            WireStep::Pause(pause) => std::thread::sleep(*pause),
        }
    }
    // Half-close: the server sees EOF where the plan stopped, exactly
    // like a client that died mid-request.
    let _ = stream.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    Ok(PlanOutcome { reply: parse_reply(&raw).ok(), write_error })
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

fn parse_reply(raw: &[u8]) -> io::Result<HttpReply> {
    let head_end = find_head_end(raw).ok_or_else(|| invalid("response has no header block"))?;
    let head = std::str::from_utf8(&raw[..head_end.start])
        .map_err(|_| invalid("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut body = raw[head_end.end..].to_vec();
    // `Connection: close` makes EOF authoritative, but honour a shorter
    // declared length if the server sent one.
    if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body.truncate(len);
    }
    Ok(HttpReply { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let reply = parse_reply(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\nhi",
        )
        .unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert_eq!(reply.text(), "hi");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http at all").is_err());
        assert!(parse_reply(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }

    #[test]
    fn retry_delays_are_deterministic_per_seed() {
        let a = RetryPolicy::new(7);
        let b = RetryPolicy::new(7);
        let c = RetryPolicy::new(8);
        let schedule = |p: &RetryPolicy| (1..=4).map(|n| p.delay(n, None)).collect::<Vec<_>>();
        assert_eq!(schedule(&a), schedule(&b), "same seed, same schedule");
        assert_ne!(schedule(&a), schedule(&c), "different seeds de-synchronize");
    }

    #[test]
    fn retry_delays_grow_honor_hints_and_cap() {
        let p = RetryPolicy::new(3);
        // Growth: the pre-jitter backoff doubles, and jitter adds at
        // most half, so attempt n+2 always exceeds attempt n.
        assert!(p.delay(3, None) > p.delay(1, None));
        // The server's hint is a floor.
        assert!(p.delay(1, Some(Duration::from_secs(9))) >= Duration::from_secs(9));
        // The cap bounds the runaway end (cap + half jitter).
        assert!(p.delay(20, None) <= p.cap + p.cap / 2 + Duration::from_nanos(1));
    }
}
