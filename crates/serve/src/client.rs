//! A small blocking HTTP client for talking to the daemon.
//!
//! Used by the `loadgen` bench client and the integration tests; it
//! speaks exactly the dialect the server does (one request per
//! connection, `Content-Length` framing, read-to-EOF responses) and
//! nothing more.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::find_head_end;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issue one request and read the full response.
///
/// # Errors
///
/// Connection, timeout, or transport failures; a response the parser
/// cannot account for surfaces as [`io::ErrorKind::InvalidData`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<HttpReply> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// `GET path` with an empty body.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<HttpReply> {
    request(addr, "GET", path, b"", timeout)
}

/// `POST path` with `body`.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &[u8], timeout: Duration) -> io::Result<HttpReply> {
    request(addr, "POST", path, body, timeout)
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

fn parse_reply(raw: &[u8]) -> io::Result<HttpReply> {
    let head_end = find_head_end(raw).ok_or_else(|| invalid("response has no header block"))?;
    let head = std::str::from_utf8(&raw[..head_end.start])
        .map_err(|_| invalid("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut body = raw[head_end.end..].to_vec();
    // `Connection: close` makes EOF authoritative, but honour a shorter
    // declared length if the server sent one.
    if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body.truncate(len);
    }
    Ok(HttpReply { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let reply = parse_reply(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\nhi",
        )
        .unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert_eq!(reply.text(), "hi");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http at all").is_err());
        assert!(parse_reply(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }
}
