//! Single-flight coalescing of concurrent identical requests.
//!
//! Without it, N clients posting the same netlist in the instant
//! before its reply is cached all miss and all run the pipeline — the
//! thundering herd turns one cold request into N cold requests exactly
//! when the daemon can least afford it. [`SingleFlight`] elects one
//! leader per cache key; everyone else blocks (bounded by their own
//! deadline) until the leader finishes and then reads the cache.
//!
//! The leadership token is a guard that releases on `Drop`, so a
//! leader that panics or errors out still wakes its followers — one of
//! them simply takes over. Nothing here knows about the cache or HTTP;
//! it is a keyed mutual-exclusion primitive with waiting.

use std::collections::HashSet;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Keyed leader election: at most one [`FlightGuard`] exists per key.
pub struct SingleFlight {
    inflight: Mutex<HashSet<String>>,
    done: Condvar,
}

/// Leadership over one key; dropping it (normally or by unwinding)
/// releases the key and wakes every waiter.
pub struct FlightGuard<'a> {
    flight: &'a SingleFlight,
    key: String,
}

impl Default for SingleFlight {
    fn default() -> SingleFlight {
        SingleFlight::new()
    }
}

impl SingleFlight {
    /// An empty flight table: every key is free.
    pub fn new() -> SingleFlight {
        SingleFlight { inflight: Mutex::new(HashSet::new()), done: Condvar::new() }
    }

    fn lock(&self) -> MutexGuard<'_, HashSet<String>> {
        self.inflight.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to become the leader for `key`. `None` means another thread
    /// currently leads it — [`wait`](SingleFlight::wait) for them.
    pub fn begin(&self, key: &str) -> Option<FlightGuard<'_>> {
        let mut set = self.lock();
        if set.contains(key) {
            return None;
        }
        set.insert(key.to_owned());
        Some(FlightGuard { flight: self, key: key.to_owned() })
    }

    /// Block until `key` has no leader or `timeout` elapses, whichever
    /// comes first. Returns `true` if the key is free on return.
    pub fn wait(&self, key: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut set = self.lock();
        while set.contains(key) {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            set = self
                .done
                .wait_timeout(set, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        true
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut set = self.flight.lock();
        set.remove(&self.key);
        drop(set);
        self.flight.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn one_leader_per_key_and_keys_are_independent() {
        let flight = SingleFlight::new();
        let a = flight.begin("a").expect("first leader");
        assert!(flight.begin("a").is_none(), "key `a` already led");
        let b = flight.begin("b").expect("other keys are free");
        drop(a);
        assert!(flight.begin("a").is_some(), "dropping the guard frees the key");
        drop(b);
    }

    #[test]
    fn wait_times_out_while_led_and_returns_once_released() {
        let flight = SingleFlight::new();
        let guard = flight.begin("k").unwrap();
        assert!(!flight.wait("k", Duration::from_millis(20)), "leader still holds the key");
        drop(guard);
        assert!(flight.wait("k", Duration::from_millis(20)));
        assert!(flight.wait("never-led", Duration::ZERO), "free keys return immediately");
    }

    #[test]
    fn a_panicking_leader_still_wakes_its_followers() {
        let flight = Arc::new(SingleFlight::new());
        let woke = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let f = Arc::clone(&flight);
            let leader = scope.spawn(move || {
                let _guard = f.begin("k").unwrap();
                std::thread::sleep(Duration::from_millis(30));
                panic!("leader dies mid-compute");
            });
            // Give the leader time to take the key, then pile on.
            std::thread::sleep(Duration::from_millis(10));
            for _ in 0..4 {
                let f = Arc::clone(&flight);
                let woke = Arc::clone(&woke);
                scope.spawn(move || {
                    assert!(f.wait("k", Duration::from_secs(5)), "unwinding must release");
                    woke.fetch_add(1, Ordering::SeqCst);
                });
            }
            assert!(leader.join().is_err(), "leader panicked by design");
        });
        assert_eq!(woke.load(Ordering::SeqCst), 4);
        assert!(flight.begin("k").is_some(), "key is free after the unwind");
    }

    #[test]
    fn followers_coalesce_onto_one_computation() {
        // 8 threads race for the same key; exactly one computes at a
        // time, and everyone who waited sees the key released.
        let flight = Arc::new(SingleFlight::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let concurrent = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let flight = Arc::clone(&flight);
                let computes = Arc::clone(&computes);
                let concurrent = Arc::clone(&concurrent);
                scope.spawn(move || loop {
                    match flight.begin("k") {
                        Some(_guard) => {
                            assert_eq!(
                                concurrent.fetch_add(1, Ordering::SeqCst),
                                0,
                                "two leaders for one key"
                            );
                            std::thread::sleep(Duration::from_millis(2));
                            concurrent.fetch_sub(1, Ordering::SeqCst);
                            computes.fetch_add(1, Ordering::SeqCst);
                            break;
                        }
                        None => {
                            flight.wait("k", Duration::from_secs(5));
                        }
                    }
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 8, "every thread eventually led");
    }
}
