//! A content-addressed LRU cache of extraction replies.
//!
//! Keys come from [`ancstr_core::service::cache_key`]: an FNV-64 hash
//! of the raw netlist bytes folded with the configuration hash and the
//! serving model's fingerprint. Because the extraction pipeline is
//! deterministic in exactly those three inputs, a hit can be served
//! without re-running anything and is byte-identical to a fresh run —
//! the property the concurrency-identity integration test asserts.
//! Values are shared [`Arc`]s, so a cached reply costs one clone of a
//! pointer, not of the constraint text.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use ancstr_core::ServiceReply;

/// Point-in-time counters for `/healthz` and `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the pipeline.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct CacheInner {
    /// key → (reply, recency tick of last touch).
    map: HashMap<String, (Arc<ServiceReply>, u64)>,
    /// recency tick → key; the smallest tick is the LRU victim.
    order: BTreeMap<u64, String>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded LRU result cache. Capacity 0 disables caching entirely
/// (every lookup is a miss and nothing is stored).
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` replies.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look `key` up, counting a hit or miss and refreshing recency on
    /// a hit.
    pub fn get(&self, key: &str) -> Option<Arc<ServiceReply>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((reply, last)) => {
                let reply = Arc::clone(reply);
                let old = std::mem::replace(last, tick);
                inner.order.remove(&old);
                inner.order.insert(tick, key.to_owned());
                inner.hits += 1;
                Some(reply)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a reply, evicting the least-recently-used entry when at
    /// capacity. A no-op for capacity 0 or when `key` is already
    /// present (the pipeline is deterministic, so the resident value is
    /// already correct).
    pub fn put(&self, key: String, reply: Arc<ServiceReply>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= self.capacity {
            let Some((&oldest, _)) = inner.order.iter().next() else { break };
            if let Some(victim) = inner.order.remove(&oldest) {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.order.insert(tick, key.clone());
        inner.map.insert(key, (reply, tick));
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn reply(tag: &str) -> Arc<ServiceReply> {
        Arc::new(ServiceReply {
            constraints_text: tag.to_owned(),
            warnings: Vec::new(),
            devices: 1,
            nets: 1,
            constraints: 0,
            runtime: Duration::ZERO,
            align_json: None,
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(4);
        assert!(cache.get("a").is_none());
        cache.put("a".into(), reply("a"));
        assert_eq!(cache.get("a").unwrap().constraints_text, "a");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.put("a".into(), reply("a"));
        cache.put("b".into(), reply("b"));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get("a").is_some());
        cache.put("c".into(), reply("c"));
        assert!(cache.get("b").is_none(), "b was the LRU entry");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let cache = ResultCache::new(0);
        cache.put("a".into(), reply("a"));
        assert!(cache.get("a").is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn duplicate_put_keeps_the_resident_value() {
        let cache = ResultCache::new(2);
        cache.put("a".into(), reply("first"));
        cache.put("a".into(), reply("second"));
        assert_eq!(cache.get("a").unwrap().constraints_text, "first");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn concurrent_mixed_traffic_keeps_counters_and_entries_consistent() {
        // 8 threads × 200 operations over 4 hot keys against a
        // capacity-4 cache: every key stays resident (no evictions, no
        // lost entries), every get after the warm-up hits, and the
        // counter totals add up exactly.
        const THREADS: usize = 8;
        const OPS: usize = 200;
        let cache = Arc::new(ResultCache::new(4));
        let keys = ["a", "b", "c", "d"];
        for k in keys {
            cache.put(k.to_owned(), reply(k));
        }
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for op in 0..OPS {
                        let k = keys[(t + op) % keys.len()];
                        let got = cache.get(k).expect("resident keys never vanish");
                        assert_eq!(got.constraints_text, k, "wrong value under contention");
                        // Redundant puts must not clobber or duplicate.
                        cache.put(k.to_owned(), reply("imposter"));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, (THREADS * OPS) as u64, "every post-warm-up get hits");
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.evictions, 0, "at-capacity hot set must not thrash");
        assert_eq!(stats.entries, keys.len());
        // The values are still the originals, not the imposters.
        for k in keys {
            assert_eq!(cache.get(k).unwrap().constraints_text, k);
        }
    }

    #[test]
    fn concurrent_inserts_over_capacity_never_lose_the_count_invariant() {
        // Distinct keys from every thread against a small cache: the
        // internal map/order structures must agree at the end —
        // entries == capacity, and inserts == evictions + entries.
        const THREADS: usize = 8;
        const OPS: usize = 100;
        let cache = Arc::new(ResultCache::new(8));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for op in 0..OPS {
                        let k = format!("{t}-{op}");
                        cache.put(k.clone(), reply(&k));
                        // A get immediately after our own put may hit or
                        // miss (another thread can evict us) but must
                        // never return a different key's reply.
                        if let Some(got) = cache.get(&k) {
                            assert_eq!(got.constraints_text, k);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.entries, 8, "cache must sit exactly at capacity");
        assert_eq!(
            stats.evictions + stats.entries as u64,
            (THREADS * OPS) as u64,
            "every insert is either resident or evicted — none lost"
        );
    }
}
