//! Replica-aware cache partitioning: rendezvous (highest-random-weight)
//! hashing over a static peer list.
//!
//! A fleet of replicas each holds an LRU result cache; without
//! partitioning, every replica re-computes and re-caches the same hot
//! keys. Rendezvous hashing assigns each cache key one *owner* replica
//! — every node scores `fnv64(node ‖ key)` for all nodes and the
//! highest score wins — so all replicas agree on ownership without any
//! coordination, and removing a node only remaps the keys that node
//! owned (minimal disruption, the property ring-based consistent
//! hashing is usually reached for, without the virtual-node
//! bookkeeping).
//!
//! The ring only *names* the owner; the server decides what to do with
//! it: a cold miss whose owner is a peer is forwarded over the normal
//! HTTP client under a per-hop deadline carved from the request budget,
//! and **any** hop failure — dead peer, slow peer, non-200 — degrades
//! to local compute. Failover is a cache miss, never a client-visible
//! error.

use std::sync::atomic::{AtomicU64, Ordering};

/// FNV-1a 64 over `node ‖ 0x1f ‖ key` — the rendezvous score. The
/// `0x1f` separator keeps `("ab","c")` and `("a","bc")` distinct.
fn score(node: &str, key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in node.as_bytes().iter().chain(&[0x1f]).chain(key.as_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The static replica set, from this node's point of view.
pub struct PeerRing {
    self_addr: String,
    peers: Vec<String>,
    forwards_ok: AtomicU64,
    failovers: AtomicU64,
}

impl PeerRing {
    /// A ring over this node (`self_addr`, its advertised `host:port`)
    /// plus the `--peers` list. Every replica must be configured with
    /// the same total node set (its own address swapped between the
    /// two roles) for ownership to agree fleet-wide.
    pub fn new(self_addr: String, peers: Vec<String>) -> PeerRing {
        PeerRing {
            self_addr,
            peers,
            forwards_ok: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
        }
    }

    /// Whether any peers are configured (an empty ring owns everything
    /// locally and never forwards).
    pub fn has_peers(&self) -> bool {
        !self.peers.is_empty()
    }

    /// This node's advertised address.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// The configured peer addresses.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// The replica that owns `key`: `None` means this node, `Some` a
    /// peer worth forwarding to. Ties (astronomically unlikely with a
    /// 64-bit score) break toward the lexicographically larger address
    /// so all replicas still agree.
    pub fn owner(&self, key: &str) -> Option<&str> {
        let mut best: (u64, &str) = (score(&self.self_addr, key), self.self_addr.as_str());
        for p in &self.peers {
            let s = (score(p, key), p.as_str());
            if s > best {
                best = s;
            }
        }
        (best.1 != self.self_addr).then_some(best.1)
    }

    /// Count a successful peer forward (the owner answered in time).
    pub fn count_forward_ok(&self) {
        self.forwards_ok.fetch_add(1, Ordering::SeqCst);
    }

    /// Count a failover: the owning peer was dead, slow, or unhealthy
    /// and the request degraded to local compute.
    pub fn count_failover(&self) {
        self.failovers.fetch_add(1, Ordering::SeqCst);
    }

    /// Total successful peer forwards.
    pub fn forwards_ok_total(&self) -> u64 {
        self.forwards_ok.load(Ordering::SeqCst)
    }

    /// Total failovers to local compute.
    pub fn failovers_total(&self) -> u64 {
        self.failovers.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<String> {
        (0u64..512)
            .map(|i| format!("{:016x}", i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect()
    }

    #[test]
    fn an_empty_ring_owns_everything_locally() {
        let ring = PeerRing::new("a:1".into(), Vec::new());
        assert!(!ring.has_peers());
        for k in keys() {
            assert_eq!(ring.owner(&k), None);
        }
    }

    #[test]
    fn all_replicas_agree_on_ownership() {
        let a = PeerRing::new("n1:1".into(), vec!["n2:1".into(), "n3:1".into()]);
        let b = PeerRing::new("n2:1".into(), vec!["n3:1".into(), "n1:1".into()]);
        for k in keys() {
            let from_a = a.owner(&k).unwrap_or("n1:1");
            let from_b = b.owner(&k).unwrap_or("n2:1");
            assert_eq!(from_a, from_b, "key {k} has two owners");
        }
    }

    #[test]
    fn ownership_spreads_across_the_fleet() {
        let ring = PeerRing::new("n1:1".into(), vec!["n2:1".into(), "n3:1".into()]);
        let mut counts = std::collections::HashMap::new();
        for k in keys() {
            *counts.entry(ring.owner(&k).unwrap_or("n1:1")).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3, "every replica owns some keys: {counts:?}");
        for (&node, &n) in &counts {
            assert!(n > 512 / 9, "{node} owns only {n}/512 keys: {counts:?}");
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_keys() {
        let full = PeerRing::new("n1:1".into(), vec!["n2:1".into(), "n3:1".into()]);
        let survivor = PeerRing::new("n1:1".into(), vec!["n3:1".into()]);
        for k in keys() {
            let before = full.owner(&k).unwrap_or("n1:1");
            if before != "n2:1" {
                assert_eq!(
                    survivor.owner(&k).unwrap_or("n1:1"),
                    before,
                    "key {k} moved although its owner survived"
                );
            }
        }
    }

    #[test]
    fn failover_counters_accumulate() {
        let ring = PeerRing::new("a:1".into(), vec!["b:1".into()]);
        ring.count_forward_ok();
        ring.count_failover();
        ring.count_failover();
        assert_eq!(ring.forwards_ok_total(), 1);
        assert_eq!(ring.failovers_total(), 2);
    }
}
