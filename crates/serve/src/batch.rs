//! Poison-tolerant request batching: queued extract requests that share
//! a model coalesce into one batched forward pass.
//!
//! The fused pass is byte-identical to per-request execution — the GNN
//! forward is row-independent, so stacking request graphs into a
//! block-diagonal operator computes exactly the bytes each request
//! would have gotten alone (pinned by `tests/serve_batch.rs`). The
//! risk batching introduces is *blast radius*: one request that panics
//! the pipeline (or blows the deadline) must not take its batch-mates
//! down with it. [`Batcher`] answers that with **bisection**: a failed
//! group is split in half and each half retried under a bounded
//! budget, so a single poison request converges to a singleton that
//! alone answers `500` while every mate still gets its correct bytes.
//!
//! Coalescing is demand-driven, with no timing window: the first
//! arrival for a model becomes the *leader* and executes immediately;
//! requests arriving while a leader is busy queue up, and whoever is
//! first when the leader finishes drains the queue (up to
//! `batch_max`) into the next fused pass. An idle daemon therefore
//! adds zero batching latency, and a saturated one amortizes graph
//! fusion across the whole queue.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use ancstr_core::{
    extract_source_batch_cancellable_with, CancelToken, ExtractError, PipelineObs, ServiceReply,
    SymmetryExtractor,
};

/// Every pass renders the ALIGN-JSON view alongside the canonical text,
/// so a cached [`ServiceReply`] can answer either `Accept` format
/// without recomputing the pipeline.
fn align_formatter(
    flat: &ancstr_netlist::FlatCircuit,
    constraints: &ancstr_netlist::ConstraintSet,
) -> String {
    ancstr_hier::align::export_align(flat, constraints)
}

/// How long a queued follower sleeps between checks for a finished
/// result, a free leader slot, or its own deadline. Purely a poll
/// bound — completion is also signalled eagerly via the slot condvar.
const FOLLOWER_POLL: Duration = Duration::from_millis(25);

/// One extract request as the batcher sees it.
pub struct BatchJob {
    /// Raw SPICE source.
    pub source: String,
    /// Request origin label (used as the parse stage's `path` field).
    pub origin: String,
    /// The request's cancellation token (carries the deadline).
    pub cancel: CancelToken,
    /// Chaos flag (`x-ancstr-chaos: poison`): the fused pass this job
    /// rides in panics, exercising the real bisection machinery.
    pub poison: bool,
}

/// What a job got back from its (possibly fused) pipeline run.
pub enum BatchOutcome {
    /// The pipeline produced a reply — the same bytes a solo run
    /// would have produced.
    Reply(Box<ServiceReply>),
    /// The pipeline failed for this job alone (parse error, deadline,
    /// …); batch-mates are unaffected.
    Error(ExtractError),
    /// Bisection isolated this job as the poison: its group panicked,
    /// and so did every subgroup containing it, down to a singleton.
    Poisoned,
    /// The retry budget ran out before this job's subgroup succeeded
    /// (pathological many-poison batches); answered as a server error.
    Budget,
}

/// A queued job plus the slot its outcome is delivered into.
struct Pending {
    job: BatchJob,
    slot: Arc<Slot>,
}

/// One job's result mailbox. `None` = still waiting.
struct Slot {
    state: Mutex<Option<BatchOutcome>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(None), cv: Condvar::new() })
    }

    fn deliver(&self, outcome: BatchOutcome) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        self.cv.notify_all();
    }
}

/// Per-model coalescing lane: at most one leader executes at a time;
/// arrivals during execution queue in `pending`.
#[derive(Default)]
struct Lane {
    leader_active: bool,
    pending: Vec<Pending>,
}

/// The per-model batching fabric. One instance per daemon, shared by
/// all workers; lanes are keyed by model fingerprint so requests never
/// fuse across models.
pub struct Batcher {
    lanes: Mutex<HashMap<u64, Lane>>,
    batch_max: usize,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    bisections: AtomicU64,
}

impl Batcher {
    /// A batcher that fuses at most `batch_max` requests per pass.
    ///
    /// # Panics
    ///
    /// Panics if `batch_max == 0`.
    pub fn new(batch_max: usize) -> Batcher {
        assert!(batch_max > 0, "batch_max must be at least 1");
        Batcher {
            lanes: Mutex::new(HashMap::new()),
            batch_max,
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            bisections: AtomicU64::new(0),
        }
    }

    /// Fused passes executed (including bisection retries).
    pub fn batches_total(&self) -> u64 {
        self.batches.load(Ordering::SeqCst)
    }

    /// Requests that rode in a fused pass of size ≥ 2.
    pub fn batched_requests_total(&self) -> u64 {
        self.batched_requests.load(Ordering::SeqCst)
    }

    /// Failed-group splits performed to isolate poison requests.
    pub fn bisections_total(&self) -> u64 {
        self.bisections.load(Ordering::SeqCst)
    }

    fn lock_lanes(&self) -> MutexGuard<'_, HashMap<u64, Lane>> {
        self.lanes.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Run `job` against `extractor`, fusing it with any batch-mates
    /// queued on the same `fingerprint` lane. Blocks until the job's
    /// outcome is known or its cancel token expires. The calling worker
    /// thread is the execution vehicle: either it leads a fused pass
    /// itself or it parks until a leader delivers its result.
    pub fn submit(
        &self,
        fingerprint: u64,
        extractor: &SymmetryExtractor,
        obs: &PipelineObs,
        job: BatchJob,
    ) -> BatchOutcome {
        let cancel = job.cancel.clone();
        let slot = Slot::new();
        let mine = Pending { job, slot: Arc::clone(&slot) };
        {
            let mut lanes = self.lock_lanes();
            let lane = lanes.entry(fingerprint).or_default();
            if !lane.leader_active {
                // Fast path: no leader busy — lead immediately, draining
                // anything a previous leader left queued.
                lane.leader_active = true;
                let group = drain_group(lane, mine, self.batch_max);
                drop(lanes);
                self.lead(fingerprint, group, extractor, obs);
                return take_outcome(&slot);
            }
            lane.pending.push(mine);
        }
        // Follower: wait for a leader to deliver, promote ourselves if
        // the lane frees up, or abandon on deadline.
        loop {
            if let Some(outcome) = try_take_outcome(&slot) {
                return outcome;
            }
            if cancel.is_cancelled() {
                let mut lanes = self.lock_lanes();
                let lane = lanes.entry(fingerprint).or_default();
                let before = lane.pending.len();
                lane.pending.retain(|p| !Arc::ptr_eq(&p.slot, &slot));
                if lane.pending.len() < before {
                    // Still queued: nobody computed us; answer the
                    // deadline ourselves.
                    return BatchOutcome::Error(ExtractError::Cancelled);
                }
                // A leader already drained us; its delivery (written to
                // a slot nobody reads) is harmless — the client's
                // deadline wins.
                return BatchOutcome::Error(ExtractError::Cancelled);
            }
            {
                let mut lanes = self.lock_lanes();
                let lane = lanes.entry(fingerprint).or_default();
                if !lane.leader_active
                    && lane.pending.iter().any(|p| Arc::ptr_eq(&p.slot, &slot))
                {
                    lane.leader_active = true;
                    let idx = lane
                        .pending
                        .iter()
                        .position(|p| Arc::ptr_eq(&p.slot, &slot))
                        .expect("checked above");
                    let mine = lane.pending.remove(idx);
                    let group = drain_group(lane, mine, self.batch_max);
                    drop(lanes);
                    self.lead(fingerprint, group, extractor, obs);
                    return take_outcome(&slot);
                }
            }
            let guard = slot.state.lock().unwrap_or_else(|e| e.into_inner());
            if guard.is_none() {
                drop(
                    slot.cv
                        .wait_timeout(guard, FOLLOWER_POLL)
                        .unwrap_or_else(|e| e.into_inner()),
                );
            }
        }
    }

    /// Execute `group` (leader first), deliver every outcome, then
    /// release the lane, waking queued followers so one of them can
    /// promote itself for the next pass.
    fn lead(
        &self,
        fingerprint: u64,
        group: Vec<Pending>,
        extractor: &SymmetryExtractor,
        obs: &PipelineObs,
    ) {
        // A single poison can cost O(log n) re-runs; 4n + slack bounds
        // even an all-poison batch without starving clean jobs.
        let mut budget = (4 * group.len() + 4) as u32;
        self.run_group(group, extractor, obs, &mut budget);
        let mut lanes = self.lock_lanes();
        let lane = lanes.entry(fingerprint).or_default();
        lane.leader_active = false;
        for p in &lane.pending {
            p.slot.cv.notify_all();
        }
    }

    /// Run one fused pass over `group`, bisecting on panic and peeling
    /// expired jobs off on cancellation. Every job in `group` gets
    /// exactly one delivered outcome.
    fn run_group(
        &self,
        mut group: Vec<Pending>,
        extractor: &SymmetryExtractor,
        obs: &PipelineObs,
        budget: &mut u32,
    ) {
        if group.is_empty() {
            return;
        }
        if *budget == 0 {
            for p in group {
                p.slot.deliver(BatchOutcome::Budget);
            }
            return;
        }
        *budget -= 1;
        self.batches.fetch_add(1, Ordering::SeqCst);
        if group.len() > 1 {
            self.batched_requests.fetch_add(group.len() as u64, Ordering::SeqCst);
        }
        // The fused pass runs under the leader's token; a mate with a
        // tighter deadline is peeled off afterwards, one with a looser
        // deadline is retried in a subgroup led by its own token.
        let lead_cancel = group[0].job.cancel.clone();
        let poisoned = group.iter().any(|p| p.job.poison);
        let run = catch_unwind(AssertUnwindSafe(|| {
            if poisoned {
                panic!("chaos: poisoned batch mate");
            }
            let items: Vec<(&str, &str)> = group
                .iter()
                .map(|p| (p.job.source.as_str(), p.job.origin.as_str()))
                .collect();
            extract_source_batch_cancellable_with(
                &items,
                extractor,
                obs,
                &lead_cancel,
                Some(&align_formatter),
            )
        }));
        match run {
            Ok(Ok(results)) => {
                for (p, r) in group.into_iter().zip(results) {
                    p.slot.deliver(match r {
                        Ok(reply) => BatchOutcome::Reply(Box::new(reply)),
                        Err(e) => BatchOutcome::Error(e),
                    });
                }
            }
            Ok(Err(_cancelled)) => {
                // The leader's deadline aborted the whole pass. Jobs
                // whose own tokens expired answer the deadline; the
                // rest re-run (the expired leader is gone, so the
                // subgroup strictly shrinks).
                let mut rest = Vec::new();
                for p in group {
                    if p.job.cancel.is_cancelled() {
                        p.slot.deliver(BatchOutcome::Error(ExtractError::Cancelled));
                    } else {
                        rest.push(p);
                    }
                }
                self.run_group(rest, extractor, obs, budget);
            }
            Err(_panic) => {
                if group.len() == 1 {
                    let p = group.pop().expect("len checked");
                    p.slot.deliver(BatchOutcome::Poisoned);
                } else {
                    self.bisections.fetch_add(1, Ordering::SeqCst);
                    let tail = group.split_off(group.len() / 2);
                    self.run_group(group, extractor, obs, budget);
                    self.run_group(tail, extractor, obs, budget);
                }
            }
        }
    }
}

/// Assemble a fused group: `mine` leads, then up to `batch_max - 1`
/// queued mates in arrival order.
fn drain_group(lane: &mut Lane, mine: Pending, batch_max: usize) -> Vec<Pending> {
    let take = (batch_max - 1).min(lane.pending.len());
    let mut group = Vec::with_capacity(take + 1);
    group.push(mine);
    group.extend(lane.pending.drain(..take));
    group
}

fn try_take_outcome(slot: &Slot) -> Option<BatchOutcome> {
    slot.state.lock().unwrap_or_else(|e| e.into_inner()).take()
}

fn take_outcome(slot: &Slot) -> BatchOutcome {
    try_take_outcome(slot).expect("a led group delivers every outcome, including the leader's")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_core::{ExtractorConfig, FEATURE_DIM};
    use ancstr_gnn::{GnnConfig, GnnModel};
    use std::time::Instant;

    const NETLIST: &str = "\
.subckt latch q qb en vdd vss
M1 q qb tail vss nch w=4u l=0.2u
M2 qb q tail vss nch w=4u l=0.2u
M3 q qb vdd vdd pch w=8u l=0.2u
M4 qb q vdd vdd pch w=8u l=0.2u
M5 tail en vss vss nch w=2u l=0.5u
.ends
";

    fn extractor() -> SymmetryExtractor {
        let model = GnnModel::new(GnnConfig {
            dim: FEATURE_DIM,
            layers: 2,
            seed: 7,
            ..GnnConfig::default()
        });
        SymmetryExtractor::new(ExtractorConfig::default())
            .with_model(model)
            .unwrap()
    }

    fn job(poison: bool) -> BatchJob {
        BatchJob {
            source: NETLIST.to_owned(),
            origin: "test".to_owned(),
            cancel: CancelToken::new(),
            poison,
        }
    }

    fn reply_of(outcome: BatchOutcome) -> ServiceReply {
        match outcome {
            BatchOutcome::Reply(r) => *r,
            BatchOutcome::Error(e) => panic!("expected a reply, got error: {e}"),
            BatchOutcome::Poisoned => panic!("expected a reply, got Poisoned"),
            BatchOutcome::Budget => panic!("expected a reply, got Budget"),
        }
    }

    #[test]
    fn an_idle_lane_executes_immediately_and_matches_solo_extraction() {
        let b = Batcher::new(16);
        let ex = extractor();
        let obs = PipelineObs::new(None);
        let got = reply_of(b.submit(1, &ex, &obs, job(false)));
        let solo = ancstr_core::extract_source(NETLIST, "test", &ex, &obs).unwrap();
        assert_eq!(got.constraints_text, solo.constraints_text);
        assert_eq!(got.devices, solo.devices);
        assert_eq!(b.batches_total(), 1);
        assert_eq!(b.batched_requests_total(), 0, "a singleton is not a fused batch");
    }

    /// Queue followers behind a fake busy leader, then release the lane
    /// and let one follower drain the whole queue into a single fused
    /// pass — the deterministic version of "requests pile up while a
    /// leader is busy".
    fn run_coalesced(b: &Arc<Batcher>, jobs: Vec<BatchJob>) -> Vec<BatchOutcome> {
        let ex = Arc::new(extractor());
        let obs = PipelineObs::new(None);
        b.lock_lanes().entry(9).or_default().leader_active = true;
        let n = jobs.len();
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|j| {
                let b = Arc::clone(b);
                let ex = Arc::clone(&ex);
                let obs = obs.clone();
                std::thread::spawn(move || b.submit(9, &ex, &obs, j))
            })
            .collect();
        // Wait until every follower is queued, then free the lane.
        let start = Instant::now();
        loop {
            if b.lock_lanes().get(&9).map(|l| l.pending.len()) == Some(n) {
                break;
            }
            assert!(start.elapsed() < Duration::from_secs(10), "followers never queued");
            std::thread::sleep(Duration::from_millis(2));
        }
        b.lock_lanes().entry(9).or_default().leader_active = false;
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn queued_requests_coalesce_into_one_fused_pass() {
        let b = Arc::new(Batcher::new(16));
        let outcomes = run_coalesced(&b, (0..3).map(|_| job(false)).collect());
        for o in outcomes {
            let r = reply_of(o);
            assert_eq!(r.devices, 5);
        }
        assert_eq!(b.batched_requests_total(), 3, "all three rode one fused pass");
        assert_eq!(b.bisections_total(), 0);
    }

    #[test]
    fn a_poison_mate_is_isolated_by_bisection_and_mates_succeed() {
        let b = Arc::new(Batcher::new(16));
        let jobs: Vec<BatchJob> = (0..4).map(|i| job(i == 2)).collect();
        let outcomes = run_coalesced(&b, jobs);
        let poisoned = outcomes
            .iter()
            .filter(|o| matches!(o, BatchOutcome::Poisoned))
            .count();
        let replies = outcomes
            .into_iter()
            .filter(|o| matches!(o, BatchOutcome::Reply(_)))
            .count();
        assert_eq!(poisoned, 1, "exactly the poison job fails");
        assert_eq!(replies, 3, "every batch-mate still gets its bytes");
        assert!(b.bisections_total() >= 1, "isolation went through bisection");
    }

    #[test]
    fn an_expired_leader_answers_its_deadline_without_poisoning_the_lane() {
        let b = Batcher::new(16);
        let ex = extractor();
        let obs = PipelineObs::new(None);
        let mut expired = job(false);
        expired.cancel = CancelToken::expiring_in(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let outcome = b.submit(1, &ex, &obs, expired);
        assert!(matches!(outcome, BatchOutcome::Error(ExtractError::Cancelled)));
        // The lane recovered: a fresh job still serves.
        let r = reply_of(b.submit(1, &ex, &obs, job(false)));
        assert_eq!(r.devices, 5);
    }
}
