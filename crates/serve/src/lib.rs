//! `ancstr-serve` — the extraction daemon behind `ancstr serve`.
//!
//! AncstrGNN's GNN is inductive: train once, then extract symmetry
//! constraints from unseen netlists without retraining (paper
//! Section IV-C). That deployment mode wants a long-lived process, not
//! a one-shot CLI that re-loads the model per netlist. This crate is
//! that process, built entirely on `std`:
//!
//! - [`http`] — a minimal HTTP/1.1 message layer over `std::net`
//!   (`Content-Length` bodies, one request per connection).
//! - [`pool`] — a fixed worker pool over a bounded queue; a full queue
//!   is answered with `503` + `Retry-After` instead of unbounded
//!   latency.
//! - [`registry`] — the warm model registry: fingerprint-keyed resident
//!   models with LRU eviction and per-model bulkhead breakers,
//!   hot-swappable via `POST /v1/models`, routed via `x-ancstr-model`.
//! - [`batch`] — poison-tolerant request batching: per-model fused
//!   forward passes (byte-identical to solo runs) with bisection so one
//!   poison request cannot take down its batch-mates.
//! - [`peers`] — replica-aware cache partitioning: rendezvous hashing
//!   over a static `--peers` list, with failover to local compute when
//!   the owning replica is dead or slow.
//! - [`cache`] — a content-addressed LRU cache of extraction replies,
//!   keyed by netlist bytes ⊕ configuration hash ⊕ model fingerprint.
//! - [`server`] — accept loop, routing, per-request deadlines, metrics,
//!   and graceful drain on shutdown.
//! - [`client`] — the matching blocking client used by `ancstr loadgen`
//!   and the integration tests.
//!
//! The deliberate non-goals: TLS, keep-alive, chunked encoding, HTTP/2.
//! The daemon is an internal service for EDA flows, and every omitted
//! feature is a parser that cannot be wrong and a dependency that does
//! not exist.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod flight;
pub mod http;
pub mod peers;
pub mod pool;
pub mod registry;
pub mod server;

pub use batch::{BatchJob, BatchOutcome, Batcher};
pub use cache::{CacheStats, ResultCache};
pub use client::HttpReply;
pub use flight::SingleFlight;
pub use http::{Request, Response};
pub use peers::PeerRing;
pub use pool::{SubmitError, WorkerPool};
pub use registry::{ModelEntry, ModelHealth, ModelRegistry, ModelSlot, ModelSummary};
pub use server::{ServeConfig, Server, ShutdownHandle};
