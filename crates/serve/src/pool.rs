//! A fixed, *supervised* worker thread pool over a bounded job queue.
//!
//! The queue is the daemon's backpressure mechanism: [`WorkerPool::submit`]
//! never blocks — when the queue is at capacity it returns
//! [`SubmitError::Full`] immediately and the accept loop answers the
//! client with `503` + `Retry-After` instead of letting latency grow
//! without bound. Shutdown is graceful by construction:
//! [`WorkerPool::shutdown`] closes the queue to new work, lets the
//! workers drain every job already accepted, and joins them.
//!
//! Supervision: every job runs under [`std::panic::catch_unwind`], so a
//! panicking handler never kills its worker thread — the slot survives
//! and keeps serving. After a panic the slot sleeps a capped
//! exponential backoff (doubling per *consecutive* panic, reset by the
//! first clean job) before dequeuing again, so a poisoned queue cannot
//! spin a worker at 100% CPU re-panicking. The backoff schedule is a
//! pure function of the consecutive-panic count — deterministic, no
//! randomness, no wall-clock dependence beyond the sleep itself.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Why a job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — shed load now.
    Full,
    /// The pool is shutting down and accepts no new work.
    Closed,
}

/// How a pool restarts panicked worker slots.
#[derive(Clone)]
pub struct Supervision {
    /// Backoff after the first consecutive panic; doubles per further
    /// consecutive panic.
    pub backoff_base: Duration,
    /// Upper bound on the backoff, however many panics in a row.
    pub backoff_cap: Duration,
    /// Called (with the worker index) after each caught panic, before
    /// the backoff sleep — the daemon counts restarts here.
    pub on_panic: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl Default for Supervision {
    fn default() -> Supervision {
        Supervision {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            on_panic: None,
        }
    }
}

impl Supervision {
    /// The backoff before the next dequeue after `consecutive` panics
    /// in a row (1-based): `base * 2^(consecutive-1)`, capped.
    pub fn backoff(&self, consecutive: u32) -> Duration {
        let doublings = consecutive.saturating_sub(1).min(20);
        self.backoff_base
            .saturating_mul(1u32 << doublings)
            .min(self.backoff_cap)
    }
}

struct State<J> {
    jobs: VecDeque<J>,
    open: bool,
}

struct Shared<J> {
    state: Mutex<State<J>>,
    wake: Condvar,
    capacity: usize,
    panics: AtomicU64,
}

/// A fixed-size supervised worker pool consuming jobs from a bounded
/// queue.
pub struct WorkerPool<J: Send + 'static> {
    shared: Arc<Shared<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// [`WorkerPool::supervised`] with the default [`Supervision`].
    pub fn new<F>(workers: usize, capacity: usize, handler: F) -> WorkerPool<J>
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        WorkerPool::supervised(workers, capacity, Supervision::default(), handler)
    }

    /// Spawn `workers` threads that each run `handler` on dequeued
    /// jobs under panic supervision. `capacity` bounds the number of
    /// queued (not yet running) jobs; both are clamped to at least 1.
    pub fn supervised<F>(
        workers: usize,
        capacity: usize,
        supervision: Supervision,
        handler: F,
    ) -> WorkerPool<J>
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { jobs: VecDeque::new(), open: true }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
            panics: AtomicU64::new(0),
        });
        let handler = Arc::new(handler);
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                let supervision = supervision.clone();
                thread::Builder::new()
                    .name(format!("ancstr-serve-worker-{i}"))
                    .spawn(move || {
                        let mut consecutive_panics: u32 = 0;
                        loop {
                            let job = {
                                let mut state =
                                    shared.state.lock().unwrap_or_else(|e| e.into_inner());
                                loop {
                                    if let Some(job) = state.jobs.pop_front() {
                                        break job;
                                    }
                                    if !state.open {
                                        return; // closed and drained
                                    }
                                    state = shared
                                        .wake
                                        .wait(state)
                                        .unwrap_or_else(|e| e.into_inner());
                                }
                            };
                            // The job is consumed either way; a panic
                            // only costs *this* request, never the slot.
                            match panic::catch_unwind(AssertUnwindSafe(|| handler(job))) {
                                Ok(()) => consecutive_panics = 0,
                                Err(_) => {
                                    shared.panics.fetch_add(1, Ordering::SeqCst);
                                    consecutive_panics += 1;
                                    if let Some(hook) = &supervision.on_panic {
                                        hook(i);
                                    }
                                    thread::sleep(supervision.backoff(consecutive_panics));
                                }
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Enqueue a job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Closed`] after
    /// shutdown started. The rejected job rides back with the error so
    /// the caller can still answer the client (the accept loop writes
    /// the `503` itself).
    pub fn submit(&self, job: J) -> Result<(), (SubmitError, J)> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.open {
            return Err((SubmitError::Closed, job));
        }
        if state.jobs.len() >= self.shared.capacity {
            return Err((SubmitError::Full, job));
        }
        state.jobs.push_back(job);
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Jobs currently queued (excluding ones already being handled).
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }

    /// Total handler panics caught (and survived) so far.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::SeqCst)
    }

    /// Close the queue, drain every already-accepted job, and join the
    /// workers. Returns once the last job has finished.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.open = false;
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn jobs_run_on_workers() {
        let done = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&done);
        let pool = WorkerPool::new(4, 16, move |n: usize| {
            seen.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..10 {
            pool.submit(1).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let worker_gate = Arc::clone(&gate);
        // One worker that blocks until released, so submitted jobs pile
        // up in the queue.
        let pool = WorkerPool::new(1, 2, move |_: usize| {
            let (lock, cv) = &*worker_gate;
            let mut released = lock.lock().unwrap();
            while !*released {
                released = cv.wait(released).unwrap();
            }
        });
        pool.submit(0).unwrap(); // picked up by the worker, then parked
        // Give the worker a moment to dequeue the first job.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.depth() > 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        pool.submit(1).unwrap();
        pool.submit(2).unwrap();
        assert_eq!(pool.submit(3), Err((SubmitError::Full, 3)));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&done);
        let pool = WorkerPool::new(1, 64, move |_: usize| {
            thread::sleep(Duration::from_millis(2));
            seen.fetch_add(1, Ordering::SeqCst);
        });
        for i in 0..20 {
            pool.submit(i).unwrap();
        }
        // Shutdown must wait for all 20, not abandon the queue.
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn closed_pool_rejects_new_work() {
        let pool: WorkerPool<usize> = WorkerPool::new(1, 4, |_| {});
        {
            let mut state = pool.shared.state.lock().unwrap();
            state.open = false;
        }
        assert_eq!(pool.submit(1).map_err(|(e, _)| e), Err(SubmitError::Closed));
    }

    /// Silence the default panic printer for tests that panic on
    /// purpose, restoring it afterwards.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let saved = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let out = f();
        drop(panic::take_hook());
        panic::set_hook(saved);
        out
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        with_quiet_panics(|| {
            let done = Arc::new(AtomicUsize::new(0));
            let seen = Arc::clone(&done);
            let restarts = Arc::new(AtomicUsize::new(0));
            let counted = Arc::clone(&restarts);
            let supervision = Supervision {
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
                on_panic: Some(Arc::new(move |_| {
                    counted.fetch_add(1, Ordering::SeqCst);
                })),
            };
            // A single worker: if a panic killed it, the later jobs
            // would never run and shutdown would hang on a dead pool.
            let pool = WorkerPool::supervised(1, 32, supervision, move |n: usize| {
                if n == 0 {
                    panic!("chaos");
                }
                seen.fetch_add(1, Ordering::SeqCst);
            });
            for job in [0, 0, 0, 1, 1, 1] {
                pool.submit(job).unwrap();
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while done.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
                thread::sleep(Duration::from_millis(2));
            }
            assert_eq!(pool.panics(), 3, "all three panics were caught");
            pool.shutdown();
            assert_eq!(done.load(Ordering::SeqCst), 3, "clean jobs after panics still ran");
            assert_eq!(restarts.load(Ordering::SeqCst), 3, "every panic hit the hook");
        });
    }

    #[test]
    fn panic_counter_is_visible_through_the_pool() {
        with_quiet_panics(|| {
            let pool = WorkerPool::new(2, 8, |_: usize| panic!("always"));
            for i in 0..4 {
                pool.submit(i).unwrap();
            }
            // Wait for the queue to drain (jobs panic quickly).
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while pool.panics() < 4 && std::time::Instant::now() < deadline {
                thread::sleep(Duration::from_millis(5));
            }
            assert_eq!(pool.panics(), 4);
            pool.shutdown();
        });
    }

    #[test]
    fn backoff_doubles_per_consecutive_panic_and_caps() {
        let s = Supervision {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            on_panic: None,
        };
        assert_eq!(s.backoff(1), Duration::from_millis(10));
        assert_eq!(s.backoff(2), Duration::from_millis(20));
        assert_eq!(s.backoff(3), Duration::from_millis(40));
        assert_eq!(s.backoff(4), Duration::from_millis(80));
        assert_eq!(s.backoff(5), Duration::from_millis(100), "capped");
        assert_eq!(s.backoff(40), Duration::from_millis(100), "no overflow far past the cap");
    }
}
