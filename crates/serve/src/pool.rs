//! A fixed worker thread pool over a bounded job queue.
//!
//! The queue is the daemon's backpressure mechanism: [`WorkerPool::submit`]
//! never blocks — when the queue is at capacity it returns
//! [`SubmitError::Full`] immediately and the accept loop answers the
//! client with `503` + `Retry-After` instead of letting latency grow
//! without bound. Shutdown is graceful by construction:
//! [`WorkerPool::shutdown`] closes the queue to new work, lets the
//! workers drain every job already accepted, and joins them.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

/// Why a job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — shed load now.
    Full,
    /// The pool is shutting down and accepts no new work.
    Closed,
}

struct State<J> {
    jobs: VecDeque<J>,
    open: bool,
}

struct Shared<J> {
    state: Mutex<State<J>>,
    wake: Condvar,
    capacity: usize,
}

/// A fixed-size worker pool consuming jobs from a bounded queue.
pub struct WorkerPool<J: Send + 'static> {
    shared: Arc<Shared<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawn `workers` threads that each run `handler` on dequeued
    /// jobs. `capacity` bounds the number of queued (not yet running)
    /// jobs; both are clamped to at least 1.
    pub fn new<F>(workers: usize, capacity: usize, handler: F) -> WorkerPool<J>
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { jobs: VecDeque::new(), open: true }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
        });
        let handler = Arc::new(handler);
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                thread::Builder::new()
                    .name(format!("ancstr-serve-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut state =
                                shared.state.lock().unwrap_or_else(|e| e.into_inner());
                            loop {
                                if let Some(job) = state.jobs.pop_front() {
                                    break job;
                                }
                                if !state.open {
                                    return; // closed and drained
                                }
                                state = shared
                                    .wake
                                    .wait(state)
                                    .unwrap_or_else(|e| e.into_inner());
                            }
                        };
                        handler(job);
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Enqueue a job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Closed`] after
    /// shutdown started. The rejected job rides back with the error so
    /// the caller can still answer the client (the accept loop writes
    /// the `503` itself).
    pub fn submit(&self, job: J) -> Result<(), (SubmitError, J)> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.open {
            return Err((SubmitError::Closed, job));
        }
        if state.jobs.len() >= self.shared.capacity {
            return Err((SubmitError::Full, job));
        }
        state.jobs.push_back(job);
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Jobs currently queued (excluding ones already being handled).
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }

    /// Close the queue, drain every already-accepted job, and join the
    /// workers. Returns once the last job has finished.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.open = false;
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn jobs_run_on_workers() {
        let done = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&done);
        let pool = WorkerPool::new(4, 16, move |n: usize| {
            seen.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..10 {
            pool.submit(1).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let worker_gate = Arc::clone(&gate);
        // One worker that blocks until released, so submitted jobs pile
        // up in the queue.
        let pool = WorkerPool::new(1, 2, move |_: usize| {
            let (lock, cv) = &*worker_gate;
            let mut released = lock.lock().unwrap();
            while !*released {
                released = cv.wait(released).unwrap();
            }
        });
        pool.submit(0).unwrap(); // picked up by the worker, then parked
        // Give the worker a moment to dequeue the first job.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.depth() > 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        pool.submit(1).unwrap();
        pool.submit(2).unwrap();
        assert_eq!(pool.submit(3), Err((SubmitError::Full, 3)));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&done);
        let pool = WorkerPool::new(1, 64, move |_: usize| {
            thread::sleep(Duration::from_millis(2));
            seen.fetch_add(1, Ordering::SeqCst);
        });
        for i in 0..20 {
            pool.submit(i).unwrap();
        }
        // Shutdown must wait for all 20, not abandon the queue.
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn closed_pool_rejects_new_work() {
        let pool: WorkerPool<usize> = WorkerPool::new(1, 4, |_| {});
        {
            let mut state = pool.shared.state.lock().unwrap();
            state.open = false;
        }
        assert_eq!(pool.submit(1).map_err(|(e, _)| e), Err(SubmitError::Closed));
    }
}
