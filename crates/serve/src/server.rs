//! The extraction daemon: accept loop, request routing, backpressure,
//! deadlines, and graceful shutdown.
//!
//! Architecture in one paragraph: a single accept thread owns the
//! [`TcpListener`] and a [`WorkerPool`]. Accepted connections are
//! submitted to the pool's bounded queue without blocking — when the
//! queue is full the accept thread answers `503` + `Retry-After`
//! directly, without even reading the request, so overload sheds load
//! in O(1) instead of growing latency. Workers parse the request under
//! a per-request deadline, route it, and run extraction against a warm
//! model snapshot from the [`ModelRegistry`], consulting the
//! content-addressed [`ResultCache`] first. Shutdown (`POST
//! /v1/shutdown` or [`ShutdownHandle::signal`]) flips a flag and
//! self-connects to unblock `accept`; the accept loop then closes the
//! queue and drains every request already admitted before
//! [`Server::wait`] returns.
//!
//! One deliberate trade-off: the tracer's output format guarantees
//! globally LIFO span nesting with monotonic timestamps (that is what
//! `validate_trace` checks), which concurrent requests would violate.
//! When `--trace-out` is active the daemon therefore serializes request
//! handling through a trace gate — correctness of the trace stream over
//! parallelism. Without tracing there is no gate and requests run fully
//! concurrently.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ancstr_core::{cache_key, extract_source, ExtractError, PipelineObs, ServiceReply};
use ancstr_obs::metrics::DURATION_BUCKETS_S;
use ancstr_obs::Json;

use crate::cache::{CacheStats, ResultCache};
use crate::http::{read_request, ReadError, Request, Response};
use crate::pool::{SubmitError, WorkerPool};
use crate::registry::{ModelEntry, ModelRegistry};

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port 0 picks an ephemeral
    /// port (read it back via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue depth; beyond it connections get `503`.
    pub queue_depth: usize,
    /// Result-cache capacity in replies (0 disables caching).
    pub cache_entries: usize,
    /// Per-request deadline covering queue wait + read + handling.
    pub request_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            cache_entries: 256,
            request_timeout: Duration::from_secs(30),
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Shared request-handling state (one per daemon, behind an `Arc`).
struct Ctx {
    registry: Arc<ModelRegistry>,
    cache: ResultCache,
    obs: PipelineObs,
    shutdown: Arc<AtomicBool>,
    /// Present iff a tracer is attached; holding it serializes traced
    /// request handling (see the module docs).
    trace_gate: Option<Mutex<()>>,
    request_timeout: Duration,
    max_body: usize,
    started: Instant,
    local_addr: SocketAddr,
    /// Cache counters already published to the metrics registry, so
    /// `/metrics` can emit monotonic deltas.
    published: Mutex<CacheStats>,
}

/// A handle that asks a running [`Server`] to stop accepting and drain.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Request shutdown: sets the flag and pokes the listener with a
    /// throwaway connection so a blocking `accept` observes it.
    pub fn signal(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A running daemon. Dropping the struct does not stop it — call
/// [`ShutdownHandle::signal`] (or `POST /v1/shutdown`) and then
/// [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept thread and worker pool, and return
    /// immediately.
    ///
    /// # Errors
    ///
    /// Any failure to bind or inspect the listening socket.
    pub fn start(
        cfg: ServeConfig,
        registry: Arc<ModelRegistry>,
        obs: PipelineObs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        register_help(&obs);
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Ctx {
            registry,
            cache: ResultCache::new(cfg.cache_entries),
            trace_gate: obs.tracing().then(|| Mutex::new(())),
            obs,
            shutdown: Arc::clone(&shutdown),
            request_timeout: cfg.request_timeout,
            max_body: cfg.max_body_bytes,
            started: Instant::now(),
            local_addr: addr,
            published: Mutex::new(CacheStats::default()),
        });
        let flag = Arc::clone(&shutdown);
        let accept = thread::Builder::new()
            .name("ancstr-serve-accept".to_owned())
            .spawn(move || accept_loop(listener, cfg, ctx, flag))?;
        Ok(Server { addr, shutdown, accept: Some(accept) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle other threads can use to stop the daemon.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: Arc::clone(&self.shutdown), addr: self.addr }
    }

    /// Block until the daemon has stopped accepting and every admitted
    /// request has been answered.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, cfg: ServeConfig, ctx: Arc<Ctx>, flag: Arc<AtomicBool>) {
    let worker_ctx = Arc::clone(&ctx);
    let pool = WorkerPool::new(cfg.workers, cfg.queue_depth, move |(stream, accepted)| {
        handle_conn(&worker_ctx, stream, accepted);
    });
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if flag.load(Ordering::SeqCst) {
            break; // the wake connection itself, or a race with it
        }
        match pool.submit((stream, Instant::now())) {
            Ok(()) => {
                ctx.obs
                    .metrics()
                    .gauge_set("ancstr_serve_queue_depth", &[], pool.depth() as f64);
            }
            Err((reason, (mut stream, _))) => {
                let reason = match reason {
                    SubmitError::Full => "queue_full",
                    SubmitError::Closed => "closed",
                };
                ctx.obs
                    .metrics()
                    .counter_add("ancstr_serve_rejected_total", &[("reason", reason)], 1);
                // Shed load without reading the request: the client gets
                // an immediate, honest signal instead of queueing.
                let _ = Response::new(503).header("Retry-After", "1").write_to(&mut stream);
            }
        }
    }
    drop(listener);
    pool.shutdown();
    ctx.obs.metrics().gauge_set("ancstr_serve_queue_depth", &[], 0.0);
    ctx.obs.flush();
}

/// Register help texts for the daemon's metric families (idempotent).
fn register_help(obs: &PipelineObs) {
    let m = obs.metrics();
    m.help("ancstr_http_requests_total", "HTTP requests answered, by route and status code.");
    m.help("ancstr_http_request_seconds", "Request handling time (read + route + respond), by route.");
    m.help("ancstr_serve_queue_depth", "Connections waiting in the bounded accept queue.");
    m.help("ancstr_serve_rejected_total", "Connections shed before handling, by reason.");
    m.help("ancstr_serve_cache_hits_total", "Extract requests answered from the result cache.");
    m.help("ancstr_serve_cache_misses_total", "Extract requests that ran the pipeline.");
    m.help("ancstr_serve_cache_evictions_total", "Cached replies evicted by the LRU bound.");
    m.help("ancstr_serve_cache_entries", "Replies currently resident in the result cache.");
    m.help("ancstr_serve_model_reloads_total", "Model hot-swap attempts, by result.");
}

/// Handle one admitted connection end-to-end.
fn handle_conn(ctx: &Ctx, mut stream: TcpStream, accepted: Instant) {
    // The deadline covers time already spent queued: a request that
    // starved in the queue is answered with 503 rather than processed
    // long after the client gave up.
    let Some(remaining) = ctx.request_timeout.checked_sub(accepted.elapsed()) else {
        ctx.obs
            .metrics()
            .counter_add("ancstr_serve_rejected_total", &[("reason", "deadline")], 1);
        let _ = Response::new(503).header("Retry-After", "1").write_to(&mut stream);
        return;
    };
    let _ = stream.set_read_timeout(Some(remaining));
    let _ = stream.set_write_timeout(Some(ctx.request_timeout));
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_owned());

    let started = Instant::now();
    let req = match read_request(&mut stream, ctx.max_body) {
        Ok(req) => req,
        Err(err) => {
            let (status, route) = match &err {
                ReadError::BadRequest(_) => (400, "malformed"),
                ReadError::BodyTooLarge { .. } => (413, "malformed"),
                ReadError::Timeout => (408, "malformed"),
                ReadError::Io(_) => {
                    // The peer vanished; nobody is listening for a reply.
                    return;
                }
            };
            finish(ctx, &mut stream, route, started, error_response(status, &err.to_string()));
            return;
        }
    };

    // Serialize traced handling; see the module docs for why.
    let _gate = ctx
        .trace_gate
        .as_ref()
        .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()));
    let route = route_label(&req);
    let response = {
        let _span = ctx
            .obs
            .stage_with("serve", &[("route", route.into()), ("peer", peer.as_str().into())]);
        dispatch(ctx, &req, &peer)
    };
    finish(ctx, &mut stream, route, started, response);
}

/// Record request metrics and write the response.
fn finish(ctx: &Ctx, stream: &mut TcpStream, route: &str, started: Instant, response: Response) {
    let metrics = ctx.obs.metrics();
    metrics.counter_add(
        "ancstr_http_requests_total",
        &[("route", route), ("code", &response.status.to_string())],
        1,
    );
    metrics.observe(
        "ancstr_http_request_seconds",
        &[("route", route)],
        &DURATION_BUCKETS_S,
        started.elapsed().as_secs_f64(),
    );
    let _ = response.write_to(stream);
}

/// The metrics label for a request path: known routes keep their path,
/// everything else collapses into `other` to bound label cardinality.
fn route_label(req: &Request) -> &'static str {
    match req.path.as_str() {
        "/v1/extract" => "/v1/extract",
        "/v1/models" => "/v1/models",
        "/v1/shutdown" => "/v1/shutdown",
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        _ => "other",
    }
}

fn dispatch(ctx: &Ctx, req: &Request, peer: &str) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/extract") => extract_route(ctx, req, peer),
        ("GET", "/healthz") => healthz_route(ctx),
        ("GET", "/metrics") => metrics_route(ctx),
        ("POST", "/v1/models") => models_route(ctx, req, peer),
        ("POST", "/v1/shutdown") => shutdown_route(ctx),
        (_, "/v1/extract" | "/v1/models" | "/v1/shutdown" | "/healthz" | "/metrics") => {
            error_response(405, &format!("{} is not supported on {}", req.method, req.path))
        }
        _ => error_response(404, &format!("no endpoint at {}", req.path)),
    }
}

/// A JSON error body: `{"error": "..."}` plus optional stage fields.
fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, &Json::obj().set("error", message))
}

fn extract_route(ctx: &Ctx, req: &Request, peer: &str) -> Response {
    let Ok(source) = std::str::from_utf8(&req.body) else {
        return error_response(400, "request body is not valid UTF-8");
    };
    if source.trim().is_empty() {
        return error_response(400, "empty netlist body");
    }
    // Snapshot the model once; the whole request is served by exactly
    // this entry even if a hot-swap lands mid-flight.
    let entry = ctx.registry.current();
    let key = cache_key(&req.body, entry.extractor.config(), entry.fingerprint);
    if let Some(reply) = ctx.cache.get(&key) {
        return reply_response(&reply, &entry, true);
    }
    match extract_source(source, peer, &entry.extractor, &ctx.obs) {
        Ok(reply) => {
            let reply = Arc::new(reply);
            ctx.cache.put(key, Arc::clone(&reply));
            reply_response(&reply, &entry, false)
        }
        Err(err) => {
            // Parse/elaborate failures indict the client's netlist;
            // everything downstream is the server's problem.
            let status = match err.exit_code() {
                4 | 5 => 400,
                _ => 500,
            };
            extract_error_response(status, &err)
        }
    }
}

fn extract_error_response(status: u16, err: &ExtractError) -> Response {
    Response::json(
        status,
        &Json::obj()
            .set("error", err.to_string())
            .set("stage", err.stage())
            .set("exit_code", u64::from(err.exit_code())),
    )
}

fn reply_response(reply: &ServiceReply, entry: &ModelEntry, cached: bool) -> Response {
    let warnings: Vec<Json> = reply.warnings.iter().map(|w| Json::from(w.as_str())).collect();
    Response::json(
        200,
        &Json::obj()
            .set("cached", cached)
            .set("constraints", reply.constraints as u64)
            .set("constraints_text", reply.constraints_text.as_str())
            .set("devices", reply.devices as u64)
            .set("nets", reply.nets as u64)
            .set("model", entry.fingerprint_hex())
            .set("generation", entry.generation)
            .set("runtime_ms", reply.runtime.as_secs_f64() * 1e3)
            .set("warnings", warnings),
    )
}

fn healthz_route(ctx: &Ctx) -> Response {
    let entry = ctx.registry.current();
    let stats = ctx.cache.stats();
    Response::json(
        200,
        &Json::obj()
            .set("status", "ok")
            .set("uptime_seconds", ctx.started.elapsed().as_secs_f64())
            .set(
                "model",
                Json::obj()
                    .set("fingerprint", entry.fingerprint_hex())
                    .set("generation", entry.generation)
                    .set("source", entry.source.as_str()),
            )
            .set(
                "cache",
                Json::obj()
                    .set("hits", stats.hits)
                    .set("misses", stats.misses)
                    .set("evictions", stats.evictions)
                    .set("entries", stats.entries as u64),
            ),
    )
}

fn metrics_route(ctx: &Ctx) -> Response {
    publish_cache_metrics(ctx);
    // Effective compute-layer thread count (the `--threads` flag, or
    // the machine's available parallelism when unset).
    ctx.obs.metrics().gauge_set("ancstr_par_threads", &[], ancstr_par::threads() as f64);
    Response::new(200)
        .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        .with_body(ctx.obs.metrics().render().into_bytes())
}

/// Fold the cache's counters into the Prometheus registry as monotonic
/// deltas since the previous publish.
fn publish_cache_metrics(ctx: &Ctx) {
    let now = ctx.cache.stats();
    let mut last = ctx.published.lock().unwrap_or_else(|e| e.into_inner());
    let m = ctx.obs.metrics();
    m.counter_add("ancstr_serve_cache_hits_total", &[], now.hits - last.hits);
    m.counter_add("ancstr_serve_cache_misses_total", &[], now.misses - last.misses);
    m.counter_add("ancstr_serve_cache_evictions_total", &[], now.evictions - last.evictions);
    m.gauge_set("ancstr_serve_cache_entries", &[], now.entries as f64);
    *last = now;
}

fn models_route(ctx: &Ctx, req: &Request, peer: &str) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(400, "model body is not valid UTF-8");
    };
    match ctx.registry.reload_sealed(text, peer) {
        Ok(entry) => {
            ctx.obs.metrics().counter_add(
                "ancstr_serve_model_reloads_total",
                &[("result", "ok")],
                1,
            );
            Response::json(
                200,
                &Json::obj()
                    .set("fingerprint", entry.fingerprint_hex())
                    .set("generation", entry.generation),
            )
        }
        Err(err) => {
            ctx.obs.metrics().counter_add(
                "ancstr_serve_model_reloads_total",
                &[("result", "rejected")],
                1,
            );
            error_response(400, &err.to_string())
        }
    }
}

fn shutdown_route(ctx: &Ctx) -> Response {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Unblock the accept thread; the admitted-but-unanswered requests
    // (including this one) still drain before the daemon exits.
    let _ = TcpStream::connect_timeout(&ctx.local_addr, Duration::from_secs(1));
    Response::json(200, &Json::obj().set("status", "draining"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use ancstr_gnn::{GnnConfig, GnnModel};

    const NETLIST: &str = "\
.subckt ota inp inn out vdd vss
M1 x inp t vss nch w=2u l=0.1u
M2 y inn t vss nch w=2u l=0.1u
M3 x x vdd vdd pch w=4u l=0.1u
M4 out x vdd vdd pch w=4u l=0.1u
M5 t t vss vss nch w=1u l=0.1u
.ends
";

    fn start_server(cache_entries: usize) -> Server {
        let model = GnnModel::new(GnnConfig {
            dim: ancstr_core::FEATURE_DIM,
            layers: 2,
            seed: 11,
            ..GnnConfig::default()
        });
        let registry =
            Arc::new(ModelRegistry::load(&model.to_text(), "unit-test").unwrap());
        let cfg = ServeConfig {
            workers: 2,
            cache_entries,
            ..ServeConfig::default()
        };
        Server::start(cfg, registry, PipelineObs::new(None)).unwrap()
    }

    fn stop(server: Server) {
        server.shutdown_handle().signal();
        server.wait();
    }

    const T: Duration = Duration::from_secs(10);

    #[test]
    fn serves_health_and_unknown_routes() {
        let server = start_server(8);
        let addr = server.local_addr();
        let health = client::get(addr, "/healthz", T).unwrap();
        assert_eq!(health.status, 200);
        assert!(health.text().contains("\"status\":\"ok\""), "{}", health.text());
        assert_eq!(client::get(addr, "/nope", T).unwrap().status, 404);
        assert_eq!(client::get(addr, "/v1/extract", T).unwrap().status, 405);
        stop(server);
    }

    #[test]
    fn extract_route_serves_and_caches() {
        let server = start_server(8);
        let addr = server.local_addr();
        let first = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(first.status, 200, "{}", first.text());
        assert!(first.text().contains("\"cached\":false"), "{}", first.text());
        let second = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(second.status, 200);
        assert!(second.text().contains("\"cached\":true"), "{}", second.text());
        // Identical payloads modulo the cached flag and runtime.
        let strip = |s: &str| {
            s.lines()
                .next()
                .unwrap()
                .replace("\"cached\":true", "")
                .replace("\"cached\":false", "")
                .split("\"runtime_ms\"")
                .next()
                .unwrap()
                .to_owned()
        };
        assert_eq!(strip(&first.text()), strip(&second.text()));
        // The metrics endpoint reports the hit and the miss.
        let metrics = client::get(addr, "/metrics", T).unwrap().text();
        assert!(metrics.contains("ancstr_serve_cache_hits_total 1"), "{metrics}");
        assert!(metrics.contains("ancstr_serve_cache_misses_total 1"), "{metrics}");
        assert!(metrics.contains("ancstr_http_requests_total"), "{metrics}");
        assert!(metrics.contains("ancstr_par_threads"), "{metrics}");
        stop(server);
    }

    #[test]
    fn extract_route_rejects_bad_netlists() {
        let server = start_server(8);
        let addr = server.local_addr();
        let bad = client::post(addr, "/v1/extract", b"M1 a b\n", T).unwrap();
        assert_eq!(bad.status, 400, "{}", bad.text());
        assert!(bad.text().contains("\"stage\":\"parse\""), "{}", bad.text());
        let empty = client::post(addr, "/v1/extract", b"", T).unwrap();
        assert_eq!(empty.status, 400);
        stop(server);
    }

    #[test]
    fn model_reload_requires_a_sealed_envelope() {
        let server = start_server(8);
        let addr = server.local_addr();
        let next = GnnModel::new(GnnConfig {
            dim: ancstr_core::FEATURE_DIM,
            layers: 2,
            seed: 12,
            ..GnnConfig::default()
        });
        let plain = client::post(addr, "/v1/models", next.to_text().as_bytes(), T).unwrap();
        assert_eq!(plain.status, 400, "{}", plain.text());
        let sealed =
            client::post(addr, "/v1/models", next.to_text_checksummed().as_bytes(), T).unwrap();
        assert_eq!(sealed.status, 200, "{}", sealed.text());
        assert!(sealed.text().contains("\"generation\":2"), "{}", sealed.text());
        stop(server);
    }

    #[test]
    fn shutdown_endpoint_drains_and_exits() {
        let server = start_server(8);
        let addr = server.local_addr();
        let reply = client::post(addr, "/v1/shutdown", b"", T).unwrap();
        assert_eq!(reply.status, 200);
        assert!(reply.text().contains("draining"), "{}", reply.text());
        server.wait(); // must return, not hang
    }
}
