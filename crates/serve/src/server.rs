//! The extraction daemon: accept loop, request routing, backpressure,
//! deadlines, admission control, and graceful shutdown.
//!
//! Architecture in one paragraph: a single accept thread owns the
//! [`TcpListener`] and a supervised [`WorkerPool`]. Accepted
//! connections are submitted to the pool's bounded queue without
//! blocking — when the queue is full the accept thread answers `503` +
//! `Retry-After` directly, without even reading the request, so
//! overload sheds load in O(1) instead of growing latency. Between the
//! full-queue cliff and normal operation sits a brownout band: when the
//! queue crosses its high watermark the daemon keeps answering cache
//! hits but sheds cold (cache-miss) extract requests with `503`, and
//! leaves brownout only once the queue drains below the low watermark
//! (hysteresis, so the flag does not flap). Workers parse the request
//! under bounded framing limits and a per-request deadline, route it,
//! and run extraction against a warm model snapshot from the
//! [`ModelRegistry`], consulting the content-addressed [`ResultCache`]
//! first. Every request runs under `catch_unwind` twice: once around
//! routing (a panicking handler becomes a clean `500` with stage
//! `worker_panic`) and once in the pool itself (whatever else unwinds
//! restarts the worker slot with capped exponential backoff). Shutdown
//! (`POST /v1/shutdown` or [`ShutdownHandle::signal`]) flips a flag and
//! self-connects to unblock `accept`; the accept loop then closes the
//! queue, drains every request already admitted, and flushes metrics
//! and traces to disk before [`Server::wait`] returns.
//!
//! One deliberate trade-off: the tracer's output format guarantees
//! globally LIFO span nesting with monotonic timestamps (that is what
//! `validate_trace` checks), which concurrent requests would violate.
//! When `--trace-out` is active the daemon therefore serializes request
//! handling through a trace gate — correctness of the trace stream over
//! parallelism. Without tracing there is no gate and requests run fully
//! concurrently. The gate is held by the connection handler *outside*
//! the `catch_unwind` around routing, so a panicking route cannot
//! poison it.

use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ancstr_core::{cache_key, write_atomic, CancelToken, ExtractError, PipelineObs, ServiceReply};
use ancstr_obs::metrics::DURATION_BUCKETS_S;
use ancstr_obs::{is_trace_id, mint_trace_id, Json, Value};

use crate::batch::{BatchJob, BatchOutcome, Batcher};
use crate::cache::{CacheStats, ResultCache};
use crate::client;
use crate::flight::SingleFlight;
use crate::http::{read_request, ReadError, ReadLimits, Request, Response};
use crate::peers::PeerRing;
use crate::pool::{SubmitError, Supervision, WorkerPool};
use crate::registry::{ModelEntry, ModelRegistry, ReloadError, ResolveError};

/// How many consecutive `accept()` failures the loop tolerates before
/// concluding the listener is beyond saving and draining out.
const MAX_CONSECUTIVE_ACCEPT_ERRORS: u32 = 100;

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port 0 picks an ephemeral
    /// port (read it back via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue depth; beyond it connections get `503`.
    pub queue_depth: usize,
    /// Result-cache capacity in replies (0 disables caching).
    pub cache_entries: usize,
    /// Per-request deadline covering queue wait + read + handling.
    pub request_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Default extraction deadline (`--default-deadline-ms`), tightened
    /// further per request by the `x-ancstr-deadline-ms` header. `None`
    /// leaves only `request_timeout` in force.
    pub default_deadline: Option<Duration>,
    /// Queue depth at which brownout begins (cold traffic is shed).
    pub brownout_high: usize,
    /// Queue depth at which brownout ends. Must be `<= brownout_high`;
    /// the gap is the hysteresis band.
    pub brownout_low: usize,
    /// Honor `x-ancstr-chaos` fault-cooperation headers (test rigs
    /// only; never enable in production).
    pub chaos: bool,
    /// Replica peers (`--peers host:port,host:port`) for consistent-hash
    /// cache partitioning. Empty = standalone node, never forwards.
    pub peers: Vec<String>,
    /// Largest number of queued extract requests fused into one batched
    /// forward pass (`--batch-max`).
    pub batch_max: usize,
    /// When set, the drain path writes the final metrics snapshot here
    /// (Prometheus text format) before the daemon exits.
    pub metrics_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            cache_entries: 256,
            request_timeout: Duration::from_secs(30),
            max_body_bytes: 4 * 1024 * 1024,
            default_deadline: None,
            brownout_high: 48,
            brownout_low: 16,
            chaos: false,
            peers: Vec::new(),
            batch_max: 16,
            metrics_out: None,
        }
    }
}

/// Shared request-handling state (one per daemon, behind an `Arc`).
struct Ctx {
    registry: Arc<ModelRegistry>,
    cache: ResultCache,
    /// Coalesces concurrent misses on one cache key onto one pipeline
    /// run (anti-thundering-herd).
    flight: SingleFlight,
    /// Fuses queued same-model extract requests into one forward pass,
    /// bisecting failed batches to isolate poison requests.
    batcher: Batcher,
    /// The replica set for consistent-hash cache partitioning.
    ring: PeerRing,
    obs: PipelineObs,
    shutdown: Arc<AtomicBool>,
    /// Present iff a tracer is attached; holding it serializes traced
    /// request handling (see the module docs).
    trace_gate: Option<Mutex<()>>,
    request_timeout: Duration,
    max_body: usize,
    default_deadline: Option<Duration>,
    /// Set while admission control sheds cold traffic.
    brownout: AtomicBool,
    /// Requests whose handler panicked (both catch layers).
    worker_panics: AtomicU64,
    /// Requests isolated as batch poison by bisection.
    poisoned: AtomicU64,
    chaos: bool,
    metrics_out: Option<PathBuf>,
    started: Instant,
    local_addr: SocketAddr,
    /// Cache counters already published to the metrics registry, so
    /// `/metrics` can emit monotonic deltas.
    published: Mutex<CacheStats>,
    /// Fleet counters (batching, peers, evictions) already published.
    fleet_published: Mutex<FleetPublished>,
    /// Kernel profiling counters already published. Initialized to the
    /// process-wide counters at server start, so a daemon sharing its
    /// process with other instrumented work (tests, `bench`) exposes
    /// only what accumulated on its own watch.
    kernels_published: Mutex<Vec<KernelPublished>>,
}

/// Kernel-profile counters last folded into the metrics registry.
#[derive(Default, Clone, Copy)]
struct KernelPublished {
    calls: u64,
    elems: u64,
    wall_ns: u64,
}

/// The process-wide kernel counters as a publish baseline.
fn kernel_baseline() -> Vec<KernelPublished> {
    ancstr_par::profile::snapshot()
        .iter()
        .map(|s| KernelPublished { calls: s.calls, elems: s.elems, wall_ns: s.wall_ns })
        .collect()
}

/// Per-request telemetry threaded from the connection handler through
/// routing into [`finish`]: the request's trace identity (present iff
/// tracing is enabled), per-stage timings for the `x-ancstr-timing`
/// summary header, and the cache-temperature / model labels for the
/// request-duration histogram. Interior mutability because the route
/// handlers run inside `catch_unwind` holding only a shared reference.
struct ReqTelemetry {
    /// The request's 128-bit trace id — adopted from a well-formed
    /// `x-ancstr-trace-id` header or freshly minted. `None` whenever
    /// tracing is disabled, which is what keeps responses byte-free of
    /// trace headers in that mode.
    trace_id: Option<String>,
    /// `(stage, nanoseconds)` pairs in completion order.
    timings: Mutex<Vec<(&'static str, u64)>>,
    /// Cache temperature: `hit`, `miss`, or `none` (non-extract routes
    /// and requests rejected before the cache lookup).
    cache: Mutex<&'static str>,
    /// Model fingerprint serving the request, once resolved.
    model: Mutex<Option<String>>,
}

impl ReqTelemetry {
    fn new(trace_id: Option<String>) -> ReqTelemetry {
        ReqTelemetry {
            trace_id,
            timings: Mutex::new(Vec::new()),
            cache: Mutex::new("none"),
            model: Mutex::new(None),
        }
    }

    fn time(&self, stage: &'static str, dur: Duration) {
        self.timings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((stage, dur.as_nanos() as u64));
    }

    fn set_cache(&self, temperature: &'static str) {
        *self.cache.lock().unwrap_or_else(|e| e.into_inner()) = temperature;
    }

    fn set_model(&self, fingerprint_hex: String) {
        *self.model.lock().unwrap_or_else(|e| e.into_inner()) = Some(fingerprint_hex);
    }

    /// The `x-ancstr-timing` value, Server-Timing style:
    /// `queue_wait;dur=0.12, batch;dur=45.3, total;dur=45.8` (ms).
    fn timing_header(&self, total: Duration) -> String {
        let timings = self.timings.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (stage, ns) in timings.iter() {
            let _ = write!(out, "{stage};dur={:.3}, ", *ns as f64 / 1e6);
        }
        let _ = write!(out, "total;dur={:.3}", total.as_secs_f64() * 1e3);
        out
    }
}

/// Snapshot of the fleet counters last folded into the metrics
/// registry, so publishes stay monotonic deltas.
#[derive(Default, Clone, Copy)]
struct FleetPublished {
    batches: u64,
    batched_requests: u64,
    bisections: u64,
    forwards_ok: u64,
    failovers: u64,
    evictions: u64,
}

/// A handle that asks a running [`Server`] to stop accepting and drain.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Request shutdown: sets the flag and pokes the listener with a
    /// throwaway connection so a blocking `accept` observes it.
    pub fn signal(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A running daemon. Dropping the struct does not stop it — call
/// [`ShutdownHandle::signal`] (or `POST /v1/shutdown`) and then
/// [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept thread and worker pool, and return
    /// immediately.
    ///
    /// # Errors
    ///
    /// Any failure to bind or inspect the listening socket.
    pub fn start(
        cfg: ServeConfig,
        registry: Arc<ModelRegistry>,
        obs: PipelineObs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        register_help(&obs);
        // Kernel attribution rides the same switch as the rest of the
        // daemon's observability; when obs is disabled the compute
        // kernels pay only a relaxed load per call.
        if obs.enabled() {
            ancstr_par::profile::set_enabled(true);
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Ctx {
            registry,
            cache: ResultCache::new(cfg.cache_entries),
            flight: SingleFlight::new(),
            batcher: Batcher::new(cfg.batch_max.max(1)),
            ring: PeerRing::new(addr.to_string(), cfg.peers.clone()),
            trace_gate: obs.tracing().then(|| Mutex::new(())),
            obs,
            shutdown: Arc::clone(&shutdown),
            request_timeout: cfg.request_timeout,
            max_body: cfg.max_body_bytes,
            default_deadline: cfg.default_deadline,
            brownout: AtomicBool::new(false),
            worker_panics: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            chaos: cfg.chaos,
            metrics_out: cfg.metrics_out.clone(),
            started: Instant::now(),
            local_addr: addr,
            published: Mutex::new(CacheStats::default()),
            fleet_published: Mutex::new(FleetPublished::default()),
            kernels_published: Mutex::new(kernel_baseline()),
        });
        let flag = Arc::clone(&shutdown);
        let accept = thread::Builder::new()
            .name("ancstr-serve-accept".to_owned())
            .spawn(move || accept_loop(listener, cfg, ctx, flag))?;
        Ok(Server { addr, shutdown, accept: Some(accept) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle other threads can use to stop the daemon.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: Arc::clone(&self.shutdown), addr: self.addr }
    }

    /// Block until the daemon has stopped accepting and every admitted
    /// request has been answered.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, cfg: ServeConfig, ctx: Arc<Ctx>, flag: Arc<AtomicBool>) {
    let worker_ctx = Arc::clone(&ctx);
    let panic_ctx = Arc::clone(&ctx);
    let supervision = Supervision {
        on_panic: Some(Arc::new(move |worker| {
            // The dispatch-level catch already answered the client for
            // route panics; this layer fires for anything that escapes
            // it (chaos `panic-raw`, framing bugs) and restarts the
            // slot.
            panic_ctx.worker_panics.fetch_add(1, Ordering::SeqCst);
            panic_ctx.obs.metrics().counter_add(
                "ancstr_serve_worker_panics_total",
                &[("layer", "pool")],
                1,
            );
            panic_ctx.obs.event("serve", "worker_restart", &[("worker", worker.into())]);
        })),
        ..Supervision::default()
    };
    let pool = WorkerPool::supervised(
        cfg.workers,
        cfg.queue_depth,
        supervision,
        move |(stream, accepted, shed_cold)| {
            handle_conn(&worker_ctx, stream, accepted, shed_cold);
        },
    );
    let mut consecutive_errors: u32 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                consecutive_errors = 0;
                stream
            }
            Err(_) => {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                ctx.obs.metrics().counter_add("ancstr_serve_accept_errors_total", &[], 1);
                consecutive_errors += 1;
                if consecutive_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                    // The listener is wedged (fd exhaustion, interface
                    // gone). Drain what was admitted and exit cleanly
                    // instead of spinning forever.
                    flag.store(true, Ordering::SeqCst);
                    break;
                }
                thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if flag.load(Ordering::SeqCst) {
            break; // the wake connection itself, or a race with it
        }
        // Tag the request with the brownout state at admission: the
        // decision is made once, here, so a flap mid-handling cannot
        // shed a request that was admitted under normal operation.
        let shed_cold = ctx.brownout.load(Ordering::SeqCst);
        match pool.submit((stream, Instant::now(), shed_cold)) {
            Ok(()) => {
                let depth = pool.depth();
                ctx.obs.metrics().gauge_set("ancstr_serve_queue_depth", &[], depth as f64);
                update_brownout(&ctx, depth, cfg.brownout_high, cfg.brownout_low);
            }
            Err((reason, (mut stream, _, _))) => {
                let reason = match reason {
                    SubmitError::Full => "queue_full",
                    SubmitError::Closed => "closed",
                };
                ctx.obs
                    .metrics()
                    .counter_add("ancstr_serve_rejected_total", &[("reason", reason)], 1);
                // Shed load without reading the request: the client gets
                // an immediate, honest signal instead of queueing.
                let _ = Response::new(503).header("Retry-After", "1").write_to(&mut stream);
            }
        }
    }
    drop(listener);
    pool.shutdown();
    ctx.obs.metrics().gauge_set("ancstr_serve_queue_depth", &[], 0.0);
    drain_flush(&ctx);
}

/// Hysteresis for the brownout flag: enter at the high watermark, leave
/// at the low one, hold in between.
fn update_brownout(ctx: &Ctx, depth: usize, high: usize, low: usize) {
    let was = ctx.brownout.load(Ordering::SeqCst);
    let now = if depth >= high.max(1) {
        true
    } else if depth <= low {
        false
    } else {
        was
    };
    if now != was {
        ctx.brownout.store(now, Ordering::SeqCst);
        ctx.obs.metrics().gauge_set("ancstr_serve_brownout", &[], f64::from(u8::from(now)));
        ctx.obs.event("serve", "brownout", &[("active", now.into()), ("depth", depth.into())]);
    }
}

/// The end of the drain path: fold in the final cache counters, persist
/// the metrics snapshot when configured, and flush the trace stream.
/// Every accept-loop exit (shutdown endpoint, signal, wedged listener)
/// funnels through here, so operators get a complete final snapshot
/// even on unhappy paths.
fn drain_flush(ctx: &Ctx) {
    // Publish *everything* a `/metrics` scrape would, not just the
    // counters: families first observed mid-flight (the par-threads
    // gauge, kernel attribution) must appear in the final snapshot even
    // when nothing ever scraped the live endpoint.
    publish_scrape_metrics(ctx);
    if let Some(path) = &ctx.metrics_out {
        let _ = write_atomic(path, &ctx.obs.metrics().render());
    }
    ctx.obs.flush();
}

/// Register help texts for the daemon's metric families (idempotent).
fn register_help(obs: &PipelineObs) {
    let m = obs.metrics();
    m.help("ancstr_http_requests_total", "HTTP requests answered, by route and status code.");
    m.help("ancstr_http_request_seconds", "Request handling time (read + route + respond), by route.");
    m.help("ancstr_serve_queue_depth", "Connections waiting in the bounded accept queue.");
    m.help("ancstr_serve_rejected_total", "Connections shed before handling, by reason.");
    m.help("ancstr_serve_cache_hits_total", "Extract requests answered from the result cache.");
    m.help("ancstr_serve_cache_misses_total", "Extract requests that ran the pipeline.");
    m.help("ancstr_serve_cache_evictions_total", "Cached replies evicted by the LRU bound.");
    m.help("ancstr_serve_cache_entries", "Replies currently resident in the result cache.");
    m.help("ancstr_serve_model_reloads_total", "Model hot-swap attempts, by result.");
    m.help("ancstr_serve_model_quarantined", "Upload bodies quarantined by the reload circuit breaker.");
    m.help("ancstr_serve_worker_panics_total", "Request handlers that panicked, by catch layer.");
    m.help("ancstr_serve_deadline_expired_total", "Extractions aborted because the per-request deadline expired.");
    m.help("ancstr_serve_brownout_sheds_total", "Cold (cache-miss) extract requests shed during brownout.");
    m.help("ancstr_serve_brownout", "1 while admission control is shedding cold traffic.");
    m.help("ancstr_serve_accept_errors_total", "Errors returned by the listener's accept().");
    m.help("ancstr_serve_batches_total", "Fused forward passes executed (including bisection retries).");
    m.help("ancstr_serve_batched_requests_total", "Extract requests that rode a fused pass of size >= 2.");
    m.help("ancstr_serve_batch_bisections_total", "Failed-batch splits performed to isolate poison requests.");
    m.help("ancstr_serve_batch_poisoned_total", "Requests isolated as batch poison and answered 500.");
    m.help("ancstr_serve_bulkhead_sheds_total", "Cold extract requests shed by a tripped per-model bulkhead.");
    m.help("ancstr_serve_models_resident", "Models currently resident in the registry.");
    m.help("ancstr_serve_model_evictions_total", "Resident models evicted by the LRU slot bound.");
    m.help("ancstr_serve_model_bulkhead_tripped", "1 while the model's bulkhead breaker is tripped, by model.");
    m.help("ancstr_serve_peer_forwards_total", "Cold misses routed to their owning replica, by result.");
    m.help("ancstr_serve_request_duration_seconds", "End-to-end request time, by route, status code, cache temperature and model.");
    m.help("ancstr_kernel_calls_total", "Instrumented compute-kernel invocations, by kernel.");
    m.help("ancstr_kernel_elements_total", "Elements processed inside instrumented kernels (mul-adds for matmul/spmm), by kernel.");
    m.help("ancstr_kernel_wall_ns_total", "Wall nanoseconds spent inside instrumented kernels, by kernel.");
    m.help("ancstr_kernel_threads", "Thread count configured at the kernel's most recent call, by kernel.");
}

/// Handle one admitted connection end-to-end.
fn handle_conn(ctx: &Ctx, mut stream: TcpStream, accepted: Instant, shed_cold: bool) {
    // The deadline covers time already spent queued: a request that
    // starved in the queue is answered with 503 rather than processed
    // long after the client gave up.
    let hard_deadline = accepted + ctx.request_timeout;
    let Some(remaining) = ctx.request_timeout.checked_sub(accepted.elapsed()) else {
        ctx.obs
            .metrics()
            .counter_add("ancstr_serve_rejected_total", &[("reason", "deadline")], 1);
        let _ = Response::new(503).header("Retry-After", "1").write_to(&mut stream);
        return;
    };
    let _ = stream.set_read_timeout(Some(remaining));
    let _ = stream.set_write_timeout(Some(ctx.request_timeout));
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_owned());

    let queue_wait = accepted.elapsed();
    let started = Instant::now();
    // Framing limits: body size, header count/length, and the hard
    // deadline — a slowloris client dripping bytes is cut off at the
    // same deadline as everyone else, between reads, regardless of the
    // per-read socket timeout.
    let limits = ReadLimits::new(ctx.max_body).with_deadline(hard_deadline);
    let req = match read_request(&mut stream, &limits) {
        Ok(req) => req,
        Err(err) => {
            let (status, route) = match &err {
                ReadError::BadRequest(_) => (400, "malformed"),
                ReadError::BodyTooLarge { .. } => (413, "malformed"),
                ReadError::HeadTooLarge { .. } => (431, "malformed"),
                ReadError::Timeout => (408, "malformed"),
                ReadError::Io(_) => {
                    // The peer vanished; nobody is listening for a reply.
                    return;
                }
            };
            // No request headers to adopt a trace id from.
            let telemetry = ReqTelemetry::new(None);
            let resp = error_response(status, &err.to_string());
            finish(ctx, &mut stream, route, started, resp, &telemetry);
            return;
        }
    };

    // Trace identity is minted (or adopted from the caller) only when
    // tracing is active — with it disabled, no trace work happens and
    // no trace headers appear on the wire.
    let telemetry = ReqTelemetry::new(ctx.obs.tracing().then(|| {
        req.header("x-ancstr-trace-id")
            .filter(|v| is_trace_id(v))
            .map(str::to_owned)
            .unwrap_or_else(mint_trace_id)
    }));

    // Chaos hook exercising the *pool* supervision layer: the panic
    // escapes the dispatch-level catch below, so the client sees a torn
    // connection and the worker slot restarts under backoff.
    if ctx.chaos && req.header("x-ancstr-chaos") == Some("panic-raw") {
        panic!("chaos: injected pre-dispatch panic");
    }

    // The extraction deadline: the hard per-request budget, tightened
    // by the daemon-wide default and the client's own header. The token
    // keeps whichever deadline is earliest.
    let mut cancel = CancelToken::new().with_deadline(hard_deadline);
    if let Some(budget) = ctx.default_deadline {
        cancel = cancel.with_deadline(Instant::now() + budget);
    }
    if let Some(ms) = req.header("x-ancstr-deadline-ms").and_then(|v| v.trim().parse::<u64>().ok())
    {
        cancel = cancel.with_deadline(Instant::now() + Duration::from_millis(ms));
    }

    // Serialize traced handling; see the module docs for why. Held
    // outside the catch_unwind so a panicking route cannot poison it.
    let _gate = ctx
        .trace_gate
        .as_ref()
        .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()));
    let route = route_label(&req);
    let response = {
        // The root request span. When tracing, it carries the trace id
        // (inherited by every child span at merge time) and, on
        // forwarded requests, the upstream span id that the offline
        // merger links this subtree under.
        let mut span_fields: Vec<(&str, Value)> =
            vec![("route", route.into()), ("peer", peer.as_str().into())];
        if let Some(id) = &telemetry.trace_id {
            span_fields.push(("trace", id.as_str().into()));
            if let Some(parent) = req
                .header("x-ancstr-parent-span")
                .and_then(|v| v.trim().parse::<u64>().ok())
            {
                span_fields.push(("remote_parent", parent.into()));
            }
        }
        let _span = ctx.obs.stage_with("serve", &span_fields);
        // Queue wait ended before any span could open; back-date it as
        // the serve span's first child.
        if let Some(tracer) = ctx.obs.tracer() {
            tracer.completed_span("serve", "queue_wait", queue_wait.as_nanos() as u64, &[]);
        }
        telemetry.time("queue_wait", queue_wait);
        // Panic isolation, layer one: a handler panic becomes a clean
        // 500 on this connection and the worker keeps its slot.
        panic::catch_unwind(AssertUnwindSafe(|| {
            dispatch(ctx, &req, &peer, &cancel, shed_cold, &telemetry)
        }))
            .unwrap_or_else(|_| {
                ctx.worker_panics.fetch_add(1, Ordering::SeqCst);
                ctx.obs.metrics().counter_add(
                    "ancstr_serve_worker_panics_total",
                    &[("layer", "dispatch")],
                    1,
                );
                Response::json(
                    500,
                    &Json::obj()
                        .set("error", "the request handler panicked; the worker recovered")
                        .set("stage", "worker_panic"),
                )
            })
    };
    finish(ctx, &mut stream, route, started, response, &telemetry);
}

/// Record request metrics, attach the trace/timing response headers
/// (iff tracing is active), and write the response.
fn finish(
    ctx: &Ctx,
    stream: &mut TcpStream,
    route: &str,
    started: Instant,
    mut response: Response,
    telemetry: &ReqTelemetry,
) {
    let elapsed = started.elapsed();
    let code = response.status.to_string();
    let metrics = ctx.obs.metrics();
    metrics.counter_add("ancstr_http_requests_total", &[("route", route), ("code", &code)], 1);
    metrics.observe(
        "ancstr_http_request_seconds",
        &[("route", route)],
        &DURATION_BUCKETS_S,
        elapsed.as_secs_f64(),
    );
    // Stage-latency attribution: the same duration, sliced by what the
    // request actually was — which route, what it answered, whether the
    // cache saved the pipeline run, and which model served it.
    let cache = *telemetry.cache.lock().unwrap_or_else(|e| e.into_inner());
    let model = telemetry
        .model
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_else(|| "none".to_owned());
    metrics.observe(
        "ancstr_serve_request_duration_seconds",
        &[("route", route), ("code", &code), ("cache", cache), ("model", &model)],
        &DURATION_BUCKETS_S,
        elapsed.as_secs_f64(),
    );
    if let Some(id) = &telemetry.trace_id {
        response = response
            .header("x-ancstr-trace-id", id)
            .header("x-ancstr-timing", &telemetry.timing_header(elapsed));
    }
    let _ = response.write_to(stream);
}

/// The metrics label for a request path: known routes keep their path,
/// everything else collapses into `other` to bound label cardinality.
fn route_label(req: &Request) -> &'static str {
    match req.path.as_str() {
        "/v1/extract" => "/v1/extract",
        "/v1/models" => "/v1/models",
        "/v1/shutdown" => "/v1/shutdown",
        "/healthz" => "/healthz",
        "/healthz/live" => "/healthz/live",
        "/healthz/ready" => "/healthz/ready",
        "/metrics" => "/metrics",
        _ => "other",
    }
}

fn dispatch(
    ctx: &Ctx,
    req: &Request,
    peer: &str,
    cancel: &CancelToken,
    shed_cold: bool,
    telemetry: &ReqTelemetry,
) -> Response {
    if ctx.chaos {
        match req.header("x-ancstr-chaos") {
            // Exercises the dispatch-level catch: clean 500, same
            // connection, worker survives.
            Some("panic") => panic!("chaos: injected dispatch panic"),
            // Simulates a stuck handler so deadline propagation has
            // something real to cut short.
            Some(v) => {
                if let Some(ms) = v.strip_prefix("stall-ms:").and_then(|n| n.parse::<u64>().ok()) {
                    thread::sleep(Duration::from_millis(ms));
                }
            }
            None => {}
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/extract") => extract_route(ctx, req, peer, cancel, shed_cold, telemetry),
        ("GET", "/healthz") => healthz_route(ctx),
        ("GET", "/healthz/live") => Response::json(200, &Json::obj().set("status", "alive")),
        ("GET", "/healthz/ready") => readyz_route(ctx),
        ("GET", "/metrics") => metrics_route(ctx),
        ("POST", "/v1/models") => models_route(ctx, req, peer),
        ("POST", "/v1/shutdown") => shutdown_route(ctx),
        (
            _,
            "/v1/extract" | "/v1/models" | "/v1/shutdown" | "/healthz" | "/healthz/live"
            | "/healthz/ready" | "/metrics",
        ) => error_response(405, &format!("{} is not supported on {}", req.method, req.path)),
        _ => error_response(404, &format!("no endpoint at {}", req.path)),
    }
}

/// A JSON error body: `{"error": "..."}` plus optional stage fields.
fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, &Json::obj().set("error", message))
}

/// Media type of the raw ALIGN-JSON constraint document.
const ALIGN_MEDIA_TYPE: &str = "application/vnd.align+json";

/// Which representation of a [`ServiceReply`] the client asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplyFormat {
    /// The existing wrapper object (`constraints_text`, counters, …).
    Wrapper,
    /// The raw ALIGN-JSON constraint document.
    AlignJson,
}

/// Content negotiation for `POST /v1/extract`: an absent `Accept`, or
/// one naming `application/json` / `application/*` / `*/*`, selects the
/// wrapper; `application/vnd.align+json` (anywhere in the list, taking
/// precedence as the more specific type) selects the raw ALIGN
/// document; anything else is `406`. Quality parameters are ignored —
/// two formats do not need a preference lattice.
fn negotiate_format(req: &Request) -> Result<ReplyFormat, Response> {
    let Some(accept) = req.header("accept") else {
        return Ok(ReplyFormat::Wrapper);
    };
    let mut wrapper_ok = false;
    for part in accept.split(',') {
        let media = part.split(';').next().unwrap_or("").trim().to_ascii_lowercase();
        match media.as_str() {
            ALIGN_MEDIA_TYPE => return Ok(ReplyFormat::AlignJson),
            "application/json" | "application/*" | "*/*" | "" => wrapper_ok = true,
            _ => {}
        }
    }
    if wrapper_ok {
        Ok(ReplyFormat::Wrapper)
    } else {
        Err(Response::json(
            406,
            &Json::obj()
                .set(
                    "error",
                    format!("no acceptable representation: this endpoint offers application/json and {ALIGN_MEDIA_TYPE}"),
                )
                .set("stage", "content_negotiation"),
        ))
    }
}

fn extract_route(
    ctx: &Ctx,
    req: &Request,
    peer: &str,
    cancel: &CancelToken,
    shed_cold: bool,
    telemetry: &ReqTelemetry,
) -> Response {
    let Ok(source) = std::str::from_utf8(&req.body) else {
        return error_response(400, "request body is not valid UTF-8");
    };
    if source.trim().is_empty() {
        return error_response(400, "empty netlist body");
    }
    let format = match negotiate_format(req) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    // An already-expired budget is 408 even when the answer is cached:
    // the client stopped waiting, and a deterministic status beats a
    // reply whose fate depends on cache temperature.
    if cancel.is_cancelled() {
        ctx.obs.metrics().counter_add("ancstr_serve_deadline_expired_total", &[], 1);
        return extract_error_response(408, &ExtractError::Cancelled);
    }
    // Route to a resident model (x-ancstr-model header, default entry
    // otherwise) and snapshot it once; the whole request is served by
    // exactly this entry even if a hot-swap or eviction lands
    // mid-flight.
    let slot = match ctx.registry.resolve(req.header("x-ancstr-model")) {
        Ok(slot) => slot,
        Err(err) => {
            let status = match err {
                ResolveError::BadFingerprint(_) => 400,
                ResolveError::NotFound(_) => 404,
            };
            return Response::json(
                status,
                &Json::obj().set("error", err.to_string()).set("stage", "model_routing"),
            );
        }
    };
    let entry = slot.entry;
    let health = slot.health;
    telemetry.set_model(entry.fingerprint_hex());
    let key = cache_key(&req.body, entry.extractor.config(), entry.fingerprint);
    // Single-flight: at most one worker computes any given key. A
    // follower waits — bounded by its own deadline — for the leader to
    // publish, then takes leadership itself just long enough to read
    // the cache. This turns N identical cold requests into one
    // pipeline run and makes the hit/miss counters deterministic.
    let flight_started = Instant::now();
    let _lead = loop {
        match ctx.flight.begin(&key) {
            Some(guard) => break guard,
            None => {
                ctx.flight.wait(&key, Duration::from_millis(50));
                if cancel.is_cancelled() {
                    ctx.obs.metrics().counter_add("ancstr_serve_deadline_expired_total", &[], 1);
                    return extract_error_response(408, &ExtractError::Cancelled);
                }
            }
        }
    };
    let flight_wait = flight_started.elapsed();
    if let Some(tracer) = ctx.obs.tracer() {
        tracer.completed_span("serve", "single_flight", flight_wait.as_nanos() as u64, &[]);
    }
    telemetry.time("single_flight", flight_wait);
    if let Some(reply) = ctx.cache.get(&key) {
        // Cache hits are cheap; brownout never sheds them.
        telemetry.set_cache("hit");
        return reply_response(&reply, &entry, true, format);
    }
    telemetry.set_cache("miss");
    if shed_cold {
        ctx.obs.metrics().counter_add("ancstr_serve_brownout_sheds_total", &[], 1);
        return Response::json(
            503,
            &Json::obj()
                .set("error", "brownout: the daemon is shedding cold requests; retry shortly")
                .set("stage", "brownout"),
        )
        .header("Retry-After", "1");
    }
    // Per-model bulkhead: a tripped model sheds its own cold traffic
    // (cache hits were already served above) while every other resident
    // model keeps serving. `admit_cold` lets deterministic probes
    // through so a healed model closes its breaker.
    if !health.admit_cold() {
        ctx.obs.metrics().counter_add(
            "ancstr_serve_bulkhead_sheds_total",
            &[("model", &entry.fingerprint_hex())],
            1,
        );
        return Response::json(
            503,
            &Json::obj()
                .set(
                    "error",
                    "bulkhead open: this model is failing and its cold traffic is shed",
                )
                .set("stage", "bulkhead")
                .set("model", entry.fingerprint_hex()),
        )
        .header("Retry-After", "1");
    }
    let chaos = ctx.chaos.then(|| req.header("x-ancstr-chaos")).flatten();
    // Replica-aware partitioning: if a peer owns this key, fetch from
    // it under a per-hop deadline; any failure degrades to local
    // compute (a miss, never an error).
    if let Some(resp) = peer_fetch(ctx, req, &key, &entry, cancel, chaos, telemetry, format) {
        return resp;
    }
    // The origin label is diagnostic-only (it becomes the parse span's
    // `path` field), which makes it the safe channel for linking the
    // batch lane's pipeline spans back to this requester's trace.
    let origin = match &telemetry.trace_id {
        Some(id) => format!("{peer} trace={id}"),
        None => peer.to_owned(),
    };
    let batch_started = Instant::now();
    let batch_span = ctx.obs.tracer().map(|t| {
        t.span("serve", "batch", &[("model", entry.fingerprint_hex().into())])
    });
    let outcome = ctx.batcher.submit(
        entry.fingerprint,
        &entry.extractor,
        &ctx.obs,
        BatchJob {
            source: source.to_owned(),
            origin,
            cancel: cancel.clone(),
            poison: chaos == Some("poison"),
        },
    );
    drop(batch_span);
    telemetry.time("batch", batch_started.elapsed());
    match outcome {
        BatchOutcome::Reply(reply) => {
            health.record_success();
            let reply = Arc::new(*reply);
            ctx.cache.put(key, Arc::clone(&reply));
            reply_response(&reply, &entry, false, format)
        }
        BatchOutcome::Error(err) => {
            // Parse/elaborate failures indict the client's netlist; an
            // expired deadline is the client's budget; everything
            // downstream is the server's problem (and counts against
            // the model's bulkhead).
            let status = match err.exit_code() {
                4 | 5 => 400,
                10 => {
                    ctx.obs.metrics().counter_add("ancstr_serve_deadline_expired_total", &[], 1);
                    408
                }
                _ => {
                    health.record_failure();
                    500
                }
            };
            extract_error_response(status, &err)
        }
        BatchOutcome::Poisoned => {
            ctx.poisoned.fetch_add(1, Ordering::SeqCst);
            ctx.obs.metrics().counter_add("ancstr_serve_batch_poisoned_total", &[], 1);
            health.record_failure();
            Response::json(
                500,
                &Json::obj()
                    .set(
                        "error",
                        "this request crashed the pipeline; its batch-mates were unaffected",
                    )
                    .set("stage", "batch_poison"),
            )
        }
        BatchOutcome::Budget => {
            health.record_failure();
            Response::json(
                500,
                &Json::obj()
                    .set("error", "batch retry budget exhausted before this request succeeded")
                    .set("stage", "batch_budget"),
            )
        }
    }
}

/// Try to serve a cold miss from the replica that owns its cache key.
/// Returns `Some(response)` only when the owning peer answered `200` in
/// time — the peer's reply bytes are relayed as-is, so a fleet answers
/// byte-identically no matter which replica the client hit. Every other
/// path (self-owned key, no peers, dead peer, slow peer, unhealthy
/// reply, chaos-simulated hop failure) returns `None` and the caller
/// computes locally: failover is a cache miss, never a client error.
#[allow(clippy::too_many_arguments)]
fn peer_fetch(
    ctx: &Ctx,
    req: &Request,
    key: &str,
    entry: &ModelEntry,
    cancel: &CancelToken,
    chaos: Option<&str>,
    telemetry: &ReqTelemetry,
    format: ReplyFormat,
) -> Option<Response> {
    // Forwarded requests carry x-ancstr-no-forward so a hop terminates
    // at the owner even if ring views disagree mid-deploy.
    if req.header("x-ancstr-no-forward").is_some() {
        return None;
    }
    // Chaos-simulated hop failures (test rigs): exercise the failover
    // path deterministically without needing a dead replica.
    match chaos {
        Some("peer-down") => {
            ctx.ring.count_failover();
            return None;
        }
        // A poison request must detonate *here*: forwarding would strip
        // the chaos header and neutralize the simulation, which a real
        // poison input (panicking wherever it is computed) never is.
        Some("poison") => return None,
        Some(v) => {
            if let Some(ms) = v.strip_prefix("slow-peer-ms:").and_then(|n| n.parse::<u64>().ok())
            {
                thread::sleep(Duration::from_millis(ms.min(250)));
                ctx.ring.count_failover();
                return None;
            }
        }
        None => {}
    }
    if !ctx.ring.has_peers() {
        return None;
    }
    let owner = ctx.ring.owner(key)?;
    let Ok(addr) = owner.parse::<SocketAddr>() else {
        ctx.ring.count_failover();
        return None;
    };
    // The hop budget is carved from what remains of the request budget:
    // half the remainder, clamped, so a slow peer can never starve the
    // local fallback.
    let remaining = cancel
        .deadline()
        .map(|d| d.saturating_duration_since(Instant::now()))
        .unwrap_or(Duration::from_secs(4));
    if remaining < Duration::from_millis(20) {
        return None; // let the local path answer the deadline honestly
    }
    let hop = (remaining / 2).clamp(Duration::from_millis(50), Duration::from_secs(2));
    let hop_ms = hop.as_millis().to_string();
    let model_hex = entry.fingerprint_hex();
    let mut headers = vec![
        ("x-ancstr-no-forward", "1"),
        ("x-ancstr-model", model_hex.as_str()),
        ("x-ancstr-deadline-ms", hop_ms.as_str()),
    ];
    // The negotiated format crosses the hop so the owner answers in the
    // representation this client asked for; the relayed Content-Type
    // below matches it.
    if format == ReplyFormat::AlignJson {
        headers.push(("accept", ALIGN_MEDIA_TYPE));
    }
    // Propagate trace context across the hop: the owner adopts our
    // trace id, and the forward span's id becomes its remote parent so
    // the offline merger can hang the remote subtree under this hop.
    let span = ctx.obs.tracer().zip(telemetry.trace_id.as_deref()).map(|(t, id)| {
        t.span("serve", "forward", &[("peer", owner.into()), ("trace", id.into())])
    });
    let span_id = span.as_ref().map(|s| s.id().to_string());
    if let (Some(id), Some(span_id)) = (telemetry.trace_id.as_deref(), span_id.as_deref()) {
        headers.push(("x-ancstr-trace-id", id));
        headers.push(("x-ancstr-parent-span", span_id));
    }
    let hop_started = Instant::now();
    let result = client::post_with(addr, "/v1/extract", &headers, &req.body, hop);
    drop(span);
    telemetry.time("forward", hop_started.elapsed());
    match result {
        Ok(reply) if reply.status == 200 => {
            ctx.ring.count_forward_ok();
            let content_type = match format {
                ReplyFormat::Wrapper => "application/json",
                ReplyFormat::AlignJson => ALIGN_MEDIA_TYPE,
            };
            Some(
                Response::new(200)
                    .header("Content-Type", content_type)
                    .header("x-ancstr-served-by", owner)
                    .with_body(reply.body),
            )
        }
        _ => {
            ctx.ring.count_failover();
            None
        }
    }
}

fn extract_error_response(status: u16, err: &ExtractError) -> Response {
    Response::json(
        status,
        &Json::obj()
            .set("error", err.to_string())
            .set("stage", err.stage())
            .set("exit_code", u64::from(err.exit_code())),
    )
}

fn reply_response(
    reply: &ServiceReply,
    entry: &ModelEntry,
    cached: bool,
    format: ReplyFormat,
) -> Response {
    if format == ReplyFormat::AlignJson {
        // The batcher renders the ALIGN view on every pass, so cached
        // and fresh replies alike carry it; the defensive fallback only
        // guards replies minted by an older build sharing the cache.
        if let Some(doc) = &reply.align_json {
            return Response::new(200)
                .header("Content-Type", ALIGN_MEDIA_TYPE)
                .header("x-ancstr-cached", if cached { "1" } else { "0" })
                .with_body(doc.clone().into_bytes());
        }
    }
    let warnings: Vec<Json> = reply.warnings.iter().map(|w| Json::from(w.as_str())).collect();
    Response::json(
        200,
        &Json::obj()
            .set("cached", cached)
            .set("constraints", reply.constraints as u64)
            .set("constraints_text", reply.constraints_text.as_str())
            .set("devices", reply.devices as u64)
            .set("nets", reply.nets as u64)
            .set("model", entry.fingerprint_hex())
            .set("generation", entry.generation)
            .set("runtime_ms", reply.runtime.as_secs_f64() * 1e3)
            .set("warnings", warnings),
    )
}

fn healthz_route(ctx: &Ctx) -> Response {
    let entry = ctx.registry.current();
    let stats = ctx.cache.stats();
    let breaker = ctx.registry.breaker();
    let models: Vec<Json> = ctx
        .registry
        .models()
        .iter()
        .map(|s| {
            Json::obj()
                .set("fingerprint", s.fingerprint.as_str())
                .set("generation", s.generation)
                .set("default", s.is_default)
                .set("tripped", s.tripped)
                .set("shed_total", s.shed_total)
        })
        .collect();
    let peers: Vec<Json> = ctx.ring.peers().iter().map(|p| Json::from(p.as_str())).collect();
    Response::json(
        200,
        &Json::obj()
            .set("status", "ok")
            .set("uptime_seconds", ctx.started.elapsed().as_secs_f64())
            .set("brownout", ctx.brownout.load(Ordering::SeqCst))
            .set("worker_panics", ctx.worker_panics.load(Ordering::SeqCst))
            .set(
                "model",
                Json::obj()
                    .set("fingerprint", entry.fingerprint_hex())
                    .set("generation", entry.generation)
                    .set("source", entry.source.as_str()),
            )
            .set("models", models)
            .set(
                "breaker",
                Json::obj()
                    .set("quarantined", breaker.quarantined as u64)
                    .set("rejected_total", breaker.rejected_total),
            )
            .set(
                "batching",
                Json::obj()
                    .set("batches", ctx.batcher.batches_total())
                    .set("batched_requests", ctx.batcher.batched_requests_total())
                    .set("bisections", ctx.batcher.bisections_total())
                    .set("poisoned", ctx.poisoned.load(Ordering::SeqCst)),
            )
            .set(
                "peers",
                Json::obj()
                    .set("self", ctx.ring.self_addr())
                    .set("configured", peers)
                    .set("forwards_ok", ctx.ring.forwards_ok_total())
                    .set("failovers", ctx.ring.failovers_total()),
            )
            .set(
                "cache",
                Json::obj()
                    .set("hits", stats.hits)
                    .set("misses", stats.misses)
                    .set("evictions", stats.evictions)
                    .set("entries", stats.entries as u64),
            ),
    )
}

/// Readiness is stricter than liveness: a draining or browned-out
/// daemon is alive (do not restart it) but not ready (stop routing new
/// traffic to it).
fn readyz_route(ctx: &Ctx) -> Response {
    let mut reasons: Vec<Json> = Vec::new();
    if ctx.shutdown.load(Ordering::SeqCst) {
        reasons.push("draining".into());
    }
    if ctx.brownout.load(Ordering::SeqCst) {
        reasons.push("brownout".into());
    }
    let ready = reasons.is_empty();
    // Tripped bulkheads are surfaced but do not fail readiness: the
    // other resident models (and every cache hit) still serve, so
    // pulling the whole replica would amplify a one-model failure.
    let tripped: Vec<Json> = ctx
        .registry
        .models()
        .iter()
        .filter(|s| s.tripped)
        .map(|s| Json::from(s.fingerprint.as_str()))
        .collect();
    let body = Json::obj()
        .set("status", if ready { "ready" } else { "degraded" })
        .set("reasons", reasons)
        .set("bulkheads_tripped", tripped)
        .set("quarantined_models", ctx.registry.breaker().quarantined as u64);
    let mut resp = Response::json(if ready { 200 } else { 503 }, &body);
    if !ready {
        resp = resp.header("Retry-After", "1");
    }
    resp
}

fn metrics_route(ctx: &Ctx) -> Response {
    publish_scrape_metrics(ctx);
    Response::new(200)
        .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        .with_body(ctx.obs.metrics().render().into_bytes())
}

/// Everything a scrape publishes on demand: the cache/fleet deltas,
/// the effective compute-layer thread count (the `--threads` flag, or
/// the machine's available parallelism when unset), and kernel
/// attribution. The drain path reuses this so the final snapshot is a
/// superset of what any live scrape would have shown.
fn publish_scrape_metrics(ctx: &Ctx) {
    publish_cache_metrics(ctx);
    publish_kernel_metrics(ctx);
    ctx.obs.metrics().gauge_set("ancstr_par_threads", &[], ancstr_par::threads() as f64);
}

/// Fold the process-wide kernel profiling counters into the registry
/// as monotonic deltas since this daemon's baseline. Saturating
/// subtraction because `bench` (sharing the process in tests) may
/// reset the counters between publishes.
fn publish_kernel_metrics(ctx: &Ctx) {
    if !ancstr_par::profile::enabled() {
        return;
    }
    let snap = ancstr_par::profile::snapshot();
    let mut last = ctx.kernels_published.lock().unwrap_or_else(|e| e.into_inner());
    let m = ctx.obs.metrics();
    for (s, prev) in snap.iter().zip(last.iter_mut()) {
        let labels = [("kernel", s.name)];
        m.counter_add("ancstr_kernel_calls_total", &labels, s.calls.saturating_sub(prev.calls));
        m.counter_add("ancstr_kernel_elements_total", &labels, s.elems.saturating_sub(prev.elems));
        m.counter_add("ancstr_kernel_wall_ns_total", &labels, s.wall_ns.saturating_sub(prev.wall_ns));
        m.gauge_set("ancstr_kernel_threads", &labels, s.threads as f64);
        *prev = KernelPublished { calls: s.calls, elems: s.elems, wall_ns: s.wall_ns };
    }
}

/// Fold the cache's counters into the Prometheus registry as monotonic
/// deltas since the previous publish.
fn publish_cache_metrics(ctx: &Ctx) {
    let now = ctx.cache.stats();
    let mut last = ctx.published.lock().unwrap_or_else(|e| e.into_inner());
    let m = ctx.obs.metrics();
    m.counter_add("ancstr_serve_cache_hits_total", &[], now.hits - last.hits);
    m.counter_add("ancstr_serve_cache_misses_total", &[], now.misses - last.misses);
    m.counter_add("ancstr_serve_cache_evictions_total", &[], now.evictions - last.evictions);
    m.gauge_set("ancstr_serve_cache_entries", &[], now.entries as f64);
    *last = now;
    publish_fleet_metrics(ctx);
}

/// Fold the batching, peer, and registry counters into the Prometheus
/// registry as monotonic deltas, plus the point-in-time gauges.
fn publish_fleet_metrics(ctx: &Ctx) {
    let now = FleetPublished {
        batches: ctx.batcher.batches_total(),
        batched_requests: ctx.batcher.batched_requests_total(),
        bisections: ctx.batcher.bisections_total(),
        forwards_ok: ctx.ring.forwards_ok_total(),
        failovers: ctx.ring.failovers_total(),
        evictions: ctx.registry.evictions(),
    };
    let mut last = ctx.fleet_published.lock().unwrap_or_else(|e| e.into_inner());
    let m = ctx.obs.metrics();
    m.counter_add("ancstr_serve_batches_total", &[], now.batches - last.batches);
    m.counter_add(
        "ancstr_serve_batched_requests_total",
        &[],
        now.batched_requests - last.batched_requests,
    );
    m.counter_add("ancstr_serve_batch_bisections_total", &[], now.bisections - last.bisections);
    m.counter_add(
        "ancstr_serve_peer_forwards_total",
        &[("result", "ok")],
        now.forwards_ok - last.forwards_ok,
    );
    m.counter_add(
        "ancstr_serve_peer_forwards_total",
        &[("result", "failover")],
        now.failovers - last.failovers,
    );
    m.counter_add("ancstr_serve_model_evictions_total", &[], now.evictions - last.evictions);
    *last = now;
    let summaries = ctx.registry.models();
    m.gauge_set("ancstr_serve_models_resident", &[], summaries.len() as f64);
    for s in &summaries {
        m.gauge_set(
            "ancstr_serve_model_bulkhead_tripped",
            &[("model", &s.fingerprint)],
            f64::from(u8::from(s.tripped)),
        );
    }
}

fn models_route(ctx: &Ctx, req: &Request, peer: &str) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(400, "model body is not valid UTF-8");
    };
    let m = ctx.obs.metrics();
    let result = ctx.registry.reload_guarded(text, peer);
    let breaker = ctx.registry.breaker();
    m.gauge_set("ancstr_serve_model_quarantined", &[], breaker.quarantined as f64);
    match result {
        Ok(entry) => {
            m.counter_add("ancstr_serve_model_reloads_total", &[("result", "ok")], 1);
            Response::json(
                200,
                &Json::obj()
                    .set("fingerprint", entry.fingerprint_hex())
                    .set("generation", entry.generation),
            )
        }
        Err(err @ ReloadError::BreakerOpen { .. }) => {
            m.counter_add("ancstr_serve_model_reloads_total", &[("result", "breaker_open")], 1);
            Response::json(
                422,
                &Json::obj().set("error", err.to_string()).set("stage", "breaker"),
            )
        }
        Err(err @ ReloadError::Rejected { step, .. }) => {
            m.counter_add("ancstr_serve_model_reloads_total", &[("result", "rejected")], 1);
            Response::json(400, &Json::obj().set("error", err.to_string()).set("stage", step))
        }
    }
}

fn shutdown_route(ctx: &Ctx) -> Response {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Unblock the accept thread; the admitted-but-unanswered requests
    // (including this one) still drain before the daemon exits.
    let _ = TcpStream::connect_timeout(&ctx.local_addr, Duration::from_secs(1));
    Response::json(200, &Json::obj().set("status", "draining"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use ancstr_gnn::{GnnConfig, GnnModel};

    const NETLIST: &str = "\
.subckt ota inp inn out vdd vss
M1 x inp t vss nch w=2u l=0.1u
M2 y inn t vss nch w=2u l=0.1u
M3 x x vdd vdd pch w=4u l=0.1u
M4 out x vdd vdd pch w=4u l=0.1u
M5 t t vss vss nch w=1u l=0.1u
.ends
";

    fn test_model(seed: u64) -> GnnModel {
        GnnModel::new(GnnConfig {
            dim: ancstr_core::FEATURE_DIM,
            layers: 2,
            seed,
            ..GnnConfig::default()
        })
    }

    fn start_with(cfg: ServeConfig) -> Server {
        let registry =
            Arc::new(ModelRegistry::load(&test_model(11).to_text(), "unit-test").unwrap());
        Server::start(cfg, registry, PipelineObs::new(None)).unwrap()
    }

    fn start_server(cache_entries: usize) -> Server {
        start_with(ServeConfig { workers: 2, cache_entries, ..ServeConfig::default() })
    }

    fn stop(server: Server) {
        server.shutdown_handle().signal();
        server.wait();
    }

    const T: Duration = Duration::from_secs(10);

    #[test]
    fn serves_health_and_unknown_routes() {
        let server = start_server(8);
        let addr = server.local_addr();
        let health = client::get(addr, "/healthz", T).unwrap();
        assert_eq!(health.status, 200);
        assert!(health.text().contains("\"status\":\"ok\""), "{}", health.text());
        assert_eq!(client::get(addr, "/nope", T).unwrap().status, 404);
        assert_eq!(client::get(addr, "/v1/extract", T).unwrap().status, 405);
        stop(server);
    }

    #[test]
    fn liveness_and_readiness_split() {
        let server = start_server(8);
        let addr = server.local_addr();
        let live = client::get(addr, "/healthz/live", T).unwrap();
        assert_eq!(live.status, 200);
        assert!(live.text().contains("\"status\":\"alive\""), "{}", live.text());
        let ready = client::get(addr, "/healthz/ready", T).unwrap();
        assert_eq!(ready.status, 200, "{}", ready.text());
        assert!(ready.text().contains("\"status\":\"ready\""), "{}", ready.text());
        stop(server);
    }

    #[test]
    fn extract_route_serves_and_caches() {
        let server = start_server(8);
        let addr = server.local_addr();
        let first = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(first.status, 200, "{}", first.text());
        assert!(first.text().contains("\"cached\":false"), "{}", first.text());
        let second = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(second.status, 200);
        assert!(second.text().contains("\"cached\":true"), "{}", second.text());
        // Identical payloads modulo the cached flag and runtime.
        let strip = |s: &str| {
            s.lines()
                .next()
                .unwrap()
                .replace("\"cached\":true", "")
                .replace("\"cached\":false", "")
                .split("\"runtime_ms\"")
                .next()
                .unwrap()
                .to_owned()
        };
        assert_eq!(strip(&first.text()), strip(&second.text()));
        // The metrics endpoint reports the hit and the miss.
        let metrics = client::get(addr, "/metrics", T).unwrap().text();
        assert!(metrics.contains("ancstr_serve_cache_hits_total 1"), "{metrics}");
        assert!(metrics.contains("ancstr_serve_cache_misses_total 1"), "{metrics}");
        assert!(metrics.contains("ancstr_http_requests_total"), "{metrics}");
        assert!(metrics.contains("ancstr_par_threads"), "{metrics}");
        stop(server);
    }

    #[test]
    fn accept_negotiation_selects_the_align_document() {
        let server = start_server(8);
        let addr = server.local_addr();
        // Explicit application/json and an absent Accept agree byte-wise.
        let plain = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(plain.status, 200, "{}", plain.text());
        let align = client::post_with(
            addr,
            "/v1/extract",
            &[("accept", "application/vnd.align+json")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(align.status, 200, "{}", align.text());
        let doc = align.text();
        assert!(doc.starts_with('{') && doc.contains("\"schema\":\"ancstr-align-v1\""), "{doc}");
        assert!(doc.contains("\"SymmBlock\""), "{doc}");
        assert!(
            !doc.contains("constraints_text"),
            "the raw document is not the wrapper: {doc}"
        );
        // The cached entry serves both formats.
        let wrapped = client::post_with(
            addr,
            "/v1/extract",
            &[("accept", "application/json")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(wrapped.status, 200);
        assert!(wrapped.text().contains("\"cached\":true"), "{}", wrapped.text());
        // An unservable Accept is a clean 406.
        let nope = client::post_with(
            addr,
            "/v1/extract",
            &[("accept", "text/html")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(nope.status, 406, "{}", nope.text());
        stop(server);
    }

    #[test]
    fn extract_route_rejects_bad_netlists() {
        let server = start_server(8);
        let addr = server.local_addr();
        let bad = client::post(addr, "/v1/extract", b"M1 a b\n", T).unwrap();
        assert_eq!(bad.status, 400, "{}", bad.text());
        assert!(bad.text().contains("\"stage\":\"parse\""), "{}", bad.text());
        let empty = client::post(addr, "/v1/extract", b"", T).unwrap();
        assert_eq!(empty.status, 400);
        stop(server);
    }

    #[test]
    fn an_exhausted_default_deadline_maps_to_408() {
        let server = start_with(ServeConfig {
            workers: 2,
            cache_entries: 8,
            default_deadline: Some(Duration::ZERO),
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        let reply = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(reply.status, 408, "{}", reply.text());
        assert!(reply.text().contains("\"stage\":\"deadline\""), "{}", reply.text());
        let metrics = client::get(addr, "/metrics", T).unwrap().text();
        assert!(metrics.contains("ancstr_serve_deadline_expired_total 1"), "{metrics}");
        stop(server);
    }

    #[test]
    fn the_deadline_header_tightens_the_budget_per_request() {
        let server = start_server(8);
        let addr = server.local_addr();
        let reply = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-deadline-ms", "0")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(reply.status, 408, "{}", reply.text());
        // Without the header the same request succeeds.
        let ok = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(ok.status, 200, "{}", ok.text());
        stop(server);
    }

    #[test]
    fn brownout_sheds_cold_requests_but_serves_cached_ones() {
        // high watermark 1 + low watermark 0: submitting any request
        // while another is queued latches brownout; serial requests
        // against a single worker keep it latched long enough to observe
        // deterministically by priming the flag with depth >= 1.
        let server = start_with(ServeConfig {
            workers: 1,
            cache_entries: 8,
            brownout_high: 1,
            brownout_low: 0,
            chaos: true,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        // Prime the cache while healthy.
        let warm = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(warm.status, 200, "{}", warm.text());
        // Latch brownout: stall the single worker, then pile requests
        // into the queue so depth crosses the high watermark. Every
        // probe is submitted (and thus tagged at admission) while the
        // stall still holds the worker, then they drain FIFO.
        let stalled = thread::spawn(move || {
            client::post_with(addr, "/healthz", &[("x-ancstr-chaos", "stall-ms:1500")], b"", T)
        });
        thread::sleep(Duration::from_millis(200));
        let latch = thread::spawn(move || client::get(addr, "/healthz", T));
        thread::sleep(Duration::from_millis(200));
        // Cache hit: admitted in brownout but served anyway.
        let hit = thread::spawn(move || client::post(addr, "/v1/extract", NETLIST.as_bytes(), T));
        // Cold request: admitted in brownout, cache miss, shed.
        let cold = NETLIST.replace("w=1u", "w=3u");
        let shed = thread::spawn(move || client::post(addr, "/v1/extract", cold.as_bytes(), T));
        thread::sleep(Duration::from_millis(200));
        let ready = thread::spawn(move || client::get(addr, "/healthz/ready", T));

        assert!(stalled.join().unwrap().is_ok());
        assert!(latch.join().unwrap().is_ok());
        let hit = hit.join().unwrap().unwrap();
        assert_eq!(hit.status, 200, "{}", hit.text());
        assert!(hit.text().contains("\"cached\":true"), "{}", hit.text());
        let shed = shed.join().unwrap().unwrap();
        assert_eq!(shed.status, 503, "{}", shed.text());
        assert_eq!(shed.header("retry-after"), Some("1"));
        assert!(shed.text().contains("\"stage\":\"brownout\""), "{}", shed.text());
        let ready = ready.join().unwrap().unwrap();
        assert_eq!(ready.status, 503, "{}", ready.text());
        assert!(ready.text().contains("brownout"), "{}", ready.text());
        stop(server);
    }

    #[test]
    fn a_dispatch_panic_is_answered_500_and_the_worker_survives() {
        let server = start_with(ServeConfig {
            workers: 1,
            cache_entries: 8,
            chaos: true,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        let boom = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-chaos", "panic")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(boom.status, 500, "{}", boom.text());
        assert!(boom.text().contains("\"stage\":\"worker_panic\""), "{}", boom.text());
        // The same (sole) worker keeps serving.
        let after = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(after.status, 200, "{}", after.text());
        let metrics = client::get(addr, "/metrics", T).unwrap().text();
        assert!(
            metrics.contains("ancstr_serve_worker_panics_total{layer=\"dispatch\"} 1"),
            "{metrics}"
        );
        stop(server);
    }

    #[test]
    fn a_raw_panic_restarts_the_worker_slot() {
        let server = start_with(ServeConfig {
            workers: 1,
            cache_entries: 8,
            chaos: true,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        // The panic fires before the dispatch catch: the connection is
        // torn (no reply) and the pool supervisor restarts the slot.
        let torn = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-chaos", "panic-raw")],
            NETLIST.as_bytes(),
            T,
        );
        assert!(torn.is_err(), "a raw panic must tear the connection: {torn:?}");
        // The daemon still answers on the next connection.
        let after = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(after.status, 200, "{}", after.text());
        let metrics = client::get(addr, "/metrics", T).unwrap().text();
        assert!(
            metrics.contains("ancstr_serve_worker_panics_total{layer=\"pool\"} 1"),
            "{metrics}"
        );
        stop(server);
    }

    #[test]
    fn chaos_headers_are_inert_without_the_flag() {
        let server = start_server(8);
        let addr = server.local_addr();
        let reply = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-chaos", "panic")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(reply.status, 200, "{}", reply.text());
        stop(server);
    }

    #[test]
    fn model_reload_requires_a_sealed_envelope() {
        let server = start_server(8);
        let addr = server.local_addr();
        let next = test_model(12);
        let plain = client::post(addr, "/v1/models", next.to_text().as_bytes(), T).unwrap();
        assert_eq!(plain.status, 400, "{}", plain.text());
        let sealed =
            client::post(addr, "/v1/models", next.to_text_checksummed().as_bytes(), T).unwrap();
        assert_eq!(sealed.status, 200, "{}", sealed.text());
        assert!(sealed.text().contains("\"generation\":2"), "{}", sealed.text());
        stop(server);
    }

    #[test]
    fn repeated_bad_uploads_open_the_breaker() {
        let server = start_server(8);
        let addr = server.local_addr();
        let tampered = test_model(12).to_text_checksummed().replacen("0.", "1.", 1);
        let first = client::post(addr, "/v1/models", tampered.as_bytes(), T).unwrap();
        assert_eq!(first.status, 400, "{}", first.text());
        assert!(first.text().contains("\"stage\":\"seal\""), "{}", first.text());
        let second = client::post(addr, "/v1/models", tampered.as_bytes(), T).unwrap();
        assert_eq!(second.status, 422, "{}", second.text());
        assert!(second.text().contains("\"stage\":\"breaker\""), "{}", second.text());
        // The boot model never stopped serving.
        let health = client::get(addr, "/healthz", T).unwrap();
        assert!(health.text().contains("\"generation\":1"), "{}", health.text());
        assert!(health.text().contains("\"quarantined\":1"), "{}", health.text());
        stop(server);
    }

    /// The `constraints_text` JSON fragment of an extract reply — the
    /// bytes that must be identical no matter which replica (or batch)
    /// computed them.
    fn constraints_of(body: &str) -> String {
        let start = body.find("\"constraints_text\":").expect(body) + "\"constraints_text\":".len();
        body[start..].split("\",\"").next().unwrap().to_owned()
    }

    #[test]
    fn requests_route_to_resident_models_by_fingerprint() {
        let server = start_server(8);
        let addr = server.local_addr();
        let boot_hex = {
            let m = test_model(11);
            format!("{:016x}", m.fingerprint())
        };
        // Install a second model; it becomes the headerless default.
        let next = test_model(12);
        let next_hex = format!("{:016x}", next.fingerprint());
        let up = client::post(addr, "/v1/models", next.to_text_checksummed().as_bytes(), T).unwrap();
        assert_eq!(up.status, 200, "{}", up.text());
        let headerless = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert!(headerless.text().contains(&next_hex), "{}", headerless.text());
        // Explicit routing reaches the older resident model.
        let routed = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-model", boot_hex.as_str())],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(routed.status, 200, "{}", routed.text());
        assert!(routed.text().contains(&boot_hex), "{}", routed.text());
        // Same netlist, different models: distinct cache keys, and both
        // models produce a well-formed reply.
        assert!(routed.text().contains("\"cached\":false"), "{}", routed.text());
        // Malformed and unknown fingerprints are typed routing errors.
        let bad = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-model", "zz")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(bad.status, 400, "{}", bad.text());
        assert!(bad.text().contains("\"stage\":\"model_routing\""), "{}", bad.text());
        let gone = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-model", "00000000000000aa")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(gone.status, 404, "{}", gone.text());
        // Both residents show up in /healthz.
        let health = client::get(addr, "/healthz", T).unwrap().text();
        assert!(health.contains("\"models\":["), "{health}");
        assert!(health.contains(&boot_hex) && health.contains(&next_hex), "{health}");
        stop(server);
    }

    #[test]
    fn a_poison_request_fails_alone_with_batch_poison() {
        let server = start_with(ServeConfig {
            workers: 2,
            cache_entries: 8,
            chaos: true,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        let poisoned = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-chaos", "poison")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(poisoned.status, 500, "{}", poisoned.text());
        assert!(poisoned.text().contains("\"stage\":\"batch_poison\""), "{}", poisoned.text());
        // The same netlist without the poison flag serves fine (the
        // failure was the request's, not the model's — yet).
        let clean = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(clean.status, 200, "{}", clean.text());
        let metrics = client::get(addr, "/metrics", T).unwrap().text();
        assert!(metrics.contains("ancstr_serve_batch_poisoned_total 1"), "{metrics}");
        stop(server);
    }

    #[test]
    fn a_tripped_bulkhead_sheds_cold_traffic_but_serves_cache_hits() {
        let server = start_with(ServeConfig {
            workers: 2,
            cache_entries: 8,
            chaos: true,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        // Prime one cache entry while the model is healthy.
        let warm = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(warm.status, 200, "{}", warm.text());
        // Three consecutive poison 500s trip the model's bulkhead.
        let cold = NETLIST.replace("w=1u", "w=3u");
        for _ in 0..crate::registry::BULKHEAD_TRIP_AFTER {
            let r = client::post_with(
                addr,
                "/v1/extract",
                &[("x-ancstr-chaos", "poison")],
                cold.as_bytes(),
                T,
            )
            .unwrap();
            assert_eq!(r.status, 500, "{}", r.text());
        }
        // Cold traffic on this model is now shed…
        let shed = client::post(addr, "/v1/extract", cold.as_bytes(), T).unwrap();
        assert_eq!(shed.status, 503, "{}", shed.text());
        assert!(shed.text().contains("\"stage\":\"bulkhead\""), "{}", shed.text());
        assert_eq!(shed.header("retry-after"), Some("1"));
        // …but cache hits keep serving.
        let hit = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(hit.status, 200, "{}", hit.text());
        assert!(hit.text().contains("\"cached\":true"), "{}", hit.text());
        // The tripped breaker is surfaced without failing readiness.
        let ready = client::get(addr, "/healthz/ready", T).unwrap();
        assert_eq!(ready.status, 200, "{}", ready.text());
        assert!(ready.text().contains("\"bulkheads_tripped\":[\""), "{}", ready.text());
        // Deterministic half-open: within one probe window a cold
        // request is admitted, succeeds, and closes the breaker.
        let mut healed = false;
        for _ in 0..crate::registry::BULKHEAD_PROBE_EVERY {
            let r = client::post(addr, "/v1/extract", cold.as_bytes(), T).unwrap();
            if r.status == 200 {
                healed = true;
                break;
            }
            assert_eq!(r.status, 503, "{}", r.text());
        }
        assert!(healed, "a probe request must be admitted within one window");
        let after = client::post(addr, "/v1/extract", cold.as_bytes(), T).unwrap();
        assert_eq!(after.status, 200, "breaker closed after the probe: {}", after.text());
        stop(server);
    }

    #[test]
    fn chaos_peer_faults_degrade_to_local_compute() {
        let server = start_with(ServeConfig {
            workers: 2,
            cache_entries: 8,
            chaos: true,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        for (i, chaos) in ["peer-down", "slow-peer-ms:40"].iter().enumerate() {
            // Distinct bodies: a cache hit would short-circuit before
            // the peer hop.
            let cold = NETLIST.replace("w=1u", &format!("w={}u", i + 5));
            let r = client::post_with(
                addr,
                "/v1/extract",
                &[("x-ancstr-chaos", chaos)],
                cold.as_bytes(),
                T,
            )
            .unwrap();
            assert_eq!(r.status, 200, "{chaos}: {}", r.text());
        }
        let metrics = client::get(addr, "/metrics", T).unwrap().text();
        assert!(
            metrics.contains("ancstr_serve_peer_forwards_total{result=\"failover\"} 2"),
            "{metrics}"
        );
        stop(server);
    }

    #[test]
    fn a_two_replica_fleet_forwards_to_owners_and_fails_over_when_one_dies() {
        // Replica A is standalone; replica B partitions the key space
        // with A. Keys B does not own are fetched from A; when A dies
        // they degrade to local compute with identical bytes.
        let model_text = test_model(11).to_text();
        let reg_a = Arc::new(ModelRegistry::load(&model_text, "fleet-a").unwrap());
        let a = Server::start(
            ServeConfig { workers: 2, ..ServeConfig::default() },
            reg_a,
            PipelineObs::new(None),
        )
        .unwrap();
        let reg_b = Arc::new(ModelRegistry::load(&model_text, "fleet-b").unwrap());
        let b = Server::start(
            ServeConfig {
                workers: 2,
                peers: vec![a.local_addr().to_string()],
                ..ServeConfig::default()
            },
            reg_b,
            PipelineObs::new(None),
        )
        .unwrap();
        let addr_b = b.local_addr();
        // Enough distinct keys that, overwhelmingly, at least one is
        // owned by each replica.
        let netlists: Vec<String> =
            (1..=16).map(|i| NETLIST.replace("w=1u", &format!("w={i}u"))).collect();
        let mut first_pass = Vec::new();
        for nl in &netlists {
            let r = client::post(addr_b, "/v1/extract", nl.as_bytes(), T).unwrap();
            assert_eq!(r.status, 200, "{}", r.text());
            first_pass.push(constraints_of(&r.text()));
        }
        let metrics = client::get(addr_b, "/metrics", T).unwrap().text();
        assert!(
            metrics.contains("ancstr_serve_peer_forwards_total{result=\"ok\"}"),
            "with 16 keys at least one must be peer-owned: {metrics}"
        );
        // Kill A mid-fleet; B must keep serving the same bytes.
        a.shutdown_handle().signal();
        a.wait();
        for (nl, before) in netlists.iter().zip(&first_pass) {
            let r = client::post(addr_b, "/v1/extract", nl.as_bytes(), T).unwrap();
            assert_eq!(r.status, 200, "after peer death: {}", r.text());
            assert_eq!(&constraints_of(&r.text()), before, "failover changed reply bytes");
        }
        let metrics = client::get(addr_b, "/metrics", T).unwrap().text();
        assert!(
            metrics.contains("ancstr_serve_peer_forwards_total{result=\"failover\"}"),
            "{metrics}"
        );
        stop(b);
    }

    #[test]
    fn shutdown_endpoint_drains_and_exits() {
        let server = start_server(8);
        let addr = server.local_addr();
        let reply = client::post(addr, "/v1/shutdown", b"", T).unwrap();
        assert_eq!(reply.status, 200);
        assert!(reply.text().contains("draining"), "{}", reply.text());
        server.wait(); // must return, not hang
    }

    #[test]
    fn drain_writes_the_metrics_snapshot_when_configured() {
        let dir = std::env::temp_dir().join(format!("ancstr-serve-drain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("metrics.prom");
        let server = start_with(ServeConfig {
            workers: 2,
            cache_entries: 8,
            metrics_out: Some(out.clone()),
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        assert_eq!(client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap().status, 200);
        stop(server);
        let snapshot = std::fs::read_to_string(&out).unwrap();
        assert!(snapshot.contains("ancstr_serve_cache_misses_total 1"), "{snapshot}");
        assert!(snapshot.contains("ancstr_http_requests_total"), "{snapshot}");
        // Regression: families first observed mid-flight (gauges and
        // histograms that no startup registration creates) must appear
        // in the drain snapshot even though /metrics was never scraped.
        assert!(snapshot.contains("ancstr_par_threads"), "{snapshot}");
        assert!(snapshot.contains("ancstr_serve_request_duration_seconds_bucket"), "{snapshot}");
        assert!(snapshot.contains("ancstr_kernel_calls_total{kernel=\"matmul\"}"), "{snapshot}");
        ancstr_obs::metrics::validate_exposition(&snapshot).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracing_mints_and_echoes_trace_context() {
        let (tracer, buf) = ancstr_obs::Tracer::in_memory();
        let registry =
            Arc::new(ModelRegistry::load(&test_model(11).to_text(), "unit-test").unwrap());
        let server = Server::start(
            ServeConfig { workers: 2, cache_entries: 8, ..ServeConfig::default() },
            registry,
            PipelineObs::new(Some(tracer)),
        )
        .unwrap();
        let addr = server.local_addr();
        // No inbound id: the daemon mints one and echoes it, with the
        // per-stage timing summary alongside.
        let minted = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(minted.status, 200, "{}", minted.text());
        let id = minted.header("x-ancstr-trace-id").expect("trace id echoed").to_owned();
        assert!(is_trace_id(&id), "{id}");
        let timing = minted.header("x-ancstr-timing").expect("timing summary").to_owned();
        assert!(timing.contains("queue_wait;dur="), "{timing}");
        assert!(timing.contains("batch;dur="), "{timing}");
        assert!(timing.contains("total;dur="), "{timing}");
        // A well-formed inbound id is adopted verbatim; a malformed one
        // is replaced, never parroted back.
        let chosen = mint_trace_id();
        let adopted = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-trace-id", chosen.as_str())],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(adopted.header("x-ancstr-trace-id"), Some(chosen.as_str()));
        let replaced = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-trace-id", "not-a-trace-id")],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        let got = replaced.header("x-ancstr-trace-id").unwrap();
        assert!(is_trace_id(got) && got != "not-a-trace-id", "{got}");
        stop(server);
        // The trace stream validates end-to-end and links the adopted
        // id to a serve span with the request-lifecycle children.
        let text = buf.contents();
        let events = ancstr_obs::validate_trace(&text).unwrap();
        assert!(
            events.iter().any(|e| {
                e.kind == "span_start"
                    && e.span == "serve"
                    && e.fields.get("trace").and_then(|v| v.as_str()) == Some(chosen.as_str())
            }),
            "{text}"
        );
        for child in ["queue_wait", "single_flight", "batch"] {
            assert!(events.iter().any(|e| e.span == child), "missing {child} span:\n{text}");
        }
    }

    #[test]
    fn no_trace_headers_appear_when_tracing_is_disabled() {
        let server = start_server(8);
        let addr = server.local_addr();
        let id = mint_trace_id();
        // Even an explicit inbound trace id is ignored: responses stay
        // byte-identical to the untraced daemon.
        let reply = client::post_with(
            addr,
            "/v1/extract",
            &[("x-ancstr-trace-id", id.as_str())],
            NETLIST.as_bytes(),
            T,
        )
        .unwrap();
        assert_eq!(reply.status, 200, "{}", reply.text());
        assert_eq!(reply.header("x-ancstr-trace-id"), None);
        assert_eq!(reply.header("x-ancstr-timing"), None);
        stop(server);
    }

    #[test]
    fn a_forwarded_miss_carries_one_trace_id_across_both_replicas() {
        let model_text = test_model(11).to_text();
        let (tracer_a, buf_a) = ancstr_obs::Tracer::in_memory();
        let a = Server::start(
            ServeConfig { workers: 2, ..ServeConfig::default() },
            Arc::new(ModelRegistry::load(&model_text, "fleet-a").unwrap()),
            PipelineObs::new(Some(tracer_a)),
        )
        .unwrap();
        let (tracer_b, buf_b) = ancstr_obs::Tracer::in_memory();
        let b = Server::start(
            ServeConfig {
                workers: 2,
                peers: vec![a.local_addr().to_string()],
                ..ServeConfig::default()
            },
            Arc::new(ModelRegistry::load(&model_text, "fleet-b").unwrap()),
            PipelineObs::new(Some(tracer_b)),
        )
        .unwrap();
        let addr_b = b.local_addr();
        // Distinct cold keys until one is peer-owned and forwarded.
        let mut forwarded_id = None;
        for i in 1..=16 {
            let nl = NETLIST.replace("w=1u", &format!("w={i}u"));
            let r = client::post(addr_b, "/v1/extract", nl.as_bytes(), T).unwrap();
            assert_eq!(r.status, 200, "{}", r.text());
            if r.header("x-ancstr-served-by").is_some() {
                forwarded_id =
                    Some(r.header("x-ancstr-trace-id").expect("trace id echoed").to_owned());
                break;
            }
        }
        let id = forwarded_id.expect("with 16 distinct keys at least one must be peer-owned");
        stop(b);
        stop(a);
        // One trace id landed in both replicas' streams, and the merger
        // stitches them into a single waterfall around the forward hop.
        let (text_a, text_b) = (buf_a.contents(), buf_b.contents());
        assert!(text_a.contains(&id) && text_b.contains(&id), "{id}\n--- a:\n{text_a}");
        let report = ancstr_obs::analyze(&[
            ancstr_obs::TraceFile { label: "a".into(), text: text_a },
            ancstr_obs::TraceFile { label: "b".into(), text: text_b },
        ])
        .unwrap();
        assert_eq!(report.merged, 1, "one trace spans both replicas:\n{}", report.rendered);
        assert!(report.rendered.contains("forward"), "{}", report.rendered);
    }
}
