//! ALIGN-compatible JSON constraint export.
//!
//! ALIGN-style placers ingest a JSON document of `SymmBlock` (matched
//! block/device groups around an axis), `SymmNet` (net pairs that must
//! mirror), and array constraints. This module renders the
//! [`HierAnalysis`](crate::HierAnalysis) of a circuit into that
//! convention — one canonical document:
//!
//! ```json
//! {"Align":[{"count":3,"hierarchy":"top/Xdac","instances":["Cu0","Cu1","Cu2"],
//!            "level":"device","unit":"cap"}],
//!  "SymmBlock":[{"axis":"V","blocks":[],"hierarchy":"top","level":"system",
//!                "pairs":[["X1","X2"]]}],
//!  "SymmNet":[{"axis":"V","hierarchy":"top","net1":"inp","net2":"inn"}],
//!  "circuit":"top","schema":"ancstr-align-v1","warnings":[]}
//! ```
//!
//! Rendering goes through [`ancstr_obs::json::Json`], whose object keys
//! are sorted and whose output is compact and deterministic — so
//! `parse` followed by [`AlignDoc::render`] reproduces the exact bytes,
//! a property the proptest suite pins.

use std::collections::BTreeSet;

use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::order::natural_cmp;
use ancstr_netlist::{ConstraintSet, SymmetryKind};
use ancstr_obs::json::{self, Json};

use crate::HierAnalysis;

/// Schema tag stamped into (and required from) every document.
pub const ALIGN_SCHEMA: &str = "ancstr-align-v1";

/// One matched group: a pair or a block list under one hierarchy node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmBlock {
    /// Hierarchy path the group lives under.
    pub hierarchy: String,
    /// Constraint level (`system` / `device`).
    pub level: String,
    /// Symmetry axis (always `V` — vertical — in this exporter).
    pub axis: String,
    /// Two-member groups, as local-name pairs.
    pub pairs: Vec<(String, String)>,
    /// Groups of three or more, as local names in placement order.
    pub blocks: Vec<String>,
}

/// A mirrored net pair implied by a matched device pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SymmNet {
    /// Hierarchy path of the constraint that implied the pair.
    pub hierarchy: String,
    /// First net (natural order).
    pub net1: String,
    /// Second net.
    pub net2: String,
}

/// An array constraint in serialized form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignArray {
    /// Hierarchy path the bank lives under.
    pub hierarchy: String,
    /// Constraint level of the underlying group.
    pub level: String,
    /// Unit cell (device model or subcircuit template).
    pub unit: String,
    /// Member count.
    pub count: usize,
    /// Local instance names in placement order.
    pub instances: Vec<String>,
}

/// The full ALIGN-compatible constraint document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignDoc {
    /// Top cell name.
    pub circuit: String,
    /// Matched groups.
    pub symm_blocks: Vec<SymmBlock>,
    /// Mirrored net pairs.
    pub symm_nets: Vec<SymmNet>,
    /// Unit-cell arrays.
    pub arrays: Vec<AlignArray>,
    /// Rendered hierarchy warnings.
    pub warnings: Vec<String>,
}

/// Build the document for an analysis.
pub fn align_doc(flat: &FlatCircuit, analysis: &HierAnalysis) -> AlignDoc {
    let mut symm_blocks = Vec::new();
    for g in &analysis.groups {
        let names: Vec<String> =
            g.members.iter().map(|&m| flat.node(m).name.clone()).collect();
        let (pairs, blocks) = if names.len() == 2 {
            (vec![(names[0].clone(), names[1].clone())], Vec::new())
        } else {
            (Vec::new(), names)
        };
        symm_blocks.push(SymmBlock {
            hierarchy: flat.node(g.hierarchy).path.clone(),
            level: g.kind.to_string(),
            axis: "V".to_owned(),
            pairs,
            blocks,
        });
    }
    AlignDoc {
        circuit: flat.root().name.clone(),
        symm_blocks,
        symm_nets: derive_symm_nets(flat, &analysis.constraints),
        arrays: analysis
            .arrays
            .iter()
            .map(|a| AlignArray {
                hierarchy: flat.node(a.hierarchy).path.clone(),
                level: a.kind.to_string(),
                unit: a.unit.clone(),
                count: a.count,
                instances: a.order.iter().map(|&m| flat.node(m).name.clone()).collect(),
            })
            .collect(),
        warnings: analysis.warnings.iter().map(|w| w.to_string()).collect(),
    }
}

/// Mirror nets: for every matched device pair, pins at the same
/// position whose nets differ must mirror each other. Equal nets are
/// the shared (self-symmetric) nets and carry no pair constraint.
fn derive_symm_nets(flat: &FlatCircuit, constraints: &ConstraintSet) -> Vec<SymmNet> {
    let mut seen = BTreeSet::new();
    for c in constraints.iter() {
        let (a, b) = (c.pair.lo(), c.pair.hi());
        let (Some(da), Some(db)) =
            (flat.node(a).device_index(), flat.node(b).device_index())
        else {
            continue;
        };
        let (da, db) = (&flat.devices()[da], &flat.devices()[db]);
        if da.dtype != db.dtype {
            continue;
        }
        for (&na, &nb) in da.pins.iter().zip(db.pins.iter()) {
            if na == nb {
                continue;
            }
            let (n1, n2) = (flat.net_name(na), flat.net_name(nb));
            let (n1, n2) = if natural_cmp(n1, n2).is_le() { (n1, n2) } else { (n2, n1) };
            seen.insert(SymmNet {
                hierarchy: flat.node(c.hierarchy).path.clone(),
                net1: n1.to_owned(),
                net2: n2.to_owned(),
            });
        }
    }
    let mut nets: Vec<SymmNet> = seen.into_iter().collect();
    nets.sort_by(|x, y| {
        natural_cmp(&x.hierarchy, &y.hierarchy)
            .then_with(|| natural_cmp(&x.net1, &y.net1))
            .then_with(|| natural_cmp(&x.net2, &y.net2))
    });
    nets
}

impl AlignDoc {
    /// The document as a [`Json`] value (sorted keys, canonical).
    pub fn to_json(&self) -> Json {
        let pair_arr = |p: &(String, String)| {
            Json::Arr(vec![Json::from(p.0.as_str()), Json::from(p.1.as_str())])
        };
        let symm_blocks: Vec<Json> = self
            .symm_blocks
            .iter()
            .map(|b| {
                Json::obj()
                    .set("axis", b.axis.as_str())
                    .set("blocks", b.blocks.iter().map(|s| Json::from(s.as_str())).collect::<Vec<_>>())
                    .set("hierarchy", b.hierarchy.as_str())
                    .set("level", b.level.as_str())
                    .set("pairs", b.pairs.iter().map(pair_arr).collect::<Vec<_>>())
            })
            .collect();
        let symm_nets: Vec<Json> = self
            .symm_nets
            .iter()
            .map(|n| {
                Json::obj()
                    .set("axis", "V")
                    .set("hierarchy", n.hierarchy.as_str())
                    .set("net1", n.net1.as_str())
                    .set("net2", n.net2.as_str())
            })
            .collect();
        let arrays: Vec<Json> = self
            .arrays
            .iter()
            .map(|a| {
                Json::obj()
                    .set("count", a.count as u64)
                    .set("hierarchy", a.hierarchy.as_str())
                    .set(
                        "instances",
                        a.instances.iter().map(|s| Json::from(s.as_str())).collect::<Vec<_>>(),
                    )
                    .set("level", a.level.as_str())
                    .set("unit", a.unit.as_str())
            })
            .collect();
        Json::obj()
            .set("Align", arrays)
            .set("SymmBlock", symm_blocks)
            .set("SymmNet", symm_nets)
            .set("circuit", self.circuit.as_str())
            .set("schema", ALIGN_SCHEMA)
            .set(
                "warnings",
                self.warnings.iter().map(|s| Json::from(s.as_str())).collect::<Vec<_>>(),
            )
    }

    /// Serialize to the canonical compact JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parse a document back from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field, or
    /// an unknown schema tag.
    pub fn parse(text: &str) -> Result<AlignDoc, String> {
        let v = json::parse(text)?;
        let schema = str_field(&v, "schema")?;
        if schema != ALIGN_SCHEMA {
            return Err(format!("unknown schema `{schema}` (expected {ALIGN_SCHEMA})"));
        }
        let symm_blocks = arr_field(&v, "SymmBlock")?
            .iter()
            .map(|b| {
                Ok(SymmBlock {
                    hierarchy: str_field(b, "hierarchy")?.to_owned(),
                    level: parse_level(str_field(b, "level")?)?,
                    axis: str_field(b, "axis")?.to_owned(),
                    pairs: arr_field(b, "pairs")?
                        .iter()
                        .map(parse_pair)
                        .collect::<Result<_, String>>()?,
                    blocks: str_list(arr_field(b, "blocks")?)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let symm_nets = arr_field(&v, "SymmNet")?
            .iter()
            .map(|n| {
                Ok(SymmNet {
                    hierarchy: str_field(n, "hierarchy")?.to_owned(),
                    net1: str_field(n, "net1")?.to_owned(),
                    net2: str_field(n, "net2")?.to_owned(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let arrays = arr_field(&v, "Align")?
            .iter()
            .map(|a| {
                let count = a
                    .get("count")
                    .and_then(Json::as_num)
                    .ok_or("Align entry is missing a numeric `count`")?
                    as usize;
                let instances = str_list(arr_field(a, "instances")?)?;
                if instances.len() != count {
                    return Err(format!(
                        "Align entry count {count} disagrees with {} instances",
                        instances.len()
                    ));
                }
                Ok(AlignArray {
                    hierarchy: str_field(a, "hierarchy")?.to_owned(),
                    level: parse_level(str_field(a, "level")?)?,
                    unit: str_field(a, "unit")?.to_owned(),
                    count,
                    instances,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(AlignDoc {
            circuit: str_field(&v, "circuit")?.to_owned(),
            symm_blocks,
            symm_nets,
            arrays,
            warnings: str_list(arr_field(&v, "warnings")?)?,
        })
    }
}

fn parse_level(s: &str) -> Result<String, String> {
    let system = SymmetryKind::System.to_string();
    let device = SymmetryKind::Device.to_string();
    if s == system || s == device {
        Ok(s.to_owned())
    } else {
        Err(format!("bad level `{s}` (expected `{system}` or `{device}`)"))
    }
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field `{key}`"))
}

fn str_list(items: &[Json]) -> Result<Vec<String>, String> {
    items
        .iter()
        .map(|s| s.as_str().map(str::to_owned).ok_or_else(|| "non-string list entry".to_owned()))
        .collect()
}

fn parse_pair(p: &Json) -> Result<(String, String), String> {
    match p.as_arr() {
        Some([a, b]) => Ok((
            a.as_str().ok_or("non-string pair member")?.to_owned(),
            b.as_str().ok_or("non-string pair member")?.to_owned(),
        )),
        _ => Err("a pair must be a two-element array".to_owned()),
    }
}

/// One-call exporter: analyze `constraints` hierarchically and render
/// the ALIGN document. This is the formatter the serving layer and the
/// CLI's `--constraint-format align-json` both use.
pub fn export_align(flat: &FlatCircuit, constraints: &ConstraintSet) -> String {
    let analysis = HierAnalysis::analyze(flat, constraints);
    align_doc(flat, &analysis).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;

    fn fixture() -> FlatCircuit {
        let nl = parse_spice(
            "\
.subckt ota inp inn out vdd vss
M1 out inp tail vss nch w=4u l=0.2u
M2 out inn tail vss nch w=4u l=0.2u
M3 tail vdd vss vss nch w=2u l=0.5u
*.symmetry M1 M2
.ends
.subckt top a b y vdd vss
X1 a b m vdd vss ota
X2 b a y vdd vss ota
C1 a vss 10f
C2 b vss 10f
C3 y vss 10f
*.symmetry X1 X2
*.symmetry C1 C2
*.symmetry C2 C3
.ends
",
        )
        .unwrap();
        FlatCircuit::elaborate(&nl).unwrap()
    }

    #[test]
    fn the_document_round_trips_byte_identically() {
        let flat = fixture();
        let text = export_align(&flat, flat.ground_truth());
        let doc = AlignDoc::parse(&text).unwrap();
        assert_eq!(doc.render(), text);
    }

    #[test]
    fn mirrored_nets_are_derived_from_device_pairs() {
        let flat = fixture();
        let analysis = HierAnalysis::analyze(&flat, flat.ground_truth());
        let doc = align_doc(&flat, &analysis);
        // M1/M2 inside each OTA mirror their gate nets.
        assert!(
            doc.symm_nets.iter().any(|n| n.hierarchy == "top/X1"),
            "expected a net pair under top/X1: {:?}",
            doc.symm_nets
        );
        // The shared tail net is self-symmetric, never a pair with itself.
        assert!(doc.symm_nets.iter().all(|n| n.net1 != n.net2));
    }

    #[test]
    fn parse_rejects_wrong_schema_and_malformed_fields() {
        let flat = fixture();
        let text = export_align(&flat, flat.ground_truth());
        let wrong = text.replace(ALIGN_SCHEMA, "other-v9");
        assert!(AlignDoc::parse(&wrong).unwrap_err().contains("schema"));
        assert!(AlignDoc::parse("{}").is_err());
        assert!(AlignDoc::parse("not json").is_err());
        let bad_level = text.replace("\"system\"", "\"sideways\"");
        if bad_level != text {
            assert!(AlignDoc::parse(&bad_level).is_err());
        }
    }

    #[test]
    fn the_capacitor_group_appears_as_a_blocks_entry() {
        let flat = fixture();
        let analysis = HierAnalysis::analyze(&flat, flat.ground_truth());
        let doc = align_doc(&flat, &analysis);
        let caps: Vec<&SymmBlock> =
            doc.symm_blocks.iter().filter(|b| b.blocks.len() == 3).collect();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].blocks, vec!["C1", "C2", "C3"]);
        assert!(doc.arrays.iter().any(|a| a.unit == "cap" && a.count == 3));
    }
}
