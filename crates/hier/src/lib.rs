#![warn(missing_docs)]

//! Hierarchical symmetry constraints, layered on the pairwise detector.
//!
//! The paper's extractor emits *pairwise* constraints; production
//! placers (MAGICAL, ALIGN) consume richer structure, per Kunal et al.
//! (arXiv:2010.00051):
//!
//! * **arrays** — runs of ≥ 3 matched unit cells under one hierarchy
//!   node (a DAC capacitor bank, a decap bank), promoted here into
//!   [`ArrayConstraint`] with an explicit placement order;
//! * **group closure across instances** — a constraint found inside one
//!   instance of a subcircuit template holds in every isomorphic
//!   instance, so [`HierAnalysis::analyze`] lifts detected pairs through
//!   the hierarchy, recording any conflict with already-present
//!   constraints as a structured [`HierWarning`] instead of silently
//!   overwriting;
//! * **ALIGN-compatible export** — [`align`] renders the closed
//!   constraint system as a canonical JSON document next to the
//!   existing MAGICAL text format.
//!
//! The analysis is purely structural (hierarchy tree + constraint set),
//! so it applies identically to designer ground truth and to GNN
//! detections.

pub mod align;

use std::collections::HashMap;
use std::fmt;

use ancstr_core::groups::{merged_groups_sorted, SymmetryGroup};
use ancstr_netlist::flat::{FlatCircuit, HierNodeId, HierNodeKind, ModuleType};
use ancstr_netlist::{ConstraintSet, SymmetryConstraint, SymmetryKind};

/// An array of matched unit cells under one hierarchy node: the
/// placement-order form of a symmetry group whose members are uniform
/// siblings (a capacitor bank, a bank of integrator slices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayConstraint {
    /// The hierarchy node the array lives under.
    pub hierarchy: HierNodeId,
    /// Constraint level inherited from the underlying group.
    pub kind: SymmetryKind,
    /// Unit cell name: the device model for leaf arrays, the subcircuit
    /// template for block arrays.
    pub unit: String,
    /// Member count (`order.len()`, kept explicit for serialization).
    pub count: usize,
    /// Members in natural path order — the placement order of the bank.
    pub order: Vec<HierNodeId>,
}

/// A structured conflict or gap found while closing constraints over
/// isomorphic instances. Warnings never abort the analysis: the closed
/// set stays valid, and the warning records exactly what was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierWarning {
    /// A lifted pair collides with an existing constraint of a
    /// different level; the existing one wins and the lifted level is
    /// dropped.
    KindConflict {
        /// Path of the instance the conflict occurred under.
        instance: String,
        /// Local name of the first member.
        a: String,
        /// Local name of the second member.
        b: String,
        /// The level already in the set (kept).
        kept: SymmetryKind,
        /// The level the closure tried to lift in (dropped).
        dropped: SymmetryKind,
    },
    /// An isomorphic instance is missing a member by local name, so the
    /// constraint cannot be lifted into it (templates mutated after
    /// instantiation, or a name collision).
    MissingMember {
        /// Template both instances share.
        template: String,
        /// Path of the instance the member is missing from.
        instance: String,
        /// The local member name that failed to resolve.
        member: String,
    },
}

impl fmt::Display for HierWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierWarning::KindConflict { instance, a, b, kept, dropped } => write!(
                f,
                "kind conflict under {instance}: {a}/{b} kept {kept}, dropped lifted {dropped}"
            ),
            HierWarning::MissingMember { template, instance, member } => write!(
                f,
                "member {member} of template {template} is missing in instance {instance}"
            ),
        }
    }
}

/// The result of the hierarchical analysis: the closed constraint set
/// plus its derived group, array, and warning structure.
#[derive(Debug, Clone)]
pub struct HierAnalysis {
    /// The input constraints plus everything lifted by instance closure.
    pub constraints: ConstraintSet,
    /// Maximal symmetry groups of the closed set, path-sorted.
    pub groups: Vec<SymmetryGroup>,
    /// Groups promoted to arrays (≥ 3 uniform siblings).
    pub arrays: Vec<ArrayConstraint>,
    /// Constraints added by closure (not present in the input).
    pub lifted: usize,
    /// Structural conflicts recorded during closure.
    pub warnings: Vec<HierWarning>,
}

impl HierAnalysis {
    /// Close `detected` over isomorphic instances, merge into groups,
    /// and promote uniform sibling groups to arrays.
    pub fn analyze(flat: &FlatCircuit, detected: &ConstraintSet) -> HierAnalysis {
        let mut constraints: ConstraintSet = detected.iter().cloned().collect();
        let mut warnings = Vec::new();
        let lifted = close_over_instances(flat, detected, &mut constraints, &mut warnings);
        let groups = merged_groups_sorted(flat, &constraints);
        let arrays = promote_arrays(flat, &groups);
        HierAnalysis { constraints, groups, arrays, lifted, warnings }
    }
}

/// Lift every constraint whose members are direct children of a block
/// into all other instances of the same template. Returns the number of
/// constraints inserted.
fn close_over_instances(
    flat: &FlatCircuit,
    detected: &ConstraintSet,
    out: &mut ConstraintSet,
    warnings: &mut Vec<HierWarning>,
) -> usize {
    // Template name -> instances, in node-id (DFS) order so lifting is
    // deterministic.
    let mut instances: HashMap<&str, Vec<HierNodeId>> = HashMap::new();
    for n in flat.blocks() {
        if let HierNodeKind::Block { subckt, .. } = &n.kind {
            instances.entry(subckt.as_str()).or_default().push(n.id);
        }
    }
    // Lazily built per-instance child name maps, cached across the
    // constraint loop (one instance is typically hit many times).
    let mut child_maps: HashMap<HierNodeId, HashMap<String, HierNodeId>> = HashMap::new();

    let mut added = 0usize;
    for c in detected.iter() {
        let tc = c.hierarchy;
        let (a, b) = (c.pair.lo(), c.pair.hi());
        // Closure only applies when both members are direct children of
        // the constraint's block — that is how sym annotations and the
        // detector's sibling candidates are shaped; anything else has no
        // well-defined local name under an isomorphic instance.
        if flat.node(a).parent != Some(tc) || flat.node(b).parent != Some(tc) {
            continue;
        }
        let HierNodeKind::Block { subckt, .. } = &flat.node(tc).kind else {
            continue;
        };
        let (name_a, name_b) = (flat.node(a).name.clone(), flat.node(b).name.clone());
        let siblings = instances.get(subckt.as_str()).cloned().unwrap_or_default();
        for t2 in siblings {
            if t2 == tc {
                continue;
            }
            let map = child_maps.entry(t2).or_insert_with(|| {
                flat.node(t2)
                    .children
                    .iter()
                    .map(|&c| (flat.node(c).name.clone(), c))
                    .collect()
            });
            let resolved = (map.get(name_a.as_str()), map.get(name_b.as_str()));
            let (a2, b2) = match resolved {
                (Some(&a2), Some(&b2)) => (a2, b2),
                (missing_a, _) => {
                    let member = if missing_a.is_none() { &name_a } else { &name_b };
                    warnings.push(HierWarning::MissingMember {
                        template: subckt.clone(),
                        instance: flat.node(t2).path.clone(),
                        member: member.clone(),
                    });
                    continue;
                }
            };
            let kind = flat.classify_pair(t2, a2, b2);
            if let Some(existing) = out.get(a2, b2) {
                if existing.kind != kind {
                    warnings.push(HierWarning::KindConflict {
                        instance: flat.node(t2).path.clone(),
                        a: name_a.clone(),
                        b: name_b.clone(),
                        kept: existing.kind,
                        dropped: kind,
                    });
                }
                continue;
            }
            if out.insert(SymmetryConstraint::new(t2, a2, b2, kind)) {
                added += 1;
            }
        }
    }
    added
}

/// Promote groups of ≥ 3 members that are uniform-typed direct siblings
/// into arrays. Group order is already natural path order, which is the
/// bank's placement order.
fn promote_arrays(flat: &FlatCircuit, groups: &[SymmetryGroup]) -> Vec<ArrayConstraint> {
    let mut arrays = Vec::new();
    for g in groups {
        if g.members.len() < 3 {
            continue;
        }
        if g.members.iter().any(|&m| flat.node(m).parent != Some(g.hierarchy)) {
            continue;
        }
        let ty = flat.module_type(g.members[0]);
        if g.members[1..].iter().any(|&m| flat.module_type(m) != ty) {
            continue;
        }
        let unit = match &flat.node(g.members[0]).kind {
            HierNodeKind::Device(i) => flat.devices()[*i].dtype.to_string(),
            HierNodeKind::Block { subckt, .. } => subckt.clone(),
        };
        debug_assert!(matches!(
            (&ty, &flat.node(g.members[0]).kind),
            (ModuleType::Device(_), HierNodeKind::Device(_))
                | (ModuleType::Block(_), HierNodeKind::Block { .. })
        ));
        arrays.push(ArrayConstraint {
            hierarchy: g.hierarchy,
            kind: g.kind,
            unit,
            count: g.members.len(),
            order: g.members.clone(),
        });
    }
    arrays
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;

    fn elaborate(src: &str) -> FlatCircuit {
        FlatCircuit::elaborate(&parse_spice(src).unwrap()).unwrap()
    }

    const TWO_INSTANCE: &str = "\
.subckt inv in out vdd vss
Mp out in vdd vdd pch w=2u l=0.1u
Mn out in vss vss nch w=1u l=0.1u
.ends
.subckt top a y vdd vss
X1 a m vdd vss inv
X2 m y vdd vss inv
.ends
";

    #[test]
    fn a_constraint_in_one_instance_lifts_to_all_isomorphic_instances() {
        let flat = elaborate(TWO_INSTANCE);
        let x1 = flat.node_by_path("top/X1").unwrap().id;
        let mp1 = flat.node_by_path("top/X1/Mp").unwrap().id;
        let mn1 = flat.node_by_path("top/X1/Mn").unwrap().id;
        let detected: ConstraintSet =
            [SymmetryConstraint::new(x1, mp1, mn1, SymmetryKind::Device)]
                .into_iter()
                .collect();
        let analysis = HierAnalysis::analyze(&flat, &detected);
        assert_eq!(analysis.lifted, 1);
        let mp2 = flat.node_by_path("top/X2/Mp").unwrap().id;
        let mn2 = flat.node_by_path("top/X2/Mn").unwrap().id;
        assert!(analysis.constraints.contains_pair(mp2, mn2));
        assert!(analysis.warnings.is_empty());
    }

    #[test]
    fn an_existing_conflicting_kind_is_kept_and_warned_about() {
        let flat = elaborate(TWO_INSTANCE);
        let x1 = flat.node_by_path("top/X1").unwrap().id;
        let x2 = flat.node_by_path("top/X2").unwrap().id;
        let mp1 = flat.node_by_path("top/X1/Mp").unwrap().id;
        let mn1 = flat.node_by_path("top/X1/Mn").unwrap().id;
        let mp2 = flat.node_by_path("top/X2/Mp").unwrap().id;
        let mn2 = flat.node_by_path("top/X2/Mn").unwrap().id;
        // The X2 pair is already present at system level (a wrong or
        // foreign classification); the lifted device-level copy must not
        // overwrite it.
        let detected: ConstraintSet = [
            SymmetryConstraint::new(x1, mp1, mn1, SymmetryKind::Device),
            SymmetryConstraint::new(x2, mp2, mn2, SymmetryKind::System),
        ]
        .into_iter()
        .collect();
        let analysis = HierAnalysis::analyze(&flat, &detected);
        assert_eq!(analysis.lifted, 0);
        assert_eq!(
            analysis.constraints.get(mp2, mn2).unwrap().kind,
            SymmetryKind::System,
            "the pre-existing constraint wins"
        );
        assert!(matches!(
            analysis.warnings.as_slice(),
            [HierWarning::KindConflict { kept: SymmetryKind::System, .. }]
        ));
    }

    #[test]
    fn uniform_sibling_groups_promote_to_arrays_in_path_order() {
        let flat = elaborate(
            "\
.subckt bank a vss
C10 a vss 10f
C2 a vss 10f
C1 a vss 10f
M1 a a vss vss nch w=1u l=0.1u
*.symmetry C10 C2
*.symmetry C2 C1
.ends
",
        );
        let analysis = HierAnalysis::analyze(&flat, flat.ground_truth());
        assert_eq!(analysis.arrays.len(), 1);
        let arr = &analysis.arrays[0];
        assert_eq!(arr.count, 3);
        assert_eq!(arr.unit, "cap");
        let names: Vec<&str> =
            arr.order.iter().map(|&m| flat.node(m).name.as_str()).collect();
        assert_eq!(names, vec!["C1", "C2", "C10"]);
    }

    #[test]
    fn mixed_type_and_two_member_groups_stay_pairwise() {
        let flat = elaborate(
            "\
.subckt cell a b vss
M1 a b vss vss nch w=1u l=0.1u
M2 b a vss vss nch w=1u l=0.1u
*.symmetry M1 M2
.ends
",
        );
        let analysis = HierAnalysis::analyze(&flat, flat.ground_truth());
        assert!(analysis.arrays.is_empty(), "a pair is not an array");
        assert_eq!(analysis.groups.len(), 1);
    }
}
