//! Property tests for the hierarchical constraint layer: the ALIGN JSON
//! document must round-trip byte-identically (generated documents and
//! real exports alike), and on construction ground truth the group +
//! array structure must reproduce the annotated pairs with precision
//! and recall both exactly 1.0 — the acceptance bar for the
//! hierarchical extraction subsystem.

use std::collections::BTreeSet;

use ancstr_circuits::{dac, stress};
use ancstr_hier::align::{export_align, AlignArray, AlignDoc, SymmBlock, SymmNet};
use ancstr_hier::HierAnalysis;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::Netlist;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generated-document round trip: any document in the schema's domain
// renders to text that parses back to the same value and re-renders to
// the same bytes.
// ---------------------------------------------------------------------------

/// Field text: printable characters, including quotes, backslashes, and
/// non-ASCII — the JSON escaping layer must carry all of them.
fn name() -> impl Strategy<Value = String> {
    "\\PC{0,12}"
}

fn level() -> impl Strategy<Value = String> {
    (0u8..2).prop_map(|b| if b == 0 { "system" } else { "device" }.to_owned())
}

fn symm_block() -> impl Strategy<Value = SymmBlock> {
    (
        name(),
        level(),
        name(),
        prop::collection::vec((name(), name()), 0..3),
        prop::collection::vec(name(), 0..4),
    )
        .prop_map(|(hierarchy, level, axis, pairs, blocks)| SymmBlock {
            hierarchy,
            level,
            axis,
            pairs,
            blocks,
        })
}

fn symm_net() -> impl Strategy<Value = SymmNet> {
    (name(), name(), name()).prop_map(|(hierarchy, net1, net2)| SymmNet {
        hierarchy,
        net1,
        net2,
    })
}

fn align_array() -> impl Strategy<Value = AlignArray> {
    (name(), level(), name(), prop::collection::vec(name(), 0..5)).prop_map(
        |(hierarchy, level, unit, instances)| AlignArray {
            hierarchy,
            level,
            unit,
            count: instances.len(),
            instances,
        },
    )
}

fn align_doc() -> impl Strategy<Value = AlignDoc> {
    (
        name(),
        prop::collection::vec(symm_block(), 0..4),
        prop::collection::vec(symm_net(), 0..4),
        prop::collection::vec(align_array(), 0..3),
        prop::collection::vec(name(), 0..3),
    )
        .prop_map(|(circuit, symm_blocks, symm_nets, arrays, warnings)| AlignDoc {
            circuit,
            symm_blocks,
            symm_nets,
            arrays,
            warnings,
        })
}

proptest! {
    /// render → parse is the identity on documents, and the re-render
    /// reproduces the exact bytes (the canonical-form guarantee the CLI's
    /// `obs-check --align` validator relies on).
    #[test]
    fn generated_documents_round_trip_byte_identically(doc in align_doc()) {
        let text = doc.render();
        let back = AlignDoc::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e} in {text}")))?;
        prop_assert_eq!(&back, &doc);
        prop_assert_eq!(back.render(), text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Real exports round-trip too: the exporter only emits documents
    /// inside the parser's domain, at any generator parameterization.
    #[test]
    fn circuit_exports_round_trip_byte_identically(
        units in 2usize..7,
        bits in 1usize..5,
        seed in 0u64..64,
    ) {
        for flat in [
            FlatCircuit::elaborate(&stress::integrator_bank(units, seed)).unwrap(),
            FlatCircuit::elaborate(&cap_dac_netlist(bits)).unwrap(),
        ] {
            let text = export_align(&flat, flat.ground_truth());
            let doc = AlignDoc::parse(&text).map_err(TestCaseError::fail)?;
            prop_assert_eq!(doc.render(), text);
        }
    }
}

// ---------------------------------------------------------------------------
// Precision/recall against construction ground truth.
// ---------------------------------------------------------------------------

fn cap_dac_netlist(bits: usize) -> Netlist {
    let mut nl = Netlist::new("capdac");
    nl.add_subckt(dac::cap_dac_cell("capdac", bits)).expect("fresh");
    nl
}

/// The unordered pair set of a constraint collection, keyed by node
/// path (paths are unique in a `FlatCircuit`).
fn pair_key(flat: &FlatCircuit, a: ancstr_netlist::flat::HierNodeId, b: ancstr_netlist::flat::HierNodeId) -> (String, String) {
    let (pa, pb) = (flat.node(a).path.clone(), flat.node(b).path.clone());
    if pa <= pb { (pa, pb) } else { (pb, pa) }
}

fn constraint_pairs(flat: &FlatCircuit) -> BTreeSet<(String, String)> {
    flat.ground_truth()
        .iter()
        .map(|c| pair_key(flat, c.pair.lo(), c.pair.hi()))
        .collect()
}

/// Expand the analysis's groups back into unordered member pairs.
fn group_pairs(flat: &FlatCircuit, analysis: &HierAnalysis) -> BTreeSet<(String, String)> {
    let mut pairs = BTreeSet::new();
    for g in &analysis.groups {
        for (i, &a) in g.members.iter().enumerate() {
            for &b in &g.members[i + 1..] {
                pairs.insert(pair_key(flat, a, b));
            }
        }
    }
    pairs
}

/// Assert precision and recall of the group/array structure against
/// the construction ground truth are both exactly 1.0.
fn assert_pr_is_exact(flat: &FlatCircuit) -> HierAnalysis {
    let analysis = HierAnalysis::analyze(flat, flat.ground_truth());
    let truth = constraint_pairs(flat);
    let predicted = group_pairs(flat, &analysis);
    let tp = truth.intersection(&predicted).count();
    let precision = tp as f64 / predicted.len() as f64;
    let recall = tp as f64 / truth.len() as f64;
    assert_eq!(precision, 1.0, "false pairs: {:?}", predicted.difference(&truth).take(4).collect::<Vec<_>>());
    assert_eq!(recall, 1.0, "missed pairs: {:?}", truth.difference(&predicted).take(4).collect::<Vec<_>>());
    // Arrays are a sub-view of groups, so exact groups imply exact
    // arrays — but pin that every array really is a ground-truth clique.
    for a in &analysis.arrays {
        for (i, &m) in a.order.iter().enumerate() {
            for &n in &a.order[i + 1..] {
                assert!(flat.ground_truth().contains_pair(m, n));
            }
        }
    }
    assert!(analysis.warnings.is_empty(), "{:?}", analysis.warnings);
    analysis
}

#[test]
fn integrator_bank_groups_have_exact_precision_and_recall() {
    for units in [3usize, 5, 8] {
        let flat = FlatCircuit::elaborate(&stress::integrator_bank(units, 2)).unwrap();
        let analysis = assert_pr_is_exact(&flat);
        // Construction knowledge: the bank itself is the one array —
        // `units` instances of the integ_u template at the top level.
        assert_eq!(analysis.arrays.len(), 1, "units={units}");
        let arr = &analysis.arrays[0];
        assert_eq!(arr.unit, "integ_u");
        assert_eq!(arr.count, units);
        assert_eq!(flat.node(arr.hierarchy).path, "integ_bank");
    }
}

#[test]
fn cap_dac_bank_groups_have_exact_precision_and_recall() {
    for bits in [2usize, 3, 4] {
        let flat = FlatCircuit::elaborate(&cap_dac_netlist(bits)).unwrap();
        let analysis = assert_pr_is_exact(&flat);
        // Construction knowledge: one unit-capacitor bank of 2^bits
        // matched cfmom units (the dummy plus the binary-weighted runs).
        assert_eq!(analysis.arrays.len(), 1, "bits={bits}");
        let arr = &analysis.arrays[0];
        assert_eq!(arr.unit, "cfmom");
        assert_eq!(arr.count, 1 << bits);
    }
}

#[test]
fn stress_channel_promotes_the_integrator_bank_array() {
    let flat = FlatCircuit::elaborate(&stress::stress_system(1200, 3)).unwrap();
    let analysis = assert_pr_is_exact(&flat);
    // Every channel contributes its 4-slice integrator bank as a block
    // array of integ_s units.
    let banks: Vec<&_> = analysis
        .arrays
        .iter()
        .filter(|a| a.unit == "integ_s" && a.count == 4)
        .collect();
    let channels = flat
        .blocks()
        .filter(|n| matches!(&n.kind, ancstr_netlist::flat::HierNodeKind::Block { subckt, .. } if subckt == "channel"))
        .count();
    assert!(channels >= 2, "stress system should replicate channels");
    assert_eq!(banks.len(), channels, "one integrator-bank array per channel");
}
