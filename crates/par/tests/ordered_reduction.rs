//! Property tests for the determinism contract: the ordered reduction
//! produced by the worker pool matches a sequential fold for random
//! input sizes, chunk granularities, and thread counts.

use ancstr_par::{chunk_count, chunk_size, map_chunks, map_items, set_threads};
use proptest::prelude::*;

/// The sequential fold `map_chunks` must match: visit each chunk range
/// of `0..n` in ascending order and collect `f`'s results.
fn sequential_fold<R>(n: usize, min_chunk: usize, mut f: impl FnMut(std::ops::Range<usize>) -> R) -> Vec<R> {
    let size = chunk_size(n, min_chunk);
    (0..chunk_count(n, min_chunk))
        .map(|idx| f(idx * size..((idx + 1) * size).min(n)))
        .collect()
}

proptest! {
    #[test]
    fn map_chunks_matches_sequential_fold(
        n in 0usize..3000,
        min_chunk in 1usize..200,
        threads in 1usize..9,
    ) {
        set_threads(threads);
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let parallel = map_chunks(n, min_chunk, |r| data[r].iter().copied().max());
        let sequential = sequential_fold(n, min_chunk, |r| data[r].iter().copied().max());
        set_threads(0);
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn float_chunk_sums_are_bit_stable_across_thread_counts(
        values in prop::collection::vec(-1e3f64..1e3, 0..2500),
        min_chunk in 1usize..128,
    ) {
        let fold = |t: usize| {
            set_threads(t);
            let partials = map_chunks(values.len(), min_chunk, |r| values[r].iter().sum::<f64>());
            partials.into_iter().fold(0.0f64, |acc, p| acc + p)
        };
        let reference = fold(1);
        for t in [2usize, 3, 8] {
            prop_assert_eq!(fold(t).to_bits(), reference.to_bits());
        }
        set_threads(0);
    }

    #[test]
    fn map_items_matches_serial_map(
        items in prop::collection::vec(any::<i64>(), 0..2000),
        min_chunk in 1usize..64,
        threads in 1usize..9,
    ) {
        set_threads(threads);
        let parallel = map_items(&items, min_chunk, |x| x.wrapping_mul(31).wrapping_add(7));
        set_threads(0);
        let serial: Vec<i64> = items.iter().map(|x| x.wrapping_mul(31).wrapping_add(7)).collect();
        prop_assert_eq!(parallel, serial);
    }
}
