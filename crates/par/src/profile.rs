//! Zero-cost-when-disabled kernel profiling counters.
//!
//! The workspace's bit-identity contract forbids instrumentation from
//! feeding back into numerics, so these counters only *observe*: each
//! instrumented kernel records calls, elements processed, wall
//! nanoseconds and the thread count in play. When profiling is disabled
//! (the default) an instrumented call pays exactly one relaxed atomic
//! load and never touches the clock, so the hot paths are unperturbed.
//!
//! Attribution is flat, not hierarchical: `axpy` time recorded while
//! inside an `spmm` call counts toward **both** kernels. That is
//! deliberate — the question this module answers (ROADMAP item 2's
//! detect-stage regression) is "which primitive is the wall-clock
//! going to", and the overlap makes the inner/outer split explicit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Kernel {
    /// Dense blocked matmul ([`Matrix::matmul`] in `ancstr-nn`).
    Matmul = 0,
    /// Sparse × dense product (`SparseMatrix::grouped_product`).
    Spmm = 1,
    /// Fused `y += a·x` accumulation primitive.
    Axpy = 2,
    /// Per-row L2 norms (`Matrix::row_norms`).
    RowNorms = 3,
    /// One parallel region dispatched through the worker pool
    /// (calls = batches, elements = chunks executed).
    ParRegion = 4,
}

/// Exposition names, indexed by [`Kernel`] discriminant.
pub const KERNEL_NAMES: [&str; 5] = ["matmul", "spmm", "axpy", "row_norms", "par_region"];

struct Slot {
    calls: AtomicU64,
    elems: AtomicU64,
    wall_ns: AtomicU64,
    threads: AtomicU64,
}

const fn slot() -> Slot {
    Slot {
        calls: AtomicU64::new(0),
        elems: AtomicU64::new(0),
        wall_ns: AtomicU64::new(0),
        threads: AtomicU64::new(0),
    }
}

static SLOTS: [Slot; 5] = [slot(), slot(), slot(), slot(), slot()];
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn profiling on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether profiling is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every counter (start of a measured sweep).
pub fn reset() {
    for s in &SLOTS {
        s.calls.store(0, Ordering::Relaxed);
        s.elems.store(0, Ordering::Relaxed);
        s.wall_ns.store(0, Ordering::Relaxed);
        s.threads.store(0, Ordering::Relaxed);
    }
}

/// RAII guard returned by [`time`]; records on drop.
#[must_use]
pub struct Timer {
    kernel: usize,
    elems: u64,
    start: Option<Instant>,
}

/// Start timing one kernel call over `elems` elements.
///
/// Returns an inert guard (no clock read) when profiling is disabled.
#[inline]
pub fn time(kernel: Kernel, elems: u64) -> Timer {
    Timer {
        kernel: kernel as usize,
        elems,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let wall = start.elapsed().as_nanos() as u64;
        let s = &SLOTS[self.kernel];
        s.calls.fetch_add(1, Ordering::Relaxed);
        s.elems.fetch_add(self.elems, Ordering::Relaxed);
        s.wall_ns.fetch_add(wall, Ordering::Relaxed);
        s.threads.store(super::threads() as u64, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one kernel's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStats {
    /// Kernel name as exposed in metrics and bench output.
    pub name: &'static str,
    /// Number of instrumented calls.
    pub calls: u64,
    /// Total elements processed (kernel-specific unit: mul-adds for
    /// matmul/spmm, vector elements for axpy/row_norms, chunks for
    /// par_region).
    pub elems: u64,
    /// Total wall nanoseconds inside the kernel.
    pub wall_ns: u64,
    /// Thread count configured at the most recent call.
    pub threads: u64,
}

/// Snapshot every kernel's counters, in [`KERNEL_NAMES`] order.
pub fn snapshot() -> Vec<KernelStats> {
    KERNEL_NAMES
        .iter()
        .zip(&SLOTS)
        .map(|(name, s)| KernelStats {
            name,
            calls: s.calls.load(Ordering::Relaxed),
            elems: s.elems.load(Ordering::Relaxed),
            wall_ns: s.wall_ns.load(Ordering::Relaxed),
            threads: s.threads.load(Ordering::Relaxed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The counters are process-global; serialize the tests that toggle
    /// them. Other tests in this crate only ever touch `par_region`
    /// (via the pool), so assertions stick to the nn-facing kernels.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_timers_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        {
            let _t = time(Kernel::Matmul, 1000);
        }
        let stats = snapshot();
        let matmul = stats.iter().find(|s| s.name == "matmul").unwrap();
        assert_eq!((matmul.calls, matmul.elems, matmul.wall_ns), (0, 0, 0), "{stats:?}");
    }

    #[test]
    fn enabled_timers_accumulate_calls_elems_and_wall() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        {
            let _t = time(Kernel::Spmm, 64);
        }
        {
            let _t = time(Kernel::Spmm, 36);
        }
        let stats = snapshot();
        set_enabled(false);
        let spmm = stats.iter().find(|s| s.name == "spmm").unwrap();
        assert_eq!(spmm.calls, 2, "{stats:?}");
        assert_eq!(spmm.elems, 100, "{stats:?}");
        assert!(spmm.threads >= 1, "{stats:?}");
        // wall_ns may round to 0 on a coarse clock but never goes
        // negative; two Instant reads happened, so it is recorded.
        assert_eq!(stats.iter().find(|s| s.name == "matmul").unwrap().calls, 0);
    }
}
