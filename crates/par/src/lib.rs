#![warn(missing_docs)]

//! Deterministic data-parallel compute layer.
//!
//! Every other crate in the workspace promises bit-identical outputs —
//! across runs, across crash/resume, across the daemon and the one-shot
//! CLI. This crate adds threads without giving that up. The contract:
//!
//! **outputs are byte-identical at any thread count**, including
//! `--threads 1`, because
//!
//! 1. the index range `0..n` is split into chunks whose boundaries
//!    depend only on `n` and the requested minimum chunk size — never
//!    on the thread count, timing, or which worker claims which chunk
//!    ([`chunk_size`]);
//! 2. each chunk is an independent job over a disjoint index range, so
//!    any floating-point accumulation *inside* a chunk happens in the
//!    same order as the sequential loop; and
//! 3. per-chunk results are merged in ascending chunk order — an
//!    *ordered reduction* — regardless of completion order
//!    ([`map_chunks`]).
//!
//! The sequential path runs the exact same chunk bodies in the exact
//! same order, so "parallel" and "sequential" are the same computation
//! scheduled differently.
//!
//! # Worker pool
//!
//! A small persistent pool ([`for_each_chunk`] lazily spawns it on
//! first above-threshold use) executes one batch at a time: the
//! submitting thread installs a type-erased job, participates in chunk
//! execution itself, and blocks until every chunk has finished before
//! returning — which is what makes it sound to hand workers a borrowed
//! closure. Worker panics are caught and re-raised on the submitting
//! thread. Nested parallel regions (a chunk body that itself calls into
//! this crate) run inline sequentially instead of deadlocking on the
//! single-batch pool.
//!
//! # Thread count
//!
//! The global thread count is process-wide: [`set_threads`] (the CLI
//! `--threads` flag lands here) and [`threads`]. `0` or "never set"
//! means [`available_parallelism`]. Setting it to 1 disables the pool
//! entirely.

pub mod profile;

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Maximum number of chunks a single parallel region is split into.
///
/// Bounded so per-chunk dispatch overhead stays negligible, and fixed
/// so chunk boundaries never depend on the thread count.
pub const MAX_CHUNKS: usize = 64;

/// Smallest region (in items) worth handing to the worker pool.
///
/// The BENCH_PR8 kernel attribution showed `par_region` batch setup
/// (condvar wake + join) growing with thread count while the
/// matmul/spmm/axpy wall times stayed flat from 1 to 8 threads — the
/// Table III suite's detect and graph-build stages were paying pool
/// dispatch on regions of a few hundred items. Regions below this
/// floor now run on the submitting thread instead. Chunk boundaries
/// are computed exactly as before ([`chunk_size`] ignores the floor),
/// so per-chunk partials and every downstream output stay bit-identical
/// — only the schedule changes. The full SIMD-kernel fix remains a
/// roadmap item; this is the one-constant mitigation.
pub const PAR_ITEM_FLOOR: usize = 2048;

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide thread count. `0` restores the default
/// ([`available_parallelism`]); `1` forces fully sequential execution.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::SeqCst);
}

/// The effective thread count: the last [`set_threads`] value, or
/// [`available_parallelism`] if unset.
pub fn threads() -> usize {
    match THREADS.load(Ordering::SeqCst) {
        0 => available_parallelism(),
        n => n,
    }
}

/// The hardware parallelism reported by the OS (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The chunk size used to split `0..n` with a requested minimum chunk
/// of `min_chunk` items.
///
/// Depends only on `n` and `min_chunk` — deliberately *not* on
/// [`threads`] — so per-chunk partial results (and any floating-point
/// reduction over them) are identical at every thread count.
pub fn chunk_size(n: usize, min_chunk: usize) -> usize {
    let min_chunk = min_chunk.max(1);
    min_chunk.max(n.div_ceil(MAX_CHUNKS))
}

/// Number of chunks `0..n` splits into (0 when `n == 0`).
pub fn chunk_count(n: usize, min_chunk: usize) -> usize {
    if n == 0 {
        0
    } else {
        n.div_ceil(chunk_size(n, min_chunk))
    }
}

fn chunk_range(n: usize, size: usize, idx: usize) -> Range<usize> {
    let start = idx * size;
    start..(start + size).min(n)
}

thread_local! {
    /// True while this thread is executing a chunk body (worker or
    /// participating submitter). Nested regions then run inline.
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Would a region over `0..n` with this `min_chunk` actually fan out
/// right now?
///
/// True only when the region is at least [`PAR_ITEM_FLOOR`] items, it
/// splits into more than one chunk, more than one worker is
/// configured, and the caller is not already inside a parallel region.
/// Callers with a cheaper sequential formulation that is
/// *bit-identical* to the chunked one (e.g. skipping a grouping pass)
/// may use this to pick it — the choice must never be observable in
/// the output, only in the wall clock.
pub fn would_parallelize(n: usize, min_chunk: usize) -> bool {
    n >= PAR_ITEM_FLOOR
        && chunk_count(n, min_chunk) > 1
        && threads() > 1
        && !IN_PARALLEL_REGION.with(|c| c.get())
}

/// Run `f` over the chunks of `0..n`, in parallel when the region is
/// large enough and the thread count allows it.
///
/// `f` receives each chunk's index range exactly once; ranges are
/// disjoint and cover `0..n`. The sequential path calls `f` on the same
/// chunks in ascending order.
pub fn for_each_chunk(n: usize, min_chunk: usize, f: impl Fn(Range<usize>) + Sync) {
    let size = chunk_size(n, min_chunk);
    let chunks = chunk_count(n, min_chunk);
    if chunks == 0 {
        return;
    }
    let nested = IN_PARALLEL_REGION.with(|c| c.get());
    let workers = threads();
    if chunks == 1 || workers <= 1 || nested || n < PAR_ITEM_FLOOR {
        for idx in 0..chunks {
            f(chunk_range(n, size, idx));
        }
        return;
    }
    pool::run(chunks, workers, &|idx| f(chunk_range(n, size, idx)));
}

/// Map the chunks of `0..n` through `f` and return the per-chunk
/// results **in ascending chunk order** — the ordered reduction.
///
/// Completion order never leaks into the output: chunk `i`'s result is
/// always slot `i`, so `map_chunks(...)` equals the sequential
/// `(0..chunk_count).map(|i| f(range_i)).collect()` fold exactly, at
/// any thread count.
pub fn map_chunks<R: Send>(
    n: usize,
    min_chunk: usize,
    f: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    let size = chunk_size(n, min_chunk);
    let chunks = chunk_count(n, min_chunk);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(chunks, || None);
    let slots = Mutex::new(out);
    for_each_chunk(n, min_chunk, |range| {
        let idx = range.start / size;
        let r = f(range);
        slots.lock().expect("result slots poisoned")[idx] = Some(r);
    });
    slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|r| r.expect("every chunk ran exactly once"))
        .collect()
}

/// Map a slice through `f` with chunked parallelism, returning results
/// in input order.
pub fn map_items<T: Sync, R: Send>(
    items: &[T],
    min_chunk: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    map_chunks(items.len(), min_chunk, |range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// A raw mutable pointer that asserts `Send + Sync` so chunk bodies can
/// write to disjoint regions of one buffer.
///
/// # Safety contract (on the user)
///
/// Chunks handed out by [`for_each_chunk`] are disjoint, so writes
/// through a `SendPtr` are race-free **iff** each chunk body only
/// touches indices inside its own range. That invariant is the
/// caller's to uphold.
#[derive(Clone, Copy)]
pub struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wrap a raw pointer for cross-thread disjoint writes.
    pub fn new(ptr: *mut T) -> SendPtr<T> {
        SendPtr(ptr)
    }

    /// The wrapped pointer.
    pub fn get(self) -> *mut T {
        self.0
    }
}

mod pool {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64};

    /// Lifetime-erased reference to the borrowed chunk runner. Valid
    /// for the whole batch because [`run`] does not return until every
    /// chunk has finished.
    #[derive(Clone, Copy)]
    struct JobFn(&'static (dyn Fn(usize) + Sync));

    /// What a parked worker copies out under the state lock, once per
    /// batch; all per-chunk traffic then goes through the lock-free
    /// ticket.
    #[derive(Clone, Copy)]
    struct Batch {
        func: JobFn,
        chunks: usize,
        generation: u32,
    }

    struct State {
        batch: Option<Batch>,
        /// Bumped per installed batch; parked workers use it to tell a
        /// new batch from a spurious wakeup.
        generation: u32,
        spawned: usize,
    }

    struct Pool {
        state: Mutex<State>,
        work_cv: Condvar,
        done_cv: Condvar,
        /// Serializes batches: one parallel region at a time.
        submit: Mutex<()>,
        /// Generation-tagged claim ticket: `(generation << 32) | next
        /// unclaimed chunk`. Claiming is a CAS that only advances the
        /// chunk counter when the generation still matches, so a worker
        /// waking late from a finished batch can never claim (or even
        /// perturb the counter of) the next one.
        ticket: AtomicU64,
        /// Chunks whose bodies have returned (or panicked) in the
        /// current batch.
        done: AtomicUsize,
        panicked: AtomicBool,
    }

    static POOL: OnceLock<&'static Pool> = OnceLock::new();

    fn pool() -> &'static Pool {
        POOL.get_or_init(|| {
            Box::leak(Box::new(Pool {
                state: Mutex::new(State { batch: None, generation: 0, spawned: 0 }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                submit: Mutex::new(()),
                ticket: AtomicU64::new(0),
                done: AtomicUsize::new(0),
                panicked: AtomicBool::new(false),
            }))
        })
    }

    /// Claim the next chunk of batch `generation`, without taking the
    /// state lock. Fails once the batch is exhausted or superseded.
    /// (Generations wrap at 2³² — a worker would have to sleep through
    /// 4 billion batches to alias one, at which point `chunks` would
    /// also have to match; accepted.)
    fn claim(p: &Pool, generation: u32, chunks: usize) -> Option<usize> {
        let mut cur = p.ticket.load(Ordering::Acquire);
        loop {
            if (cur >> 32) as u32 != generation {
                return None;
            }
            let idx = (cur & u32::MAX as u64) as usize;
            if idx >= chunks {
                return None;
            }
            match p.ticket.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(idx),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Run one claimed chunk and record completion; the last chunk of
    /// the batch wakes the submitter. The brief state lock before the
    /// notify pairs with the submitter's wait loop so the wakeup cannot
    /// be lost.
    fn execute(p: &Pool, batch: Batch, idx: usize) {
        let result = catch_unwind(AssertUnwindSafe(|| (batch.func.0)(idx)));
        if result.is_err() {
            p.panicked.store(true, Ordering::Release);
        }
        if p.done.fetch_add(1, Ordering::AcqRel) + 1 == batch.chunks {
            drop(p.state.lock().unwrap_or_else(|e| e.into_inner()));
            p.done_cv.notify_all();
        }
    }

    fn worker_loop(p: &'static Pool) {
        IN_PARALLEL_REGION.with(|c| c.set(true));
        let mut seen_generation = 0u32;
        loop {
            let batch = {
                let mut state = p.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if state.generation != seen_generation {
                        seen_generation = state.generation;
                        // A batch may already be gone by the time we
                        // wake; note the generation and keep waiting.
                        if let Some(b) = state.batch {
                            break b;
                        }
                    }
                    state = p.work_cv.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            };
            while let Some(idx) = claim(p, batch.generation, batch.chunks) {
                execute(p, batch, idx);
            }
        }
    }

    fn ensure_workers(p: &'static Pool, wanted: usize) {
        let mut state = p.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.spawned < wanted {
            let id = state.spawned;
            std::thread::Builder::new()
                .name(format!("ancstr-par-{id}"))
                .spawn(move || worker_loop(pool()))
                .expect("spawn pool worker");
            state.spawned += 1;
        }
    }

    /// Execute `runner(idx)` for every `idx in 0..chunks` using up to
    /// `workers` threads (including the calling thread). Returns after
    /// all chunks have completed; re-raises any chunk panic.
    pub(super) fn run(chunks: usize, workers: usize, runner: &(dyn Fn(usize) + Sync)) {
        let _prof = profile::time(profile::Kernel::ParRegion, chunks as u64);
        let p = pool();
        let _batch_guard = p.submit.lock().unwrap_or_else(|e| e.into_inner());
        // Helper-thread budget: never more than there are chunks beyond
        // our own share, and never more threads than hardware — the
        // BENCH_PR9 profile showed `--threads 8` on fewer cores spending
        // more wall in scheduler thrash than in kernels. Chunk
        // boundaries don't depend on the thread count, so capping is
        // schedule-only and bit-identical.
        let helpers = workers
            .min(available_parallelism())
            .min(chunks)
            .saturating_sub(1);
        ensure_workers(p, helpers);

        // Lifetime erasure: sound because we block below until
        // `done == chunks`, so no worker can touch `runner` after we
        // return.
        let func = JobFn(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(runner)
        });
        let batch = {
            let mut state = p.state.lock().unwrap_or_else(|e| e.into_inner());
            debug_assert!(state.batch.is_none(), "batches are serialized by `submit`");
            state.generation = state.generation.wrapping_add(1);
            let batch = Batch { func, chunks, generation: state.generation };
            // Publish the reset counters before the ticket enables
            // claims for this generation.
            p.done.store(0, Ordering::Relaxed);
            p.panicked.store(false, Ordering::Relaxed);
            p.ticket.store((batch.generation as u64) << 32, Ordering::Release);
            state.batch = Some(batch);
            batch
        };
        if helpers > 0 {
            p.work_cv.notify_all();
        }

        // The submitter participates instead of idling.
        IN_PARALLEL_REGION.with(|c| c.set(true));
        while let Some(idx) = claim(p, batch.generation, batch.chunks) {
            execute(p, batch, idx);
        }
        IN_PARALLEL_REGION.with(|c| c.set(false));

        {
            let mut state = p.state.lock().unwrap_or_else(|e| e.into_inner());
            while p.done.load(Ordering::Acquire) < chunks {
                state = p.done_cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            state.batch = None;
        }
        if p.panicked.load(Ordering::Acquire) {
            panic!("ancstr-par: a parallel chunk panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_ranges_partition_the_input() {
        for n in [0usize, 1, 7, 64, 65, 1000, 4097] {
            for min_chunk in [1usize, 8, 100] {
                let size = chunk_size(n, min_chunk);
                let chunks = chunk_count(n, min_chunk);
                let mut covered = 0;
                for idx in 0..chunks {
                    let r = chunk_range(n, size, idx);
                    assert_eq!(r.start, covered, "n={n} min={min_chunk} idx={idx}");
                    assert!(r.end > r.start);
                    covered = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn chunking_is_thread_count_independent() {
        let before = threads();
        let baseline = chunk_count(1000, 8);
        for t in [1usize, 2, 8, 64] {
            set_threads(t);
            assert_eq!(chunk_count(1000, 8), baseline);
        }
        set_threads(before);
    }

    #[test]
    fn for_each_chunk_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        for_each_chunk(n, 16, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_chunks_is_an_ordered_reduction() {
        let n = 5000;
        let parallel = map_chunks(n, 7, |r| (r.start, r.end));
        let size = chunk_size(n, 7);
        let sequential: Vec<(usize, usize)> = (0..chunk_count(n, 7))
            .map(|idx| {
                let r = chunk_range(n, size, idx);
                (r.start, r.end)
            })
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn map_items_preserves_input_order() {
        let items: Vec<u64> = (0..3000).collect();
        let doubled = map_items(&items, 11, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn float_sum_identical_at_every_thread_count() {
        let data: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 101) as f64 * 0.1 - 5.0).collect();
        let sum_at = |t: usize| {
            set_threads(t);
            let partials = map_chunks(data.len(), 64, |r| data[r].iter().sum::<f64>());
            // Ordered fold over per-chunk partials: chunk boundaries are
            // thread-independent, so this is bit-stable.
            partials.into_iter().sum::<f64>()
        };
        let before = threads();
        let reference = sum_at(1);
        for t in [2usize, 4, 8] {
            assert_eq!(sum_at(t).to_bits(), reference.to_bits());
        }
        set_threads(before);
    }

    #[test]
    fn nested_regions_run_inline_without_deadlock() {
        // Above the item floor so the outer region really uses the pool.
        let n = 4 * PAR_ITEM_FLOOR;
        let before = threads();
        set_threads(4);
        let total: u64 = map_chunks(n, 1, |outer| {
            // Nested call from inside a chunk body: must not deadlock.
            map_chunks(outer.len(), 1, |inner| inner.len() as u64)
                .into_iter()
                .sum::<u64>()
        })
        .into_iter()
        .sum();
        assert_eq!(total, n as u64);
        set_threads(before);
    }

    #[test]
    fn chunk_panics_propagate_to_the_submitter() {
        // Above the item floor so the panic crosses the pool boundary,
        // not just an inline call stack.
        let n = 2 * PAR_ITEM_FLOOR;
        let before = threads();
        set_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            for_each_chunk(n, 1, |r| {
                if r.contains(&(n / 2)) {
                    panic!("boom");
                }
            });
        }));
        set_threads(before);
        assert!(result.is_err(), "panic must cross the pool boundary");
        // The pool must still be usable after a panicked batch.
        let ok: usize = map_chunks(2 * PAR_ITEM_FLOOR, 1, |r| r.len()).into_iter().sum();
        assert_eq!(ok, 2 * PAR_ITEM_FLOOR);
    }

    #[test]
    fn regions_below_the_item_floor_stay_inline() {
        let before = threads();
        set_threads(8);
        assert!(!would_parallelize(PAR_ITEM_FLOOR - 1, 1));
        assert!(would_parallelize(PAR_ITEM_FLOOR, 1));
        // Inline scheduling is invisible in the results.
        let small: usize =
            map_chunks(PAR_ITEM_FLOOR - 1, 1, |r| r.len()).into_iter().sum();
        assert_eq!(small, PAR_ITEM_FLOOR - 1);
        set_threads(before);
    }

    #[test]
    fn zero_and_tiny_inputs() {
        for_each_chunk(0, 8, |_| panic!("no chunks for n=0"));
        assert!(map_chunks(0, 8, |r| r.len()).is_empty());
        assert_eq!(map_chunks(1, 8, |r| r.len()), vec![1]);
    }
}
