//! Statistical utilities for the baselines: the two-sample
//! Kolmogorov–Smirnov statistic S³DET uses to compare spectra.

/// The two-sample Kolmogorov–Smirnov statistic
/// `D = sup_x |F₁(x) − F₂(x)|` between two samples.
///
/// Returns a value in `[0, 1]`; 0 means identical empirical
/// distributions. Empty samples are treated as maximally distant from
/// non-empty ones and identical to each other.
///
/// # Example
///
/// ```
/// use ancstr_baselines::stats::ks_statistic;
///
/// let a = [0.0, 1.0, 2.0];
/// assert_eq!(ks_statistic(&a, &a), 0.0);
/// let far = ks_statistic(&[0.0, 0.1], &[10.0, 10.1]);
/// assert_eq!(far, 1.0);
/// ```
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        (false, false) => {}
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("finite samples"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("finite samples"));

    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = [3.0, 1.0, 2.0];
        assert_eq!(ks_statistic(&a, &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn disjoint_supports_have_distance_one() {
        assert_eq!(ks_statistic(&[0.0, 1.0], &[5.0, 6.0]), 1.0);
    }

    #[test]
    fn partial_overlap_is_intermediate() {
        let d = ks_statistic(&[0.0, 1.0, 2.0, 3.0], &[2.0, 3.0, 4.0, 5.0]);
        assert!(d > 0.0 && d < 1.0, "d = {d}");
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = [0.1, 0.5, 0.9, 1.5];
        let b = [0.2, 0.6, 1.2];
        assert!((ks_statistic(&a, &b) - ks_statistic(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(ks_statistic(&[], &[]), 0.0);
        assert_eq!(ks_statistic(&[], &[1.0]), 1.0);
    }

    #[test]
    fn different_sizes_same_distribution() {
        // Same uniform grid at two densities: small distance.
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        assert!(ks_statistic(&a, &b) < 0.05);
    }
}
