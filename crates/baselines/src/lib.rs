#![warn(missing_docs)]

//! Reimplementations of the prior symmetry-constraint detectors the
//! paper compares against:
//!
//! * [`s3det`] — S³DET (ASP-DAC'20 \[20\]): system-level detection via
//!   normalized-Laplacian spectra + Kolmogorov–Smirnov graph similarity
//!   (Table V / Fig. 6 comparator);
//! * [`sfa`] — MAGICAL's signal-flow-analysis heuristic patterns
//!   (ICCAD'19 \[6\]): device-level detection (Table VI / Fig. 7
//!   comparator).
//!
//! Both reuse [`ancstr_core`]'s candidate enumeration and scoring types
//! so that [`ancstr_core::pipeline::evaluate_detection`] applies
//! uniformly to every detector.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ancstr_baselines::sfa::{sfa_extract, SfaConfig};
//! use ancstr_netlist::{parse::parse_spice, flat::FlatCircuit};
//!
//! let nl = parse_spice("\
//! .subckt dp inp inn o1 o2 t vss
//! M1 o1 inp t vss nch w=4u l=0.2u
//! M2 o2 inn t vss nch w=4u l=0.2u
//! .ends
//! ")?;
//! let flat = FlatCircuit::elaborate(&nl)?;
//! let result = sfa_extract(&flat, &SfaConfig::default());
//! assert_eq!(result.detection.constraints.len(), 1); // the diff pair
//! # Ok(())
//! # }
//! ```

pub mod ged;
pub mod s3det;
pub mod sfa;
pub mod stats;

pub use ged::{ged_extract, ged_similarity, GedConfig};
pub use s3det::{s3det_extract, S3detConfig};
pub use sfa::{sfa_extract, SfaConfig};
pub use stats::ks_statistic;
