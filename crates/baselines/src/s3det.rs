//! Reimplementation of S³DET (ASP-DAC'20 \[20\]): system-level symmetry
//! detection by *graph similarity* — normalized-Laplacian eigenvalue
//! spectra compared with a two-sample Kolmogorov–Smirnov test.
//!
//! Characteristics reproduced from the original (per the paper's
//! Table I and Section V-A):
//!
//! * **sizing-blind**: only topology enters the spectrum, so two
//!   same-topology blocks with different device sizes still match — the
//!   false alarms our framework's Fig. 2 story highlights;
//! * **heavy statistical computation**: a dense `O(n³)` eigendecomposition
//!   per subcircuit per pair (the reference tool recomputes per
//!   comparison, which is what its published runtimes reflect);
//! * **system-level only**: device-level extraction is out of scope
//!   (Table I row "Device-level matching: N/A" → we score only
//!   system-level candidates).

use std::time::Instant;

use ancstr_core::detect::{DetectionResult, ScoredPair};
use ancstr_core::pairs::valid_pairs_of_kind;
use ancstr_core::pipeline::Extraction;
use ancstr_graph::{BuildOptions, HetMultigraph};
use ancstr_netlist::flat::{FlatCircuit, HierNodeId, HierNodeKind};
use ancstr_netlist::{ConstraintSet, SymmetryConstraint, SymmetryKind};
use ancstr_nn::linalg::{normalized_laplacian, symmetric_eigenvalues};
use ancstr_nn::Matrix;

use crate::stats::ks_statistic;

/// S³DET configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct S3detConfig {
    /// Similarity acceptance threshold on `1 − D_KS` (the original tunes
    /// this per design; 0.85 is a good operating point on our
    /// benchmarks).
    pub threshold: f64,
    /// Multigraph construction options.
    pub build: BuildOptions,
    /// Cache per-block spectra instead of recomputing per pair. The
    /// reference executable recomputes (the faithful default, `false`);
    /// the ablation bench flips this to show how much of the runtime gap
    /// is algorithmic vs implementation sloppiness.
    pub cache_spectra: bool,
}

impl Default for S3detConfig {
    fn default() -> S3detConfig {
        S3detConfig {
            threshold: 0.85,
            build: BuildOptions::default(),
            cache_spectra: false,
        }
    }
}

/// The Laplacian spectrum of one module: for a block, its subcircuit
/// graph; for a primitive device (system-level passive), the star of its
/// immediate neighbourhood within the parent scope.
fn module_spectrum(
    flat: &FlatCircuit,
    id: HierNodeId,
    build: &BuildOptions,
) -> Vec<f64> {
    let node = flat.node(id);
    match node.kind {
        HierNodeKind::Block { .. } => {
            let g = HetMultigraph::from_subtree(flat, id, build);
            let n = g.vertex_count();
            let mut adj = Matrix::zeros(n, n);
            for e in g.edges() {
                adj[(e.src.0, e.dst.0)] += 1.0;
            }
            symmetric_eigenvalues(&normalized_laplacian(&adj))
        }
        HierNodeKind::Device(i) => {
            // A lone device carries no internal topology: S³DET sees the
            // degree profile of its pins (sizing-blind by construction).
            let d = &flat.devices()[i];
            d.pins.iter().map(|_| 1.0).collect()
        }
    }
}

/// Run S³DET on one circuit: score every *system-level* valid pair with
/// `1 − D_KS(spec_a, spec_b)` and accept above the threshold.
pub fn s3det_extract(flat: &FlatCircuit, config: &S3detConfig) -> Extraction {
    let start = Instant::now();
    let candidates = valid_pairs_of_kind(flat, SymmetryKind::System);

    let mut cache: Vec<Option<Vec<f64>>> = vec![None; flat.nodes().len()];
    let mut spectrum_of = |id: HierNodeId| -> Vec<f64> {
        if config.cache_spectra {
            if cache[id.0].is_none() {
                cache[id.0] = Some(module_spectrum(flat, id, &config.build));
            }
            cache[id.0].clone().expect("just filled")
        } else {
            module_spectrum(flat, id, &config.build)
        }
    };

    let mut scored = Vec::with_capacity(candidates.len());
    let mut constraints = ConstraintSet::new();
    for candidate in candidates {
        let sa = spectrum_of(candidate.pair.lo());
        let sb = spectrum_of(candidate.pair.hi());
        let score = 1.0 - ks_statistic(&sa, &sb);
        let accepted = score > config.threshold;
        if accepted {
            constraints.insert(SymmetryConstraint {
                hierarchy: candidate.hierarchy,
                pair: candidate.pair,
                kind: candidate.kind,
            });
        }
        scored.push(ScoredPair {
            candidate,
            score,
            accepted,
            threshold: config.threshold,
        });
    }
    Extraction {
        detection: DetectionResult {
            scored,
            constraints,
            system_threshold: config.threshold,
            warnings: Vec::new(),
        },
        runtime: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_circuits::adc::adc1;
    use ancstr_circuits::clock::clock_circuit;
    use ancstr_core::pipeline::evaluate_detection;

    #[test]
    fn finds_identical_block_pairs() {
        let flat = FlatCircuit::elaborate(&adc1()).unwrap();
        let ex = s3det_extract(&flat, &S3detConfig { cache_spectra: true, ..Default::default() });
        let a = flat.node_by_path("adc1/Xdac1a").unwrap().id;
        let b = flat.node_by_path("adc1/Xdac1b").unwrap().id;
        assert!(ex.detection.constraints.contains_pair(a, b));
    }

    #[test]
    fn sizing_blindness_causes_false_alarms_on_clock() {
        // All clock inverters share one topology; S³DET cannot tell the
        // x8 branch from the x1/x2/x4 instances.
        let flat = FlatCircuit::elaborate(&clock_circuit()).unwrap();
        let ex = s3det_extract(&flat, &S3detConfig { cache_spectra: true, ..Default::default() });
        let eval = evaluate_detection(&flat, ex);
        assert!(eval.system.fp > 0, "expected sizing false alarms: {:?}", eval.system);
        assert_eq!(eval.system.fn_, 0, "true pairs are all found");
    }

    #[test]
    fn integrator_scaling_decoy_fools_s3det_but_scores_high() {
        // integ_a vs integ_b share their OTA topology and differ only in
        // R/C sizing → S³DET marks them (a false positive the GNN
        // avoids).
        let flat = FlatCircuit::elaborate(&adc1()).unwrap();
        let ex = s3det_extract(&flat, &S3detConfig { cache_spectra: true, ..Default::default() });
        let i1 = flat.node_by_path("adc1/Xint1").unwrap().id;
        let i2 = flat.node_by_path("adc1/Xint2").unwrap().id;
        let pair = ex
            .detection
            .scored
            .iter()
            .find(|s| s.candidate.pair == ancstr_netlist::PairKey::new(i1, i2))
            .expect("integrators are a system-level candidate");
        assert!(pair.score > 0.9, "topologically identical: {}", pair.score);
        assert!(pair.accepted);
        // Ground truth says unmatched.
        assert!(flat.ground_truth().get(i1, i2).is_none());
    }

    #[test]
    fn caching_does_not_change_decisions() {
        let flat = FlatCircuit::elaborate(&clock_circuit()).unwrap();
        let slow = s3det_extract(&flat, &S3detConfig::default());
        let fast = s3det_extract(
            &flat,
            &S3detConfig { cache_spectra: true, ..Default::default() },
        );
        assert_eq!(slow.detection.constraints, fast.detection.constraints);
        for (a, b) in slow.detection.scored.iter().zip(&fast.detection.scored) {
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn scores_only_system_pairs() {
        let flat = FlatCircuit::elaborate(&adc1()).unwrap();
        let ex = s3det_extract(&flat, &S3detConfig { cache_spectra: true, ..Default::default() });
        assert!(ex
            .detection
            .scored
            .iter()
            .all(|s| s.candidate.kind == SymmetryKind::System));
    }
}
