//! Reimplementation of the MAGICAL signal-flow-analysis (SFA)
//! device-level symmetry detector (ICCAD'19 \[6\]).
//!
//! SFA pattern-matches structural motifs on the circuit graph:
//! differential pairs, current mirrors, cross-coupled pairs, clocked
//! pass pairs, and common-net passive pairs. It is fast and recalls
//! aggressively, but it is *sizing-blind*: two same-type transistors
//! hanging off the same nets are marked matched regardless of W/L — the
//! over-marking that gives it a higher TPR and a much higher FPR than
//! the GNN (paper Table VI). Being a heuristic, it produces one point in
//! ROC space rather than a curve (paper Fig. 7).

use std::time::Instant;

use ancstr_core::detect::{DetectionResult, ScoredPair};
use ancstr_core::pairs::valid_pairs_of_kind;
use ancstr_core::pipeline::Extraction;
use ancstr_netlist::flat::{FlatCircuit, FlatDevice, HierNodeKind, NetId};
use ancstr_netlist::{ConstraintSet, SymmetryConstraint, SymmetryKind};

/// SFA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfaConfig {
    /// Also mark same-type passive pairs that share a net even when
    /// their values differ (the aggressive published behaviour). Turning
    /// this off is the "conservative SFA" ablation.
    pub aggressive_passives: bool,
}

impl Default for SfaConfig {
    fn default() -> SfaConfig {
        SfaConfig { aggressive_passives: true }
    }
}

/// MOS pin view used by the patterns.
struct MosPins {
    d: NetId,
    g: NetId,
    s: NetId,
}

fn mos_pins(dev: &FlatDevice) -> Option<MosPins> {
    if dev.dtype.is_mos() || dev.dtype.is_bjt() {
        Some(MosPins { d: dev.pins[0], g: dev.pins[1], s: dev.pins[2] })
    } else {
        None
    }
}

/// Decide whether SFA's patterns match a device pair.
fn matches_pattern(a: &FlatDevice, b: &FlatDevice, config: &SfaConfig) -> bool {
    if a.dtype != b.dtype {
        return false;
    }
    if let (Some(pa), Some(pb)) = (mos_pins(a), mos_pins(b)) {
        // Differential pair: common source, distinct gates and drains.
        let diff_pair = pa.s == pb.s && pa.g != pb.g && pa.d != pb.d;
        // Current mirror: common gate and common source.
        let mirror = pa.g == pb.g && pa.s == pb.s;
        // Cross-coupled: each gate on the other's drain.
        let cross = pa.g == pb.d && pb.g == pa.d;
        // Clocked pass pair: common gate, symmetric roles.
        let pass_pair = pa.g == pb.g && (pa.d == pb.d || pa.s == pb.s);
        return diff_pair || mirror || cross || pass_pair;
    }
    if a.dtype.is_passive() {
        if !config.aggressive_passives {
            // Conservative: require matching values too.
            let values_match = match (a.value, b.value) {
                (Some(x), Some(y)) => (x - y).abs() <= 1e-12 * x.abs().max(y.abs()),
                (None, None) => true,
                _ => false,
            };
            if !values_match {
                return false;
            }
        }
        // Same-type passives sharing a net are marked.
        return a.pins.iter().any(|n| b.pins.contains(n));
    }
    // Diodes: shared net on either terminal.
    a.pins.iter().any(|n| b.pins.contains(n))
}

/// Run SFA on one circuit: binary decisions over the *device-level*
/// valid pairs (SFA does not produce system-level constraints).
pub fn sfa_extract(flat: &FlatCircuit, config: &SfaConfig) -> Extraction {
    let start = Instant::now();
    let candidates = valid_pairs_of_kind(flat, SymmetryKind::Device);
    let mut scored = Vec::with_capacity(candidates.len());
    let mut constraints = ConstraintSet::new();
    for candidate in candidates {
        let (a, b) = (candidate.pair.lo(), candidate.pair.hi());
        let (HierNodeKind::Device(ia), HierNodeKind::Device(ib)) =
            (&flat.node(a).kind, &flat.node(b).kind)
        else {
            continue; // device-level pairs are always leaves
        };
        let accepted = matches_pattern(&flat.devices()[*ia], &flat.devices()[*ib], config);
        if accepted {
            constraints.insert(SymmetryConstraint {
                hierarchy: candidate.hierarchy,
                pair: candidate.pair,
                kind: candidate.kind,
            });
        }
        scored.push(ScoredPair {
            candidate,
            score: if accepted { 1.0 } else { 0.0 },
            accepted,
            threshold: 0.5,
        });
    }
    Extraction {
        detection: DetectionResult {
            scored,
            constraints,
            system_threshold: 0.5,
            warnings: Vec::new(),
        },
        runtime: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_circuits::comparator::comp2;
    use ancstr_circuits::ota::ota1;
    use ancstr_core::pipeline::evaluate_detection;
    use ancstr_netlist::parse::parse_spice;

    #[test]
    fn finds_classic_patterns() {
        let flat = FlatCircuit::elaborate(&comp2(1)).unwrap();
        let ex = sfa_extract(&flat, &SfaConfig::default());
        let eval = evaluate_detection(&flat, ex);
        // comp2 is all classic motifs: diff pair, cross-coupled ×2.
        assert_eq!(eval.device.fn_, 0, "{:?}", eval.device);
        assert!(eval.device.tp >= 3);
    }

    #[test]
    fn sizing_blindness_over_marks() {
        // ota1's tail/sink/bias NMOS devices share gate (ibias) and
        // source (vss) → the mirror pattern fires although their sizes
        // differ (ground-truth negatives).
        let flat = FlatCircuit::elaborate(&ota1(3)).unwrap();
        let ex = sfa_extract(&flat, &SfaConfig::default());
        let eval = evaluate_detection(&flat, ex);
        assert!(eval.device.fp > 0, "expected false alarms: {:?}", eval.device);
    }

    #[test]
    fn conservative_passives_reduce_false_alarms() {
        let nl = parse_spice(
            "\
.subckt c a b vss
C1 a vss 10f
C2 b vss 10f
C3 a vss 99f
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        let aggressive = sfa_extract(&flat, &SfaConfig { aggressive_passives: true });
        let conservative = sfa_extract(&flat, &SfaConfig { aggressive_passives: false });
        // Aggressive marks C1-C3 (share net a... they share vss too);
        // conservative rejects the value mismatch.
        let accepted = |e: &Extraction| {
            e.detection.scored.iter().filter(|s| s.accepted).count()
        };
        assert!(accepted(&aggressive) > accepted(&conservative));
    }

    #[test]
    fn produces_binary_scores_only() {
        let flat = FlatCircuit::elaborate(&ota1(1)).unwrap();
        let ex = sfa_extract(&flat, &SfaConfig::default());
        assert!(!ex.detection.scored.is_empty());
        for s in &ex.detection.scored {
            assert!(s.score == 0.0 || s.score == 1.0);
            assert_eq!(s.candidate.kind, SymmetryKind::Device);
        }
    }

    #[test]
    fn cross_coupled_detection() {
        let nl = parse_spice(
            "\
.subckt x q qb vdd vss
M1 q qb vss vss nch w=1u l=0.1u
M2 qb q vss vss nch w=1u l=0.1u
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        let ex = sfa_extract(&flat, &SfaConfig::default());
        assert_eq!(ex.detection.constraints.len(), 1);
    }
}
