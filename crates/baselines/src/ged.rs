//! A graph-edit-distance (GED) system-level detector in the spirit of
//! ICCAD'20 \[21\] ("A general approach for identifying hierarchical
//! symmetry constraints for analog circuit layout").
//!
//! \[21\] trains a *supervised* GNN to predict the GED between subcircuit
//! pairs and thresholds the prediction. Reproducing its training would
//! require its labeled corpus; instead this module computes the
//! quantity that model regresses — an approximate GED — directly, via a
//! greedy signature assignment. That makes this baseline an upper bound
//! on \[21\]'s matching quality (its GNN approximates what we compute),
//! which is the right comparison target for Table I's row.
//!
//! Like S³DET it considers topology and *device-level* type labels, and
//! unlike the paper's framework it ignores subcircuit sizing — so it
//! inherits the same class of sizing false alarms.

use std::time::Instant;

use ancstr_core::detect::{DetectionResult, ScoredPair};
use ancstr_core::pairs::valid_pairs_of_kind;
use ancstr_core::pipeline::Extraction;
use ancstr_graph::{BuildOptions, HetMultigraph, VertexId};
use ancstr_netlist::flat::{FlatCircuit, HierNodeId, HierNodeKind};
use ancstr_netlist::{ConstraintSet, PortType, SymmetryConstraint, SymmetryKind};

/// Configuration of the GED baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GedConfig {
    /// Accept when `1 / (1 + GED / max(|V|))` exceeds this.
    pub threshold: f64,
    /// Multigraph construction options.
    pub build: BuildOptions,
}

impl Default for GedConfig {
    fn default() -> GedConfig {
        GedConfig { threshold: 0.7, build: BuildOptions::default() }
    }
}

/// Per-vertex structural signature: device type plus typed in/out degree
/// histograms.
#[derive(Debug, Clone, PartialEq)]
struct Signature {
    type_index: usize,
    in_hist: [usize; PortType::COUNT],
    out_hist: [usize; PortType::COUNT],
}

impl Signature {
    fn cost(&self, other: &Signature) -> f64 {
        let mut c = if self.type_index == other.type_index { 0.0 } else { 4.0 };
        for i in 0..PortType::COUNT {
            c += (self.in_hist[i] as f64 - other.in_hist[i] as f64).abs();
            c += (self.out_hist[i] as f64 - other.out_hist[i] as f64).abs();
        }
        c
    }
}

fn signatures(flat: &FlatCircuit, id: HierNodeId, build: &BuildOptions) -> Vec<Signature> {
    match flat.node(id).kind {
        HierNodeKind::Block { .. } => {
            let g = HetMultigraph::from_subtree(flat, id, build);
            (0..g.vertex_count())
                .map(|v| {
                    let vid = VertexId(v);
                    let mut in_hist = [0usize; PortType::COUNT];
                    for e in g.in_edges(vid) {
                        in_hist[e.port.index()] += 1;
                    }
                    let mut out_hist = [0usize; PortType::COUNT];
                    for e in g.out_edges(vid) {
                        out_hist[e.port.index()] += 1;
                    }
                    Signature {
                        type_index: flat.devices()[g.device_index(vid)]
                            .dtype
                            .one_hot_index(),
                        in_hist,
                        out_hist,
                    }
                })
                .collect()
        }
        HierNodeKind::Device(i) => vec![Signature {
            type_index: flat.devices()[i].dtype.one_hot_index(),
            in_hist: [0; PortType::COUNT],
            out_hist: [0; PortType::COUNT],
        }],
    }
}

/// Approximate GED between two signature multisets: greedy minimum-cost
/// assignment plus an insertion/deletion penalty for the size gap.
fn approx_ged(a: &[Signature], b: &[Signature]) -> f64 {
    const NODE_COST: f64 = 6.0;
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut used = vec![false; large.len()];
    let mut total = 0.0;
    for s in small {
        let mut best = f64::INFINITY;
        let mut best_j = None;
        for (j, l) in large.iter().enumerate() {
            if used[j] {
                continue;
            }
            let c = s.cost(l);
            if c < best {
                best = c;
                best_j = Some(j);
            }
        }
        if let Some(j) = best_j {
            used[j] = true;
            total += best;
        }
    }
    total + NODE_COST * (large.len() - small.len()) as f64
}

/// Normalized similarity in `(0, 1]`: `1 / (1 + GED / max(|V_a|, |V_b|))`.
pub fn ged_similarity(flat: &FlatCircuit, a: HierNodeId, b: HierNodeId, build: &BuildOptions) -> f64 {
    let sa = signatures(flat, a, build);
    let sb = signatures(flat, b, build);
    let ged = approx_ged(&sa, &sb);
    let scale = sa.len().max(sb.len()).max(1) as f64;
    1.0 / (1.0 + ged / scale)
}

/// Run the GED baseline over the *system-level* valid pairs.
pub fn ged_extract(flat: &FlatCircuit, config: &GedConfig) -> Extraction {
    let start = Instant::now();
    let mut scored = Vec::new();
    let mut constraints = ConstraintSet::new();
    for candidate in valid_pairs_of_kind(flat, SymmetryKind::System) {
        let score = ged_similarity(flat, candidate.pair.lo(), candidate.pair.hi(), &config.build);
        let accepted = score > config.threshold;
        if accepted {
            constraints.insert(SymmetryConstraint {
                hierarchy: candidate.hierarchy,
                pair: candidate.pair,
                kind: candidate.kind,
            });
        }
        scored.push(ScoredPair {
            candidate,
            score,
            accepted,
            threshold: config.threshold,
        });
    }
    Extraction {
        detection: DetectionResult {
            scored,
            constraints,
            system_threshold: config.threshold,
            warnings: Vec::new(),
        },
        runtime: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_circuits::adc::adc1;
    use ancstr_core::pipeline::evaluate_detection;

    #[test]
    fn identical_blocks_have_similarity_one() {
        let flat = FlatCircuit::elaborate(&adc1()).unwrap();
        let a = flat.node_by_path("adc1/Xdac1a").unwrap().id;
        let b = flat.node_by_path("adc1/Xdac1b").unwrap().id;
        let s = ged_similarity(&flat, a, b, &BuildOptions::default());
        assert!((s - 1.0).abs() < 1e-12, "identical slices: {s}");
    }

    #[test]
    fn different_blocks_score_lower() {
        let flat = FlatCircuit::elaborate(&adc1()).unwrap();
        let dac = flat.node_by_path("adc1/Xdac1a").unwrap().id;
        let refbuf = flat.node_by_path("adc1/Xrefp").unwrap().id;
        let same = ged_similarity(&flat, dac, dac, &BuildOptions::default());
        let diff = ged_similarity(&flat, dac, refbuf, &BuildOptions::default());
        assert!(diff < same);
        assert!(diff < 0.7, "6-dev DAC vs 20-dev OTA: {diff}");
    }

    #[test]
    fn finds_identical_system_pairs_but_is_sizing_blind() {
        let flat = FlatCircuit::elaborate(&adc1()).unwrap();
        let ex = ged_extract(&flat, &GedConfig::default());
        let eval = evaluate_detection(&flat, ex);
        assert_eq!(eval.system.fn_, 0, "identical pairs found: {:?}", eval.system);
        // The scaled integrators share topology → GED false alarm.
        let i1 = flat.node_by_path("adc1/Xint1").unwrap().id;
        let i2 = flat.node_by_path("adc1/Xint2").unwrap().id;
        assert!(eval
            .extraction
            .detection
            .constraints
            .contains_pair(i1, i2));
        assert!(flat.ground_truth().get(i1, i2).is_none());
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let flat = FlatCircuit::elaborate(&adc1()).unwrap();
        let ex = ged_extract(&flat, &GedConfig::default());
        for s in &ex.detection.scored {
            assert!((0.0..=1.0).contains(&s.score), "{}", s.score);
        }
    }
}
