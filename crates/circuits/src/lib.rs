#![warn(missing_docs)]

//! Synthetic AMS benchmark circuits with designer ground-truth symmetry
//! constraints.
//!
//! The paper evaluates on five proprietary taped-out ADCs (Table III)
//! and 15 open-source block-level circuits (Table IV). This crate builds
//! structurally equivalent, seeded synthetic versions:
//!
//! * [`ota::ota_suite`] — six OTA variants (Table VI: 12/20/12/36/38/15
//!   devices);
//! * [`comparator::comparator_suite`] — six comparators
//!   (47/8/34/22/17/17 devices);
//! * [`dac::dac_suite`] — two DACs (10/12 devices);
//! * [`latch::latch1`] — the 24-device latch;
//! * [`adc`] — ADC1–ADC5 system assemblers hitting the published device
//!   counts (285/345/347/731/1233) exactly;
//! * [`stress`] — seeded scale-sweep systems (10k–100k devices) with
//!   exact hierarchical ground truth for throughput benchmarking;
//! * [`clock::clock_circuit`] — the Fig. 2 sizing-aware clock example.
//!
//! Ground truth comes from `*.symmetry` annotations placed by the
//! generators: matched pairs share drawn sizes; same-type decoys get
//! distinct sizes so sizing-blind detectors produce false alarms.
//!
//! # Example
//!
//! ```
//! use ancstr_circuits::block_benchmarks;
//! use ancstr_netlist::flat::FlatCircuit;
//!
//! let blocks = block_benchmarks(42);
//! assert_eq!(blocks.len(), 15);
//! let total: usize = blocks
//!     .iter()
//!     .map(|nl| FlatCircuit::elaborate(nl).unwrap().devices().len())
//!     .sum();
//! assert_eq!(total, 324); // Table IV total
//! ```

pub mod adc;
pub mod builder;
pub mod clock;
pub mod comparator;
pub mod dac;
pub mod digital;
pub mod extras;
pub mod latch;
pub mod ota;
pub mod stress;
pub mod variants;

use ancstr_netlist::Netlist;

/// The 15 block-level benchmarks of Table IV, in Table VI order
/// (OTA1–6, COMP1–6, DAC1–2, LATCH1).
pub fn block_benchmarks(seed: u64) -> Vec<Netlist> {
    let mut out = ota::ota_suite(seed);
    out.extend(comparator::comparator_suite(seed));
    out.extend(dac::dac_suite(seed));
    out.push(latch::latch1(seed));
    out
}

/// Human-readable names of [`block_benchmarks`] entries, aligned with
/// the paper's Table VI rows.
pub fn block_benchmark_names() -> Vec<&'static str> {
    vec![
        "OTA1", "OTA2", "OTA3", "OTA4", "OTA5", "OTA6", "COMP1", "COMP2", "COMP3",
        "COMP4", "COMP5", "COMP6", "DAC1", "DAC2", "LATCH1",
    ]
}

/// Names of the ADC benchmarks, aligned with Table III/V rows.
pub fn adc_benchmark_names() -> Vec<&'static str> {
    vec!["ADC1", "ADC2", "ADC3", "ADC4", "ADC5"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;

    #[test]
    fn benchmark_names_align() {
        assert_eq!(block_benchmarks(1).len(), block_benchmark_names().len());
        assert_eq!(adc::adc_benchmarks().len(), adc_benchmark_names().len());
    }

    #[test]
    fn every_benchmark_elaborates_with_ground_truth() {
        for (nl, name) in block_benchmarks(1).iter().zip(block_benchmark_names()) {
            let flat = FlatCircuit::elaborate(nl).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!flat.ground_truth().is_empty(), "{name} lacks ground truth");
            assert!(flat.devices().len() >= 8, "{name} is too small");
        }
    }

    #[test]
    fn benchmarks_round_trip_through_spice() {
        use ancstr_netlist::{parse::parse_spice, write::write_spice};
        for nl in block_benchmarks(2) {
            let text = write_spice(&nl);
            let back = parse_spice(&text).expect("generated netlists parse back");
            let f1 = FlatCircuit::elaborate(&nl).unwrap();
            let f2 = FlatCircuit::elaborate(&back).unwrap();
            assert_eq!(f1.devices().len(), f2.devices().len());
            assert_eq!(f1.ground_truth().len(), f2.ground_truth().len());
        }
    }
}
