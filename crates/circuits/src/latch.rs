//! The LATCH1 block benchmark of Table VI: a clocked regenerative latch
//! with input sampling, reset, and output buffering — 24 devices.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use ancstr_netlist::{CircuitClass, DeviceType, Netlist};

use crate::builder::CellBuilder;

/// LATCH1: dynamic regenerative latch — 24 devices on a compact net set.
pub fn latch1(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1A7C);
    let w_in = [1.0, 2.0, 3.0][rng.gen_range(0..3)];
    let cell = CellBuilder::new(
        "latch1",
        ["dp", "dn", "qp", "qn", "clk", "clkb", "vdd", "vss"],
    )
    .class(CircuitClass::Latch)
    // Input sampling pass pair.
    .mos("Mi1", DeviceType::NchLvt, "a1", "clk", "dp", "vss", w_in, 0.1)
    .mos("Mi2", DeviceType::NchLvt, "a2", "clk", "dn", "vss", w_in, 0.1)
    // Regenerative cross-coupled inverters.
    .mos("Mx1p", DeviceType::PchLvt, "a1", "a2", "vdd", "vdd", 2.0, 0.1)
    .mos("Mx1n", DeviceType::NchLvt, "a1", "a2", "foot", "vss", 1.0, 0.1)
    .mos("Mx2p", DeviceType::PchLvt, "a2", "a1", "vdd", "vdd", 2.0, 0.1)
    .mos("Mx2n", DeviceType::NchLvt, "a2", "a1", "foot", "vss", 1.0, 0.1)
    // Clocked foot and head.
    .mos("Mft", DeviceType::Nch, "foot", "clkb", "vss", "vss", 3.0, 0.1)
    .mos("Mhd", DeviceType::Pch, "vdd", "clk", "vdd", "vdd", 1.0, 0.1)
    // Reset/equalize devices.
    .mos("Mr1", DeviceType::PchLvt, "a1", "clk", "vdd", "vdd", 1.0, 0.1)
    .mos("Mr2", DeviceType::PchLvt, "a2", "clk", "vdd", "vdd", 1.0, 0.1)
    .mos("Meq", DeviceType::PchLvt, "a1", "clk", "a2", "vdd", 1.0, 0.1)
    // Keeper pair (weak, different size — decoy vs reset pair).
    .mos("Mk1", DeviceType::PchLvt, "a1", "qn", "vdd", "vdd", 0.5, 0.2)
    .mos("Mk2", DeviceType::PchLvt, "a2", "qp", "vdd", "vdd", 0.5, 0.2)
    // Output buffers: two inverters per side.
    .mos("Mb1p", DeviceType::PchLvt, "o1", "a1", "vdd", "vdd", 2.0, 0.1)
    .mos("Mb1n", DeviceType::NchLvt, "o1", "a1", "vss", "vss", 1.0, 0.1)
    .mos("Mb2p", DeviceType::PchLvt, "qp", "o1", "vdd", "vdd", 4.0, 0.1)
    .mos("Mb2n", DeviceType::NchLvt, "qp", "o1", "vss", "vss", 2.0, 0.1)
    .mos("Mb3p", DeviceType::PchLvt, "o2", "a2", "vdd", "vdd", 2.0, 0.1)
    .mos("Mb3n", DeviceType::NchLvt, "o2", "a2", "vss", "vss", 1.0, 0.1)
    .mos("Mb4p", DeviceType::PchLvt, "qn", "o2", "vdd", "vdd", 4.0, 0.1)
    .mos("Mb4n", DeviceType::NchLvt, "qn", "o2", "vss", "vss", 2.0, 0.1)
    // Load caps and a keep-alive dummy.
    .cap("C1", "qp", "vss", 5e-15)
    .cap("C2", "qn", "vss", 5e-15)
    .mos("Mdum", DeviceType::Nch, "vss", "vss", "vss", "vss", 1.0, 0.1)
    .sym("Mi1", "Mi2")
    .sym("Mx1p", "Mx2p")
    .sym("Mx1n", "Mx2n")
    .sym("Mr1", "Mr2")
    .sym("Mk1", "Mk2")
    .sym("Mb1p", "Mb3p")
    .sym("Mb1n", "Mb3n")
    .sym("Mb2p", "Mb4p")
    .sym("Mb2n", "Mb4n")
    .sym("C1", "C2")
    .self_sym("Mft")
    .build();
    let mut nl = Netlist::new("latch1");
    nl.add_subckt(cell).expect("single template");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;

    #[test]
    fn device_count_matches_table6() {
        let flat = FlatCircuit::elaborate(&latch1(1)).unwrap();
        assert_eq!(flat.devices().len(), 24);
    }

    #[test]
    fn ground_truth_is_rich() {
        let flat = FlatCircuit::elaborate(&latch1(1)).unwrap();
        assert_eq!(flat.ground_truth().len(), 10);
    }
}
