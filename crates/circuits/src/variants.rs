//! Alternative topologies for the Table IV circuit classes — the
//! paper's premise that AMS design has "dozens of different topologies
//! for a single functionality", which is what makes manual annotation
//! error-prone and supervised learning brittle.
//!
//! Every generator here implements a class that already exists in the
//! main corpus (OTA, comparator) with a *different* internal structure,
//! so experiments can mix topologies per class.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use ancstr_netlist::{CircuitClass, DeviceType, Netlist};

use crate::builder::CellBuilder;

fn draw_w(rng: &mut StdRng) -> f64 {
    const CHOICES: [f64; 5] = [1.0, 2.0, 4.0, 6.0, 8.0];
    CHOICES[rng.gen_range(0..CHOICES.len())]
}

fn netlist_of(name: &str, cell: ancstr_netlist::Subckt) -> Netlist {
    let mut nl = Netlist::new(name);
    nl.add_subckt(cell).expect("single template");
    nl
}

/// A single-ended telescopic-cascode OTA — 11 devices.
pub fn ota_telescopic(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7E1E);
    let w_in = draw_w(&mut rng);
    let w_c = draw_w(&mut rng);
    let cell = CellBuilder::new("ota_tele", ["inp", "inn", "out", "vb1", "vb2", "ib", "vdd", "vss"])
        .class(CircuitClass::Ota)
        .mos("M1", DeviceType::NchLvt, "x1", "inp", "tail", "vss", w_in, 0.15)
        .mos("M2", DeviceType::NchLvt, "x2", "inn", "tail", "vss", w_in, 0.15)
        .mos("M3", DeviceType::NchLvt, "c1", "vb1", "x1", "vss", w_c, 0.15)
        .mos("M4", DeviceType::NchLvt, "out", "vb1", "x2", "vss", w_c, 0.15)
        .mos("M5", DeviceType::Pch, "c1", "vb2", "p1", "vdd", w_c, 0.2)
        .mos("M6", DeviceType::Pch, "out", "vb2", "p2", "vdd", w_c, 0.2)
        .mos("M7", DeviceType::Pch, "p1", "c1", "vdd", "vdd", 2.0 * w_c, 0.3)
        .mos("M8", DeviceType::Pch, "p2", "c1", "vdd", "vdd", 2.0 * w_c, 0.3)
        .mos("M9", DeviceType::Nch, "tail", "ib", "vss", "vss", 3.0, 0.5)
        .mos("M10", DeviceType::Nch, "ib", "ib", "vss", "vss", 1.0, 0.5)
        .cap("CL", "out", "vss", 600e-15)
        .sym("M1", "M2")
        .sym("M3", "M4")
        .sym("M5", "M6")
        .sym("M7", "M8")
        .self_sym("M9")
        .build();
    netlist_of("ota_tele", cell)
}

/// A class-AB push-pull output OTA (Monticelli style, simplified) — 16
/// devices.
pub fn ota_class_ab(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1AB);
    let w_in = draw_w(&mut rng);
    let cell = CellBuilder::new("ota_ab", ["inp", "inn", "out", "ib", "vdd", "vss"])
        .class(CircuitClass::Ota)
        .mos("M1", DeviceType::NchLvt, "a1", "inp", "tail", "vss", w_in, 0.15)
        .mos("M2", DeviceType::NchLvt, "a2", "inn", "tail", "vss", w_in, 0.15)
        .mos("M3", DeviceType::Pch, "a1", "a1", "vdd", "vdd", 2.0, 0.2)
        .mos("M4", DeviceType::Pch, "a2", "a2", "vdd", "vdd", 2.0, 0.2)
        .mos("M5", DeviceType::Pch, "b1", "a1", "vdd", "vdd", 4.0, 0.2)
        .mos("M6", DeviceType::Pch, "b2", "a2", "vdd", "vdd", 4.0, 0.2)
        .mos("M7", DeviceType::Nch, "b1", "b1", "vss", "vss", 2.0, 0.2)
        .mos("M8", DeviceType::Nch, "b2", "b2", "vss", "vss", 2.0, 0.2)
        // Push-pull output pair (p from b2 mirror, n from b1 mirror).
        .mos("Mop", DeviceType::Pch, "out", "a2", "vdd", "vdd", 8.0, 0.15)
        .mos("Mon", DeviceType::Nch, "out", "b1", "vss", "vss", 4.0, 0.15)
        .mos("M9", DeviceType::Nch, "tail", "ib", "vss", "vss", 3.0, 0.5)
        .mos("M10", DeviceType::Nch, "ib", "ib", "vss", "vss", 1.0, 0.5)
        .res("Rz", "out", "z", 1e3)
        .cap("Cc", "z", "a2", 400e-15)
        .cap("CL", "out", "vss", 1e-12)
        .res("Rb", "ib", "vdd", 30e3)
        .sym("M1", "M2")
        .sym("M3", "M4")
        .sym("M5", "M6")
        .sym("M7", "M8")
        .self_sym("M9")
        .build();
    netlist_of("ota_ab", cell)
}

/// An inverter-based (ring-amplifier-style) pseudo-differential OTA —
/// 12 devices.
pub fn ota_inverter_based(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1274);
    let w = draw_w(&mut rng);
    let cell = CellBuilder::new(
        "ota_inv",
        ["inp", "inn", "outp", "outn", "vdd", "vss"],
    )
    .class(CircuitClass::Ota)
    // Two inverter chains, one per side, cross-matched stage by stage.
    .mos("Ma1p", DeviceType::PchLvt, "s1p", "inp", "vdd", "vdd", 2.0 * w, 0.1)
    .mos("Ma1n", DeviceType::NchLvt, "s1p", "inp", "vss", "vss", w, 0.1)
    .mos("Mb1p", DeviceType::PchLvt, "s1n", "inn", "vdd", "vdd", 2.0 * w, 0.1)
    .mos("Mb1n", DeviceType::NchLvt, "s1n", "inn", "vss", "vss", w, 0.1)
    .mos("Ma2p", DeviceType::PchLvt, "outp", "s1p", "vdd", "vdd", 4.0 * w, 0.1)
    .mos("Ma2n", DeviceType::NchLvt, "outp", "s1p", "vss", "vss", 2.0 * w, 0.1)
    .mos("Mb2p", DeviceType::PchLvt, "outn", "s1n", "vdd", "vdd", 4.0 * w, 0.1)
    .mos("Mb2n", DeviceType::NchLvt, "outn", "s1n", "vss", "vss", 2.0 * w, 0.1)
    .cap("C1", "s1p", "outp", 100e-15)
    .cap("C2", "s1n", "outn", 100e-15)
    .cap("CL1", "outp", "vss", 500e-15)
    .cap("CL2", "outn", "vss", 500e-15)
    .sym("Ma1p", "Mb1p")
    .sym("Ma1n", "Mb1n")
    .sym("Ma2p", "Mb2p")
    .sym("Ma2n", "Mb2n")
    .sym("C1", "C2")
    .sym("CL1", "CL2")
    .build();
    netlist_of("ota_inv", cell)
}

/// A triple-tail comparator (three clocked tails, a different dynamic
/// topology from StrongARM or double-tail) — 14 devices.
pub fn comp_triple_tail(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3341);
    let w_in = draw_w(&mut rng);
    let cell = CellBuilder::new(
        "comp_tt",
        ["inp", "inn", "outp", "outn", "clk", "clkb", "vdd", "vss"],
    )
    .class(CircuitClass::Comparator)
    .mos("M1", DeviceType::NchLvt, "d1", "inp", "t1", "vss", w_in, 0.1)
    .mos("M2", DeviceType::NchLvt, "d2", "inn", "t1", "vss", w_in, 0.1)
    .mos("Mt1", DeviceType::Nch, "t1", "clk", "vss", "vss", 2.0, 0.1)
    .mos("M3", DeviceType::PchLvt, "outp", "d1", "t2", "vdd", 2.0, 0.1)
    .mos("M4", DeviceType::PchLvt, "outn", "d2", "t2", "vdd", 2.0, 0.1)
    .mos("Mt2", DeviceType::Pch, "t2", "clkb", "vdd", "vdd", 3.0, 0.1)
    .mos("M5", DeviceType::NchLvt, "outp", "outn", "t3", "vss", 1.5, 0.1)
    .mos("M6", DeviceType::NchLvt, "outn", "outp", "t3", "vss", 1.5, 0.1)
    .mos("Mt3", DeviceType::Nch, "t3", "clkb", "vss", "vss", 2.0, 0.1)
    .mos("Mr1", DeviceType::PchLvt, "d1", "clk", "vdd", "vdd", 1.0, 0.1)
    .mos("Mr2", DeviceType::PchLvt, "d2", "clk", "vdd", "vdd", 1.0, 0.1)
    .mos("Mr3", DeviceType::NchLvt, "outp", "clk", "vss", "vss", 1.0, 0.1)
    .mos("Mr4", DeviceType::NchLvt, "outn", "clk", "vss", "vss", 1.0, 0.1)
    .mos("Mdum", DeviceType::Nch, "vss", "vss", "vss", "vss", 1.0, 0.1)
    .sym("M1", "M2")
    .sym("M3", "M4")
    .sym("M5", "M6")
    .sym("Mr1", "Mr2")
    .sym("Mr3", "Mr4")
    .self_sym("Mt1")
    .self_sym("Mt2")
    .self_sym("Mt3")
    .build();
    netlist_of("comp_tt", cell)
}

/// The variant suite with names.
pub fn variant_benchmarks(seed: u64) -> Vec<(&'static str, Netlist)> {
    vec![
        ("OTA-TELE", ota_telescopic(seed)),
        ("OTA-AB", ota_class_ab(seed)),
        ("OTA-INV", ota_inverter_based(seed)),
        ("COMP-TT", comp_triple_tail(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;

    #[test]
    fn all_variants_elaborate_with_ground_truth() {
        for (name, nl) in variant_benchmarks(9) {
            let flat = FlatCircuit::elaborate(&nl).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!flat.ground_truth().is_empty(), "{name}");
        }
    }

    #[test]
    fn variants_share_classes_with_the_corpus() {
        use ancstr_netlist::CircuitClass;
        let tele = ota_telescopic(1);
        assert_eq!(tele.subckt("ota_tele").unwrap().class, CircuitClass::Ota);
        let tt = comp_triple_tail(1);
        assert_eq!(tt.subckt("comp_tt").unwrap().class, CircuitClass::Comparator);
    }

    #[test]
    fn variants_differ_structurally_from_each_other() {
        let a = FlatCircuit::elaborate(&ota_telescopic(1)).unwrap();
        let b = FlatCircuit::elaborate(&ota_class_ab(1)).unwrap();
        let c = FlatCircuit::elaborate(&ota_inverter_based(1)).unwrap();
        let counts: Vec<usize> = [&a, &b, &c].iter().map(|f| f.devices().len()).collect();
        assert_eq!(counts, vec![11, 16, 12]);
    }

    #[test]
    fn inverter_based_ota_is_fully_cross_matched() {
        let flat = FlatCircuit::elaborate(&ota_inverter_based(5)).unwrap();
        // 6 annotated pairs, all device-level.
        assert_eq!(flat.ground_truth().len(), 6);
    }
}
