//! Six operational-transconductance-amplifier benchmarks, matching the
//! per-circuit device/net statistics of the paper's Table VI (OTA1–OTA6).
//!
//! Each generator draws its device sizes from a seeded RNG: matched
//! pairs share the drawn size (that is what makes them matched), while
//! same-type *unmatched* devices get distinct sizes — the true negatives
//! a sizing-aware detector must reject.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use ancstr_netlist::{CircuitClass, DeviceType, Netlist};

use crate::builder::CellBuilder;

/// Draw a width from a plausible analog set (µm).
fn draw_w(rng: &mut StdRng) -> f64 {
    const CHOICES: [f64; 6] = [1.0, 2.0, 4.0, 6.0, 8.0, 12.0];
    CHOICES[rng.gen_range(0..CHOICES.len())]
}

/// Draw a distinct second width.
fn draw_w_distinct(rng: &mut StdRng, other: f64) -> f64 {
    loop {
        let w = draw_w(rng);
        if (w - other).abs() > 1e-9 {
            return w;
        }
    }
}

fn netlist_of(name: &str, cell: ancstr_netlist::Subckt) -> Netlist {
    let mut nl = Netlist::new(name);
    nl.add_subckt(cell).expect("single template");
    nl
}

/// OTA1: two-stage Miller-compensated OTA — 12 devices.
///
/// Ground truth: the input pair and the mirror load. The three distinct
/// NMOS bias/tail/sink devices are same-type decoys with different
/// sizes.
pub fn ota1(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x07A1);
    let w_in = draw_w(&mut rng);
    let w_ld = draw_w(&mut rng);
    let w_tail = draw_w(&mut rng);
    let w_sink = draw_w_distinct(&mut rng, w_tail);
    let w_bias = draw_w_distinct(&mut rng, w_tail);
    let cell = CellBuilder::new("ota1", ["inp", "inn", "out", "ibias", "vdd", "vss"])
        .class(CircuitClass::Ota)
        .mos("M1", DeviceType::NchLvt, "x1", "inp", "tail", "vss", w_in, 0.2)
        .mos("M2", DeviceType::NchLvt, "x2", "inn", "tail", "vss", w_in, 0.2)
        .mos("M3", DeviceType::Pch, "x1", "x1", "vdd", "vdd", w_ld, 0.2)
        .mos("M4", DeviceType::Pch, "x2", "x1", "vdd", "vdd", w_ld, 0.2)
        .mos("M5", DeviceType::Nch, "tail", "ibias", "vss", "vss", w_tail, 0.5)
        .mos("M6", DeviceType::Pch, "out", "x2", "vdd", "vdd", 2.0 * w_ld, 0.2)
        .mos("M7", DeviceType::Nch, "out", "ibias", "vss", "vss", w_sink, 0.5)
        .mos("M8", DeviceType::Nch, "ibias", "ibias", "vss", "vss", w_bias, 0.5)
        .res("Rz", "x2", "zc", 2.0e3)
        .cap("Cc", "zc", "out", 500e-15)
        .cap("CL", "out", "vss", 1e-12)
        .res("Rb", "ibias", "vdd", 20e3)
        .sym("M1", "M2")
        .sym("M3", "M4")
        .self_sym("M5")
        .build();
    netlist_of("ota1", cell)
}

/// OTA2: fully differential folded-cascode with resistive CMFB — 20
/// devices.
pub fn ota2(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x07A2);
    let w_in = draw_w(&mut rng);
    let w_src = draw_w(&mut rng);
    let w_casc = draw_w(&mut rng);
    let w_pcasc = draw_w(&mut rng);
    let w_psrc = draw_w(&mut rng);
    let cell = CellBuilder::new(
        "ota2",
        ["inp", "inn", "outp", "outn", "vcm", "ibias", "vdd", "vss"],
    )
    .class(CircuitClass::Ota)
    .mos("M0", DeviceType::PchLvt, "tail", "ibias", "vdd", "vdd", 2.0 * w_in, 0.3)
    .mos("M1", DeviceType::PchLvt, "f1", "inp", "tail", "vdd", w_in, 0.2)
    .mos("M2", DeviceType::PchLvt, "f2", "inn", "tail", "vdd", w_in, 0.2)
    .mos("M3", DeviceType::Nch, "f1", "ibias", "vss", "vss", w_src, 0.3)
    .mos("M4", DeviceType::Nch, "f2", "ibias", "vss", "vss", w_src, 0.3)
    .mos("M5", DeviceType::NchLvt, "outn", "bcn", "f1", "vss", w_casc, 0.15)
    .mos("M6", DeviceType::NchLvt, "outp", "bcn", "f2", "vss", w_casc, 0.15)
    .mos("M7", DeviceType::PchLvt, "outn", "bcp", "s1", "vdd", w_pcasc, 0.15)
    .mos("M8", DeviceType::PchLvt, "outp", "bcp", "s2", "vdd", w_pcasc, 0.15)
    .mos("M9", DeviceType::Pch, "s1", "cmfb", "vdd", "vdd", w_psrc, 0.3)
    .mos("M10", DeviceType::Pch, "s2", "cmfb", "vdd", "vdd", w_psrc, 0.3)
    .mos("M11", DeviceType::Nch, "cmfb", "sense", "vss", "vss", 2.0, 0.3)
    .mos("M12", DeviceType::Nch, "cmfb", "vcm", "vss", "vss", 2.0, 0.3)
    .mos("M13", DeviceType::Pch, "cmfb", "ibias", "vdd", "vdd", 1.0, 0.3)
    .res("Rc1", "outp", "sense", 100e3)
    .res("Rc2", "outn", "sense", 100e3)
    .cap("Cc1", "outp", "sense", 50e-15)
    .cap("Cc2", "outn", "sense", 50e-15)
    .cap("CL1", "outp", "vss", 400e-15)
    // decoy: CL2 deliberately equals CL1 (matched loads).
    .cap("CL2", "outn", "vss", 400e-15)
    .sym("M1", "M2")
    .sym("M3", "M4")
    .sym("M5", "M6")
    .sym("M7", "M8")
    .sym("M9", "M10")
    .sym("Rc1", "Rc2")
    .sym("Cc1", "Cc2")
    .sym("CL1", "CL2")
    .self_sym("M0")
    .build();
    netlist_of("ota2", cell)
}

/// OTA3: symmetrical current-mirror OTA — 12 devices.
pub fn ota3(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x07A3);
    let w_in = draw_w(&mut rng);
    let w_ld = draw_w(&mut rng);
    let w_mir = draw_w(&mut rng);
    let w_bot = draw_w(&mut rng);
    let cell = CellBuilder::new("ota3", ["inp", "inn", "out", "ibias", "vdd", "vss"])
        .class(CircuitClass::Ota)
        .mos("M1", DeviceType::NchLvt, "a1", "inp", "tail", "vss", w_in, 0.2)
        .mos("M2", DeviceType::NchLvt, "a2", "inn", "tail", "vss", w_in, 0.2)
        .mos("M3", DeviceType::Pch, "a1", "a1", "vdd", "vdd", w_ld, 0.2)
        .mos("M4", DeviceType::Pch, "a2", "a2", "vdd", "vdd", w_ld, 0.2)
        .mos("M5", DeviceType::Nch, "tail", "ibias", "vss", "vss", 2.0, 0.5)
        .mos("M6", DeviceType::Pch, "mid", "a1", "vdd", "vdd", w_mir, 0.2)
        .mos("M7", DeviceType::Pch, "out", "a2", "vdd", "vdd", w_mir, 0.2)
        .mos("M8", DeviceType::Nch, "mid", "mid", "vss", "vss", w_bot, 0.3)
        .mos("M9", DeviceType::Nch, "out", "mid", "vss", "vss", w_bot, 0.3)
        .mos("M10", DeviceType::Nch, "ibias", "ibias", "vss", "vss", 1.0, 0.5)
        .cap("CL", "out", "vss", 800e-15)
        .res("Rb", "ibias", "vdd", 30e3)
        .sym("M1", "M2")
        .sym("M3", "M4")
        .sym("M6", "M7")
        .sym("M8", "M9")
        .self_sym("M5")
        .build();
    netlist_of("ota3", cell)
}

/// OTA4: two-stage fully differential amplifier with first-stage folded
/// cascode, second-stage class-A outputs, two CMFB loops and a bias
/// ladder — 36 devices.
pub fn ota4(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x07A4);
    let w_in = draw_w(&mut rng);
    let w_src = draw_w(&mut rng);
    let w_casc = draw_w(&mut rng);
    let w_pc = draw_w(&mut rng);
    let w_ps = draw_w(&mut rng);
    let w_gm2 = draw_w(&mut rng);
    let w_sk2 = draw_w(&mut rng);
    let cell = CellBuilder::new(
        "ota4",
        ["inp", "inn", "outp", "outn", "vcm", "ibias", "vdd", "vss"],
    )
    .class(CircuitClass::Ota)
    // Stage 1: folded cascode (NMOS input).
    .mos("M0", DeviceType::Nch, "tail", "bn1", "vss", "vss", 2.0 * w_in, 0.3)
    .mos("M1", DeviceType::NchLvt, "f1", "inp", "tail", "vss", w_in, 0.15)
    .mos("M2", DeviceType::NchLvt, "f2", "inn", "tail", "vss", w_in, 0.15)
    .mos("M3", DeviceType::Pch, "f1", "bp1", "vdd", "vdd", w_src, 0.3)
    .mos("M4", DeviceType::Pch, "f2", "bp1", "vdd", "vdd", w_src, 0.3)
    .mos("M5", DeviceType::PchLvt, "o1n", "bp2", "f1", "vdd", w_pc, 0.15)
    .mos("M6", DeviceType::PchLvt, "o1p", "bp2", "f2", "vdd", w_pc, 0.15)
    .mos("M7", DeviceType::NchLvt, "o1n", "bn2", "g1", "vss", w_casc, 0.15)
    .mos("M8", DeviceType::NchLvt, "o1p", "bn2", "g2", "vss", w_casc, 0.15)
    .mos("M9", DeviceType::Nch, "g1", "cm1", "vss", "vss", w_ps, 0.3)
    .mos("M10", DeviceType::Nch, "g2", "cm1", "vss", "vss", w_ps, 0.3)
    // CMFB 1 (sensing stage-1 outputs).
    .mos("M11", DeviceType::Nch, "cm1", "sns1", "vss", "vss", 1.5, 0.3)
    .mos("M12", DeviceType::Nch, "cm1", "vcm", "vss", "vss", 1.5, 0.3)
    .mos("M13", DeviceType::Pch, "cm1", "bp1", "vdd", "vdd", 1.0, 0.3)
    // Stage 2 (class A).
    .mos("M15", DeviceType::PchLvt, "outn", "o1n", "vdd", "vdd", w_gm2, 0.1)
    .mos("M16", DeviceType::PchLvt, "outp", "o1p", "vdd", "vdd", w_gm2, 0.1)
    .mos("M17", DeviceType::Nch, "outn", "cm2", "vss", "vss", w_sk2, 0.2)
    .mos("M18", DeviceType::Nch, "outp", "cm2", "vss", "vss", w_sk2, 0.2)
    // CMFB 2.
    .mos("M19", DeviceType::Nch, "cm2", "sns2", "vss", "vss", 1.5, 0.3)
    .mos("M20", DeviceType::Nch, "cm2", "vcm", "vss", "vss", 1.5, 0.3)
    .mos("M21", DeviceType::Pch, "cm2", "bp1", "vdd", "vdd", 1.0, 0.3)
    // Bias ladder.
    .mos("M22", DeviceType::Nch, "bn1", "ibias", "vss", "vss", 1.0, 0.5)
    .mos("M23", DeviceType::Nch, "bn2", "bn2", "bn1", "vss", 1.0, 0.5)
    .mos("M24", DeviceType::Pch, "bp1", "bp1", "vdd", "vdd", 1.0, 0.5)
    .mos("M25", DeviceType::Pch, "bp2", "bp2", "bp1", "vdd", 1.0, 0.5)
    .mos("M26", DeviceType::Nch, "ibias", "ibias", "vss", "vss", 1.0, 0.5)
    // Compensation and loads.
    .res("Rz1", "o1n", "z1", 1.5e3)
    .res("Rz2", "o1p", "z2", 1.5e3)
    .cap("Cc1", "z1", "outn", 300e-15)
    .cap("Cc2", "z2", "outp", 300e-15)
    .res("Rs1", "outp", "sns1", 200e3)
    .res("Rs2", "outn", "sns1", 200e3)
    .res("Rs3", "outp", "sns2", 150e3)
    .res("Rs4", "outn", "sns2", 150e3)
    .cap("CL1", "outp", "vss", 500e-15)
    .cap("CL2", "outn", "vss", 500e-15)
    .sym("M1", "M2")
    .sym("M3", "M4")
    .sym("M5", "M6")
    .sym("M7", "M8")
    .sym("M9", "M10")
    .sym("M15", "M16")
    .sym("M17", "M18")
    .sym("Rz1", "Rz2")
    .sym("Cc1", "Cc2")
    .sym("Rs1", "Rs2")
    .sym("Rs3", "Rs4")
    .sym("CL1", "CL2")
    .self_sym("M0")
    .build();
    netlist_of("ota4", cell)
}

/// OTA5: telescopic fully differential OTA with unit-capacitor load
/// arrays and a parallel bias resistor bank — 38 devices on few nets.
pub fn ota5(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x07A5);
    let w_in = draw_w(&mut rng);
    let w_casc = draw_w(&mut rng);
    let w_ld = draw_w(&mut rng);
    let mut b = CellBuilder::new(
        "ota5",
        ["inp", "inn", "outp", "outn", "ibias", "vdd", "vss"],
    )
    .class(CircuitClass::Ota)
    .mos("M1", DeviceType::NchLvt, "x1", "inp", "tail", "vss", w_in, 0.15)
    .mos("M2", DeviceType::NchLvt, "x2", "inn", "tail", "vss", w_in, 0.15)
    .mos("M3", DeviceType::NchLvt, "outn", "cn", "x1", "vss", w_casc, 0.15)
    .mos("M4", DeviceType::NchLvt, "outp", "cn", "x2", "vss", w_casc, 0.15)
    .mos("M5", DeviceType::Pch, "outn", "cp", "y1", "vdd", w_casc, 0.2)
    .mos("M6", DeviceType::Pch, "outp", "cp", "y2", "vdd", w_casc, 0.2)
    .mos("M7", DeviceType::Pch, "y1", "cm", "vdd", "vdd", w_ld, 0.3)
    .mos("M8", DeviceType::Pch, "y2", "cm", "vdd", "vdd", w_ld, 0.3)
    .mos("M9", DeviceType::Nch, "tail", "ibias", "vss", "vss", 3.0, 0.5)
    .mos("M10", DeviceType::Nch, "ibias", "ibias", "vss", "vss", 1.0, 0.5);
    // Unit-capacitor load arrays: 10 units per side, all matched.
    let mut group: Vec<String> = Vec::new();
    for i in 0..10 {
        let na = format!("Ca{i}");
        let nb = format!("Cb{i}");
        b = b.cfmom(&na, "outp", "vss", 3.0, 3.0, 4);
        b = b.cfmom(&nb, "outn", "vss", 3.0, 3.0, 4);
        group.push(na);
        group.push(nb);
    }
    // Parallel bias resistor bank (8 units on shared nets).
    let mut rgroup: Vec<String> = Vec::new();
    for i in 0..8 {
        let n = format!("Rb{i}");
        b = b.res(&n, "cm", "vdd", 80e3);
        rgroup.push(n);
    }
    let group_refs: Vec<&str> = group.iter().map(String::as_str).collect();
    let rgroup_refs: Vec<&str> = rgroup.iter().map(String::as_str).collect();
    let cell = b
        .sym("M1", "M2")
        .sym("M3", "M4")
        .sym("M5", "M6")
        .sym("M7", "M8")
        .sym_group(&group_refs)
        .sym_group(&rgroup_refs)
        .self_sym("M9")
        .build();
    netlist_of("ota5", cell)
}

/// OTA6: compact 5T OTA whose output stage is a bank of paralleled
/// drivers — 15 devices on 9 nets.
pub fn ota6(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x07A6);
    let w_in = draw_w(&mut rng);
    let w_ld = draw_w(&mut rng);
    let mut b = CellBuilder::new("ota6", ["inp", "inn", "out", "ibias", "vdd", "vss"])
        .class(CircuitClass::Ota)
        .mos("M1", DeviceType::NchLvt, "x1", "inp", "tail", "vss", w_in, 0.2)
        .mos("M2", DeviceType::NchLvt, "x2", "inn", "tail", "vss", w_in, 0.2)
        .mos("M3", DeviceType::Pch, "x1", "x1", "vdd", "vdd", w_ld, 0.2)
        .mos("M4", DeviceType::Pch, "x2", "x1", "vdd", "vdd", w_ld, 0.2)
        .mos("M5", DeviceType::Nch, "tail", "ibias", "vss", "vss", 2.0, 0.5);
    // Paralleled output drivers: 4 PMOS + 4 NMOS unit devices.
    let mut pgroup = Vec::new();
    let mut ngroup = Vec::new();
    for i in 0..4 {
        let np = format!("MPo{i}");
        let nn = format!("MNo{i}");
        b = b.mos(&np, DeviceType::Pch, "out", "x2", "vdd", "vdd", 6.0, 0.1);
        b = b.mos(&nn, DeviceType::Nch, "out", "ibias", "vss", "vss", 3.0, 0.2);
        pgroup.push(np);
        ngroup.push(nn);
    }
    let pg: Vec<&str> = pgroup.iter().map(String::as_str).collect();
    let ng: Vec<&str> = ngroup.iter().map(String::as_str).collect();
    let cell = b
        .cap("CL", "out", "vss", 1e-12)
        .res("Rb", "ibias", "vdd", 25e3)
        .sym("M1", "M2")
        .sym("M3", "M4")
        .sym_group(&pg)
        .sym_group(&ng)
        .build();
    netlist_of("ota6", cell)
}

/// The complete OTA suite, in Table VI order.
pub fn ota_suite(seed: u64) -> Vec<Netlist> {
    vec![
        ota1(seed),
        ota2(seed),
        ota3(seed),
        ota4(seed),
        ota5(seed),
        ota6(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;

    #[test]
    fn device_counts_match_table6() {
        let expect = [12usize, 20, 36, 38, 15];
        let otas = [ota1(1), ota2(1), ota4(1), ota5(1), ota6(1)];
        for (nl, &n) in otas.iter().zip(&expect) {
            let flat = FlatCircuit::elaborate(nl).unwrap();
            assert_eq!(flat.devices().len(), n, "{}", nl.top());
        }
        assert_eq!(
            FlatCircuit::elaborate(&ota3(1)).unwrap().devices().len(),
            12
        );
    }

    #[test]
    fn suite_totals_match_table4() {
        // Table IV: OTA row = 133 devices over 6 circuits.
        let total: usize = ota_suite(1)
            .iter()
            .map(|nl| FlatCircuit::elaborate(nl).unwrap().devices().len())
            .sum();
        assert_eq!(total, 133);
    }

    #[test]
    fn matched_pairs_share_sizes() {
        let nl = ota1(7);
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        for c in flat.ground_truth().iter() {
            let a = flat.node(c.pair.lo()).device_index().unwrap();
            let b = flat.node(c.pair.hi()).device_index().unwrap();
            let (da, db) = (&flat.devices()[a], &flat.devices()[b]);
            assert_eq!(da.dtype, db.dtype);
            assert!((da.geometry.width - db.geometry.width).abs() < 1e-12);
            assert!((da.geometry.length - db.geometry.length).abs() < 1e-12);
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        assert_eq!(ota2(5), ota2(5));
        assert_ne!(ota2(5), ota2(6));
    }

    #[test]
    fn ota5_has_group_ground_truth() {
        let flat = FlatCircuit::elaborate(&ota5(1)).unwrap();
        // 20-cap group → C(20,2) = 190 pairs; 8-res group → 28; plus 5
        // MOS pairs (wait: 4 MOS pairs) = 4.
        assert_eq!(flat.ground_truth().len(), 190 + 28 + 4);
    }

    #[test]
    fn decoys_have_distinct_sizes() {
        let nl = ota1(3);
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        let w = |name: &str| {
            flat.devices()
                .iter()
                .find(|d| d.path.ends_with(name))
                .unwrap()
                .geometry
                .width
        };
        // Tail vs sink vs bias diode: same type, intentionally different.
        assert!((w("M5") - w("M7")).abs() > 1e-9);
        assert!((w("M5") - w("M8")).abs() > 1e-9);
    }
}
