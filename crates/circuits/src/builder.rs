//! A small fluent builder for subcircuit templates, so the generators
//! read like schematics.

use ancstr_netlist::{
    CircuitClass, Device, DeviceType, Geometry, Instance, Subckt,
};

/// Fluent construction of a [`Subckt`].
///
/// Element names must be unique; the builder panics on duplicates since
/// generators are static code (a duplicate is a bug in the generator,
/// not bad input).
///
/// # Example
///
/// ```
/// use ancstr_circuits::builder::CellBuilder;
/// use ancstr_netlist::{CircuitClass, DeviceType};
///
/// let inv = CellBuilder::new("inv", ["in", "out", "vdd", "vss"])
///     .class(CircuitClass::Inverter)
///     .mos("Mp", DeviceType::PchLvt, "out", "in", "vdd", "vdd", 2.0, 0.1)
///     .mos("Mn", DeviceType::NchLvt, "out", "in", "vss", "vss", 1.0, 0.1)
///     .build();
/// assert_eq!(inv.devices().count(), 2);
/// ```
#[derive(Debug)]
pub struct CellBuilder {
    sub: Subckt,
}

impl CellBuilder {
    /// Start a template with the given ports.
    pub fn new<I, S>(name: impl Into<String>, ports: I) -> CellBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        CellBuilder { sub: Subckt::new(name, ports) }
    }

    /// Set the functional class.
    #[must_use]
    pub fn class(mut self, class: CircuitClass) -> CellBuilder {
        self.sub.class = class;
        self
    }

    /// Add a MOS transistor (`d g s b`, W/L in µm).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate element name.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // mirrors the SPICE card order
    pub fn mos(
        mut self,
        name: &str,
        dtype: DeviceType,
        d: &str,
        g: &str,
        s: &str,
        b: &str,
        w: f64,
        l: f64,
    ) -> CellBuilder {
        assert!(dtype.is_mos(), "mos() requires a MOS device type");
        let mut dev = Device::new(
            name,
            dtype,
            vec![d.into(), g.into(), s.into()],
            Geometry::new(l, w),
        )
        .expect("3 pins for MOS");
        dev.bulk = Some(b.into());
        self.sub.push_device(dev).expect("generator element names are unique");
        self
    }

    /// Add a resistor with a value (Ω) and a value-derived geometry.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate element name.
    #[must_use]
    pub fn res(mut self, name: &str, a: &str, b: &str, ohms: f64) -> CellBuilder {
        let mut dev = Device::new(
            name,
            DeviceType::Resistor,
            vec![a.into(), b.into()],
            Geometry::from_value(ohms, 1e3),
        )
        .expect("2 pins for resistor");
        dev.value = Some(ohms);
        self.sub.push_device(dev).expect("generator element names are unique");
        self
    }

    /// Add a capacitor with a value (F).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate element name.
    #[must_use]
    pub fn cap(mut self, name: &str, a: &str, b: &str, farads: f64) -> CellBuilder {
        let mut dev = Device::new(
            name,
            DeviceType::Capacitor,
            vec![a.into(), b.into()],
            Geometry::from_value(farads, 1e-15),
        )
        .expect("2 pins for capacitor");
        dev.value = Some(farads);
        self.sub.push_device(dev).expect("generator element names are unique");
        self
    }

    /// Add a finger-MOM capacitor with explicit geometry and layer count.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate element name.
    #[must_use]
    pub fn cfmom(
        mut self,
        name: &str,
        a: &str,
        b: &str,
        w: f64,
        l: f64,
        layers: u32,
    ) -> CellBuilder {
        let dev = Device::new(
            name,
            DeviceType::CfmomCapacitor,
            vec![a.into(), b.into()],
            Geometry::with_layers(l, w, layers),
        )
        .expect("2 pins for capacitor");
        self.sub.push_device(dev).expect("generator element names are unique");
        self
    }

    /// Add a child instance.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate element name.
    #[must_use]
    pub fn inst<I, S>(mut self, name: &str, subckt: &str, connections: I) -> CellBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.sub
            .push_instance(Instance {
                name: name.into(),
                subckt: subckt.into(),
                connections: connections.into_iter().map(Into::into).collect(),
            })
            .expect("generator element names are unique");
        self
    }

    /// Annotate a designer symmetry pair (ground truth).
    #[must_use]
    pub fn sym(mut self, a: &str, b: &str) -> CellBuilder {
        self.sub.annotate_symmetry(a, b);
        self
    }

    /// Annotate a matched *group* (e.g. a unit-capacitor array): every
    /// unordered pair within the group becomes a symmetry annotation,
    /// which is how designers constrain common-centroid arrays.
    #[must_use]
    pub fn sym_group(mut self, names: &[&str]) -> CellBuilder {
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                self.sub.annotate_symmetry(names[i], names[j]);
            }
        }
        self
    }

    /// Annotate a self-symmetric element.
    #[must_use]
    pub fn self_sym(mut self, a: &str) -> CellBuilder {
        self.sub.self_sym.push(a.into());
        self
    }

    /// Clone the template in its current (possibly unfinished) state —
    /// used by the system assemblers to probe device counts before
    /// adding fill banks.
    pub fn clone_subckt(&self) -> Subckt {
        self.sub.clone()
    }

    /// Finish, validating the annotations.
    ///
    /// # Panics
    ///
    /// Panics if an annotation references a missing element (generator
    /// bug).
    pub fn build(self) -> Subckt {
        self.sub
            .validate_annotations()
            .expect("generator annotations reference real elements");
        self.sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_valid_cell() {
        let cell = CellBuilder::new("dp", ["inp", "inn", "o1", "o2", "tail", "vss"])
            .class(CircuitClass::Ota)
            .mos("M1", DeviceType::NchLvt, "o1", "inp", "tail", "vss", 4.0, 0.2)
            .mos("M2", DeviceType::NchLvt, "o2", "inn", "tail", "vss", 4.0, 0.2)
            .sym("M1", "M2")
            .build();
        assert_eq!(cell.devices().count(), 2);
        assert_eq!(cell.sym_pairs.len(), 1);
        assert_eq!(cell.class, CircuitClass::Ota);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_names_panic() {
        let _ = CellBuilder::new("x", ["a"])
            .res("R1", "a", "a2", 1e3)
            .res("R1", "a", "a3", 1e3);
    }

    #[test]
    #[should_panic(expected = "real elements")]
    fn bad_annotation_panics() {
        let _ = CellBuilder::new("x", ["a"])
            .res("R1", "a", "b", 1e3)
            .sym("R1", "Rmissing")
            .build();
    }

    #[test]
    fn passives_carry_values_and_geometry() {
        let cell = CellBuilder::new("rc", ["a", "b"])
            .res("R1", "a", "m", 10e3)
            .cap("C1", "m", "b", 50e-15)
            .cfmom("C2", "m", "b", 4.0, 4.0, 5)
            .build();
        let r = cell.element("R1").unwrap().as_device().unwrap();
        assert_eq!(r.value, Some(10e3));
        let c2 = cell.element("C2").unwrap().as_device().unwrap();
        assert_eq!(c2.geometry.metal_layers, 5);
    }
}
