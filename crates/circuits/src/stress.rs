//! Scale-sweep stress corpus: flattened multi-channel ADC systems with
//! exact hierarchical ground truth, sized to a requested device count.
//!
//! The Table III benchmarks top out at 1233 devices; production SoCs
//! carry hundreds of thousands. [`stress_system`] assembles a
//! time-interleaved ADC array from the same structural motifs — a
//! per-channel CT ΔΣ front end (bootstrapped samplers, a matched
//! 4-integrator bank, feedback-DAC slice pairs, a comparator, a P/N
//! cap-DAC pair, matched passives) replicated until the flattened
//! design hits the requested device budget, with the remainder filled
//! by matched decap banks exactly like the ADC assemblers.
//!
//! Every constraint is annotated at construction time, so the ground
//! truth is hierarchically exact at any scale: per-pair device symmetry
//! inside leaf cells, the integrator-bank group (an *array* once
//! `ancstr-hier` promotes it), block-level P/N pairs, and adjacent
//! channel pairs at the top. The generator is a pure function of
//! `(devices, seed)` — two calls with the same arguments produce
//! byte-identical SPICE, which is what lets `ancstr bench --stress` and
//! the CI stress-smoke job pin wall times against a reproducible input.

use ancstr_netlist::{CircuitClass, Netlist, Subckt};

use crate::adc::{
    bias_cell, bootstrap_cell, finish_with_fill, import_netlist, integrator_cell,
    template_device_count,
};
use crate::builder::CellBuilder;
use crate::comparator;
use crate::dac::{self, CURRENT_DAC};
use crate::ota;

/// One time-interleaved channel: samplers, a matched integrator bank,
/// feedback DACs, quantizer, and a differential cap-DAC pair.
fn channel_cell() -> Subckt {
    let mut b = CellBuilder::new(
        "channel",
        ["inp", "inn", "d0", "d1", "d2", "ck", "vref", "ibias", "vcm", "vdd", "vss"],
    )
    .class(CircuitClass::Custom("channel".into()))
    .inst("Xbias", "biasgen", ["ibias", "vb1", "vb2", "vbn", "vdd", "vss"])
    // Bootstrapped sampling switches (matched pair).
    .inst("Xswp", "bootsw", ["inp", "sip", "ck", "ckb", "vdd", "vss"])
    .inst("Xswn", "bootsw", ["inn", "sin", "ck", "ckb", "vdd", "vss"]);
    // A matched 4-integrator bank: four instances of one layout-matched
    // template, annotated as a group — the canonical *block array* that
    // ancstr-hier promotes to an ArrayConstraint.
    let mut prev = ("sip".to_owned(), "sin".to_owned());
    let mut bank = Vec::new();
    for i in 0..4 {
        let name = format!("Xint{i}");
        let (op, on) = (format!("a{i}p"), format!("a{i}n"));
        b = b.inst(
            &name,
            "integ_s",
            [
                prev.0.clone(),
                prev.1.clone(),
                op.clone(),
                on.clone(),
                "vcm".to_owned(),
                "vb1".to_owned(),
                "vdd".to_owned(),
                "vss".to_owned(),
            ],
        );
        prev = (op, on);
        bank.push(name);
    }
    let bank_refs: Vec<&str> = bank.iter().map(String::as_str).collect();
    b.inst("Xdaca", CURRENT_DAC, ["d0", "d1", "sip", "sin", "vb1", "vb2", "vdd"])
        .inst("Xdacb", CURRENT_DAC, ["d1", "d0", "sin", "sip", "vb1", "vb2", "vdd"])
        .inst("Xq", "comp1", ["a3p", "a3n", "q", "qb", "ck", "vbn", "vdd", "vss"])
        // Differential cap DACs: P and N banks from one template.
        .inst("Xcdp", "capdac3", ["d0", "d1", "d2", "topp", "vref", "vdd", "vss"])
        .inst("Xcdn", "capdac3", ["d0", "d1", "d2", "topn", "vref", "vdd", "vss"])
        // Matched feedforward passives.
        .res("Rf1", "inp", "a3p", 45e3)
        .res("Rf2", "inn", "a3n", 45e3)
        .cap("Cf1", "inp", "a3p", 90e-15)
        .cap("Cf2", "inn", "a3n", 90e-15)
        .sym_group(&bank_refs)
        .sym("Xswp", "Xswn")
        .sym("Xdaca", "Xdacb")
        .sym("Xcdp", "Xcdn")
        .sym("Rf1", "Rf2")
        .sym("Cf1", "Cf2")
        .build()
}

/// Install the cell library one stress system needs, with `seed`
/// perturbing drawn sizes so distinct seeds yield distinct (but equally
/// well-formed) corpora.
fn stress_library(nl: &mut Netlist, seed: u64) {
    let r_kohm = 8.0 + (seed % 5) as f64 * 2.0;
    let c_pf = 0.5 + (seed % 3) as f64 * 0.25;
    import_netlist(nl, &ota::ota4(seed));
    import_netlist(nl, &comparator::comp1(seed.wrapping_add(7)));
    nl.add_subckt(dac::current_dac_cell(3.0 + (seed % 4) as f64)).expect("fresh");
    nl.add_subckt(dac::cap_dac_cell("capdac3", 3)).expect("fresh");
    nl.add_subckt(bias_cell()).expect("fresh");
    nl.add_subckt(bootstrap_cell()).expect("fresh");
    nl.add_subckt(integrator_cell("integ_s", "ota4", r_kohm, c_pf)).expect("fresh");
    nl.add_subckt(channel_cell()).expect("fresh");
}

/// The smallest `devices` value [`stress_system`] accepts: one channel
/// (the generator replicates whole channels and decap-fills the rest).
pub fn min_stress_devices() -> usize {
    let mut nl = Netlist::new("probe");
    stress_library(&mut nl, 0);
    template_device_count(&nl, "channel")
}

/// Build a time-interleaved ADC array that flattens to exactly
/// `devices` primitive devices, deterministically in `(devices, seed)`.
///
/// Channels are replicated `devices / per_channel` times; adjacent
/// channels are annotated as matched pairs (interleaved lanes share a
/// layout track); the sub-channel remainder is filled with matched
/// decap banks, mirroring the ADC1–5 assemblers.
///
/// # Panics
///
/// Panics when `devices` is smaller than one channel (a few hundred
/// devices) — the stress corpus starts where the Table III benchmarks
/// leave off.
pub fn stress_system(devices: usize, seed: u64) -> Netlist {
    let mut nl = Netlist::new("stress");
    stress_library(&mut nl, seed);
    let per_channel = template_device_count(&nl, "channel");
    assert!(
        devices >= per_channel,
        "stress system needs at least {per_channel} devices, asked for {devices}"
    );
    let channels = devices / per_channel;

    let mut top = CellBuilder::new(
        "stress",
        ["vinp", "vinn", "clk", "vref", "ibias", "vcm", "vdd", "vss"],
    )
    .class(CircuitClass::Custom("adc_array".into()));
    let names: Vec<String> = (0..channels).map(|i| format!("Xch{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        top = top.inst(
            name,
            "channel",
            [
                "vinp".to_owned(),
                "vinn".to_owned(),
                format!("c{i}d0"),
                format!("c{i}d1"),
                format!("c{i}d2"),
                "clk".to_owned(),
                "vref".to_owned(),
                "ibias".to_owned(),
                "vcm".to_owned(),
                "vdd".to_owned(),
                "vss".to_owned(),
            ],
        );
    }
    for pair in names.chunks(2) {
        if let [a, b] = pair {
            top = top.sym(a, b);
        }
    }
    finish_with_fill(nl, top, "stress", devices)
}

/// A bank of `units` identical active-RC integrators annotated as one
/// matched group — the minimal fixture whose ground truth is a single
/// block array (used by the hierarchical extraction P/R tests).
pub fn integrator_bank(units: usize, seed: u64) -> Netlist {
    assert!(units >= 2, "a bank needs at least two units");
    let mut nl = Netlist::new("integ_bank");
    import_netlist(&mut nl, &ota::ota4(seed));
    nl.add_subckt(integrator_cell("integ_u", "ota4", 12.0, 1.0)).expect("fresh");
    let mut top = CellBuilder::new(
        "integ_bank",
        ["inp", "inn", "vcm", "ibias", "vdd", "vss"],
    )
    .class(CircuitClass::Custom("bank".into()));
    let names: Vec<String> = (0..units).map(|i| format!("Xu{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        top = top.inst(
            name,
            "integ_u",
            [
                "inp".to_owned(),
                "inn".to_owned(),
                format!("o{i}p"),
                format!("o{i}n"),
                "vcm".to_owned(),
                "ibias".to_owned(),
                "vdd".to_owned(),
                "vss".to_owned(),
            ],
        );
    }
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    top = top.sym_group(&refs);
    nl.add_subckt(top.build()).expect("fresh top name");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;
    use ancstr_netlist::write::write_spice;
    use ancstr_netlist::SymmetryKind;

    #[test]
    fn hits_the_requested_device_count_exactly() {
        for devices in [1000usize, 4000] {
            let flat = FlatCircuit::elaborate(&stress_system(devices, 3)).unwrap();
            assert_eq!(flat.devices().len(), devices);
        }
    }

    #[test]
    fn same_arguments_give_byte_identical_spice() {
        let a = write_spice(&stress_system(2000, 9));
        let b = write_spice(&stress_system(2000, 9));
        assert_eq!(a, b);
        let c = write_spice(&stress_system(2000, 10));
        assert_ne!(a, c, "seed must perturb the corpus");
    }

    #[test]
    fn ground_truth_spans_all_hierarchy_levels() {
        let flat = FlatCircuit::elaborate(&stress_system(1500, 1)).unwrap();
        let gt = flat.ground_truth();
        // Top level: adjacent channels are a matched block pair.
        let a = flat.node_by_path("stress/Xch0").unwrap().id;
        let b = flat.node_by_path("stress/Xch1").unwrap().id;
        assert_eq!(gt.get(a, b).unwrap().kind, SymmetryKind::System);
        // Channel level: the integrator bank pairs up.
        let i0 = flat.node_by_path("stress/Xch0/Xint0").unwrap().id;
        let i3 = flat.node_by_path("stress/Xch0/Xint3").unwrap().id;
        assert_eq!(gt.get(i0, i3).unwrap().kind, SymmetryKind::System);
        // Leaf level: device pairs inside the integrator template.
        let r1 = flat.node_by_path("stress/Xch0/Xint0/Rin1").unwrap().id;
        let r2 = flat.node_by_path("stress/Xch0/Xint0/Rin2").unwrap().id;
        assert!(gt.get(r1, r2).is_some());
    }

    #[test]
    fn round_trips_through_spice() {
        use ancstr_netlist::parse::parse_spice;
        let nl = stress_system(1200, 5);
        let text = write_spice(&nl);
        let back = parse_spice(&text).expect("generated corpus parses back");
        let f1 = FlatCircuit::elaborate(&nl).unwrap();
        let f2 = FlatCircuit::elaborate(&back).unwrap();
        assert_eq!(f1.devices().len(), f2.devices().len());
        assert_eq!(f1.ground_truth().len(), f2.ground_truth().len());
    }

    #[test]
    fn integrator_bank_ground_truth_is_one_full_group() {
        let flat = FlatCircuit::elaborate(&integrator_bank(5, 2)).unwrap();
        let ids: Vec<_> = (0..5)
            .map(|i| flat.node_by_path(&format!("integ_bank/Xu{i}")).unwrap().id)
            .collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert!(
                    flat.ground_truth().contains_pair(ids[i], ids[j]),
                    "Xu{i}/Xu{j} missing from the bank group"
                );
            }
        }
    }
}
