//! The five large-scale ADC benchmarks of Table III:
//!
//! | Benchmark | Architecture            | paper #Devices |
//! |-----------|-------------------------|----------------|
//! | ADC1      | 2nd-order CT ΔΣ         | 285            |
//! | ADC2      | 3rd-order CT ΔΣ         | 345            |
//! | ADC3      | 3rd-order CT ΔΣ variant | 347            |
//! | ADC4      | SAR                     | 731            |
//! | ADC5      | Hybrid CT ΔΣ + SAR      | 1233           |
//!
//! The paper's designs are proprietary tapeouts; these assemblers build
//! synthetic equivalents from the same structural motifs (differential
//! integrators, matched feedback-DAC slice pairs per Fig. 3(a),
//! comparators, unit-capacitor DAC arrays, SAR logic, clock trees, decap
//! banks) and fill with matched decoupling-capacitor banks to land on
//! the published device counts exactly.

use ancstr_netlist::{CircuitClass, DeviceType, Element, Netlist, Subckt};

use crate::builder::CellBuilder;
use crate::clock;
use crate::comparator;
use crate::dac::{self, CURRENT_DAC};
use crate::digital::{self, inv_name, DFF};
use crate::latch;
use crate::ota;

/// Copy every template of `src` that `dst` does not already define.
pub fn import_netlist(dst: &mut Netlist, src: &Netlist) {
    for sub in src.iter() {
        if dst.subckt(&sub.name).is_none() {
            dst.add_subckt(sub.clone()).expect("checked absent");
        }
    }
}

/// Recursively count the primitive devices one instance of `name`
/// elaborates to.
pub fn template_device_count(nl: &Netlist, name: &str) -> usize {
    let Some(sub) = nl.subckt(name) else { return 0 };
    sub.elements
        .iter()
        .map(|e| match e {
            Element::Device(_) => 1,
            Element::Instance(i) => template_device_count(nl, &i.subckt),
        })
        .sum()
}

/// A bias-generation cell: mirror ladder distributing `ibias` — 10
/// devices.
pub(crate) fn bias_cell() -> Subckt {
    CellBuilder::new("biasgen", ["ibias", "vb1", "vb2", "vbn", "vdd", "vss"])
        .class(CircuitClass::Bias)
        .mos("M1", DeviceType::Nch, "ibias", "ibias", "vss", "vss", 2.0, 0.5)
        .mos("M2", DeviceType::Nch, "x1", "ibias", "vss", "vss", 2.0, 0.5)
        .mos("M3", DeviceType::Pch, "x1", "x1", "vdd", "vdd", 4.0, 0.5)
        .mos("M4", DeviceType::Pch, "vb1", "x1", "vdd", "vdd", 4.0, 0.5)
        .mos("M5", DeviceType::Nch, "vb1", "vb1", "vss", "vss", 2.0, 0.5)
        .mos("M6", DeviceType::Pch, "vb2", "x1", "vdd", "vdd", 4.0, 0.5)
        .mos("M7", DeviceType::Pch, "vb2", "vb2", "x2", "vdd", 4.0, 0.25)
        .mos("M8", DeviceType::Nch, "x2", "vb1", "vss", "vss", 2.0, 0.5)
        .mos("M9", DeviceType::Nch, "vbn", "ibias", "vss", "vss", 2.0, 0.5)
        .res("Rb", "vbn", "vss", 10e3)
        .build()
}

/// A bootstrapped sampling switch — 10 devices.
pub(crate) fn bootstrap_cell() -> Subckt {
    CellBuilder::new("bootsw", ["in", "out", "ck", "ckb", "vdd", "vss"])
        .class(CircuitClass::Switch)
        .mos("Msw", DeviceType::NchLvt, "out", "g", "in", "vss", 8.0, 0.1)
        .mos("M1", DeviceType::Nch, "g", "ckb", "vss", "vss", 1.0, 0.1)
        .mos("M2", DeviceType::Nch, "cb", "ck", "vss", "vss", 1.0, 0.1)
        .mos("M3", DeviceType::Pch, "g", "x", "ct", "vdd", 2.0, 0.1)
        .mos("M4", DeviceType::Nch, "x", "ck", "vss", "vss", 1.0, 0.1)
        .mos("M5", DeviceType::Pch, "x", "ckb", "vdd", "vdd", 2.0, 0.1)
        .mos("M6", DeviceType::Nch, "ct", "g", "in", "vss", 1.5, 0.1)
        .mos("M7", DeviceType::Pch, "ct", "ckb", "vdd", "vdd", 1.5, 0.1)
        .cfmom("Cb1", "ct", "cb", 4.0, 4.0, 4)
        .cfmom("Cb2", "ct", "cb", 4.0, 4.0, 4)
        .sym("Cb1", "Cb2")
        .build()
}

/// An active-RC integrator template wrapping an OTA instance with
/// matched input resistors and integration capacitors.
pub(crate) fn integrator_cell(name: &str, ota_template: &str, r_kohm: f64, c_pf: f64) -> Subckt {
    CellBuilder::new(
        name,
        ["inp", "inn", "outp", "outn", "vcm", "ibias", "vdd", "vss"],
    )
    .class(CircuitClass::Integrator)
    .res("Rin1", "inp", "vip", r_kohm * 1e3)
    .res("Rin2", "inn", "vin", r_kohm * 1e3)
    .inst(
        "Xota",
        ota_template,
        ["vip", "vin", "outp", "outn", "vcm", "ibias", "vdd", "vss"],
    )
    .cap("Ci1", "vip", "outn", c_pf * 1e-12)
    .cap("Ci2", "vin", "outp", c_pf * 1e-12)
    .sym("Rin1", "Rin2")
    .sym("Ci1", "Ci2")
    .build()
}

/// A matched decap bank template holding `units` unit capacitors between
/// two rails (all pairs are designer-matched).
fn decap_cell(name: &str, units: usize) -> Subckt {
    let mut b = CellBuilder::new(name, ["p", "n"]).class(CircuitClass::PassiveArray);
    let mut names = Vec::new();
    for i in 0..units {
        let c = format!("Cd{i}");
        b = b.cfmom(&c, "p", "n", 5.0, 5.0, 5);
        names.push(c);
    }
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    b.sym_group(&refs).build()
}

/// SAR logic: a DFF shift register (`dffs` stages, the comparator
/// decision rippling through, low bits exposed on `d0..d3`) plus a chain
/// of control inverters.
///
/// As a pure-digital block it carries *no* analog symmetry annotations:
/// its repeated cells get placement regularity from digital P&R, and
/// `ancstr-core` correspondingly excludes Logic-classed hierarchies from
/// the valid-pair enumeration.
fn sar_logic_cell(name: &str, dffs: usize, invs: usize) -> Subckt {
    let mut b = CellBuilder::new(
        name,
        ["ck", "cmp", "d0", "d1", "d2", "d3", "vdd", "vss"],
    )
    .class(CircuitClass::Logic);
    let outs = ["d0", "d1", "d2", "d3"];
    let mut prev_q = "cmp".to_owned();
    for i in 0..dffs {
        let q = if i < outs.len() { outs[i].to_owned() } else { format!("s{i}") };
        b = b.inst(
            &format!("Xff{i}"),
            DFF,
            [
                prev_q.clone(),
                "ck".to_owned(),
                q.clone(),
                format!("qb{i}"),
                "vdd".to_owned(),
                "vss".to_owned(),
            ],
        );
        prev_q = q;
    }
    for i in 0..invs {
        let a = if i == 0 { "ck".to_owned() } else { format!("c{}", i - 1) };
        b = b.inst(
            &format!("Xi{i}"),
            &inv_name(1),
            [a, format!("c{i}"), "vdd".to_owned(), "vss".to_owned()],
        );
    }
    b.build()
}

/// A digital decimation/serializer block for the hybrid ADC: DFF bank,
/// NAND combiners, output inverters. Pure digital — no symmetry
/// annotations (see [`sar_logic_cell`]).
fn decimator_cell(name: &str) -> Subckt {
    let mut b = CellBuilder::new(name, ["ck", "din", "dout", "vdd", "vss"])
        .class(CircuitClass::Logic);
    let mut prev = "din".to_owned();
    for i in 0..8 {
        let q = format!("t{i}");
        b = b.inst(
            &format!("Xff{i}"),
            DFF,
            [
                prev.clone(),
                "ck".to_owned(),
                q.clone(),
                format!("tb{i}"),
                "vdd".to_owned(),
                "vss".to_owned(),
            ],
        );
        prev = q;
    }
    for i in 0..8 {
        b = b.inst(
            &format!("Xg{i}"),
            &crate::digital::nand2_name(1),
            [
                format!("t{i}"),
                format!("tb{}", (i + 1) % 8),
                format!("g{i}"),
                "vdd".to_owned(),
                "vss".to_owned(),
            ],
        );
    }
    for i in 0..4 {
        let y = if i == 3 { "dout".to_owned() } else { format!("o{i}") };
        let a = if i == 0 { "g0".to_owned() } else { format!("o{}", i - 1) };
        b = b.inst(
            &format!("Xo{i}"),
            &inv_name(2),
            [a, y, "vdd".to_owned(), "vss".to_owned()],
        );
    }
    b.build()
}

/// A 4-unit capacitor array, all units in parallel between `a` and `b`.
fn cap_array_parallel(name: &str) -> Subckt {
    let mut b = CellBuilder::new(name, ["a", "b"]).class(CircuitClass::PassiveArray);
    for i in 0..4 {
        b = b.cfmom(&format!("Cu{i}"), "a", "b", 3.0, 3.0, 4);
    }
    b.sym_group(&["Cu0", "Cu1", "Cu2", "Cu3"]).build()
}

/// A 4-unit capacitor array with a *different interconnection*: two
/// parallel units plus a series chain of two (same unit count, type,
/// and sizing — the Section IV-D "nonidentical subcircuits that still
/// require symmetry matching" case).
fn cap_array_mixed(name: &str) -> Subckt {
    CellBuilder::new(name, ["a", "b"])
        .class(CircuitClass::PassiveArray)
        .cfmom("Cu0", "a", "b", 3.0, 3.0, 4)
        .cfmom("Cu1", "a", "b", 3.0, 3.0, 4)
        .cfmom("Cu2", "a", "m", 3.0, 3.0, 4)
        .cfmom("Cu3", "m", "b", 3.0, 3.0, 4)
        .sym("Cu0", "Cu1")
        .sym("Cu2", "Cu3")
        .build()
}

/// Maximum units per decap bank: keeps the quadratic pair blow-up of
/// matched arrays in check, like real floorplans that split decap into
/// per-rail clusters.
const DECAP_BANK_UNITS: usize = 12;

/// Add enough decap banks to `nl` to contribute exactly `fill` devices,
/// returning `(template, instance)` names for the top cell to wire to
/// alternating rails.
fn decap_banks(nl: &mut Netlist, prefix: &str, fill: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut remaining = fill;
    let mut idx = 0;
    while remaining > 0 {
        let units = remaining.min(DECAP_BANK_UNITS);
        let tname = format!("decap_{prefix}{idx}");
        nl.add_subckt(decap_cell(&tname, units)).expect("fresh decap name");
        out.push((tname, format!("Xdecap{idx}")));
        remaining -= units;
        idx += 1;
    }
    out
}

/// Probe the device count of `top`, add decap banks covering the gap to
/// `target`, instantiate them, and finish the netlist.
pub(crate) fn finish_with_fill(
    mut nl: Netlist,
    mut top: CellBuilder,
    name: &str,
    target: usize,
) -> Netlist {
    let mut probe = nl.clone();
    probe.add_subckt(top.clone_subckt()).expect("fresh top name");
    let current = template_device_count(&probe, name);
    assert!(
        current <= target,
        "{name} base design has {current} devices (target {target})"
    );
    let banks = decap_banks(&mut nl, name, target - current);
    for (template, inst) in &banks {
        top = top.inst(inst, template, ["vdd", "vss"]);
    }
    // Equal-sized banks are matched arrays (designers align them); the
    // trailing partial bank, if any, stays unmatched.
    let full: Vec<&str> = banks
        .iter()
        .filter(|(t, _)| template_device_count(&nl, t) == DECAP_BANK_UNITS)
        .map(|(_, i)| i.as_str())
        .collect();
    if full.len() >= 2 {
        top = top.sym_group(&full);
    }
    nl.add_subckt(top.build()).expect("fresh top name");
    nl
}

/// Install the templates every CT ΔΣ system shares.
fn ctdsm_common(nl: &mut Netlist) {
    import_netlist(nl, &ota::ota4(11));
    import_netlist(nl, &ota::ota2(12));
    import_netlist(nl, &comparator::comp1(13));
    import_netlist(nl, &clock::clock_circuit());
    nl.add_subckt(dac::current_dac_cell(4.0)).expect("fresh");
    nl.add_subckt(bias_cell()).expect("fresh");
}

/// ADC1: 2nd-order continuous-time ΔΣ modulator — 285 devices.
pub fn adc1() -> Netlist {
    let mut nl = Netlist::new("adc1");
    ctdsm_common(&mut nl);
    nl.add_subckt(integrator_cell("integ_a", "ota4", 20.0, 2.0)).expect("fresh");
    nl.add_subckt(integrator_cell("integ_b", "ota4", 10.0, 1.0)).expect("fresh");
    import_netlist(&mut nl, &latch::latch1(14));

    let top = CellBuilder::new(
        "adc1",
        ["vinp", "vinn", "dout", "doutb", "clk", "ibias", "vcm", "vdd", "vss"],
    )
    .class(CircuitClass::Custom("adc".into()))
    // Signal path: two integrators (scaled differently — a same-class
    // decoy pair that must NOT match).
    .inst("Xint1", "integ_a", ["vinp", "vinn", "i1p", "i1n", "vcm", "vb1", "vdd", "vss"])
    .inst("Xint2", "integ_b", ["i1p", "i1n", "i2p", "i2n", "vcm", "vb1", "vdd", "vss"])
    // Feedback DAC slice pairs (Fig. 3(a)): matched within each pair.
    .inst("Xdac1a", CURRENT_DAC, ["dout", "doutb", "vinp", "vinn", "vb1", "vb2", "vdd"])
    .inst("Xdac1b", CURRENT_DAC, ["doutb", "dout", "vinn", "vinp", "vb1", "vb2", "vdd"])
    .inst("Xdac2a", CURRENT_DAC, ["dout", "doutb", "i1p", "i1n", "vb1", "vb2", "vdd"])
    .inst("Xdac2b", CURRENT_DAC, ["doutb", "dout", "i1n", "i1p", "vb1", "vb2", "vdd"])
    // Quantizer, retimer, clocking, biasing.
    .inst("Xq", "comp1", ["i2p", "i2n", "q", "qb", "ckp", "vbn", "vdd", "vss"])
    .inst("Xrt", "latch1", ["q", "qb", "dout", "doutb", "ckp", "ckn", "vdd", "vss"])
    .inst("Xclk", "clkgen", ["clk", "ckp", "ckn", "ckc", "vdd", "vss"])
    .inst("Xbias", "biasgen", ["ibias", "vb1", "vb2", "vbn", "vdd", "vss"])
    // Reference buffers: a matched OTA pair (system-level GT).
    .inst("Xrefp", "ota2", ["vcm", "refp", "refp", "rfp2", "vcm", "vb1", "vdd", "vss"])
    .inst("Xrefn", "ota2", ["vcm", "refn", "refn", "rfn2", "vcm", "vb1", "vdd", "vss"])
    // Top-level matched passives (system-level, Fig. 1's resistor pair).
    .res("Rff1", "vinp", "i2p", 40e3)
    .res("Rff2", "vinn", "i2n", 40e3)
    .cap("Cff1", "vinp", "i2p", 100e-15)
    .cap("Cff2", "vinn", "i2n", 100e-15)
    .res("Rt1", "refp", "vcm", 5e3)
    .res("Rt2", "refn", "vcm", 5e3)
    .sym("Xdac1a", "Xdac1b")
    .sym("Xdac2a", "Xdac2b")
    .sym("Xrefp", "Xrefn")
    .sym("Rff1", "Rff2")
    .sym("Cff1", "Cff2")
    .sym("Rt1", "Rt2");

    // Fill to the published device count with matched decap banks.
    finish_with_fill(nl, top, "adc1", 285)
}

/// ADC2: 3rd-order CT ΔΣ with a 1.5-bit flash quantizer — 345 devices.
pub fn adc2() -> Netlist {
    third_order_ctdsm("adc2", 345, false)
}

/// ADC3: 3rd-order CT ΔΣ variant with input choppers — 347 devices.
pub fn adc3() -> Netlist {
    third_order_ctdsm("adc3", 347, true)
}

fn third_order_ctdsm(name: &str, target: usize, chopper: bool) -> Netlist {
    let mut nl = Netlist::new(name);
    ctdsm_common(&mut nl);
    import_netlist(&mut nl, &comparator::comp5(15));
    import_netlist(&mut nl, &latch::latch1(16));
    if chopper {
        nl.add_subckt(digital::tgate()).expect("fresh");
    }
    nl.add_subckt(integrator_cell("integ_a", "ota4", 20.0, 2.0)).expect("fresh");
    nl.add_subckt(integrator_cell("integ_b", "ota4", 10.0, 1.0)).expect("fresh");
    nl.add_subckt(integrator_cell("integ_c", "ota4", 5.0, 0.5)).expect("fresh");
    // Matched load arrays with nonidentical interconnections (Sec. IV-D).
    nl.add_subckt(cap_array_parallel("carr_par")).expect("fresh");
    nl.add_subckt(cap_array_mixed("carr_mix")).expect("fresh");

    let mut top = CellBuilder::new(
        name,
        ["vinp", "vinn", "dout", "doutb", "clk", "ibias", "vcm", "vdd", "vss"],
    )
    .class(CircuitClass::Custom("adc".into()))
    .inst("Xint1", "integ_a", ["vinp", "vinn", "i1p", "i1n", "vcm", "vb1", "vdd", "vss"])
    .inst("Xint2", "integ_b", ["i1p", "i1n", "i2p", "i2n", "vcm", "vb1", "vdd", "vss"])
    .inst("Xint3", "integ_c", ["i2p", "i2n", "i3p", "i3n", "vcm", "vb1", "vdd", "vss"])
    .inst("Xdac1a", CURRENT_DAC, ["dout", "doutb", "vinp", "vinn", "vb1", "vb2", "vdd"])
    .inst("Xdac1b", CURRENT_DAC, ["doutb", "dout", "vinn", "vinp", "vb1", "vb2", "vdd"])
    .inst("Xdac2a", CURRENT_DAC, ["dout", "doutb", "i2p", "i2n", "vb1", "vb2", "vdd"])
    .inst("Xdac2b", CURRENT_DAC, ["doutb", "dout", "i2n", "i2p", "vb1", "vb2", "vdd"])
    // 1.5-bit flash: two matched comparators (system-level GT pair).
    .inst("Xq1", "comp5", ["i3p", "i3n", "q1", "q1b", "ckp", "vdd", "vss"])
    .inst("Xq2", "comp5", ["i3n", "i3p", "q2", "q2b", "ckp", "vdd", "vss"])
    .inst("Xrt", "latch1", ["q1", "q2", "dout", "doutb", "ckp", "ckn", "vdd", "vss"])
    .inst("Xclk", "clkgen", ["clk", "ckp", "ckn", "ckc", "vdd", "vss"])
    .inst("Xbias", "biasgen", ["ibias", "vb1", "vb2", "vbn", "vdd", "vss"])
    .inst("Xrefp", "ota2", ["vcm", "refp", "refp", "rfp2", "vcm", "vb1", "vdd", "vss"])
    .inst("Xrefn", "ota2", ["vcm", "refn", "refn", "rfn2", "vcm", "vb1", "vdd", "vss"])
    .res("Rff1", "vinp", "i3p", 60e3)
    .res("Rff2", "vinn", "i3n", 60e3)
    .res("Rfb1", "i1p", "i3p", 80e3)
    .res("Rfb2", "i1n", "i3n", 80e3)
    .cap("Cff1", "vinp", "i3p", 80e-15)
    .cap("Cff2", "vinn", "i3n", 80e-15)
    .res("Rt1", "refp", "vcm", 5e3)
    .res("Rt2", "refn", "vcm", 5e3)
    // Matched output-load arrays whose internal wiring differs.
    .inst("Xla", "carr_par", ["i3p", "vcm"])
    .inst("Xlb", "carr_mix", ["i3n", "vcm"])
    .sym("Xla", "Xlb")
    .sym("Xdac1a", "Xdac1b")
    .sym("Xdac2a", "Xdac2b")
    .sym("Xq1", "Xq2")
    .sym("Xrefp", "Xrefn")
    .sym("Rff1", "Rff2")
    .sym("Rfb1", "Rfb2")
    .sym("Cff1", "Cff2")
    .sym("Rt1", "Rt2");

    if chopper {
        top = top
            .inst("Xch1", digital::TGATE, ["vinp", "chp", "ckp", "ckn", "vdd", "vss"])
            .inst("Xch2", digital::TGATE, ["vinn", "chn", "ckp", "ckn", "vdd", "vss"])
            .inst("Xch3", digital::TGATE, ["vinp", "chn", "ckn", "ckp", "vdd", "vss"])
            .inst("Xch4", digital::TGATE, ["vinn", "chp", "ckn", "ckp", "vdd", "vss"])
            .sym("Xch1", "Xch2")
            .sym("Xch3", "Xch4");
    }

    finish_with_fill(nl, top, name, target)
}

/// ADC4: a SAR ADC with segmented (coarse + fine) differential 4-bit
/// unit-capacitor DACs and a 20-stage SAR register — 731 devices.
pub fn adc4() -> Netlist {
    let mut nl = Netlist::new("adc4");
    import_netlist(&mut nl, &comparator::comp1(17));
    import_netlist(&mut nl, &clock::clock_circuit());
    digital::install_digital_library(&mut nl, &[1, 2], true);
    nl.add_subckt(dac::cap_dac_cell("capdac4", 4)).expect("fresh");
    nl.add_subckt(bootstrap_cell()).expect("fresh");
    nl.add_subckt(sar_logic_cell("sarlogic", 16, 10)).expect("fresh");
    // A test/scan chain: a second Logic-class block at the top level, so
    // same-class block comparison includes one large-vs-medium pair (the
    // kind that dominates a spectral detector's runtime).
    nl.add_subckt(sar_logic_cell("scanchain", 4, 2)).expect("fresh");

    let dac_ports = |side: &str, seg: &str| -> Vec<String> {
        (0..4)
            .map(|i| format!("{seg}{i}"))
            .chain([
                format!("top{side}"),
                "vref".into(),
                "vdd".into(),
                "vss".into(),
            ])
            .collect()
    };
    let mut top = CellBuilder::new(
        "adc4",
        ["vinp", "vinn", "vref", "clk", "d0", "d1", "d2", "d3", "vdd", "vss"],
    )
    .class(CircuitClass::Custom("adc".into()))
    // Segmented differential cap DACs: the P/N banks of each segment are
    // the dominant system-level constraints.
    .inst("Xdacpc", "capdac4", dac_ports("p", "d"))
    .inst("Xdacnc", "capdac4", dac_ports("n", "d"))
    .inst("Xdacpf", "capdac4", dac_ports("p", "f"))
    .inst("Xdacnf", "capdac4", dac_ports("n", "f"))
    // Bootstrapped sampling switches (matched pair).
    .inst("Xswp", "bootsw", ["vinp", "topp", "ckp", "ckn", "vdd", "vss"])
    .inst("Xswn", "bootsw", ["vinn", "topn", "ckp", "ckn", "vdd", "vss"])
    .inst("Xcmp", "comp1", ["topp", "topn", "q", "qb", "ckc", "vbn", "vdd", "vss"])
    .inst("Xsar", "sarlogic", ["ckp", "q", "d0", "d1", "d2", "d3", "vdd", "vss"])
    .inst("Xscan", "scanchain", ["ckp", "q", "s0", "s1", "s2", "s3", "vdd", "vss"])
    .inst("Xclk", "clkgen", ["clk", "ckp", "ckn", "ckc", "vdd", "vss"])
    // Output drivers: a matched bank of eight x2 inverters.
    .inst("Xb0", &inv_name(2), ["d0", "o0", "vdd", "vss"])
    .inst("Xb1", &inv_name(2), ["d1", "o1", "vdd", "vss"])
    .inst("Xb2", &inv_name(2), ["d2", "o2", "vdd", "vss"])
    .inst("Xb3", &inv_name(2), ["d3", "o3", "vdd", "vss"])
    .inst("Xb4", &inv_name(2), ["o0", "p0", "vdd", "vss"])
    .inst("Xb5", &inv_name(2), ["o1", "p1", "vdd", "vss"])
    .inst("Xb6", &inv_name(2), ["o2", "p2", "vdd", "vss"])
    .inst("Xb7", &inv_name(2), ["o3", "p3", "vdd", "vss"])
    // Reference series resistors.
    .res("Rref1", "vref", "topp", 1e3)
    .res("Rref2", "vref", "topn", 1e3)
    .sym("Xswp", "Xswn")
    .sym("Rref1", "Rref2")
    // Drivers match within a stage (first-stage and second-stage cells
    // see different fanout environments and are sized per stage).
    .sym_group(&["Xb0", "Xb1", "Xb2", "Xb3"])
    .sym_group(&["Xb4", "Xb5", "Xb6", "Xb7"]);
    // All four cap-DAC banks are instances of the same layout-matched
    // template used symmetrically — one matched group.
    top = top.sym_group(&["Xdacpc", "Xdacnc", "Xdacpf", "Xdacnf"]);

    finish_with_fill(nl, top, "adc4", 731)
}

/// ADC5: hybrid — a 3rd-order CT ΔΣ front end whose quantizer combines
/// a SAR with a flash comparator bank, plus a digital decimator — 1233
/// devices.
pub fn adc5() -> Netlist {
    let mut nl = Netlist::new("adc5");
    ctdsm_common(&mut nl);
    import_netlist(&mut nl, &comparator::comp5(15));
    import_netlist(&mut nl, &latch::latch1(18));
    digital::install_digital_library(&mut nl, &[1, 2], true);
    nl.add_subckt(integrator_cell("integ_a", "ota4", 20.0, 2.0)).expect("fresh");
    nl.add_subckt(integrator_cell("integ_b", "ota4", 10.0, 1.0)).expect("fresh");
    nl.add_subckt(integrator_cell("integ_c", "ota4", 5.0, 0.5)).expect("fresh");
    nl.add_subckt(dac::cap_dac_cell("capdac4", 4)).expect("fresh");
    nl.add_subckt(bootstrap_cell()).expect("fresh");
    nl.add_subckt(sar_logic_cell("sarlogic", 16, 8)).expect("fresh");
    nl.add_subckt(decimator_cell("decim")).expect("fresh");

    let dac_ports = |side: &str| -> Vec<String> {
        (0..4)
            .map(|i| format!("d{i}"))
            .chain([
                format!("top{side}"),
                "vref".into(),
                "vdd".into(),
                "vss".into(),
            ])
            .collect()
    };
    let top = CellBuilder::new(
        "adc5",
        ["vinp", "vinn", "vref", "clk", "d0", "d1", "d2", "d3", "ibias", "vcm", "vdd", "vss"],
    )
    .class(CircuitClass::Custom("adc".into()))
    // ΔΣ front end.
    .inst("Xint1", "integ_a", ["vinp", "vinn", "i1p", "i1n", "vcm", "vb1", "vdd", "vss"])
    .inst("Xint2", "integ_b", ["i1p", "i1n", "i2p", "i2n", "vcm", "vb1", "vdd", "vss"])
    .inst("Xint3", "integ_c", ["i2p", "i2n", "i3p", "i3n", "vcm", "vb1", "vdd", "vss"])
    .inst("Xdac1a", CURRENT_DAC, ["d0", "d1", "vinp", "vinn", "vb1", "vb2", "vdd"])
    .inst("Xdac1b", CURRENT_DAC, ["d1", "d0", "vinn", "vinp", "vb1", "vb2", "vdd"])
    .inst("Xdac2a", CURRENT_DAC, ["d0", "d1", "i1p", "i1n", "vb1", "vb2", "vdd"])
    .inst("Xdac2b", CURRENT_DAC, ["d1", "d0", "i1n", "i1p", "vb1", "vb2", "vdd"])
    // Interstage amplifier driving the SAR.
    .inst("Xisa", "ota2", ["i3p", "i3n", "sp", "sn", "vcm", "vb1", "vdd", "vss"])
    // SAR back end.
    .inst("Xdacp", "capdac4", dac_ports("p"))
    .inst("Xdacn", "capdac4", dac_ports("n"))
    .inst("Xswp", "bootsw", ["sp", "topp", "ckp", "ckn", "vdd", "vss"])
    .inst("Xswn", "bootsw", ["sn", "topn", "ckp", "ckn", "vdd", "vss"])
    .inst("Xcmp", "comp1", ["topp", "topn", "q", "qb", "ckc", "vbn", "vdd", "vss"])
    .inst("Xsar", "sarlogic", ["ckp", "q", "d0", "d1", "d2", "d3", "vdd", "vss"])
    .inst("Xrt", "latch1", ["q", "qb", "dp", "dn", "ckp", "ckn", "vdd", "vss"])
    // Flash comparator bank refining the SAR decision (matched group).
    .inst("Xfl0", "comp5", ["topp", "topn", "f0", "f0b", "ckc", "vdd", "vss"])
    .inst("Xfl1", "comp5", ["topp", "topn", "f1", "f1b", "ckc", "vdd", "vss"])
    .inst("Xfl2", "comp5", ["topp", "topn", "f2", "f2b", "ckc", "vdd", "vss"])
    .inst("Xfl3", "comp5", ["topp", "topn", "f3", "f3b", "ckc", "vdd", "vss"])
    .inst("Xfl4", "comp5", ["topn", "topp", "f4", "f4b", "ckc", "vdd", "vss"])
    .inst("Xfl5", "comp5", ["topn", "topp", "f5", "f5b", "ckc", "vdd", "vss"])
    .inst("Xfl6", "comp5", ["topn", "topp", "f6", "f6b", "ckc", "vdd", "vss"])
    .inst("Xfl7", "comp5", ["topn", "topp", "f7", "f7b", "ckc", "vdd", "vss"])
    .sym_group(&["Xfl0", "Xfl1", "Xfl2", "Xfl3", "Xfl4", "Xfl5", "Xfl6", "Xfl7"])
    // Digital decimator on the output.
    .inst("Xdec", "decim", ["ckp", "dp", "dec_out", "vdd", "vss"])
    .inst("Xclk", "clkgen", ["clk", "ckp", "ckn", "ckc", "vdd", "vss"])
    .inst("Xbias", "biasgen", ["ibias", "vb1", "vb2", "vbn", "vdd", "vss"])
    .inst("Xrefp", "ota2", ["vcm", "refp", "refp", "rfp2", "vcm", "vb1", "vdd", "vss"])
    .inst("Xrefn", "ota2", ["vcm", "refn", "refn", "rfn2", "vcm", "vb1", "vdd", "vss"])
    .res("Rff1", "vinp", "i3p", 60e3)
    .res("Rff2", "vinn", "i3n", 60e3)
    .cap("Cff1", "vinp", "i3p", 80e-15)
    .cap("Cff2", "vinn", "i3n", 80e-15)
    .res("Rt1", "refp", "vcm", 5e3)
    .res("Rt2", "refn", "vcm", 5e3)
    .sym("Xdac1a", "Xdac1b")
    .sym("Xdac2a", "Xdac2b")
    .sym("Xdacp", "Xdacn")
    .sym("Xswp", "Xswn")
    .sym("Xrefp", "Xrefn")
    .sym("Rff1", "Rff2")
    .sym("Cff1", "Cff2")
    .sym("Rt1", "Rt2");

    finish_with_fill(nl, top, "adc5", 1233)
}

/// All five ADC benchmarks, in Table III order.
pub fn adc_benchmarks() -> Vec<Netlist> {
    vec![adc1(), adc2(), adc3(), adc4(), adc5()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;
    use ancstr_netlist::SymmetryKind;

    #[test]
    fn device_counts_match_table3() {
        let expect = [285usize, 345, 347, 731, 1233];
        for (nl, &n) in adc_benchmarks().iter().zip(&expect) {
            let flat = FlatCircuit::elaborate(nl).unwrap();
            assert_eq!(flat.devices().len(), n, "{}", nl.top());
        }
    }

    #[test]
    fn adc1_has_system_level_dac_pairs() {
        let flat = FlatCircuit::elaborate(&adc1()).unwrap();
        let a = flat.node_by_path("adc1/Xdac1a").unwrap().id;
        let b = flat.node_by_path("adc1/Xdac1b").unwrap().id;
        let c = flat.ground_truth().get(a, b).unwrap();
        assert_eq!(c.kind, SymmetryKind::System);
        // Top-level resistor pairs next to blocks are system-level too.
        let r1 = flat.node_by_path("adc1/Rff1").unwrap().id;
        let r2 = flat.node_by_path("adc1/Rff2").unwrap().id;
        assert_eq!(flat.ground_truth().get(r1, r2).unwrap().kind, SymmetryKind::System);
    }

    #[test]
    fn adc_hierarchies_are_deep() {
        let flat = FlatCircuit::elaborate(&adc5()).unwrap();
        let max_depth = flat.nodes().iter().map(|n| n.depth).max().unwrap();
        assert!(max_depth >= 3, "expected nested hierarchy, depth {max_depth}");
        assert!(flat.blocks().count() > 30);
    }

    #[test]
    fn integrators_are_same_class_decoys() {
        let flat = FlatCircuit::elaborate(&adc1()).unwrap();
        let i1 = flat.node_by_path("adc1/Xint1").unwrap().id;
        let i2 = flat.node_by_path("adc1/Xint2").unwrap().id;
        // Same module type (both integrators), but not ground truth.
        assert_eq!(flat.module_type(i1), flat.module_type(i2));
        assert!(flat.ground_truth().get(i1, i2).is_none());
    }

    #[test]
    fn ground_truth_grows_with_system_size() {
        let small = FlatCircuit::elaborate(&adc1()).unwrap().ground_truth().len();
        let large = FlatCircuit::elaborate(&adc5()).unwrap().ground_truth().len();
        assert!(large > small);
    }
}
