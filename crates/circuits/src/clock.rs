//! The Fig. 2 clock circuit: part of a SAR ADC clock tree whose
//! system-level symmetry constraints only hold *with sizing considered*.
//!
//! The template instantiates inverters of several drive strengths. The
//! matched groups pair instances of equal drive on mirrored paths; a
//! sizing-blind detector annotates *all* the inverters as one symmetry
//! group because their topologies are identical — the paper's
//! false-alarm example.

use ancstr_netlist::{CircuitClass, Netlist, Subckt};

use crate::builder::CellBuilder;
use crate::digital::{install_digital_library, inv_name};

/// The clock-tree template (instantiates `inv_x1/x2/x4/x8`).
fn clock_cell() -> Subckt {
    CellBuilder::new(
        "clkgen",
        ["clk_in", "ckp", "ckn", "ck_cmp", "vdd", "vss"],
    )
    .class(CircuitClass::Clock)
    // Mirrored complementary-clock branches off the same source:
    // x1 → x2 → x4 per side.
    .inst("Xp1", &inv_name(1), ["clk_in", "p1", "vdd", "vss"])
    .inst("Xp2", &inv_name(2), ["p1", "p2", "vdd", "vss"])
    .inst("Xp4", &inv_name(4), ["p2", "ckp", "vdd", "vss"])
    .inst("Xn1", &inv_name(1), ["clk_in", "n1", "vdd", "vss"])
    .inst("Xn2", &inv_name(2), ["n1", "n2", "vdd", "vss"])
    .inst("Xn4", &inv_name(4), ["n2", "ckn", "vdd", "vss"])
    // Comparator-clock branch with a *different* drive: same topology
    // as the others, but unmatched (the sizing trap).
    .inst("Xc8", &inv_name(8), ["clk_in", "ck_cmp", "vdd", "vss"])
    // Matched pairs: equal-drive instances across the two paths.
    .sym("Xp1", "Xn1")
    .sym("Xp2", "Xn2")
    .sym("Xp4", "Xn4")
    .build()
}

/// Build the clock circuit netlist (Fig. 2).
pub fn clock_circuit() -> Netlist {
    let mut nl = Netlist::new("clkgen");
    install_digital_library(&mut nl, &[1, 2, 4, 8], false);
    nl.add_subckt(clock_cell()).expect("single clkgen template");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;
    use ancstr_netlist::SymmetryKind;

    #[test]
    fn clock_elaborates_with_system_constraints() {
        let flat = FlatCircuit::elaborate(&clock_circuit()).unwrap();
        // 7 inverters × 2 devices.
        assert_eq!(flat.devices().len(), 14);
        let gt = flat.ground_truth();
        assert_eq!(gt.len(), 3);
        for c in gt.iter() {
            assert_eq!(c.kind, SymmetryKind::System);
        }
    }

    #[test]
    fn unmatched_inverter_has_distinct_sizing() {
        let flat = FlatCircuit::elaborate(&clock_circuit()).unwrap();
        let x8 = flat
            .devices()
            .iter()
            .find(|d| d.path.contains("Xc8"))
            .unwrap();
        let x1 = flat
            .devices()
            .iter()
            .find(|d| d.path.contains("Xp1"))
            .unwrap();
        assert!(x8.geometry.width > x1.geometry.width * 4.0);
    }
}
