//! Digital standard cells used by the mixed-signal systems: inverters,
//! NAND/NOR gates, transmission gates, and a NAND-based D flip-flop for
//! SAR logic.
//!
//! Every generator takes a drive strength (the width multiplier of the
//! Fig. 2 sizing story) so that instances of the *same* template with
//! *different* sizes exist in the benchmarks — the false-alarm case a
//! sizing-blind detector trips over.

use ancstr_netlist::{CircuitClass, DeviceType, Netlist, Subckt};

use crate::builder::CellBuilder;

/// Canonical name for an inverter template of drive strength `x`.
pub fn inv_name(drive: u32) -> String {
    format!("inv_x{drive}")
}

/// An inverter with the given drive strength (W multiplies with drive).
pub fn inverter(drive: u32) -> Subckt {
    let w = drive as f64;
    CellBuilder::new(inv_name(drive), ["a", "y", "vdd", "vss"])
        .class(CircuitClass::Inverter)
        .mos("Mp", DeviceType::PchLvt, "y", "a", "vdd", "vdd", 2.0 * w, 0.1)
        .mos("Mn", DeviceType::NchLvt, "y", "a", "vss", "vss", 1.0 * w, 0.1)
        .build()
}

/// Canonical name for a 2-input NAND of drive strength `x`.
pub fn nand2_name(drive: u32) -> String {
    format!("nand2_x{drive}")
}

/// A 2-input NAND gate.
pub fn nand2(drive: u32) -> Subckt {
    let w = drive as f64;
    CellBuilder::new(nand2_name(drive), ["a", "b", "y", "vdd", "vss"])
        .class(CircuitClass::Logic)
        .mos("Mpa", DeviceType::PchLvt, "y", "a", "vdd", "vdd", 2.0 * w, 0.1)
        .mos("Mpb", DeviceType::PchLvt, "y", "b", "vdd", "vdd", 2.0 * w, 0.1)
        .mos("Mna", DeviceType::NchLvt, "y", "a", "nx", "vss", 2.0 * w, 0.1)
        .mos("Mnb", DeviceType::NchLvt, "nx", "b", "vss", "vss", 2.0 * w, 0.1)
        .build()
}

/// Canonical name for a 2-input NOR of drive strength `x`.
pub fn nor2_name(drive: u32) -> String {
    format!("nor2_x{drive}")
}

/// A 2-input NOR gate.
pub fn nor2(drive: u32) -> Subckt {
    let w = drive as f64;
    CellBuilder::new(nor2_name(drive), ["a", "b", "y", "vdd", "vss"])
        .class(CircuitClass::Logic)
        .mos("Mpa", DeviceType::PchLvt, "px", "a", "vdd", "vdd", 4.0 * w, 0.1)
        .mos("Mpb", DeviceType::PchLvt, "y", "b", "px", "vdd", 4.0 * w, 0.1)
        .mos("Mna", DeviceType::NchLvt, "y", "a", "vss", "vss", 1.0 * w, 0.1)
        .mos("Mnb", DeviceType::NchLvt, "y", "b", "vss", "vss", 1.0 * w, 0.1)
        .build()
}

/// Canonical name of the transmission gate template.
pub const TGATE: &str = "tgate";

/// A CMOS transmission gate.
pub fn tgate() -> Subckt {
    CellBuilder::new(TGATE, ["a", "y", "ck", "ckb", "vdd", "vss"])
        .class(CircuitClass::Switch)
        .mos("Mn", DeviceType::NchLvt, "y", "ck", "a", "vss", 1.5, 0.1)
        .mos("Mp", DeviceType::PchLvt, "y", "ckb", "a", "vdd", 3.0, 0.1)
        .build()
}

/// Canonical name of the NAND-based DFF template.
pub const DFF: &str = "dff_nand";

/// A classic 6-NAND edge-triggered D flip-flop (24 transistors), built
/// hierarchically from [`nand2`] instances.
pub fn dff() -> Subckt {
    let g = nand2_name(1);
    CellBuilder::new(DFF, ["d", "ck", "q", "qb", "vdd", "vss"])
        .class(CircuitClass::Logic)
        .inst("X1", &g, ["s1", "s4", "s2", "vdd", "vss"])
        .inst("X2", &g, ["s2", "ck", "s3", "vdd", "vss"])
        .inst("X3", &g, ["s3", "s6", "s4", "vdd", "vss"])
        .inst("X4", &g, ["s4", "d", "s6", "vdd", "vss"])
        .inst("X5", &g, ["s2", "qb", "q", "vdd", "vss"])
        .inst("X6", &g, ["q", "s3", "qb", "vdd", "vss"])
        .build()
}

/// Register the shared digital templates a system netlist needs.
///
/// Safe to call with any subset already present — existing templates are
/// kept (so two blocks can both request `inv_x2`).
pub fn install_digital_library(netlist: &mut Netlist, inv_drives: &[u32], with_dff: bool) {
    for &d in inv_drives {
        if netlist.subckt(&inv_name(d)).is_none() {
            netlist.add_subckt(inverter(d)).expect("checked absent");
        }
    }
    if with_dff {
        if netlist.subckt(&nand2_name(1)).is_none() {
            netlist.add_subckt(nand2(1)).expect("checked absent");
        }
        if netlist.subckt(DFF).is_none() {
            netlist.add_subckt(dff()).expect("checked absent");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;

    #[test]
    fn inverter_sizes_scale_with_drive() {
        let x1 = inverter(1);
        let x4 = inverter(4);
        let w1 = x1.element("Mp").unwrap().as_device().unwrap().geometry.width;
        let w4 = x4.element("Mp").unwrap().as_device().unwrap().geometry.width;
        assert!((w4 - 4.0 * w1).abs() < 1e-12);
        assert_ne!(x1.name, x4.name);
    }

    #[test]
    fn gates_have_expected_transistor_counts() {
        assert_eq!(inverter(1).devices().count(), 2);
        assert_eq!(nand2(1).devices().count(), 4);
        assert_eq!(nor2(1).devices().count(), 4);
        assert_eq!(tgate().devices().count(), 2);
    }

    #[test]
    fn dff_elaborates_to_24_transistors() {
        let mut nl = Netlist::new(DFF);
        install_digital_library(&mut nl, &[], true);
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        assert_eq!(flat.devices().len(), 24);
    }

    #[test]
    fn install_is_idempotent() {
        let mut nl = Netlist::new("top");
        install_digital_library(&mut nl, &[1, 2], true);
        let count = nl.len();
        install_digital_library(&mut nl, &[1, 2], true);
        assert_eq!(nl.len(), count);
    }
}
