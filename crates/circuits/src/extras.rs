//! Additional AMS circuit classes beyond the paper's Table IV corpus:
//! bandgap reference, LDO, ring VCO, charge pump, Gilbert mixer, and a
//! biquad filter.
//!
//! These exist to exercise the paper's *generalizability* claim ("the
//! framework is generalizable to every design"): the experiment harness
//! trains the unsupervised model on the Table IV corpus only and
//! extracts constraints on these unseen classes zero-shot (see the
//! `generalize` binary).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use ancstr_netlist::{CircuitClass, DeviceType, Netlist};

use crate::builder::CellBuilder;
use crate::digital::{install_digital_library, inv_name};

fn draw_w(rng: &mut StdRng) -> f64 {
    const CHOICES: [f64; 5] = [1.0, 2.0, 4.0, 6.0, 8.0];
    CHOICES[rng.gen_range(0..CHOICES.len())]
}

fn netlist_of(name: &str, cell: ancstr_netlist::Subckt) -> Netlist {
    let mut nl = Netlist::new(name);
    nl.add_subckt(cell).expect("single template");
    nl
}

/// A Brokaw-style bandgap reference: ratioed BJT pair (deliberately
/// unmatched), matched mirror and resistor pairs — 14 devices.
pub fn bandgap(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB6A9);
    let w_mir = draw_w(&mut rng);
    let cell = CellBuilder::new("bandgap", ["vref", "vdd", "vss"])
        .class(CircuitClass::Bias)
        // 1:8 BJT pair — same type, different area: a sizing decoy.
        .mos("Mm1", DeviceType::Pch, "c1", "cm", "vdd", "vdd", w_mir, 0.5)
        .mos("Mm2", DeviceType::Pch, "c2", "cm", "vdd", "vdd", w_mir, 0.5)
        .mos("Mm3", DeviceType::Pch, "vref", "cm", "vdd", "vdd", w_mir, 0.5)
        .mos("Mcm", DeviceType::Pch, "cm", "cm", "vdd", "vdd", w_mir, 0.5)
        .mos("Ma1", DeviceType::NchLvt, "cm", "c1", "fb", "vss", 4.0, 0.2)
        .mos("Ma2", DeviceType::NchLvt, "cmx", "c2", "fb", "vss", 4.0, 0.2)
        .mos("Mt", DeviceType::Nch, "fb", "cmx", "vss", "vss", 2.0, 0.5)
        .res("R1", "c2", "e2", 40e3)
        .res("R2a", "e1", "vss", 80e3)
        .res("R2b", "e2x", "vss", 80e3)
        .res("Rout", "vref", "vss", 120e3)
        .cap("Cc", "vref", "vss", 2e-12)
        .sym("Mm1", "Mm2")
        .sym("Ma1", "Ma2")
        .sym("R2a", "R2b")
        .self_sym("Mt")
        .build();
    let mut nl = netlist_of("bandgap", cell);
    // BJTs live in their own card space; add via a second template to
    // keep the main builder simple.
    let bg = nl.subckt_mut("bandgap").expect("just added");
    use ancstr_netlist::{Device, Geometry};
    let mut q1 = Device::new(
        "Q1",
        DeviceType::Pnp,
        vec!["vss".into(), "vss".into(), "e1".into()],
        Geometry::new(5.0, 5.0),
    )
    .expect("3 pins");
    q1.multiplier = 1;
    bg.push_device(q1).expect("fresh name");
    let mut q2 = Device::new(
        "Q2",
        DeviceType::Pnp,
        vec!["vss".into(), "vss".into(), "e2x".into()],
        Geometry::new(5.0, 5.0),
    )
    .expect("3 pins");
    q2.multiplier = 8; // the 1:8 area ratio
    bg.push_device(q2).expect("fresh name");
    nl
}

/// A low-dropout regulator: 5T error amplifier, PMOS pass device,
/// matched feedback divider — 12 devices.
pub fn ldo(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1D0);
    let w_in = draw_w(&mut rng);
    let cell = CellBuilder::new("ldo", ["vin", "vout", "vref", "ib", "vss"])
        .class(CircuitClass::Bias)
        .mos("M1", DeviceType::NchLvt, "a1", "vref", "tail", "vss", w_in, 0.2)
        .mos("M2", DeviceType::NchLvt, "a2", "fb", "tail", "vss", w_in, 0.2)
        .mos("M3", DeviceType::Pch, "a1", "a1", "vin", "vin", w_in, 0.3)
        .mos("M4", DeviceType::Pch, "a2", "a1", "vin", "vin", w_in, 0.3)
        .mos("M5", DeviceType::Nch, "tail", "ib", "vss", "vss", 2.0, 0.5)
        .mos("Mpass", DeviceType::Pch, "vout", "a2", "vin", "vin", 50.0, 0.15)
        .mos("Mb", DeviceType::Nch, "ib", "ib", "vss", "vss", 1.0, 0.5)
        .res("Rf1", "vout", "fb", 100e3)
        .res("Rf2", "fb", "vss", 100e3)
        .cap("Cout", "vout", "vss", 10e-12)
        .cap("Cc", "a2", "vout", 1e-12)
        .res("Resd", "vout", "vss", 500e3)
        .sym("M1", "M2")
        .sym("M3", "M4")
        .sym("Rf1", "Rf2")
        .self_sym("M5")
        .build();
    netlist_of("ldo", cell)
}

/// A five-stage ring VCO of identical current-starved inverter cells:
/// the stages are a matched group (system-level) — 12 devices.
pub fn ring_vco(seed: u64) -> Netlist {
    let _ = seed; // stages must be identical; nothing to draw
    let mut nl = Netlist::new("ringvco");
    install_digital_library(&mut nl, &[2], false);
    let mut b = CellBuilder::new("ringvco", ["ctl", "out", "vdd", "vss"])
        .class(CircuitClass::Custom("vco".into()))
        .mos("Mctl", DeviceType::Nch, "vtail", "ctl", "vss", "vss", 4.0, 0.3)
        .mos("Mcm", DeviceType::Pch, "vhead", "vhead", "vdd", "vdd", 4.0, 0.3);
    let stages = 5;
    let mut names = Vec::new();
    for i in 0..stages {
        let a = if i == 0 { "out".to_owned() } else { format!("r{i}") };
        let y = if i == stages - 1 { "out".to_owned() } else { format!("r{}", i + 1) };
        let nm = format!("Xs{i}");
        b = b.inst(&nm, &inv_name(2), [a, y, "vhead".to_owned(), "vtail".to_owned()]);
        names.push(nm);
    }
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let cell = b.sym_group(&refs).build();
    nl.add_subckt(cell).expect("fresh");
    nl
}

/// A charge pump: matched up/down current branches with switch pairs —
/// 10 devices.
pub fn charge_pump(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC9);
    let w_src = draw_w(&mut rng);
    let cell = CellBuilder::new("chargepump", ["up", "dn", "out", "vb", "vdd", "vss"])
        .class(CircuitClass::Bias)
        .mos("Msrc", DeviceType::Pch, "pu", "vb", "vdd", "vdd", w_src, 0.4)
        .mos("Msnk", DeviceType::Nch, "pd", "vb", "vss", "vss", w_src / 2.0, 0.4)
        .mos("Msw1", DeviceType::PchLvt, "out", "up", "pu", "vdd", 2.0, 0.1)
        .mos("Msw2", DeviceType::PchLvt, "dump", "up", "pu", "vdd", 2.0, 0.1)
        .mos("Msw3", DeviceType::NchLvt, "out", "dn", "pd", "vss", 1.0, 0.1)
        .mos("Msw4", DeviceType::NchLvt, "dump", "dn", "pd", "vss", 1.0, 0.1)
        .mos("Mbuf", DeviceType::Nch, "dump", "dump", "vss", "vss", 1.0, 0.2)
        .cap("Cp", "out", "vss", 5e-12)
        .res("Rz", "out", "zx", 10e3)
        .cap("Cz", "zx", "vss", 20e-12)
        .sym("Msw1", "Msw2")
        .sym("Msw3", "Msw4")
        .build();
    netlist_of("chargepump", cell)
}

/// A Gilbert-cell mixer with inductive loads: switching quad, RF pair,
/// matched inductors — 11 devices. Exercises [`DeviceType::Inductor`].
pub fn gilbert_mixer(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x611B);
    let w_rf = draw_w(&mut rng);
    let w_lo = draw_w(&mut rng);
    let mut cell = CellBuilder::new(
        "mixer",
        ["lop", "lon", "rfp", "rfn", "ifp", "ifn", "ib", "vdd", "vss"],
    )
    .class(CircuitClass::Custom("mixer".into()))
    // Switching quad.
    .mos("Mq1", DeviceType::NchLvt, "ifp", "lop", "s1", "vss", w_lo, 0.1)
    .mos("Mq2", DeviceType::NchLvt, "ifn", "lon", "s1", "vss", w_lo, 0.1)
    .mos("Mq3", DeviceType::NchLvt, "ifn", "lop", "s2", "vss", w_lo, 0.1)
    .mos("Mq4", DeviceType::NchLvt, "ifp", "lon", "s2", "vss", w_lo, 0.1)
    // RF transconductors.
    .mos("Mr1", DeviceType::NchLvt, "s1", "rfp", "tail", "vss", w_rf, 0.15)
    .mos("Mr2", DeviceType::NchLvt, "s2", "rfn", "tail", "vss", w_rf, 0.15)
    .mos("Mt", DeviceType::Nch, "tail", "ib", "vss", "vss", 3.0, 0.4)
    .sym("Mq1", "Mq2")
    .sym("Mq3", "Mq4")
    .sym("Mr1", "Mr2")
    .self_sym("Mt")
    .build();
    // Matched inductive loads + IF caps.
    use ancstr_netlist::{Device, Geometry};
    for (name, a, b) in [("L1", "vdd", "ifp"), ("L2", "vdd", "ifn")] {
        let mut d = Device::new(
            name,
            DeviceType::Inductor,
            vec![a.into(), b.into()],
            Geometry::from_value(3e-9, 1e-9),
        )
        .expect("2 pins");
        d.value = Some(3e-9);
        cell.push_device(d).expect("fresh");
    }
    cell.annotate_symmetry("L1", "L2");
    for (name, a) in [("C1", "ifp"), ("C2", "ifn")] {
        let mut d = Device::new(
            name,
            DeviceType::Capacitor,
            vec![a.into(), "vss".into()],
            Geometry::from_value(200e-15, 1e-15),
        )
        .expect("2 pins");
        d.value = Some(200e-15);
        cell.push_device(d).expect("fresh");
    }
    cell.annotate_symmetry("C1", "C2");
    netlist_of("mixer", cell)
}

/// A Tow-Thomas biquad: two OTA instances with matched RC networks —
/// a small *system-level* benchmark outside the training classes.
pub fn biquad(seed: u64) -> Netlist {
    let mut nl = Netlist::new("biquad");
    crate::adc::import_netlist(&mut nl, &crate::ota::ota2(seed ^ 0xB1));
    let cell = CellBuilder::new(
        "biquad",
        ["vinp", "vinn", "voutp", "voutn", "vcm", "ib", "vdd", "vss"],
    )
    .class(CircuitClass::Custom("filter".into()))
    .inst("Xint1", "ota2", ["n1p", "n1n", "m1p", "m1n", "vcm", "ib", "vdd", "vss"])
    .inst("Xint2", "ota2", ["m1p", "m1n", "voutp", "voutn", "vcm", "ib", "vdd", "vss"])
    .res("Ri1", "vinp", "n1p", 20e3)
    .res("Ri2", "vinn", "n1n", 20e3)
    .res("Rq1", "m1p", "n1p", 40e3)
    .res("Rq2", "m1n", "n1n", 40e3)
    .res("Rf1", "voutp", "n1n", 20e3)
    .res("Rf2", "voutn", "n1p", 20e3)
    .cap("Cf1", "n1p", "m1n", 1e-12)
    .cap("Cf2", "n1n", "m1p", 1e-12)
    .cap("Cs1", "m1p", "voutn", 1e-12)
    .cap("Cs2", "m1n", "voutp", 1e-12)
    .sym("Xint1", "Xint2")
    .sym("Ri1", "Ri2")
    .sym("Rq1", "Rq2")
    .sym("Rf1", "Rf2")
    .sym("Cf1", "Cf2")
    .sym("Cs1", "Cs2")
    .build();
    nl.add_subckt(cell).expect("fresh");
    nl
}

/// The whole unseen-class suite, with names.
pub fn extra_benchmarks(seed: u64) -> Vec<(&'static str, Netlist)> {
    vec![
        ("BANDGAP", bandgap(seed)),
        ("LDO", ldo(seed)),
        ("RINGVCO", ring_vco(seed)),
        ("CHARGEPUMP", charge_pump(seed)),
        ("MIXER", gilbert_mixer(seed)),
        ("BIQUAD", biquad(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;

    #[test]
    fn all_extras_elaborate_with_ground_truth() {
        for (name, nl) in extra_benchmarks(7) {
            let flat = FlatCircuit::elaborate(&nl).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                !flat.ground_truth().is_empty(),
                "{name} needs ground truth"
            );
            assert!(flat.devices().len() >= 7, "{name} too small");
        }
    }

    #[test]
    fn bandgap_bjt_ratio_is_a_decoy() {
        let flat = FlatCircuit::elaborate(&bandgap(1)).unwrap();
        let q1 = flat.devices().iter().find(|d| d.path.ends_with("Q1")).unwrap();
        let q2 = flat.devices().iter().find(|d| d.path.ends_with("Q2")).unwrap();
        assert_eq!(q1.dtype, DeviceType::Pnp);
        assert_eq!(q2.multiplier, 8);
        // Not ground truth despite same type.
        assert!(flat.ground_truth().get(q1.node, q2.node).is_none());
    }

    #[test]
    fn ring_vco_stage_group_is_system_level() {
        let flat = FlatCircuit::elaborate(&ring_vco(1)).unwrap();
        let sys = flat
            .ground_truth()
            .iter()
            .filter(|c| c.kind == ancstr_netlist::SymmetryKind::System)
            .count();
        // C(5,2) = 10 stage pairs.
        assert_eq!(sys, 10);
    }

    #[test]
    fn mixer_uses_inductors() {
        let flat = FlatCircuit::elaborate(&gilbert_mixer(1)).unwrap();
        let inductors = flat
            .devices()
            .iter()
            .filter(|d| d.dtype == DeviceType::Inductor)
            .count();
        assert_eq!(inductors, 2);
    }

    #[test]
    fn biquad_has_matched_ota_instances() {
        let flat = FlatCircuit::elaborate(&biquad(1)).unwrap();
        let i1 = flat.node_by_path("biquad/Xint1").unwrap().id;
        let i2 = flat.node_by_path("biquad/Xint2").unwrap().id;
        let c = flat.ground_truth().get(i1, i2).unwrap();
        assert_eq!(c.kind, ancstr_netlist::SymmetryKind::System);
    }

    #[test]
    fn extras_round_trip_through_spice() {
        use ancstr_netlist::{parse::parse_spice, write::write_spice};
        for (name, nl) in extra_benchmarks(3) {
            let text = write_spice(&nl);
            let back = parse_spice(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let f1 = FlatCircuit::elaborate(&nl).unwrap();
            let f2 = FlatCircuit::elaborate(&back).unwrap();
            assert_eq!(f1.devices().len(), f2.devices().len(), "{name}");
        }
    }
}
