//! DAC benchmarks and DAC building blocks for the ADC systems:
//!
//! * [`dac1`]/[`dac2`] — the two block-level benchmarks of Table VI
//!   (10 and 12 devices);
//! * [`current_dac_cell`] — a current-steering DAC slice, instantiated
//!   in matched pairs by the CTΔΣ modulators (the Fig. 3(a)
//!   system-level constraint);
//! * [`cap_dac_cell`] — a parameterized binary-weighted unit-capacitor
//!   DAC for the SAR ADC.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use ancstr_netlist::{CircuitClass, DeviceType, Netlist, Subckt};

use crate::builder::CellBuilder;

fn netlist_of(name: &str, cell: Subckt) -> Netlist {
    let mut nl = Netlist::new(name);
    nl.add_subckt(cell).expect("single template");
    nl
}

/// DAC1: 2-bit binary-weighted capacitor DAC with NMOS switches and a
/// reset device — 10 devices.
pub fn dac1(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDAC1);
    let wsw = [1.0, 2.0, 3.0][rng.gen_range(0..3)];
    let cell = CellBuilder::new("dac1", ["b0", "b1", "vref", "out", "vdd", "vss"])
        .class(CircuitClass::Dac)
        // Unit-capacitor bank: 4 units (1 + 1 + 2-as-two-units).
        .cfmom("Cu0", "out", "t0", 2.0, 2.0, 4)
        .cfmom("Cu1", "out", "t1", 2.0, 2.0, 4)
        .cfmom("Cu2", "out", "t1", 2.0, 2.0, 4)
        .cfmom("Cd", "out", "vss", 2.0, 2.0, 4)
        // Bit switches (pull to vref or ground).
        .mos("Ms0a", DeviceType::NchLvt, "t0", "b0", "vss", "vss", wsw, 0.1)
        .mos("Ms0b", DeviceType::PchLvt, "t0", "b0", "vref", "vdd", 2.0 * wsw, 0.1)
        .mos("Ms1a", DeviceType::NchLvt, "t1", "b1", "vss", "vss", wsw, 0.1)
        .mos("Ms1b", DeviceType::PchLvt, "t1", "b1", "vref", "vdd", 2.0 * wsw, 0.1)
        // Reset switch + dummy.
        .mos("Mrst", DeviceType::Nch, "out", "b0", "vss", "vss", 1.0, 0.1)
        .mos("Mdum", DeviceType::Nch, "vss", "vss", "vss", "vss", 1.0, 0.1)
        .sym_group(&["Cu0", "Cu1", "Cu2", "Cd"])
        .sym("Ms0a", "Ms1a")
        .sym("Ms0b", "Ms1b")
        .build();
    netlist_of("dac1", cell)
}

/// DAC2: 4-bit R-2R ladder with NMOS bit switches — 12 devices on a
/// net-rich ladder.
pub fn dac2(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDAC2);
    let r_unit = [5e3, 10e3][rng.gen_range(0..2)];
    let mut b = CellBuilder::new(
        "dac2",
        ["b0", "b1", "b2", "b3", "vref", "out", "vss"],
    )
    .class(CircuitClass::Dac);
    // Ladder: series R between taps, 2R legs to switches.
    let taps = ["out", "l1", "l2", "l3"];
    for (i, pair) in taps.windows(2).enumerate() {
        b = b.res(&format!("Rs{i}"), pair[0], pair[1], r_unit);
    }
    let mut legs = Vec::new();
    for (i, tap) in taps.iter().enumerate() {
        let name = format!("Rl{i}");
        b = b.res(&name, tap, &format!("sw{i}"), 2.0 * r_unit);
        legs.push(name);
    }
    // Terminator leg.
    b = b.res("Rt", "l3", "vss", 2.0 * r_unit);
    // Bit switches.
    let mut sws = Vec::new();
    for i in 0..4 {
        let name = format!("Msw{i}");
        b = b.mos(
            &name,
            DeviceType::NchLvt,
            &format!("sw{i}"),
            &format!("b{i}"),
            "vref",
            "vss",
            2.0,
            0.1,
        );
        sws.push(name);
    }
    let legs_ref: Vec<&str> = legs.iter().map(String::as_str).collect();
    let sws_ref: Vec<&str> = sws.iter().map(String::as_str).collect();
    let cell = b.sym_group(&legs_ref).sym_group(&sws_ref).build();
    netlist_of("dac2", cell)
}

/// Canonical template name of a current-steering DAC slice.
pub const CURRENT_DAC: &str = "idac_slice";

/// A 1-bit current-steering DAC slice: cascoded current source steered
/// by a differential switch pair — 6 devices. Used in matched pairs by
/// the CTΔΣ feedback path.
pub fn current_dac_cell(w_src: f64) -> Subckt {
    CellBuilder::new(CURRENT_DAC, ["d", "db", "outp", "outn", "vb1", "vb2", "vdd"])
        .class(CircuitClass::Dac)
        .mos("Msrc", DeviceType::Pch, "cs", "vb1", "vdd", "vdd", w_src, 0.5)
        .mos("Mcas", DeviceType::Pch, "cd", "vb2", "cs", "vdd", w_src, 0.25)
        .mos("Msw1", DeviceType::PchLvt, "outp", "d", "cd", "vdd", w_src / 2.0, 0.1)
        .mos("Msw2", DeviceType::PchLvt, "outn", "db", "cd", "vdd", w_src / 2.0, 0.1)
        .res("Rdeg1", "outp", "op", 500.0)
        .res("Rdeg2", "outn", "on", 500.0)
        .sym("Msw1", "Msw2")
        .sym("Rdeg1", "Rdeg2")
        .build()
}

/// Build a binary-weighted unit-capacitor DAC template with
/// `bits` bits (unit counts 1, 1, 2, 4, …, 2^(bits−1); the extra unit is
/// the LSB dummy) plus one switch pair per bit.
///
/// Returns the template; `name` lets the SAR instantiate a P-side and an
/// N-side from the same layout-matched template.
pub fn cap_dac_cell(name: &str, bits: usize) -> Subckt {
    assert!(bits >= 1, "a DAC needs at least one bit");
    let ports: Vec<String> = (0..bits)
        .map(|i| format!("b{i}"))
        .chain(["top".into(), "vref".into(), "vdd".into(), "vss".into()])
        .collect();
    let mut b = CellBuilder::new(name, ports).class(CircuitClass::Dac);
    let mut units: Vec<String> = Vec::new();
    // Dummy LSB unit tied to ground reference.
    b = b.cfmom("Cu_dummy", "top", "vss", 2.0, 2.0, 4);
    units.push("Cu_dummy".into());
    for bit in 0..bits {
        let count = 1usize << bit;
        for u in 0..count {
            let cname = format!("Cu{bit}_{u}");
            b = b.cfmom(&cname, "top", &format!("bot{bit}"), 2.0, 2.0, 4);
            units.push(cname);
        }
        // Switch pair per bit: pull bottom plate to vref or vss.
        b = b
            .mos(
                &format!("Msr{bit}"),
                DeviceType::PchLvt,
                &format!("bot{bit}"),
                &format!("b{bit}"),
                "vref",
                "vdd",
                2.0,
                0.1,
            )
            .mos(
                &format!("Msg{bit}"),
                DeviceType::NchLvt,
                &format!("bot{bit}"),
                &format!("b{bit}"),
                "vss",
                "vss",
                1.0,
                0.1,
            );
    }
    let unit_refs: Vec<&str> = units.iter().map(String::as_str).collect();
    b.sym_group(&unit_refs).build()
}

/// Number of devices in a [`cap_dac_cell`] with `bits` bits.
pub fn cap_dac_device_count(bits: usize) -> usize {
    // units: 1 dummy + (2^bits − 1); switches: 2 per bit.
    (1 << bits) + 2 * bits
}

/// The block-level DAC suite of Table VI.
pub fn dac_suite(seed: u64) -> Vec<Netlist> {
    vec![dac1(seed), dac2(seed)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;

    #[test]
    fn device_counts_match_table6() {
        assert_eq!(
            FlatCircuit::elaborate(&dac1(1)).unwrap().devices().len(),
            10
        );
        assert_eq!(
            FlatCircuit::elaborate(&dac2(1)).unwrap().devices().len(),
            12
        );
    }

    #[test]
    fn cap_dac_counts_follow_formula() {
        for bits in 1..=6 {
            let mut nl = Netlist::new("d");
            nl.add_subckt(cap_dac_cell("d", bits)).unwrap();
            let flat = FlatCircuit::elaborate(&nl).unwrap();
            assert_eq!(flat.devices().len(), cap_dac_device_count(bits), "bits={bits}");
        }
    }

    #[test]
    fn current_dac_slice_is_symmetric() {
        let mut nl = Netlist::new(CURRENT_DAC);
        nl.add_subckt(current_dac_cell(4.0)).unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        assert_eq!(flat.devices().len(), 6);
        assert_eq!(flat.ground_truth().len(), 2);
    }

    #[test]
    fn dac2_ladder_has_many_nets() {
        let flat = FlatCircuit::elaborate(&dac2(1)).unwrap();
        // R-2R ladders are net-rich: more nets than a flat cap bank.
        assert!(flat.net_count() >= 12, "nets = {}", flat.net_count());
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bit_dac_panics() {
        let _ = cap_dac_cell("bad", 0);
    }
}
