//! Six clocked-comparator benchmarks matching Table VI's COMP1–COMP6
//! device counts (47, 8, 34, 22, 17, 17).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use ancstr_netlist::{CircuitClass, DeviceType, Netlist};

use crate::builder::CellBuilder;

fn draw_w(rng: &mut StdRng) -> f64 {
    const CHOICES: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 6.0];
    CHOICES[rng.gen_range(0..CHOICES.len())]
}

fn netlist_of(name: &str, cell: ancstr_netlist::Subckt) -> Netlist {
    let mut nl = Netlist::new(name);
    nl.add_subckt(cell).expect("single template");
    nl
}

/// Add a StrongARM latch core (11 transistors) to a builder.
///
/// Prefix distinguishes multiple cores in one cell. Nets: `inp/inn`
/// inputs, `op/on` outputs, `ck` clock.
#[allow(clippy::too_many_arguments)]
fn strongarm(
    mut b: CellBuilder,
    pre: &str,
    inp: &str,
    inn: &str,
    op: &str,
    on: &str,
    ck: &str,
    w_in: f64,
    flavor: DeviceType,
) -> CellBuilder {
    let x1 = format!("{pre}x1");
    let x2 = format!("{pre}x2");
    let tail = format!("{pre}tail");
    let m = |i: usize| format!("M{pre}{i}");
    b = b
        .mos(&m(1), flavor, &x1, inp, &tail, "vss", w_in, 0.1)
        .mos(&m(2), flavor, &x2, inn, &tail, "vss", w_in, 0.1)
        .mos(&m(3), flavor, on, op, &x1, "vss", w_in, 0.1)
        .mos(&m(4), flavor, op, on, &x2, "vss", w_in, 0.1)
        .mos(&m(5), DeviceType::PchLvt, on, op, "vdd", "vdd", 2.0 * w_in, 0.1)
        .mos(&m(6), DeviceType::PchLvt, op, on, "vdd", "vdd", 2.0 * w_in, 0.1)
        .mos(&m(7), DeviceType::Nch, &tail, ck, "vss", "vss", 2.0 * w_in, 0.1)
        .mos(&m(8), DeviceType::PchLvt, op, ck, "vdd", "vdd", 1.0, 0.1)
        .mos(&m(9), DeviceType::PchLvt, on, ck, "vdd", "vdd", 1.0, 0.1)
        .mos(&m(10), DeviceType::PchLvt, &x1, ck, "vdd", "vdd", 1.0, 0.1)
        .mos(&m(11), DeviceType::PchLvt, &x2, ck, "vdd", "vdd", 1.0, 0.1);
    b = b
        .sym(&m(1), &m(2))
        .sym(&m(3), &m(4))
        .sym(&m(5), &m(6))
        .sym(&m(8), &m(9))
        .sym(&m(10), &m(11))
        .self_sym(&m(7));
    b
}

/// Add a NAND-based SR latch (8 transistors) to a builder.
fn sr_nand(mut b: CellBuilder, pre: &str, s: &str, r: &str, q: &str, qb: &str) -> CellBuilder {
    let m = |i: usize| format!("M{pre}s{i}");
    b = b
        .mos(&m(1), DeviceType::PchLvt, q, s, "vdd", "vdd", 2.0, 0.1)
        .mos(&m(2), DeviceType::PchLvt, q, qb, "vdd", "vdd", 2.0, 0.1)
        .mos(&m(3), DeviceType::NchLvt, q, s, &format!("{pre}n1"), "vss", 2.0, 0.1)
        .mos(&m(4), DeviceType::NchLvt, &format!("{pre}n1"), qb, "vss", "vss", 2.0, 0.1)
        .mos(&m(5), DeviceType::PchLvt, qb, r, "vdd", "vdd", 2.0, 0.1)
        .mos(&m(6), DeviceType::PchLvt, qb, q, "vdd", "vdd", 2.0, 0.1)
        .mos(&m(7), DeviceType::NchLvt, qb, r, &format!("{pre}n2"), "vss", 2.0, 0.1)
        .mos(&m(8), DeviceType::NchLvt, &format!("{pre}n2"), q, "vss", "vss", 2.0, 0.1);
    b = b
        .sym(&m(1), &m(5))
        .sym(&m(2), &m(6))
        .sym(&m(3), &m(7))
        .sym(&m(4), &m(8));
    b
}

/// Add an inverter pair (2 transistors) driving `y` from `a`.
fn inv_pair(b: CellBuilder, pre: &str, a: &str, y: &str, w: f64) -> CellBuilder {
    b.mos(
        &format!("M{pre}p"),
        DeviceType::PchLvt,
        y,
        a,
        "vdd",
        "vdd",
        2.0 * w,
        0.1,
    )
    .mos(&format!("M{pre}n"), DeviceType::NchLvt, y, a, "vss", "vss", w, 0.1)
}

/// COMP1: preamp + double-tail latch + SR latch + output buffers +
/// clock chain + calibration cap banks — 47 devices.
pub fn comp1(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0101);
    let w_pre = draw_w(&mut rng);
    let w_in = draw_w(&mut rng);
    let mut b = CellBuilder::new(
        "comp1",
        ["inp", "inn", "outp", "outn", "clk", "vbias", "vdd", "vss"],
    )
    .class(CircuitClass::Comparator)
    // Preamp: 5T OTA.
    .mos("MA1", DeviceType::NchLvt, "p1", "inp", "ptail", "vss", w_pre, 0.15)
    .mos("MA2", DeviceType::NchLvt, "p2", "inn", "ptail", "vss", w_pre, 0.15)
    .mos("MA3", DeviceType::Pch, "p1", "p1", "vdd", "vdd", w_pre, 0.2)
    .mos("MA4", DeviceType::Pch, "p2", "p1", "vdd", "vdd", w_pre, 0.2)
    .mos("MA5", DeviceType::Nch, "ptail", "vbias", "vss", "vss", 2.0, 0.3)
    // Double-tail stage 1.
    .mos("MB1", DeviceType::NchLvt, "d1", "p1", "t1", "vss", w_in, 0.1)
    .mos("MB2", DeviceType::NchLvt, "d2", "p2", "t1", "vss", w_in, 0.1)
    .mos("MB3", DeviceType::Nch, "t1", "clk", "vss", "vss", 3.0, 0.1)
    .mos("MB4", DeviceType::PchLvt, "d1", "clk", "vdd", "vdd", 1.5, 0.1)
    .mos("MB5", DeviceType::PchLvt, "d2", "clk", "vdd", "vdd", 1.5, 0.1)
    // Double-tail stage 2 (latch).
    .mos("MC1", DeviceType::PchLvt, "lq", "d1", "t2", "vdd", 2.0, 0.1)
    .mos("MC2", DeviceType::PchLvt, "lqb", "d2", "t2", "vdd", 2.0, 0.1)
    .mos("MC3", DeviceType::NchLvt, "lq", "lqb", "vss", "vss", 2.0, 0.1)
    .mos("MC4", DeviceType::NchLvt, "lqb", "lq", "vss", "vss", 2.0, 0.1)
    .mos("MC5", DeviceType::PchLvt, "lq", "lqb", "t2", "vdd", 2.0, 0.1)
    .mos("MC6", DeviceType::PchLvt, "lqb", "lq", "t2", "vdd", 2.0, 0.1)
    .mos("MC7", DeviceType::Pch, "t2", "clkb", "vdd", "vdd", 4.0, 0.1);
    b = sr_nand(b, "L", "lq", "lqb", "sq", "sqb");
    // Output buffers: two inverters per side.
    b = inv_pair(b, "Ba1", "sq", "b1", 1.0);
    b = inv_pair(b, "Ba2", "b1", "outp", 2.0);
    b = inv_pair(b, "Bb1", "sqb", "b2", 1.0);
    b = inv_pair(b, "Bb2", "b2", "outn", 2.0);
    // Clock chain: three inverters of growing drive (unmatched decoys).
    b = inv_pair(b, "Ck1", "clk", "ck1", 1.0);
    b = inv_pair(b, "Ck2", "ck1", "clkb", 2.0);
    b = inv_pair(b, "Ck3", "clkb", "ckd", 4.0);
    // Calibration capacitor banks on the latch nodes (3 units each).
    let mut ca = Vec::new();
    let mut cb = Vec::new();
    for i in 0..3 {
        let a = format!("Cca{i}");
        let c = format!("Ccb{i}");
        b = b.cfmom(&a, "d1", "vss", 2.0, 2.0, 3);
        b = b.cfmom(&c, "d2", "vss", 2.0, 2.0, 3);
        ca.push(a);
        cb.push(c);
    }
    let all: Vec<&str> = ca.iter().chain(cb.iter()).map(String::as_str).collect();
    let cell = b
        .cap("CL1", "outp", "vss", 20e-15)
        .cap("CL2", "outn", "vss", 20e-15)
        .sym("CL1", "CL2")
        .sym("MA1", "MA2")
        .sym("MA3", "MA4")
        .sym("MB1", "MB2")
        .sym("MB4", "MB5")
        .sym("MC1", "MC2")
        .sym("MC3", "MC4")
        .sym("MC5", "MC6")
        .sym("MBa1p", "MBb1p")
        .sym("MBa1n", "MBb1n")
        .sym("MBa2p", "MBb2p")
        .sym("MBa2n", "MBb2n")
        .sym_group(&all)
        .build();
    netlist_of("comp1", cell)
}

/// COMP2: bare StrongARM core without precharge on the internal nodes —
/// 8 devices.
pub fn comp2(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0102);
    let w_in = draw_w(&mut rng);
    let cell = CellBuilder::new(
        "comp2",
        ["inp", "inn", "outp", "outn", "clk", "vdd", "vss"],
    )
    .class(CircuitClass::Comparator)
    .mos("M1", DeviceType::NchLvt, "x1", "inp", "tail", "vss", w_in, 0.1)
    .mos("M2", DeviceType::NchLvt, "x2", "inn", "tail", "vss", w_in, 0.1)
    .mos("M3", DeviceType::NchLvt, "outn", "outp", "x1", "vss", w_in, 0.1)
    .mos("M4", DeviceType::NchLvt, "outp", "outn", "x2", "vss", w_in, 0.1)
    .mos("M5", DeviceType::PchLvt, "outn", "outp", "vdd", "vdd", 2.0 * w_in, 0.1)
    .mos("M6", DeviceType::PchLvt, "outp", "outn", "vdd", "vdd", 2.0 * w_in, 0.1)
    .mos("M7", DeviceType::Nch, "tail", "clk", "vss", "vss", 3.0, 0.1)
    // Symmetric output equalizer (keeps the mirror automorphism intact).
    .mos("M8", DeviceType::PchLvt, "outp", "clk", "outn", "vdd", 1.0, 0.1)
    .sym("M1", "M2")
    .sym("M3", "M4")
    .sym("M5", "M6")
    .self_sym("M7")
    .build();
    netlist_of("comp2", cell)
}

/// COMP3: preamp + StrongARM + SR latch + output buffers — 34 devices.
pub fn comp3(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0103);
    let w_pre = draw_w(&mut rng);
    let w_in = draw_w(&mut rng);
    let mut b = CellBuilder::new(
        "comp3",
        ["inp", "inn", "outp", "outn", "clk", "vbias", "vdd", "vss"],
    )
    .class(CircuitClass::Comparator)
    .mos("MA1", DeviceType::NchLvt, "p1", "inp", "ptail", "vss", w_pre, 0.15)
    .mos("MA2", DeviceType::NchLvt, "p2", "inn", "ptail", "vss", w_pre, 0.15)
    .mos("MA3", DeviceType::Pch, "p1", "p1", "vdd", "vdd", w_pre, 0.2)
    .mos("MA4", DeviceType::Pch, "p2", "p1", "vdd", "vdd", w_pre, 0.2)
    .mos("MA5", DeviceType::Nch, "ptail", "vbias", "vss", "vss", 2.0, 0.3);
    b = b.sym("MA1", "MA2").sym("MA3", "MA4");
    b = strongarm(b, "S", "p1", "p2", "lq", "lqb", "clk", w_in, DeviceType::NchLvt);
    b = sr_nand(b, "L", "lq", "lqb", "sq", "sqb");
    b = inv_pair(b, "Ba", "sq", "b1", 1.0);
    b = inv_pair(b, "Ba2", "b1", "outp", 2.0);
    b = inv_pair(b, "Bb", "sqb", "b2", 1.0);
    b = inv_pair(b, "Bb2", "b2", "outn", 2.0);
    b = b
        .sym("MBap", "MBbp")
        .sym("MBan", "MBbn")
        .sym("MBa2p", "MBb2p")
        .sym("MBa2n", "MBb2n")
        .cap("C1", "lq", "vss", 10e-15)
        .cap("C2", "lqb", "vss", 10e-15)
        .sym("C1", "C2");
    netlist_of("comp3", b.build())
}

/// COMP4: double-tail comparator + SR latch — 22 devices.
pub fn comp4(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0104);
    let w_in = draw_w(&mut rng);
    let mut b = CellBuilder::new(
        "comp4",
        ["inp", "inn", "outp", "outn", "clk", "clkb", "vdd", "vss"],
    )
    .class(CircuitClass::Comparator)
    .mos("M1", DeviceType::NchLvt, "d1", "inp", "t1", "vss", w_in, 0.1)
    .mos("M2", DeviceType::NchLvt, "d2", "inn", "t1", "vss", w_in, 0.1)
    .mos("M3", DeviceType::Nch, "t1", "clk", "vss", "vss", 3.0, 0.1)
    .mos("M4", DeviceType::PchLvt, "d1", "clk", "vdd", "vdd", 1.5, 0.1)
    .mos("M5", DeviceType::PchLvt, "d2", "clk", "vdd", "vdd", 1.5, 0.1)
    .mos("M6", DeviceType::PchLvt, "lq", "d1", "t2", "vdd", 2.0, 0.1)
    .mos("M7", DeviceType::PchLvt, "lqb", "d2", "t2", "vdd", 2.0, 0.1)
    .mos("M8", DeviceType::NchLvt, "lq", "lqb", "vss", "vss", 2.0, 0.1)
    .mos("M9", DeviceType::NchLvt, "lqb", "lq", "vss", "vss", 2.0, 0.1)
    .mos("M10", DeviceType::PchLvt, "lq", "lqb", "t2", "vdd", 2.0, 0.1)
    .mos("M11", DeviceType::PchLvt, "lqb", "lq", "t2", "vdd", 2.0, 0.1)
    .mos("M12", DeviceType::Pch, "t2", "clkb", "vdd", "vdd", 4.0, 0.1)
    .sym("M1", "M2")
    .sym("M4", "M5")
    .sym("M6", "M7")
    .sym("M8", "M9")
    .sym("M10", "M11");
    b = sr_nand(b, "L", "lq", "lqb", "outp", "outn");
    b = b
        .cap("C1", "d1", "vss", 5e-15)
        .cap("C2", "d2", "vss", 5e-15)
        .sym("C1", "C2");
    netlist_of("comp4", b.build())
}

/// COMP5: StrongARM + cross-coupled NOR SR latch — 17 devices.
pub fn comp5(seed: u64) -> Netlist {
    comp5_variant(seed, DeviceType::NchLvt, "comp5")
}

/// COMP6: the COMP5 topology in a high-Vt flavour (a "different
/// topology for the same functionality" in the paper's sense) — 17
/// devices.
pub fn comp6(seed: u64) -> Netlist {
    comp5_variant(seed.wrapping_add(1), DeviceType::NchHvt, "comp6")
}

fn comp5_variant(seed: u64, flavor: DeviceType, name: &str) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0105);
    let w_in = draw_w(&mut rng);
    let mut b = CellBuilder::new(
        name,
        ["inp", "inn", "outp", "outn", "clk", "vdd", "vss"],
    )
    .class(CircuitClass::Comparator);
    b = strongarm(b, "S", "inp", "inn", "lq", "lqb", "clk", w_in, flavor);
    // Cross-coupled inverter SR (4 transistors).
    b = b
        .mos("MR1", DeviceType::PchLvt, "outp", "lq", "vdd", "vdd", 2.0, 0.1)
        .mos("MR2", DeviceType::NchLvt, "outp", "lqb", "vss", "vss", 1.0, 0.1)
        .mos("MR3", DeviceType::PchLvt, "outn", "lqb", "vdd", "vdd", 2.0, 0.1)
        .mos("MR4", DeviceType::NchLvt, "outn", "lq", "vss", "vss", 1.0, 0.1)
        .sym("MR1", "MR3")
        .sym("MR2", "MR4")
        .cap("C1", "outp", "vss", 8e-15)
        .cap("C2", "outn", "vss", 8e-15)
        .sym("C1", "C2");
    netlist_of(name, b.build())
}

/// The complete comparator suite, in Table VI order.
pub fn comparator_suite(seed: u64) -> Vec<Netlist> {
    vec![
        comp1(seed),
        comp2(seed),
        comp3(seed),
        comp4(seed),
        comp5(seed),
        comp6(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::flat::FlatCircuit;

    #[test]
    fn device_counts_match_table6() {
        let expect = [47usize, 8, 34, 22, 17, 17];
        for (nl, &n) in comparator_suite(1).iter().zip(&expect) {
            let flat = FlatCircuit::elaborate(nl).unwrap();
            assert_eq!(flat.devices().len(), n, "{}", nl.top());
        }
    }

    #[test]
    fn suite_totals_match_table4() {
        let total: usize = comparator_suite(1)
            .iter()
            .map(|nl| FlatCircuit::elaborate(nl).unwrap().devices().len())
            .sum();
        assert_eq!(total, 145);
    }

    #[test]
    fn comp5_and_comp6_differ_only_in_flavor() {
        let a = FlatCircuit::elaborate(&comp5(1)).unwrap();
        let b = FlatCircuit::elaborate(&comp6(1)).unwrap();
        assert_eq!(a.devices().len(), b.devices().len());
        let hvt = b
            .devices()
            .iter()
            .filter(|d| d.dtype == DeviceType::NchHvt)
            .count();
        assert!(hvt >= 4, "comp6 should use high-Vt NMOS, found {hvt}");
        assert_eq!(
            a.devices()
                .iter()
                .filter(|d| d.dtype == DeviceType::NchHvt)
                .count(),
            0
        );
    }

    #[test]
    fn ground_truth_pairs_share_type_and_size() {
        for nl in comparator_suite(4) {
            let flat = FlatCircuit::elaborate(&nl).unwrap();
            assert!(!flat.ground_truth().is_empty(), "{}", nl.top());
            for c in flat.ground_truth().iter() {
                let a = flat.node(c.pair.lo()).device_index().unwrap();
                let b = flat.node(c.pair.hi()).device_index().unwrap();
                let (da, db) = (&flat.devices()[a], &flat.devices()[b]);
                assert_eq!(da.dtype, db.dtype, "{} vs {}", da.path, db.path);
                assert!((da.geometry.width - db.geometry.width).abs() < 1e-12);
            }
        }
    }
}
