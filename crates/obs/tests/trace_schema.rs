//! Trace-schema tests: a golden JSONL test pinning the exact event
//! shape, and a proptest that randomly nested spans always close in
//! LIFO order with non-negative durations.

use ancstr_obs::{validate_line, validate_trace, Tracer};
use proptest::prelude::*;

/// Mask the two timing fields, which vary run to run, so the rest of
/// the line can be compared byte-for-byte.
fn mask_timing(line: &str) -> String {
    let mut out = String::new();
    let mut rest = line;
    for key in ["\"ts_ns\":", "\"dur_ns\":"] {
        if let Some(idx) = rest.find(key) {
            let (head, tail) = rest.split_at(idx + key.len());
            out.push_str(head);
            out.push('T');
            rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
        }
    }
    out.push_str(rest);
    out
}

#[test]
fn golden_trace_matches_expected_lines() {
    let (tracer, buf) = Tracer::in_memory();
    {
        let _parse = tracer.span("parse", "parse", &[("path", "a.sp".into())]);
    }
    {
        let _train = tracer.span("train", "train", &[("epochs", 2u64.into())]);
        tracer.event(
            "train",
            "epoch",
            &[("epoch", 0u64.into()), ("loss", 1.5.into())],
        );
        {
            let _ckpt = tracer.span("train", "checkpoint", &[]);
        }
    }
    tracer.flush();

    let got: Vec<String> = buf.contents().lines().map(mask_timing).collect();
    let want = [
        r#"{"ts_ns":T,"kind":"span_start","span":"parse","stage":"parse","id":1,"parent":0,"fields":{"path":"a.sp"}}"#,
        r#"{"ts_ns":T,"kind":"span_end","span":"parse","stage":"parse","id":1,"parent":0,"dur_ns":T,"fields":{}}"#,
        r#"{"ts_ns":T,"kind":"span_start","span":"train","stage":"train","id":2,"parent":0,"fields":{"epochs":2}}"#,
        r#"{"ts_ns":T,"kind":"event","span":"epoch","stage":"train","id":3,"parent":2,"fields":{"epoch":0,"loss":1.5}}"#,
        r#"{"ts_ns":T,"kind":"span_start","span":"checkpoint","stage":"train","id":4,"parent":2,"fields":{}}"#,
        r#"{"ts_ns":T,"kind":"span_end","span":"checkpoint","stage":"train","id":4,"parent":2,"dur_ns":T,"fields":{}}"#,
        r#"{"ts_ns":T,"kind":"span_end","span":"train","stage":"train","id":2,"parent":0,"dur_ns":T,"fields":{}}"#,
    ];
    assert_eq!(got, want, "golden trace drifted");
}

#[test]
fn every_event_has_the_required_keys() {
    let (tracer, buf) = Tracer::in_memory();
    {
        let _s = tracer.span("detect", "detect", &[]);
        tracer.event("detect", "warning", &[("skipped_pairs", 3u64.into())]);
    }
    tracer.flush();
    for line in buf.contents().lines() {
        let ev = validate_line(line).expect("schema-valid line");
        assert!(!ev.span.is_empty());
        assert!(!ev.stage.is_empty());
        // `fields` key itself is mandatory; validate_line errors if absent.
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Random span trees: ops drawn from {close, event, open, open};
    /// the resulting trace must always validate — LIFO close order,
    /// non-decreasing timestamps, non-negative durations — because
    /// RAII guards make any other shape unrepresentable.
    #[test]
    fn nested_spans_close_lifo_with_nonnegative_durations(
        ops in prop::collection::vec(0u8..4, 1..40),
    ) {
        let (tracer, buf) = Tracer::in_memory();
        let mut stack = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    stack.pop(); // close innermost (drop order = LIFO)
                }
                1 => tracer.event("stage", "tick", &[("i", (i as u64).into())]),
                _ => stack.push(tracer.span(
                    "stage",
                    &format!("s{i}"),
                    &[("depth", (stack.len() as u64).into())],
                )),
            }
        }
        while stack.pop().is_some() {} // close remaining spans innermost-first
        tracer.flush();
        let events = match validate_trace(&buf.contents()) {
            Ok(events) => events,
            Err(e) => return Err(TestCaseError::fail(e)),
        };
        let mut opens = 0usize;
        let mut closes = 0usize;
        for ev in &events {
            match ev.kind.as_str() {
                "span_start" => opens += 1,
                "span_end" => {
                    closes += 1;
                    prop_assert!(ev.dur_ns.is_some());
                }
                _ => {}
            }
        }
        prop_assert_eq!(opens, closes, "every span that opened also closed");
    }
}
