//! Minimal JSON writing and parsing — the workspace's one shared
//! hand-rolled JSON layer.
//!
//! The trace emitter needs to *write* one flat JSON object per line, the
//! schema validator needs to *read* those lines back, and the `ancstr
//! serve` daemon encodes its HTTP response bodies (and its load-test
//! client decodes them) through the same [`Json`] type — one
//! implementation instead of a second copy per consumer. Everything
//! lives here so the crate stays dependency-free. The parser handles the
//! full JSON grammar (objects, arrays, strings with escapes, numbers,
//! literals) — enough to validate any line a conforming tracer could
//! emit, and to reject malformed ones; [`Json::render`] is the inverse
//! and produces a compact single-line document.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order is not required for
    /// validation, so a sorted map is fine.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: look a key up in an object value (`None` for
    /// non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// An empty object, ready for [`Json::set`] chaining.
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Insert `key` into an object value (builder style). Panics on
    /// non-object values — construction sites always start from
    /// [`Json::obj`].
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(m) => {
                m.insert(key.to_owned(), value.into());
            }
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Serialize to a compact single-line JSON document — the inverse of
    /// [`parse`]. Non-finite numbers have no JSON spelling and render as
    /// `null` (the same policy Prometheus clients use).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) if !n.is_finite() => out.push_str("null"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one complete JSON document; trailing content is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while *pos < c.len() && matches!(c[*pos], ' ' | '\t' | '\n' | '\r') {
        *pos += 1;
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some('{') => parse_obj(c, pos),
        Some('[') => parse_arr(c, pos),
        Some('"') => parse_str(c, pos).map(Json::Str),
        Some('t') => parse_lit(c, pos, "true", Json::Bool(true)),
        Some('f') => parse_lit(c, pos, "false", Json::Bool(false)),
        Some('n') => parse_lit(c, pos, "null", Json::Null),
        Some(_) => parse_num(c, pos),
    }
}

fn parse_lit(c: &[char], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    for l in lit.chars() {
        if c.get(*pos) != Some(&l) {
            return Err(format!("bad literal at offset {pos}", pos = *pos));
        }
        *pos += 1;
    }
    Ok(v)
}

fn parse_num(c: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < c.len()
        && matches!(c[*pos], '0'..='9' | '-' | '+' | '.' | 'e' | 'E')
    {
        *pos += 1;
    }
    let s: String = c[start..*pos].iter().collect();
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{s}` at offset {start}"))
}

fn parse_str(c: &[char], pos: &mut usize) -> Result<String, String> {
    if c.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match c.get(*pos) {
            None => return Err("unterminated string".into()),
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match c.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            *pos += 1;
                            let d = c
                                .get(*pos)
                                .and_then(|d| d.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(&ch) => {
                out.push(ch);
                *pos += 1;
            }
        }
    }
}

fn parse_obj(c: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(c, pos);
    if c.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(c, pos);
        let key = parse_str(c, pos)?;
        skip_ws(c, pos);
        if c.get(*pos) != Some(&':') {
            return Err(format!("expected `:` at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(c, pos)?;
        if map.insert(key.clone(), val).is_some() {
            return Err(format!("duplicate key `{key}`"));
        }
        skip_ws(c, pos);
        match c.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(c: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(c, pos);
    if c.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(c, pos)?);
        skip_ws(c, pos);
        match c.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_simple_objects() {
        let v = parse(r#"{"a":1,"b":"x\n","c":[true,null,-2.5e3]}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["a"].as_num(), Some(1.0));
        assert_eq!(obj["b"].as_str(), Some("x\n"));
        assert_eq!(
            obj["c"],
            Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-2500.0)])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1}x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn render_round_trips_through_parse() {
        let doc = Json::obj()
            .set("status", "ok")
            .set("count", 3u64)
            .set("ratio", 0.25)
            .set("flag", true)
            .set("none", Json::Null)
            .set("items", vec![Json::from("a\nb"), Json::from(1.5)]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
        // Objects render keys in sorted order, so output is stable.
        assert_eq!(text, doc.render());
    }

    #[test]
    fn render_maps_non_finite_numbers_to_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escaping_round_trips_through_parse() {
        let raw = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{2603}";
        let mut line = String::new();
        write_escaped(&mut line, raw);
        assert_eq!(parse(&line).unwrap().as_str(), Some(raw));
    }
}
