//! Minimal JSON writing and parsing.
//!
//! The trace emitter needs to *write* one flat JSON object per line, and
//! the schema validator needs to *read* those lines back. Both live here
//! so the crate stays dependency-free. The parser handles the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, literals) —
//! enough to validate any line a conforming tracer could emit, and to
//! reject malformed ones.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order is not required for
    /// validation, so a sorted map is fine.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one complete JSON document; trailing content is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while *pos < c.len() && matches!(c[*pos], ' ' | '\t' | '\n' | '\r') {
        *pos += 1;
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some('{') => parse_obj(c, pos),
        Some('[') => parse_arr(c, pos),
        Some('"') => parse_str(c, pos).map(Json::Str),
        Some('t') => parse_lit(c, pos, "true", Json::Bool(true)),
        Some('f') => parse_lit(c, pos, "false", Json::Bool(false)),
        Some('n') => parse_lit(c, pos, "null", Json::Null),
        Some(_) => parse_num(c, pos),
    }
}

fn parse_lit(c: &[char], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    for l in lit.chars() {
        if c.get(*pos) != Some(&l) {
            return Err(format!("bad literal at offset {pos}", pos = *pos));
        }
        *pos += 1;
    }
    Ok(v)
}

fn parse_num(c: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < c.len()
        && matches!(c[*pos], '0'..='9' | '-' | '+' | '.' | 'e' | 'E')
    {
        *pos += 1;
    }
    let s: String = c[start..*pos].iter().collect();
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{s}` at offset {start}"))
}

fn parse_str(c: &[char], pos: &mut usize) -> Result<String, String> {
    if c.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match c.get(*pos) {
            None => return Err("unterminated string".into()),
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match c.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            *pos += 1;
                            let d = c
                                .get(*pos)
                                .and_then(|d| d.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(&ch) => {
                out.push(ch);
                *pos += 1;
            }
        }
    }
}

fn parse_obj(c: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(c, pos);
    if c.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(c, pos);
        let key = parse_str(c, pos)?;
        skip_ws(c, pos);
        if c.get(*pos) != Some(&':') {
            return Err(format!("expected `:` at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(c, pos)?;
        if map.insert(key.clone(), val).is_some() {
            return Err(format!("duplicate key `{key}`"));
        }
        skip_ws(c, pos);
        match c.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(c: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(c, pos);
    if c.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(c, pos)?);
        skip_ws(c, pos);
        match c.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_simple_objects() {
        let v = parse(r#"{"a":1,"b":"x\n","c":[true,null,-2.5e3]}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["a"].as_num(), Some(1.0));
        assert_eq!(obj["b"].as_str(), Some("x\n"));
        assert_eq!(
            obj["c"],
            Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-2500.0)])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1}x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escaping_round_trips_through_parse() {
        let raw = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{2603}";
        let mut line = String::new();
        write_escaped(&mut line, raw);
        assert_eq!(parse(&line).unwrap().as_str(), Some(raw));
    }
}
