//! Offline trace analysis: merge JSONL traces from one or more
//! replicas, group spans by trace id, and render per-trace waterfalls
//! plus aggregate per-span latency quantiles.
//!
//! Each replica's tracer stamps timestamps against its **own** process
//! epoch (`std::time::Instant` at tracer creation), so raw `ts_ns`
//! values from different files are incomparable. The merge therefore
//! aligns a remote subtree by anchoring its root at the start of the
//! `forward` hop span that produced it on the origin replica — the only
//! causal ordering the traces themselves guarantee. When the remote
//! subtree claims to have lasted *longer* than the hop that contains it
//! the clocks (or the files) are inconsistent; that is reported as a
//! clock-skew **warning**, never an error, because partial traces from
//! a degraded fleet are exactly when the tool is most needed.
//!
//! Trace identity rides in span `fields` under the `"trace"` key and is
//! inherited down the parent chain within a file, so only the root
//! span of a request needs stamping.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;
use crate::trace::{validate_trace, TraceEvent};

/// One input trace file: a display label (typically the file name or
/// replica name) plus its full JSONL contents.
pub struct TraceFile {
    /// Short name shown in waterfall rows, e.g. `replica-a`.
    pub label: String,
    /// The raw JSONL trace text.
    pub text: String,
}

/// The result of analyzing one or more trace files.
#[derive(Debug)]
pub struct Report {
    /// Human-readable waterfalls + aggregate table.
    pub rendered: String,
    /// Non-fatal inconsistencies (clock skew, unalignable subtrees).
    pub warnings: Vec<String>,
    /// Number of distinct trace ids seen.
    pub traces: usize,
    /// Number of traces whose spans appear in more than one file.
    pub merged: usize,
}

/// A reconstructed span within one file.
struct SpanRec {
    name: String,
    start_ts: u64,
    dur_ns: Option<u64>,
    parent: u64,
    trace: Option<String>,
    children: Vec<u64>,
}

/// Per-file span forest keyed by span id.
struct FileSpans {
    label: String,
    spans: BTreeMap<u64, SpanRec>,
}

fn build_file(label: &str, events: &[TraceEvent]) -> FileSpans {
    let mut spans: BTreeMap<u64, SpanRec> = BTreeMap::new();
    for ev in events {
        match ev.kind.as_str() {
            "span_start" => {
                let trace = ev.fields.get("trace").and_then(Json::as_str).map(str::to_string);
                spans.insert(
                    ev.id,
                    SpanRec {
                        name: ev.span.clone(),
                        start_ts: ev.ts_ns,
                        dur_ns: None,
                        parent: ev.parent,
                        trace,
                        children: Vec::new(),
                    },
                );
            }
            "span_end" => {
                if let Some(rec) = spans.get_mut(&ev.id) {
                    rec.dur_ns = ev.dur_ns;
                }
            }
            _ => {}
        }
    }
    // Inherit trace ids down the parent chain; ids are allocated in
    // increasing order so a single forward pass suffices.
    let ids: Vec<u64> = spans.keys().copied().collect();
    for id in &ids {
        let inherited = {
            let rec = &spans[id];
            if rec.trace.is_some() || rec.parent == 0 {
                None
            } else {
                spans.get(&rec.parent).and_then(|p| p.trace.clone())
            }
        };
        if let Some(t) = inherited {
            spans.get_mut(id).unwrap().trace = Some(t);
        }
    }
    for id in &ids {
        let parent = spans[id].parent;
        if parent != 0 && spans.contains_key(&parent) {
            spans.get_mut(&parent).unwrap().children.push(*id);
        }
    }
    FileSpans { label: label.to_string(), spans }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// Nearest-rank percentile of a sorted duration list.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Walker<'a> {
    files: &'a [FileSpans],
    out: String,
    warnings: Vec<String>,
    /// Remote roots of the current trace still waiting to be anchored
    /// under a `forward` hop span, as (file index, span id).
    pending: Vec<(usize, u64)>,
}

impl Walker<'_> {
    /// Render the subtree rooted at `id` in file `fi`. `shift` maps the
    /// file's own clock onto the trace-root timeline; `base` is the
    /// trace root's aligned start.
    fn walk(&mut self, fi: usize, id: u64, depth: usize, shift: i128, base: i128) {
        let (name, start_ts, dur_ns, children) = {
            let rec = &self.files[fi].spans[&id];
            (rec.name.clone(), rec.start_ts, rec.dur_ns, rec.children.clone())
        };
        let aligned = start_ts as i128 + shift;
        let offset = (aligned - base).max(0) as u64;
        let dur = dur_ns.map(fmt_ms).unwrap_or_else(|| "open".to_string());
        let _ = writeln!(
            self.out,
            "  [{}] {:indent$}{:<24} +{:>12} {:>12}",
            self.files[fi].label,
            "",
            name,
            fmt_ms(offset),
            dur,
            indent = depth * 2,
        );
        for child in children {
            self.walk(fi, child, depth + 1, shift, base);
        }
        // A forward hop anchors the next pending remote subtree: the
        // remote work happened strictly inside this span, so its root
        // is aligned to the hop's start.
        if name == "forward" {
            if let Some((rfi, rid)) = self.take_pending() {
                let remote_start = self.files[rfi].spans[&rid].start_ts;
                let remote_shift = aligned - remote_start as i128;
                if let (Some(hop), Some(remote)) = (dur_ns, self.files[rfi].spans[&rid].dur_ns) {
                    if remote > hop {
                        self.warnings.push(format!(
                            "clock skew: remote span `{}` in [{}] lasted {} but the \
                             forward hop in [{}] lasted only {}",
                            self.files[rfi].spans[&rid].name,
                            self.files[rfi].label,
                            fmt_ms(remote),
                            self.files[fi].label,
                            fmt_ms(hop),
                        ));
                    }
                }
                self.walk(rfi, rid, depth + 1, remote_shift, base);
            }
        }
    }

    fn take_pending(&mut self) -> Option<(usize, u64)> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.pending.remove(0))
        }
    }
}

/// Analyze one or more JSONL trace files.
///
/// Every file must pass [`validate_trace`]; a schema or nesting
/// violation in any file is a hard error naming the offending file.
/// Cross-file inconsistencies (clock skew, remote subtrees with no
/// forward hop to anchor under) are collected as warnings.
pub fn analyze(inputs: &[TraceFile]) -> Result<Report, String> {
    let mut files = Vec::with_capacity(inputs.len());
    for f in inputs {
        let events =
            validate_trace(&f.text).map_err(|e| format!("{}: {e}", f.label))?;
        files.push(build_file(&f.label, &events));
    }

    // trace id -> per-file root span ids, in file order.
    let mut roots: BTreeMap<String, Vec<(usize, u64)>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (id, rec) in &file.spans {
            let Some(trace) = &rec.trace else { continue };
            let parent_trace = (rec.parent != 0)
                .then(|| file.spans.get(&rec.parent).and_then(|p| p.trace.as_deref()))
                .flatten();
            if parent_trace != Some(trace.as_str()) {
                roots.entry(trace.clone()).or_default().push((fi, *id));
            }
        }
    }

    let mut out = String::new();
    let mut warnings = Vec::new();
    let mut merged = 0usize;
    for (trace, trace_roots) in &roots {
        let file_set: Vec<usize> = {
            let mut v: Vec<usize> = trace_roots.iter().map(|&(fi, _)| fi).collect();
            v.dedup();
            v
        };
        if file_set.len() > 1 {
            merged += 1;
        }
        let file_names: Vec<&str> =
            file_set.iter().map(|&fi| files[fi].label.as_str()).collect();
        let span_count: usize = files
            .iter()
            .map(|f| f.spans.values().filter(|s| s.trace.as_deref() == Some(trace)).count())
            .sum();
        let _ = writeln!(
            out,
            "trace {trace} · {span_count} spans · {} file(s): {}",
            file_set.len(),
            file_names.join(","),
        );
        // The primary root is the one whose subtree contains a
        // `forward` hop (the origin replica); remaining roots are
        // remote subtrees queued for anchoring.
        let has_forward = |fi: usize, root: u64| -> bool {
            let mut stack = vec![root];
            while let Some(id) = stack.pop() {
                let rec = &files[fi].spans[&id];
                if rec.name == "forward" {
                    return true;
                }
                stack.extend(rec.children.iter().copied());
            }
            false
        };
        let primary_pos = trace_roots
            .iter()
            .position(|&(fi, id)| has_forward(fi, id))
            .unwrap_or(0);
        let (pfi, pid) = trace_roots[primary_pos];
        let mut pending: Vec<(usize, u64)> = trace_roots
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != primary_pos)
            .map(|(_, &r)| r)
            .collect();
        // Same-file secondary roots (e.g. a retry) render standalone.
        pending.retain(|&(fi, _)| fi != pfi);
        let base = files[pfi].spans[&pid].start_ts as i128;
        let mut walker = Walker { files: &files, out, warnings, pending };
        walker.walk(pfi, pid, 0, 0, base);
        for (rfi, rid) in std::mem::take(&mut walker.pending) {
            walker.warnings.push(format!(
                "trace {trace}: root `{}` in [{}] has no forward hop to align under; \
                 rendered at trace start",
                walker.files[rfi].spans[&rid].name, walker.files[rfi].label,
            ));
            let shift = base - walker.files[rfi].spans[&rid].start_ts as i128;
            walker.walk(rfi, rid, 1, shift, base);
        }
        for &(fi, id) in trace_roots.iter().filter(|&&(fi, _)| fi == pfi) {
            if id != pid {
                walker.walk(fi, id, 0, 0, base);
            }
        }
        out = walker.out;
        warnings = walker.warnings;
        out.push('\n');
    }

    // Aggregate per-span-name latency quantiles across all files,
    // including spans with no trace id (pipeline runs outside serve).
    let mut by_name: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for file in &files {
        for rec in file.spans.values() {
            if let Some(d) = rec.dur_ns {
                by_name.entry(rec.name.as_str()).or_default().push(d);
            }
        }
    }
    let _ = writeln!(out, "{:<24} {:>8} {:>12} {:>12}", "span", "count", "p50", "p95");
    for (name, durs) in &mut by_name {
        durs.sort_unstable();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12}",
            name,
            durs.len(),
            fmt_ms(percentile(durs, 50.0)),
            fmt_ms(percentile(durs, 95.0)),
        );
    }
    if !warnings.is_empty() {
        out.push('\n');
        for w in &warnings {
            let _ = writeln!(out, "warning: {w}");
        }
    }
    Ok(Report { rendered: out, warnings, traces: roots.len(), merged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{mint_trace_id, Tracer};

    /// A fabricated origin-replica trace: serve → queue_wait + forward.
    fn origin_trace(trace_id: &str) -> String {
        let (tracer, buf) = Tracer::in_memory();
        {
            let serve = tracer.span("serve", "serve", &[("trace", trace_id.into())]);
            let _ = serve.id();
            tracer.span("serve", "queue_wait", &[]).close();
            tracer.span("serve", "forward", &[("peer", "b".into())]).close();
        }
        tracer.flush();
        buf.contents()
    }

    /// A fabricated owner-replica trace for the same request.
    fn remote_trace(trace_id: &str) -> String {
        let (tracer, buf) = Tracer::in_memory();
        {
            let _serve = tracer.span("serve", "serve", &[("trace", trace_id.into())]);
            tracer.span("parse", "parse", &[]).close();
        }
        tracer.flush();
        buf.contents()
    }

    #[test]
    fn two_files_sharing_a_trace_id_merge_into_one_waterfall() {
        let id = mint_trace_id();
        let files = [
            TraceFile { label: "a".into(), text: origin_trace(&id) },
            TraceFile { label: "b".into(), text: remote_trace(&id) },
        ];
        let report = analyze(&files).unwrap();
        assert_eq!(report.traces, 1, "{}", report.rendered);
        assert_eq!(report.merged, 1, "{}", report.rendered);
        assert!(report.rendered.contains("2 file(s): a,b"), "{}", report.rendered);
        assert!(report.rendered.contains("forward"), "{}", report.rendered);
        // The remote serve span renders nested under the forward hop.
        let fwd = report.rendered.find("forward").unwrap();
        let remote = report.rendered.rfind("[b] ").unwrap();
        assert!(remote > fwd, "{}", report.rendered);
    }

    #[test]
    fn clock_skew_is_warned_not_fatal() {
        // Remote root lasts 10ms but the forward hop lasted ~0 —
        // impossible causally, so it must warn.
        let id = "00112233445566778899aabbccddeeff";
        let origin = origin_trace(id);
        let remote = format!(
            concat!(
                r#"{{"ts_ns":0,"kind":"span_start","span":"serve","stage":"serve","id":1,"parent":0,"fields":{{"trace":"{id}"}}}}"#,
                "\n",
                r#"{{"ts_ns":10000000,"kind":"span_end","span":"serve","stage":"serve","id":1,"parent":0,"dur_ns":10000000,"fields":{{}}}}"#,
                "\n",
            ),
            id = id,
        );
        let files = [
            TraceFile { label: "a".into(), text: origin },
            TraceFile { label: "b".into(), text: remote },
        ];
        let report = analyze(&files).unwrap();
        assert_eq!(report.merged, 1, "{}", report.rendered);
        assert!(
            report.warnings.iter().any(|w| w.contains("clock skew")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn invalid_files_fail_naming_the_file() {
        let files = [TraceFile { label: "bad.jsonl".into(), text: "not json\n".into() }];
        let err = analyze(&files).unwrap_err();
        assert!(err.starts_with("bad.jsonl:"), "{err}");
    }

    #[test]
    fn aggregates_cover_untrace_spans_and_quantiles_are_ranked() {
        let (tracer, buf) = Tracer::in_memory();
        for _ in 0..3 {
            tracer.span("detect", "detect", &[]).close();
        }
        tracer.flush();
        let report = analyze(&[TraceFile { label: "x".into(), text: buf.contents() }]).unwrap();
        assert_eq!(report.traces, 0);
        assert!(report.rendered.contains("detect"), "{}", report.rendered);
        assert!(report.rendered.contains("p95"), "{}", report.rendered);
    }
}
