//! A small metrics registry with Prometheus-style text exposition.
//!
//! Three metric kinds — monotonically increasing counters, last-write
//! gauges, and fixed-bucket histograms — keyed by family name plus an
//! optional label set. [`Registry::render`] produces the Prometheus
//! text format (`# HELP` / `# TYPE` headers, cumulative `le` buckets
//! with `+Inf`, `_sum` and `_count` series) in deterministic sorted
//! order, and [`validate_exposition`] re-parses that format so tests
//! and the CI smoke job can check any `metrics.prom` file.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

/// Default duration buckets (seconds) for stage/latency histograms.
pub const DURATION_BUCKETS_S: [f64; 9] =
    [0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];

/// Default buckets for gradient-norm histograms.
pub const GRAD_NORM_BUCKETS: [f64; 8] = [0.1, 0.5, 1.0, 5.0, 25.0, 100.0, 500.0, 1000.0];

#[derive(Debug, Clone)]
struct Hist {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

#[derive(Default)]
struct RegistryInner {
    help: BTreeMap<String, String>,
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), f64>,
    hists: BTreeMap<(String, String), Hist>,
}

/// A cheaply cloneable metrics registry; clones share state.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

fn label_string(labels: &[(&str, &str)]) -> String {
    let mut s = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
    }
    s
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Set the `# HELP` text for a metric family.
    pub fn help(&self, name: &str, text: &str) {
        self.lock().help.insert(name.to_string(), text.to_string());
    }

    /// Add `v` to a counter series (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let key = (name.to_string(), label_string(labels));
        *self.lock().counters.entry(key).or_insert(0) += v;
    }

    /// Set a gauge series to `v`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = (name.to_string(), label_string(labels));
        self.lock().gauges.insert(key, v);
    }

    /// Record one observation into a fixed-bucket histogram series.
    ///
    /// `bounds` must be sorted ascending; the first call for a series
    /// fixes its buckets and later calls reuse them.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) {
        let key = (name.to_string(), label_string(labels));
        let mut inner = self.lock();
        let h = inner.hists.entry(key).or_insert_with(|| Hist {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            sum: 0.0,
            count: 0,
        });
        for (i, b) in h.bounds.iter().enumerate() {
            if v <= *b {
                h.counts[i] += 1;
            }
        }
        h.sum += v;
        h.count += 1;
    }

    /// Read a counter series back (tests and exposition helpers).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = (name.to_string(), label_string(labels));
        self.lock().counters.get(&key).copied().unwrap_or(0)
    }

    /// Render the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        // Families in sorted order; the three kind-maps are expected to
        // use disjoint family names.
        let mut families: Vec<(&str, &str)> = Vec::new();
        for (name, _) in inner.counters.keys() {
            families.push((name, "counter"));
        }
        for (name, _) in inner.gauges.keys() {
            families.push((name, "gauge"));
        }
        for (name, _) in inner.hists.keys() {
            families.push((name, "histogram"));
        }
        families.sort();
        families.dedup();

        for (family, kind) in families {
            if let Some(help) = inner.help.get(family) {
                let _ = writeln!(out, "# HELP {family} {help}");
            }
            let _ = writeln!(out, "# TYPE {family} {kind}");
            match kind {
                "counter" => {
                    for ((name, labels), v) in &inner.counters {
                        if name == family {
                            let _ = writeln!(out, "{}{} {v}", name, braced(labels));
                        }
                    }
                }
                "gauge" => {
                    for ((name, labels), v) in &inner.gauges {
                        if name == family {
                            let _ = writeln!(out, "{}{} {}", name, braced(labels), fmt_f64(*v));
                        }
                    }
                }
                _ => {
                    for ((name, labels), h) in &inner.hists {
                        if name != family {
                            continue;
                        }
                        // `observe` increments every bucket with bound >= v,
                        // so stored counts are already cumulative.
                        for (b, c) in h.bounds.iter().zip(&h.counts) {
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {c}",
                                braced(&with_le(labels, &fmt_f64(*b)))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            braced(&with_le(labels, "+Inf")),
                            h.count
                        );
                        let _ =
                            writeln!(out, "{name}_sum{} {}", braced(labels), fmt_f64(h.sum));
                        let _ = writeln!(out, "{name}_count{} {}", braced(labels), h.count);
                    }
                }
            }
        }
        out
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("le=\"{le}\"")
    } else {
        format!("{labels},le=\"{le}\"")
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Validate Prometheus text exposition format line-by-line.
///
/// Checks that every non-comment line is `name[{labels}] value`, that
/// metric names are legal, that every sample's family has a preceding
/// `# TYPE` header, and that histogram `_bucket` series — per label set
/// within a family, so labeled histograms are each checked
/// independently — carry strictly increasing `le` bounds (`+Inf` last),
/// non-decreasing cumulative counts, and a `+Inf` bucket equal to
/// `_count`. Returns the number of samples.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    // (family, labels-without-le) -> (last cumulative, inf seen)
    let mut bucket_state: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut inf_counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    // (family, labels-without-le) -> last `le` bound seen, so each
    // labeled series is checked for monotone bucket order on its own.
    let mut le_state: BTreeMap<(String, String), f64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !is_metric_name(name) {
                return Err(format!("line {n}: bad family name `{name}`"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {n}: bad TYPE `{kind}`"));
            }
            if typed.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        let (name, labels, value) = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        let family = family_of(&name, &typed);
        let Some(kind) = family.as_ref().and_then(|f| typed.get(f)) else {
            return Err(format!("line {n}: sample `{name}` has no preceding TYPE"));
        };
        if *kind == "histogram" && name.ends_with("_bucket") {
            let fam = family.clone().unwrap();
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .ok_or(format!("line {n}: `_bucket` sample without `le` label"))?;
            let others = label_key_without_le(&labels);
            let bound = match le.as_str() {
                "+Inf" => f64::INFINITY,
                s => s
                    .parse::<f64>()
                    .map_err(|_| format!("line {n}: bad `le` bound `{s}`"))?,
            };
            if let Some(prev_le) = le_state.get(&(fam.clone(), others.clone())) {
                if *prev_le == f64::INFINITY {
                    return Err(format!(
                        "line {n}: `_bucket` sample after the `+Inf` bucket"
                    ));
                }
                if bound <= *prev_le {
                    return Err(format!(
                        "line {n}: non-monotone `le` buckets ({} after {})",
                        fmt_f64(bound),
                        fmt_f64(*prev_le)
                    ));
                }
            }
            le_state.insert((fam.clone(), others.clone()), bound);
            let cum = value as u64;
            let prev = bucket_state
                .get(&(fam.clone(), others.clone()))
                .copied()
                .unwrap_or(0);
            if cum < prev {
                return Err(format!("line {n}: bucket counts decreased"));
            }
            bucket_state.insert((fam.clone(), others.clone()), cum);
            if le == "+Inf" {
                inf_counts.insert((fam, others), cum);
            }
        }
        if *kind == "histogram" && name.ends_with("_count") {
            let fam = family.unwrap();
            let others = label_key_without_le(&labels);
            if let Some(inf) = inf_counts.get(&(fam, others)) {
                if *inf != value as u64 {
                    return Err(format!("line {n}: `+Inf` bucket != `_count`"));
                }
            }
        }
        samples += 1;
    }
    if typed.is_empty() {
        return Err("no TYPE headers found".into());
    }
    Ok(samples)
}

fn family_of(name: &str, typed: &BTreeMap<String, String>) -> Option<String> {
    if typed.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if typed.get(stem).map(String::as_str) == Some("histogram") {
                return Some(stem.to_string());
            }
        }
    }
    None
}

fn label_key_without_le(labels: &[(String, String)]) -> String {
    let mut kept: Vec<String> = labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    kept.sort();
    kept.join(",")
}

fn is_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[allow(clippy::type_complexity)]
fn parse_sample(line: &str) -> Result<(String, Vec<(String, String)>, f64), String> {
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == ':')
    {
        i += 1;
    }
    let name: String = chars[..i].iter().collect();
    if !is_metric_name(&name) {
        return Err(format!("bad metric name in `{line}`"));
    }
    let mut labels = Vec::new();
    if chars.get(i) == Some(&'{') {
        i += 1;
        loop {
            if chars.get(i) == Some(&'}') {
                i += 1;
                break;
            }
            let start = i;
            while i < chars.len() && chars[i] != '=' {
                i += 1;
            }
            let key: String = chars[start..i].iter().collect();
            if chars.get(i) != Some(&'=') || chars.get(i + 1) != Some(&'"') {
                return Err(format!("bad label syntax in `{line}`"));
            }
            i += 2;
            let mut val = String::new();
            loop {
                match chars.get(i) {
                    None => return Err(format!("unterminated label value in `{line}`")),
                    Some('\\') => {
                        i += 1;
                        if let Some(&c) = chars.get(i) {
                            val.push(c);
                            i += 1;
                        }
                    }
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some(&c) => {
                        val.push(c);
                        i += 1;
                    }
                }
            }
            labels.push((key, val));
            if chars.get(i) == Some(&',') {
                i += 1;
            }
        }
    }
    if chars.get(i) != Some(&' ') {
        return Err(format!("expected space before value in `{line}`"));
    }
    let value_str: String = chars[i + 1..].iter().collect();
    let value = match value_str.trim() {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s
            .parse::<f64>()
            .map_err(|_| format!("bad sample value `{s}`"))?,
    };
    Ok((name, labels, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_valid() {
        let r = Registry::new();
        r.help("runs_total", "Total pipeline runs.");
        r.counter_add("runs_total", &[], 1);
        r.counter_add("stage_runs_total", &[("stage", "train")], 2);
        r.gauge_set("loss", &[], 0.25);
        r.observe("stage_seconds", &[("stage", "parse")], &[0.1, 1.0], 0.05);
        r.observe("stage_seconds", &[("stage", "parse")], &[0.1, 1.0], 0.5);
        r.observe("stage_seconds", &[("stage", "parse")], &[0.1, 1.0], 7.0);
        let a = r.render();
        let b = r.render();
        assert_eq!(a, b);
        // 2 counters + 1 gauge + histogram (2 buckets + +Inf + _sum + _count).
        assert_eq!(validate_exposition(&a).unwrap(), 2 + 1 + 5);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        r.observe("h", &[], &[1.0, 2.0], 0.5);
        r.observe("h", &[], &[1.0, 2.0], 1.5);
        r.observe("h", &[], &[1.0, 2.0], 9.0);
        let text = r.render();
        assert!(text.contains("h_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("h_bucket{le=\"2\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("h_sum 11"), "{text}");
        assert!(text.contains("h_count 3"), "{text}");
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_exposition() {
        for bad in [
            "metric_without_type 1\n",
            "# TYPE m counter\nm{x=\"1\" 2\n",
            "# TYPE m counter\n9bad 1\n",
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validator_rejects_non_monotone_le_buckets_per_label_set() {
        // Bounds out of order within one label set.
        let bad = "# TYPE h histogram\n\
                   h_bucket{route=\"a\",le=\"1\"} 1\n\
                   h_bucket{route=\"a\",le=\"0.5\"} 1\n";
        let err = validate_exposition(bad).unwrap_err();
        assert!(err.contains("non-monotone `le`"), "{err}");
        // A duplicate bound is also non-monotone.
        let dup = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 1\nh_bucket{le=\"1\"} 1\n";
        assert!(validate_exposition(dup).is_err());
        // A finite bucket after +Inf is rejected.
        let tail = "# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 1\nh_bucket{le=\"2\"} 1\n";
        let err = validate_exposition(tail).unwrap_err();
        assert!(err.contains("after the `+Inf`"), "{err}");
        // An unparsable bound is rejected.
        let junk = "# TYPE h histogram\nh_bucket{le=\"abc\"} 1\n";
        assert!(validate_exposition(junk).is_err());
        // Two label sets are independent: each restarts its bounds.
        let ok = "# TYPE h histogram\n\
                  h_bucket{route=\"a\",le=\"0.5\"} 1\n\
                  h_bucket{route=\"a\",le=\"1\"} 2\n\
                  h_bucket{route=\"a\",le=\"+Inf\"} 2\n\
                  h_sum{route=\"a\"} 1\nh_count{route=\"a\"} 2\n\
                  h_bucket{route=\"b\",le=\"0.5\"} 0\n\
                  h_bucket{route=\"b\",le=\"1\"} 1\n\
                  h_bucket{route=\"b\",le=\"+Inf\"} 1\n\
                  h_sum{route=\"b\"} 0.7\nh_count{route=\"b\"} 1\n";
        validate_exposition(ok).unwrap();
    }

    #[test]
    fn clones_share_state() {
        let r = Registry::new();
        let c = r.clone();
        c.counter_add("n", &[], 3);
        assert_eq!(r.counter_value("n", &[]), 3);
    }
}
