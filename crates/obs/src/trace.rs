//! Span-based structured tracing with JSONL output.
//!
//! A [`Tracer`] writes one JSON object per line to a writer (a file for
//! `--trace-out`, a shared buffer in tests). [`Span::enter`] returns an
//! RAII guard: dropping it emits the matching `span_end` event with the
//! measured duration, so spans nest and close in LIFO order by
//! construction. Timing is monotonic (`std::time::Instant`) relative to
//! the tracer's creation, never wall-clock.
//!
//! Every line has the same shape:
//!
//! ```json
//! {"ts_ns":1234,"kind":"span_start","span":"train","stage":"train",
//!  "id":3,"parent":2,"fields":{"epochs":60}}
//! ```
//!
//! `kind` is one of `span_start`, `span_end` (which adds `dur_ns`) or
//! `event` (a point-in-time record; its `span` key carries the event
//! name and `parent` the enclosing span). [`validate_trace`] re-parses
//! a trace and checks this schema plus the LIFO nesting invariants; it
//! is the single source of truth used by the unit tests, the
//! integration tests and the CI smoke job.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{self, write_escaped, Json};

/// A key/value field attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values are emitted as JSON strings
    /// (`"NaN"`, `"Infinity"`, `"-Infinity"`) so every line stays
    /// valid JSON.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

macro_rules! impl_value_from {
    ($($t:ty => $var:ident as $conv:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$var(v as $conv) }
        }
    )*};
}
impl_value_from!(
    u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64, f32 => F64 as f64
);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) if x.is_nan() => out.push_str("\"NaN\""),
        Value::F64(x) if *x > 0.0 => out.push_str("\"Infinity\""),
        Value::F64(_) => out.push_str("\"-Infinity\""),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => write_escaped(out, s),
    }
}

struct TracerInner {
    out: Box<dyn Write + Send>,
    epoch: Instant,
    next_id: u64,
    stack: Vec<u64>,
}

/// A cheaply cloneable handle emitting JSONL trace events.
///
/// All clones share one output stream, one monotonic clock and one span
/// stack, so spans opened through any clone nest consistently.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// A tracer writing to an arbitrary writer.
    pub fn to_writer(out: Box<dyn Write + Send>) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                out,
                epoch: Instant::now(),
                next_id: 0,
                stack: Vec::new(),
            })),
        }
    }

    /// A tracer writing (buffered) to `path`, truncating any existing
    /// file.
    pub fn to_file(path: &Path) -> io::Result<Tracer> {
        let f = File::create(path)?;
        Ok(Tracer::to_writer(Box::new(BufWriter::new(f))))
    }

    /// A tracer writing to an in-memory buffer, plus a handle to read
    /// the buffer back. Intended for tests.
    pub fn in_memory() -> (Tracer, TraceBuffer) {
        let buf = TraceBuffer::default();
        (Tracer::to_writer(Box::new(buf.clone())), buf)
    }

    /// Open a span; the returned guard emits `span_end` when dropped.
    pub fn span(&self, stage: &str, name: &str, fields: &[(&str, Value)]) -> Span {
        Span::enter(self, stage, name, fields)
    }

    /// Emit a point-in-time event under the currently open span.
    pub fn event(&self, stage: &str, name: &str, fields: &[(&str, Value)]) {
        let mut inner = self.lock();
        let ts = inner.epoch.elapsed().as_nanos() as u64;
        let id = inner.next_id + 1;
        inner.next_id = id;
        let parent = inner.stack.last().copied().unwrap_or(0);
        let line = render_line(ts, "event", name, stage, id, parent, None, fields);
        let _ = writeln!(inner.out, "{line}");
    }

    /// Emit an already-measured span as an adjacent `span_start` /
    /// `span_end` pair carrying `dur_ns`.
    ///
    /// For work whose duration was measured before a span could be
    /// opened — queue wait ends the moment the handler starts running,
    /// so the handler back-dates it here. Both lines share one
    /// timestamp and the pair closes immediately, so LIFO nesting and
    /// timestamp monotonicity hold by construction ([`validate_trace`]
    /// deliberately does not cross-check `dur_ns` against timestamp
    /// deltas).
    pub fn completed_span(&self, stage: &str, name: &str, dur_ns: u64, fields: &[(&str, Value)]) {
        let mut inner = self.lock();
        let ts = inner.epoch.elapsed().as_nanos() as u64;
        let id = inner.next_id + 1;
        inner.next_id = id;
        let parent = inner.stack.last().copied().unwrap_or(0);
        let line = render_line(ts, "span_start", name, stage, id, parent, None, fields);
        let _ = writeln!(inner.out, "{line}");
        let line = render_line(ts, "span_end", name, stage, id, parent, Some(dur_ns), &[]);
        let _ = writeln!(inner.out, "{line}");
    }

    /// Flush buffered output to the underlying writer.
    pub fn flush(&self) {
        let _ = self.lock().out.flush();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[allow(clippy::too_many_arguments)]
fn render_line(
    ts: u64,
    kind: &str,
    span: &str,
    stage: &str,
    id: u64,
    parent: u64,
    dur_ns: Option<u64>,
    fields: &[(&str, Value)],
) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(s, "{{\"ts_ns\":{ts},\"kind\":\"{kind}\",\"span\":");
    write_escaped(&mut s, span);
    s.push_str(",\"stage\":");
    write_escaped(&mut s, stage);
    let _ = write!(s, ",\"id\":{id},\"parent\":{parent}");
    if let Some(d) = dur_ns {
        let _ = write!(s, ",\"dur_ns\":{d}");
    }
    s.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_escaped(&mut s, k);
        s.push(':');
        write_value(&mut s, v);
    }
    s.push_str("}}");
    s
}

/// An open span. Dropping it emits the `span_end` event with the
/// measured duration and pops it from the tracer's span stack.
pub struct Span {
    tracer: Tracer,
    id: u64,
    start_ts: u64,
    name: String,
    stage: String,
}

impl Span {
    /// Open a span: emits `span_start` and pushes onto the span stack.
    pub fn enter(tracer: &Tracer, stage: &str, name: &str, fields: &[(&str, Value)]) -> Span {
        let mut inner = tracer.lock();
        let ts = inner.epoch.elapsed().as_nanos() as u64;
        let id = inner.next_id + 1;
        inner.next_id = id;
        let parent = inner.stack.last().copied().unwrap_or(0);
        inner.stack.push(id);
        let line = render_line(ts, "span_start", name, stage, id, parent, None, fields);
        let _ = writeln!(inner.out, "{line}");
        drop(inner);
        Span {
            tracer: tracer.clone(),
            id,
            start_ts: ts,
            name: name.to_string(),
            stage: stage.to_string(),
        }
    }

    /// Close the span now (equivalent to dropping it).
    pub fn close(self) {}

    /// The span's unique id within its tracer's stream.
    ///
    /// Lets callers hand the id to a remote party (the
    /// `x-ancstr-parent-span` forward header) so spans emitted by
    /// another process can be linked back to this one when traces are
    /// merged offline.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let mut inner = self.tracer.lock();
        let ts = inner.epoch.elapsed().as_nanos() as u64;
        // LIFO discipline: a guard dropping out of order (possible only
        // by deliberately reordering guards) closes everything above it.
        while let Some(top) = inner.stack.pop() {
            if top == self.id {
                break;
            }
        }
        let parent = inner.stack.last().copied().unwrap_or(0);
        let dur = ts.saturating_sub(self.start_ts);
        let line = render_line(
            ts,
            "span_end",
            &self.name,
            &self.stage,
            self.id,
            parent,
            Some(dur),
            &[],
        );
        let _ = writeln!(inner.out, "{line}");
    }
}

/// Mint a process-unique 128-bit trace id as 32 lowercase hex digits.
///
/// Combines wall-clock nanoseconds, the process id, a process-wide
/// counter and the per-process random keys behind
/// [`std::collections::hash_map::RandomState`], so two replicas minting
/// concurrently do not collide and no new dependency (a real RNG crate)
/// is needed. The id is opaque: nothing parses it back, it only has to
/// be unique and stable for the lifetime of a request.
pub fn mint_trace_id() -> String {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut hi = RandomState::new().build_hasher();
    hi.write_u64(now);
    hi.write_u64(seq);
    hi.write_u64(u64::from(std::process::id()));
    let hi = hi.finish();
    let mut lo = RandomState::new().build_hasher();
    lo.write_u64(hi);
    lo.write_u64(now.rotate_left(17) ^ seq);
    format!("{hi:016x}{:016x}", lo.finish())
}

/// Whether `s` is a well-formed trace id (32 lowercase hex digits).
///
/// Used to decide if an inbound `x-ancstr-trace-id` header can be
/// adopted as-is or must be replaced with a freshly minted id.
pub fn is_trace_id(s: &str) -> bool {
    s.len() == 32 && s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Shared in-memory trace sink returned by [`Tracer::in_memory`].
#[derive(Clone, Default)]
pub struct TraceBuffer {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl TraceBuffer {
    /// The accumulated trace text.
    pub fn contents(&self) -> String {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8_lossy(&buf).into_owned()
    }
}

impl Write for TraceBuffer {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// One schema-validated trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since tracer creation (monotonic clock).
    pub ts_ns: u64,
    /// `span_start`, `span_end` or `event`.
    pub kind: String,
    /// Span name (for `event` lines, the event name).
    pub span: String,
    /// Pipeline stage the record belongs to.
    pub stage: String,
    /// Unique line id (1-based).
    pub id: u64,
    /// Id of the enclosing span, `0` at top level.
    pub parent: u64,
    /// Span duration; present exactly on `span_end` lines.
    pub dur_ns: Option<u64>,
    /// Free-form key/value payload.
    pub fields: std::collections::BTreeMap<String, Json>,
}

fn require_u64(obj: &std::collections::BTreeMap<String, Json>, key: &str) -> Result<u64, String> {
    let n = obj
        .get(key)
        .ok_or_else(|| format!("missing key `{key}`"))?
        .as_num()
        .ok_or_else(|| format!("key `{key}` is not a number"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("key `{key}` is not a non-negative integer: {n}"));
    }
    Ok(n as u64)
}

fn require_str(
    obj: &std::collections::BTreeMap<String, Json>,
    key: &str,
) -> Result<String, String> {
    obj.get(key)
        .ok_or_else(|| format!("missing key `{key}`"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("key `{key}` is not a string"))
}

/// Validate one JSONL trace line against the event schema.
///
/// Requires: valid JSON object; `ts_ns`, `id`, `parent` non-negative
/// integers; `kind` one of the three event kinds; `span` and `stage`
/// non-empty strings; `fields` an object; `dur_ns` present iff `kind`
/// is `span_end`.
pub fn validate_line(line: &str) -> Result<TraceEvent, String> {
    let obj = match json::parse(line)? {
        Json::Obj(m) => m,
        _ => return Err("line is not a JSON object".into()),
    };
    let kind = require_str(&obj, "kind")?;
    if !matches!(kind.as_str(), "span_start" | "span_end" | "event") {
        return Err(format!("unknown kind `{kind}`"));
    }
    let span = require_str(&obj, "span")?;
    let stage = require_str(&obj, "stage")?;
    if span.is_empty() || stage.is_empty() {
        return Err("empty `span` or `stage`".into());
    }
    let fields = obj
        .get("fields")
        .ok_or("missing key `fields`")?
        .as_obj()
        .ok_or("key `fields` is not an object")?
        .clone();
    let dur_ns = if kind == "span_end" {
        Some(require_u64(&obj, "dur_ns")?)
    } else {
        if obj.contains_key("dur_ns") {
            return Err(format!("`dur_ns` present on `{kind}` line"));
        }
        None
    };
    Ok(TraceEvent {
        ts_ns: require_u64(&obj, "ts_ns")?,
        kind,
        span,
        stage,
        id: require_u64(&obj, "id")?,
        parent: require_u64(&obj, "parent")?,
        dur_ns,
        fields,
    })
}

/// Validate a whole JSONL trace: every line passes [`validate_line`],
/// timestamps are non-decreasing, and spans open/close in LIFO order
/// with consistent parent links. Spans still open at end-of-trace are
/// allowed (an aborted run truncates its trace).
pub fn validate_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    let mut stack: Vec<u64> = Vec::new();
    let mut last_ts = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let ev = validate_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if ev.ts_ns < last_ts {
            return Err(format!(
                "line {}: ts_ns went backwards ({} < {last_ts})",
                lineno + 1,
                ev.ts_ns
            ));
        }
        last_ts = ev.ts_ns;
        let expected_parent = stack.last().copied().unwrap_or(0);
        match ev.kind.as_str() {
            "span_start" => {
                if ev.parent != expected_parent {
                    return Err(format!(
                        "line {}: span_start parent {} but open span is {expected_parent}",
                        lineno + 1,
                        ev.parent
                    ));
                }
                stack.push(ev.id);
            }
            "span_end" => {
                if stack.last().copied() != Some(ev.id) {
                    return Err(format!(
                        "line {}: span_end id {} does not close the innermost span ({:?})",
                        lineno + 1,
                        ev.id,
                        stack.last()
                    ));
                }
                stack.pop();
                if ev.parent != stack.last().copied().unwrap_or(0) {
                    return Err(format!("line {}: span_end parent mismatch", lineno + 1));
                }
            }
            _ => {
                if ev.parent != expected_parent {
                    return Err(format!(
                        "line {}: event parent {} but open span is {expected_parent}",
                        lineno + 1,
                        ev.parent
                    ));
                }
            }
        }
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_validate() {
        let (tracer, buf) = Tracer::in_memory();
        {
            let _outer = tracer.span("train", "train", &[("epochs", 3u64.into())]);
            tracer.event("train", "epoch", &[("loss", 0.5.into())]);
            {
                let _inner = tracer.span("train", "checkpoint", &[]);
            }
        }
        tracer.flush();
        let events = validate_trace(&buf.contents()).unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, "span_start");
        assert_eq!(events[1].span, "epoch");
        assert_eq!(events[1].parent, events[0].id);
        assert_eq!(events[4].kind, "span_end");
        assert_eq!(events[4].span, "train");
    }

    #[test]
    fn non_finite_floats_stay_valid_json() {
        let (tracer, buf) = Tracer::in_memory();
        tracer.event(
            "detect",
            "score",
            &[("a", f64::NAN.into()), ("b", f64::INFINITY.into())],
        );
        let events = validate_trace(&buf.contents()).unwrap();
        assert_eq!(events[0].fields["a"].as_str(), Some("NaN"));
        assert_eq!(events[0].fields["b"].as_str(), Some("Infinity"));
    }

    #[test]
    fn validate_rejects_schema_violations() {
        for bad in [
            "not json",
            r#"{"kind":"event","span":"s","stage":"t","id":1,"parent":0,"fields":{}}"#, // no ts_ns
            r#"{"ts_ns":1,"kind":"event","span":"s","stage":"t","id":1,"parent":0}"#, // no fields
            r#"{"ts_ns":1,"kind":"bogus","span":"s","stage":"t","id":1,"parent":0,"fields":{}}"#,
            r#"{"ts_ns":1,"kind":"event","span":"s","stage":"t","id":1,"parent":0,"dur_ns":4,"fields":{}}"#,
        ] {
            assert!(validate_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn completed_spans_backdate_durations_and_keep_nesting_valid() {
        let (tracer, buf) = Tracer::in_memory();
        {
            let _serve = tracer.span("serve", "serve", &[]);
            tracer.completed_span("serve", "queue_wait", 42_000, &[]);
        }
        tracer.flush();
        let events = validate_trace(&buf.contents()).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[1].span, "queue_wait");
        assert_eq!(events[1].parent, events[0].id);
        assert_eq!(events[2].dur_ns, Some(42_000), "back-dated duration survives");
        assert_eq!(events[1].ts_ns, events[2].ts_ns, "the pair shares one timestamp");
    }

    #[test]
    fn minted_trace_ids_are_well_formed_and_distinct() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert!(is_trace_id(&a), "{a}");
        assert!(is_trace_id(&b), "{b}");
        assert_ne!(a, b);
        for bad in ["", "xyz", &a[..31], &format!("{}A", &a[..31])] {
            assert!(!is_trace_id(bad), "accepted {bad:?}");
        }
    }

    #[test]
    fn out_of_order_timestamps_are_rejected() {
        let a = r#"{"ts_ns":5,"kind":"event","span":"s","stage":"t","id":1,"parent":0,"fields":{}}"#;
        let b = r#"{"ts_ns":4,"kind":"event","span":"s","stage":"t","id":2,"parent":0,"fields":{}}"#;
        assert!(validate_trace(&format!("{a}\n{b}\n")).is_err());
    }
}
