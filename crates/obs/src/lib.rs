#![warn(missing_docs)]

//! Zero-dependency observability for the AncstrGNN pipeline.
//!
//! Three independent pieces, all safe to leave disabled:
//!
//! * [`trace`] — span-based structured tracing. A [`Tracer`] emits one
//!   JSON object per line (JSONL); [`Span`] guards nest and time stages
//!   with a monotonic clock. [`validate_trace`] checks the schema and
//!   the LIFO nesting invariant, and is shared by unit tests,
//!   integration tests and the CI smoke job.
//! * [`metrics`] — a [`Registry`] of counters, gauges and fixed-bucket
//!   histograms rendered as Prometheus text exposition
//!   ([`Registry::render`], checked by [`validate_exposition`]).
//! * [`log`] — a structured stderr [`Logger`] with `text`/`json`
//!   formats and quiet/normal/verbose levels.
//!
//! The crate deliberately has **no dependencies** (the build
//! environment is offline), and nothing here feeds back into pipeline
//! arithmetic: tracing a run cannot change its outputs.
//!
//! # Example
//!
//! ```
//! use ancstr_obs::{Tracer, validate_trace};
//!
//! let (tracer, buf) = Tracer::in_memory();
//! {
//!     let _guard = tracer.span("train", "train", &[("epochs", 60u64.into())]);
//!     tracer.event("train", "epoch", &[("loss", 0.5.into())]);
//! }
//! tracer.flush();
//! let events = validate_trace(&buf.contents()).unwrap();
//! assert_eq!(events.len(), 3); // span_start, event, span_end
//! ```

pub mod json;
pub mod log;
pub mod metrics;
pub mod report;
pub mod trace;

pub use json::Json;
pub use log::{LogFormat, Logger, Verbosity};
pub use metrics::{
    validate_exposition, Registry, DURATION_BUCKETS_S, GRAD_NORM_BUCKETS,
};
pub use report::{analyze, Report, TraceFile};
pub use trace::{
    is_trace_id, mint_trace_id, validate_line, validate_trace, Span, TraceBuffer, TraceEvent,
    Tracer, Value,
};
