//! Structured stderr logging with text and JSON formats.
//!
//! The CLI's diagnostic output goes through one [`Logger`], so
//! `--log-format json` turns every message into a machine-readable
//! line and `-v` / `--quiet` adjust what is shown. Text mode keeps the
//! exact message strings the CLI printed before this layer existed
//! (with `warning:` / `error:` prefixes), so human-facing output does
//! not change.

use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::json::write_escaped;

/// Output format for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Plain text, one message per line (the default).
    #[default]
    Text,
    /// One JSON object per line: `{"level":"warn","msg":"..."}`.
    Json,
}

impl LogFormat {
    /// Parse a `--log-format` flag value.
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// How much diagnostic output to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Verbosity {
    /// Errors only (`--quiet`).
    Quiet,
    /// Errors, warnings and progress (the default).
    #[default]
    Normal,
    /// Everything, including debug detail (`-v`).
    Verbose,
}

/// A cheaply cloneable structured logger.
#[derive(Clone)]
pub struct Logger {
    format: LogFormat,
    verbosity: Verbosity,
    out: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl Logger {
    /// A logger writing to standard error.
    pub fn stderr(format: LogFormat, verbosity: Verbosity) -> Logger {
        Logger::to_writer(format, verbosity, Box::new(io::stderr()))
    }

    /// A logger writing to an arbitrary writer (tests).
    pub fn to_writer(
        format: LogFormat,
        verbosity: Verbosity,
        out: Box<dyn Write + Send>,
    ) -> Logger {
        Logger {
            format,
            verbosity,
            out: Arc::new(Mutex::new(out)),
        }
    }

    /// The configured verbosity.
    pub fn verbosity(&self) -> Verbosity {
        self.verbosity
    }

    fn emit(&self, level: &str, text_prefix: &str, msg: &str) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let line = match self.format {
            LogFormat::Text => format!("{text_prefix}{msg}"),
            LogFormat::Json => {
                let mut s = String::with_capacity(msg.len() + 32);
                let _ = write!(s, "{{\"level\":\"{level}\",\"msg\":");
                write_escaped(&mut s, msg);
                s.push('}');
                s
            }
        };
        let _ = writeln!(out, "{line}");
    }

    /// Progress message; suppressed by `--quiet`.
    pub fn info(&self, msg: impl std::fmt::Display) {
        if self.verbosity > Verbosity::Quiet {
            self.emit("info", "", &msg.to_string());
        }
    }

    /// Warning; suppressed by `--quiet`. Text mode prefixes `warning: `.
    pub fn warn(&self, msg: impl std::fmt::Display) {
        if self.verbosity > Verbosity::Quiet {
            self.emit("warn", "warning: ", &msg.to_string());
        }
    }

    /// Error; always emitted. Text mode prefixes `error: `.
    pub fn error(&self, msg: impl std::fmt::Display) {
        self.emit("error", "error: ", &msg.to_string());
    }

    /// Debug detail; emitted only with `-v`.
    pub fn debug(&self, msg: impl std::fmt::Display) {
        if self.verbosity >= Verbosity::Verbose {
            self.emit("debug", "", &msg.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuffer;

    fn captive(format: LogFormat, verbosity: Verbosity) -> (Logger, TraceBuffer) {
        let buf = TraceBuffer::default();
        (
            Logger::to_writer(format, verbosity, Box::new(buf.clone())),
            buf,
        )
    }

    #[test]
    fn text_mode_keeps_legacy_prefixes() {
        let (log, buf) = captive(LogFormat::Text, Verbosity::Normal);
        log.info("loaded 3 circuits");
        log.warn("skipped 1 pair");
        log.error("boom");
        assert_eq!(
            buf.contents(),
            "loaded 3 circuits\nwarning: skipped 1 pair\nerror: boom\n"
        );
    }

    #[test]
    fn json_mode_emits_parseable_lines() {
        let (log, buf) = captive(LogFormat::Json, Verbosity::Normal);
        log.warn("a \"quoted\" path");
        let line = buf.contents();
        let parsed = crate::json::parse(line.trim()).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj["level"].as_str(), Some("warn"));
        assert_eq!(obj["msg"].as_str(), Some("a \"quoted\" path"));
    }

    #[test]
    fn quiet_drops_info_and_warn_but_not_error() {
        let (log, buf) = captive(LogFormat::Text, Verbosity::Quiet);
        log.info("x");
        log.warn("y");
        log.debug("z");
        log.error("kept");
        assert_eq!(buf.contents(), "error: kept\n");
    }

    #[test]
    fn debug_needs_verbose() {
        let (log, buf) = captive(LogFormat::Text, Verbosity::Normal);
        log.debug("hidden");
        assert_eq!(buf.contents(), "");
        let (log, buf) = captive(LogFormat::Text, Verbosity::Verbose);
        log.debug("shown");
        assert_eq!(buf.contents(), "shown\n");
    }
}
