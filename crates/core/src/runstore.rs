//! Crash-safe run store: durable, resumable pipeline runs.
//!
//! A *run directory* holds one pipeline run as versioned,
//! CRC-checksummed artifacts (see [`ancstr_gnn::seal`]) plus a JSON
//! manifest recording per-stage status, the config hash, and the seed
//! lineage. Every write is atomic — temp file, `fsync`, `rename`, then
//! a best-effort directory `fsync` — so a killed process never leaves a
//! partially written artifact that a later resume could read as valid.
//!
//! ```text
//! run-dir/
//!   manifest.json            sealed kind=manifest
//!   graph.meta               sealed kind=graph-meta
//!   model.txt                sealed kind=model
//!   embeddings.txt           sealed kind=embeddings
//!   constraints.txt          sealed kind=constraints
//!   checkpoints/
//!     epoch-000005.ckpt      sealed kind=checkpoint (TrainerState)
//! ```
//!
//! [`RunSession`] orchestrates the stage lifecycle: a resumed session
//! validates the manifest against the current command, config hash, and
//! inputs, skips completed stages, and
//! [`SymmetryExtractor::fit_durable`] restarts training from the newest
//! *valid* checkpoint, falling back past corrupt ones with notes rather
//! than errors. A [`CancelToken`] (optionally armed with a deadline
//! watchdog) requests cooperative cancellation at stage and epoch
//! boundaries; the trainer flushes a final checkpoint first, so an
//! interrupted run is always resumable.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ancstr_gnn::{
    seal, try_train_resumable, HealthConfig, HealthReport, ResumableHooks, TrainOutcome,
    TrainReport, TrainerHooks, TrainerState,
};
use ancstr_netlist::FlatCircuit;

use crate::observe::{PipelineObs, TrainTelemetry};
use crate::pipeline::{ExtractorConfig, SymmetryExtractor};
use crate::recover::ExtractError;

/// Manifest schema version this build reads and writes.
pub const MANIFEST_VERSION: u64 = 1;

/// Default training checkpoint cadence (epochs) when a run directory is
/// active but `--checkpoint-every` was not given.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 5;

/// Any failure of the run store: I/O, a corrupt or mismatched manifest,
/// or a corrupt stage artifact that has no fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// The path given to `--resume` is not a run directory (no
    /// manifest).
    NotARun {
        /// The offending path.
        path: String,
    },
    /// The manifest failed its checksum or did not parse.
    CorruptManifest {
        /// What the verification found.
        reason: String,
    },
    /// The manifest is from an incompatible schema version.
    UnsupportedVersion {
        /// The version the manifest declares.
        found: u64,
    },
    /// The manifest belongs to a different run: the command, config
    /// hash, or input set disagrees with the current invocation, so
    /// resuming would silently mix two experiments.
    ConfigMismatch {
        /// Which manifest field disagreed.
        field: &'static str,
        /// The current invocation's value.
        expected: String,
        /// The manifest's value.
        found: String,
    },
    /// A completed stage's artifact failed verification and the stage
    /// cannot be transparently re-run.
    CorruptArtifact {
        /// Artifact file name within the run directory.
        name: String,
        /// What the verification found.
        reason: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Io { path, detail } => write!(f, "run-store I/O on `{path}`: {detail}"),
            RunError::NotARun { path } => {
                write!(f, "`{path}` is not a run directory (no manifest.json)")
            }
            RunError::CorruptManifest { reason } => write!(f, "corrupt run manifest: {reason}"),
            RunError::UnsupportedVersion { found } => write!(
                f,
                "run manifest version {found} is not supported (this build reads \
                 {MANIFEST_VERSION})"
            ),
            RunError::ConfigMismatch { field, expected, found } => write!(
                f,
                "cannot resume: manifest {field} is `{found}` but this invocation has \
                 `{expected}` (same run directory, different run)"
            ),
            RunError::CorruptArtifact { name, reason } => {
                write!(f, "artifact `{name}` failed verification: {reason}")
            }
        }
    }
}

impl std::error::Error for RunError {}

fn io_err(path: &Path, e: impl fmt::Display) -> RunError {
    RunError::Io { path: path.display().to_string(), detail: e.to_string() }
}

/// FNV-1a 64-bit hash rendered as 16 hex digits; used to fingerprint
/// the extractor configuration in the manifest.
pub fn config_hash(config: &ExtractorConfig) -> String {
    fnv1a64(format!("{config:?}").as_bytes())
}

fn fnv1a64(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Atomically replace `path` with `contents`: write a temp file in the
/// same directory, `fsync` it, `rename` over the target, then `fsync`
/// the directory (best effort) so the rename itself is durable.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), RunError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).map_or_else(
        || PathBuf::from("."),
        Path::to_path_buf,
    );
    let name = path
        .file_name()
        .ok_or_else(|| io_err(path, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(contents.as_bytes()).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_err(path, e)
    })?;
    if let Ok(d) = fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Minimal JSON for the manifest. Hand-rolled because the workspace is
// offline (no serde): numbers are kept as raw strings so u64 seeds
// never round-trip through f64.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn fail<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    self.pos += 1;
                }
                Ok(Json::Num(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?
                        .to_owned(),
                ))
            }
            _ => self.fail("expected a JSON value"),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.fail("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.fail("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.fail("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|e| e.to_string())?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return self.fail(&format!("bad escape `\\{}`", other as char)),
                    }
                }
                other => {
                    // Re-borrow the full UTF-8 char starting at `other`.
                    let width = match other {
                        0x00..=0x7F => 0,
                        0xC0..=0xDF => 1,
                        0xE0..=0xEF => 2,
                        _ => 3,
                    };
                    let start = self.pos - 1;
                    self.pos += width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.fail("expected `,` or `}`"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.fail("expected `,` or `]`"),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.fail("trailing data");
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Manifest

/// Lifecycle of one pipeline stage in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Not yet (fully) run.
    Pending,
    /// Completed; its artifact is on disk and sealed.
    Done,
}

impl StageStatus {
    fn as_str(self) -> &'static str {
        match self {
            StageStatus::Pending => "pending",
            StageStatus::Done => "done",
        }
    }
}

/// One stage row of the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageEntry {
    /// Stage name (`graph`, `train`, `embed`, `detect`).
    pub name: String,
    /// Current status.
    pub status: StageStatus,
    /// Artifact file name within the run directory, once written.
    pub artifact: Option<String>,
}

/// The run manifest: everything a resume needs to decide what is done,
/// what matches, and what to redo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u64,
    /// The CLI command that owns this run (`extract` or `train`).
    pub command: String,
    /// [`config_hash`] of the extractor configuration.
    pub config_hash: String,
    /// The base training seed.
    pub seed: u64,
    /// Seed lineage: the base seed followed by every divergence-recovery
    /// re-seed, in order — reproduced identically across crash/resume.
    pub seed_lineage: Vec<u64>,
    /// Input netlist paths, in invocation order.
    pub inputs: Vec<String>,
    /// Stage rows, in pipeline order.
    pub stages: Vec<StageEntry>,
}

impl RunManifest {
    fn new(command: &str, hash: String, seed: u64, inputs: &[String], stages: &[&str]) -> Self {
        RunManifest {
            version: MANIFEST_VERSION,
            command: command.to_owned(),
            config_hash: hash,
            seed,
            seed_lineage: vec![seed],
            inputs: inputs.to_vec(),
            stages: stages
                .iter()
                .map(|&name| StageEntry {
                    name: name.to_owned(),
                    status: StageStatus::Pending,
                    artifact: None,
                })
                .collect(),
        }
    }

    /// Serialize to (unsealed) JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str("  \"command\": ");
        json_escape(&self.command, &mut out);
        out.push_str(",\n  \"config_hash\": ");
        json_escape(&self.config_hash, &mut out);
        out.push_str(&format!(",\n  \"seed\": {},\n", self.seed));
        let lineage: Vec<String> = self.seed_lineage.iter().map(u64::to_string).collect();
        out.push_str(&format!("  \"seed_lineage\": [{}],\n", lineage.join(", ")));
        out.push_str("  \"inputs\": [");
        for (i, input) in self.inputs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json_escape(input, &mut out);
        }
        out.push_str("],\n  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str("    {\"name\": ");
            json_escape(&s.name, &mut out);
            out.push_str(&format!(", \"status\": \"{}\"", s.status.as_str()));
            if let Some(a) = &s.artifact {
                out.push_str(", \"artifact\": ");
                json_escape(a, &mut out);
            }
            out.push('}');
            if i + 1 < self.stages.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse [`RunManifest::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`RunError::CorruptManifest`] on malformed JSON or a missing
    /// field; [`RunError::UnsupportedVersion`] on a schema mismatch.
    pub fn from_json(text: &str) -> Result<RunManifest, RunError> {
        let corrupt = |reason: String| RunError::CorruptManifest { reason };
        let v = parse_json(text).map_err(corrupt)?;
        let field = |key: &'static str| {
            v.get(key).ok_or_else(|| corrupt(format!("missing field `{key}`")))
        };
        let version = field("version")?
            .as_u64()
            .ok_or_else(|| corrupt("`version` is not an integer".into()))?;
        if version != MANIFEST_VERSION {
            return Err(RunError::UnsupportedVersion { found: version });
        }
        let as_string = |key: &'static str| -> Result<String, RunError> {
            field(key)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| corrupt(format!("`{key}` is not a string")))
        };
        let command = as_string("command")?;
        let hash = as_string("config_hash")?;
        let seed = field("seed")?
            .as_u64()
            .ok_or_else(|| corrupt("`seed` is not an integer".into()))?;
        let seed_lineage = field("seed_lineage")?
            .as_arr()
            .ok_or_else(|| corrupt("`seed_lineage` is not an array".into()))?
            .iter()
            .map(|j| j.as_u64().ok_or_else(|| corrupt("bad seed in lineage".into())))
            .collect::<Result<Vec<u64>, _>>()?;
        let inputs = field("inputs")?
            .as_arr()
            .ok_or_else(|| corrupt("`inputs` is not an array".into()))?
            .iter()
            .map(|j| {
                j.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| corrupt("bad input path".into()))
            })
            .collect::<Result<Vec<String>, _>>()?;
        let stages = field("stages")?
            .as_arr()
            .ok_or_else(|| corrupt("`stages` is not an array".into()))?
            .iter()
            .map(|j| {
                let name = j
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| corrupt("stage without a name".into()))?
                    .to_owned();
                let status = match j.get("status").and_then(Json::as_str) {
                    Some("pending") => StageStatus::Pending,
                    Some("done") => StageStatus::Done,
                    other => {
                        return Err(corrupt(format!("stage `{name}` has bad status {other:?}")))
                    }
                };
                let artifact = j.get("artifact").and_then(Json::as_str).map(str::to_owned);
                Ok(StageEntry { name, status, artifact })
            })
            .collect::<Result<Vec<StageEntry>, RunError>>()?;
        Ok(RunManifest { version, command, config_hash: hash, seed, seed_lineage, inputs, stages })
    }

    /// Status of the named stage ([`StageStatus::Pending`] if absent).
    pub fn stage_status(&self, name: &str) -> StageStatus {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map_or(StageStatus::Pending, |s| s.status)
    }
}

// ---------------------------------------------------------------------
// Cancellation

/// Cooperative cancellation flag, checked at stage and epoch
/// boundaries. Cloning shares the flag (and copies the deadline, if
/// any).
///
/// Two expiry mechanisms coexist: the explicit [`CancelToken::cancel`]
/// flag (shared across clones) and an optional *passive* deadline
/// ([`CancelToken::with_deadline`]) that needs no watchdog thread —
/// [`CancelToken::is_cancelled`] simply compares against the clock.
/// The passive form is what request-scoped callers (the serve daemon)
/// use: thousands of short-lived tokens per second must not each spawn
/// a thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<std::time::Instant>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// This token with a passive expiry instant. Checking
    /// [`CancelToken::is_cancelled`] at or past `at` reports
    /// cancellation without any watchdog thread. An earlier existing
    /// deadline is kept (deadlines only ever tighten).
    pub fn with_deadline(mut self, at: std::time::Instant) -> CancelToken {
        self.deadline = Some(match self.deadline {
            Some(existing) => existing.min(at),
            None => at,
        });
        self
    }

    /// A fresh token that passively expires `budget` from now.
    pub fn expiring_in(budget: Duration) -> CancelToken {
        CancelToken::new().with_deadline(std::time::Instant::now() + budget)
    }

    /// The passive expiry instant, if one was set.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    /// Request cancellation. Irrevocable.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested (explicitly, or by passing the
    /// passive deadline)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
            || self.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Arm a watchdog thread that cancels this token after `budget`.
    /// The thread is detached; it dies with the process. Long-lived
    /// CLI runs use this so the flag also trips for clones that were
    /// taken *before* the deadline was armed; request-scoped callers
    /// should prefer the thread-free [`CancelToken::with_deadline`].
    pub fn arm_deadline(&self, budget: Duration) {
        let flag = Arc::clone(&self.flag);
        std::thread::spawn(move || {
            std::thread::sleep(budget);
            flag.store(true, Ordering::SeqCst);
        });
    }
}

// ---------------------------------------------------------------------
// The store

/// Low-level access to a run directory: sealed artifacts, the sealed
/// manifest, and the training checkpoint series.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

impl RunStore {
    const MANIFEST: &'static str = "manifest.json";
    const CHECKPOINT_DIR: &'static str = "checkpoints";

    /// Open (creating if needed) the run directory skeleton.
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] when the directories cannot be created.
    pub fn create(root: impl Into<PathBuf>) -> Result<RunStore, RunError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        let ckpt = root.join(Self::CHECKPOINT_DIR);
        fs::create_dir_all(&ckpt).map_err(|e| io_err(&ckpt, e))?;
        Ok(RunStore { root })
    }

    /// The run directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join(Self::MANIFEST)
    }

    /// Does this directory contain a manifest at all?
    pub fn has_manifest(&self) -> bool {
        self.manifest_path().exists()
    }

    /// Atomically persist the sealed manifest.
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] on write failure.
    pub fn save_manifest(&self, manifest: &RunManifest) -> Result<(), RunError> {
        write_atomic(&self.manifest_path(), &seal("manifest", &manifest.to_json()))
    }

    /// Load and verify the manifest.
    ///
    /// # Errors
    ///
    /// [`RunError::NotARun`] when absent, [`RunError::CorruptManifest`]
    /// on checksum/parse failure, [`RunError::UnsupportedVersion`] on a
    /// schema mismatch.
    pub fn load_manifest(&self) -> Result<RunManifest, RunError> {
        let path = self.manifest_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RunError::NotARun { path: self.root.display().to_string() })
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        let payload = ancstr_gnn::open_sealed("manifest", &text)
            .map_err(|e| RunError::CorruptManifest { reason: e.to_string() })?;
        RunManifest::from_json(payload)
    }

    /// Atomically write a sealed stage artifact.
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] on write failure.
    pub fn write_artifact(&self, name: &str, kind: &str, payload: &str) -> Result<(), RunError> {
        write_atomic(&self.root.join(name), &seal(kind, payload))
    }

    /// Read and verify a sealed stage artifact, returning its payload.
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] when unreadable, [`RunError::CorruptArtifact`]
    /// on checksum failure.
    pub fn read_artifact(&self, name: &str, kind: &str) -> Result<String, RunError> {
        let path = self.root.join(name);
        let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        ancstr_gnn::open_sealed(kind, &text)
            .map(str::to_owned)
            .map_err(|e| RunError::CorruptArtifact { name: name.to_owned(), reason: e.to_string() })
    }

    /// Path of the checkpoint for the given completed-epoch count.
    pub fn checkpoint_path(&self, epoch: usize) -> PathBuf {
        self.root.join(Self::CHECKPOINT_DIR).join(format!("epoch-{epoch:06}.ckpt"))
    }

    /// Atomically persist a training checkpoint, named by its
    /// completed-epoch count.
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] on write failure.
    pub fn write_checkpoint(&self, state: &TrainerState) -> Result<(), RunError> {
        write_atomic(&self.checkpoint_path(state.epoch_losses.len()), &state.to_text())
    }

    /// Delete every checkpoint (a fresh, non-resume run must not mix
    /// lineages with a previous occupant of the directory).
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] when the directory cannot be read or a file
    /// cannot be removed.
    pub fn clear_checkpoints(&self) -> Result<(), RunError> {
        let dir = self.root.join(Self::CHECKPOINT_DIR);
        for entry in fs::read_dir(&dir).map_err(|e| io_err(&dir, e))? {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            fs::remove_file(entry.path()).map_err(|e| io_err(&entry.path(), e))?;
        }
        Ok(())
    }

    /// The newest checkpoint that verifies and parses, scanning the
    /// checkpoint directory newest-first and *skipping* (not failing on)
    /// corrupt entries. Returns the state (if any) plus one
    /// human-readable note per skipped file.
    pub fn latest_valid_checkpoint(&self) -> (Option<TrainerState>, Vec<String>) {
        let dir = self.root.join(Self::CHECKPOINT_DIR);
        let mut notes = Vec::new();
        let Ok(entries) = fs::read_dir(&dir) else {
            return (None, notes);
        };
        let mut candidates: Vec<(usize, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_name()?.to_str()?.to_owned();
                let epoch: usize =
                    name.strip_prefix("epoch-")?.strip_suffix(".ckpt")?.parse().ok()?;
                Some((epoch, path))
            })
            .collect();
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
        for (_, path) in candidates {
            let display = path.file_name().map_or_else(String::new, |n| {
                n.to_string_lossy().into_owned()
            });
            match fs::read_to_string(&path) {
                Ok(text) => match TrainerState::from_text(&text) {
                    Ok(state) => return (Some(state), notes),
                    Err(e) => notes.push(format!("skipping corrupt checkpoint {display}: {e}")),
                },
                Err(e) => notes.push(format!("skipping unreadable checkpoint {display}: {e}")),
            }
        }
        (None, notes)
    }
}

// ---------------------------------------------------------------------
// Session orchestration

/// Options for opening a [`RunSession`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The run directory.
    pub run_dir: PathBuf,
    /// Resume a previous run in that directory instead of starting
    /// fresh (a fresh start clears old checkpoints).
    pub resume: bool,
    /// Training checkpoint cadence in epochs.
    pub checkpoint_every: usize,
    /// Cooperative cancellation, polled at stage and epoch boundaries.
    pub cancel: CancelToken,
    /// Crash-test hook: abort the process (as an uncatchable kill)
    /// immediately after the Nth checkpoint write of this run.
    #[doc(hidden)]
    pub test_abort_after_checkpoints: Option<usize>,
    /// Interruption-test hook: fire the cancel token after the Nth
    /// checkpoint write, producing a deterministic epoch-boundary
    /// cancellation without killing the test process.
    #[doc(hidden)]
    pub test_cancel_after_checkpoints: Option<usize>,
}

impl RunOptions {
    /// Defaults for the given directory: fresh run, cadence
    /// [`DEFAULT_CHECKPOINT_EVERY`], no deadline.
    pub fn new(run_dir: impl Into<PathBuf>) -> RunOptions {
        RunOptions {
            run_dir: run_dir.into(),
            resume: false,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            cancel: CancelToken::new(),
            test_abort_after_checkpoints: None,
            test_cancel_after_checkpoints: None,
        }
    }
}

/// A live durable run: the store, the manifest, and the options,
/// validated and ready for stages to execute against.
#[derive(Debug)]
pub struct RunSession {
    store: RunStore,
    manifest: RunManifest,
    options: RunOptions,
    checkpoint_writes: Arc<AtomicUsize>,
}

impl RunSession {
    /// Open a session. A fresh session (`options.resume == false`)
    /// initializes the directory and a pending manifest, clearing any
    /// previous occupant's checkpoints. A resumed session loads the
    /// existing manifest and validates it against the current command,
    /// configuration, and inputs.
    ///
    /// # Errors
    ///
    /// [`RunError::NotARun`] when resuming a directory with no
    /// manifest; [`RunError::CorruptManifest`] /
    /// [`RunError::UnsupportedVersion`] when the manifest fails
    /// verification; [`RunError::ConfigMismatch`] when it belongs to a
    /// different run; [`RunError::Io`] on filesystem failure.
    pub fn open(
        options: RunOptions,
        command: &str,
        config: &ExtractorConfig,
        inputs: &[String],
    ) -> Result<RunSession, RunError> {
        let store = RunStore::create(&options.run_dir)?;
        let hash = config_hash(config);
        let stages: &[&str] = match command {
            "train" => &["graph", "train"],
            _ => &["graph", "train", "embed", "detect"],
        };
        let manifest = if options.resume {
            let manifest = store.load_manifest()?;
            let mismatch = |field: &'static str, expected: &str, found: &str| {
                Err(RunError::ConfigMismatch {
                    field,
                    expected: expected.to_owned(),
                    found: found.to_owned(),
                })
            };
            if manifest.command != command {
                return mismatch("command", command, &manifest.command);
            }
            if manifest.config_hash != hash {
                return mismatch("config_hash", &hash, &manifest.config_hash);
            }
            if manifest.inputs != inputs {
                return mismatch("inputs", &inputs.join(", "), &manifest.inputs.join(", "));
            }
            manifest
        } else {
            store.clear_checkpoints()?;
            let manifest =
                RunManifest::new(command, hash, config.train.seed, inputs, stages);
            store.save_manifest(&manifest)?;
            manifest
        };
        Ok(RunSession {
            store,
            manifest,
            options,
            checkpoint_writes: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The underlying store.
    pub fn store(&self) -> &RunStore {
        &self.store
    }

    /// The live manifest.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// Has the deadline/cancel token fired?
    pub fn cancelled(&self) -> bool {
        self.options.cancel.is_cancelled()
    }

    /// Is the named stage already completed (from a resumed manifest)?
    pub fn stage_done(&self, name: &str) -> bool {
        self.manifest.stage_status(name) == StageStatus::Done
    }

    /// Mark a stage done (recording its artifact) and persist the
    /// manifest atomically.
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] when the manifest cannot be written.
    pub fn mark_done(&mut self, name: &str, artifact: Option<&str>) -> Result<(), RunError> {
        if let Some(s) = self.manifest.stages.iter_mut().find(|s| s.name == name) {
            s.status = StageStatus::Done;
            if artifact.is_some() {
                s.artifact = artifact.map(str::to_owned);
            }
        }
        self.store.save_manifest(&self.manifest)
    }

    /// Write a stage's artifact and mark it done in one step. No-op for
    /// a stage that is already done.
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] on write failure.
    pub fn complete_stage(
        &mut self,
        name: &str,
        artifact: &str,
        kind: &str,
        payload: &str,
    ) -> Result<(), RunError> {
        if self.stage_done(name) {
            return Ok(());
        }
        self.store.write_artifact(artifact, kind, payload)?;
        self.mark_done(name, Some(artifact))
    }

    fn record_seed_lineage(&mut self, health: &HealthReport) {
        let mut lineage = vec![self.manifest.seed];
        lineage.extend(health.retries.iter().map(|e| e.reseeded_to));
        self.manifest.seed_lineage = lineage;
    }
}

/// How [`SymmetryExtractor::fit_durable`] ended.
#[derive(Debug, Clone)]
pub enum DurableFit {
    /// Training finished — in this process or a previous one (stage
    /// already done). Reports describe the *full* run.
    Completed {
        /// Loss trajectory over all epochs.
        report: TrainReport,
        /// Guardrail activity over all epochs.
        health: HealthReport,
        /// Completed-epoch count of the checkpoint training resumed
        /// from, when it did.
        resumed_from: Option<usize>,
        /// Recovery notes (corrupt checkpoints skipped, artifacts
        /// rebuilt) for the caller to surface.
        notes: Vec<String>,
    },
    /// The cancel token fired at an epoch boundary; a final checkpoint
    /// was flushed, so the run resumes from exactly this point.
    Cancelled {
        /// Completed epochs at the moment of cancellation.
        after_epoch: usize,
    },
}

impl SymmetryExtractor {
    /// Durable [`SymmetryExtractor::fit`]: guarded training that writes
    /// periodic CRC-sealed checkpoints into the session's run
    /// directory, resumes from the newest valid checkpoint (skipping
    /// corrupt ones), honours the session's cancel token at epoch
    /// boundaries, and — on completion — seals the final model artifact
    /// and marks the `train` stage done with its seed lineage recorded.
    ///
    /// Crash/resume is bit-identical to an uninterrupted run: the
    /// checkpoint carries the full trainer state (RNG, optimizer
    /// moments, shuffle order, retry lineage), validated against the
    /// current configuration before use.
    ///
    /// # Errors
    ///
    /// Everything [`SymmetryExtractor::try_fit`] returns, plus
    /// [`ExtractError::Run`] on run-store failures.
    pub fn fit_durable(
        &mut self,
        circuits: &[&FlatCircuit],
        health: &HealthConfig,
        session: &mut RunSession,
    ) -> Result<DurableFit, ExtractError> {
        self.fit_durable_observed(circuits, health, session, &PipelineObs::disabled())
    }

    /// [`SymmetryExtractor::fit_durable`] with observability: stage
    /// spans for graph/feature/train work, per-epoch training telemetry
    /// (through the read-only [`TrainerHooks`] observer), and every
    /// checkpoint-scan/fallback recovery note mirrored as a structured
    /// `runstore_note` trace event. With a disabled handle this *is*
    /// `fit_durable`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`SymmetryExtractor::fit_durable`].
    pub fn fit_durable_observed(
        &mut self,
        circuits: &[&FlatCircuit],
        health: &HealthConfig,
        session: &mut RunSession,
        obs: &PipelineObs,
    ) -> Result<DurableFit, ExtractError> {
        let mut notes = Vec::new();

        if session.stage_done("train") {
            // The final checkpoint is the canonical artifact: it holds
            // the weights *and* the full report. Fall back to the model
            // artifact, and past that re-train.
            let (state, mut scan_notes) = session.store.latest_valid_checkpoint();
            for n in &scan_notes {
                obs.runstore_note(n);
            }
            notes.append(&mut scan_notes);
            let state_fits = |state: &TrainerState| {
                let slots = self.model().matrices();
                state.gnn == self.config().gnn
                    && state.epoch_losses.len() >= self.config().train.epochs
                    && state.params.len() == slots.len()
                    && state.params.iter().zip(&slots).all(|(p, s)| p.shape() == s.shape())
            };
            match state {
                Some(state) if state_fits(&state) => {
                    let report = TrainReport { epoch_losses: state.epoch_losses.clone() };
                    let health_report = HealthReport {
                        retries: state.retries.clone(),
                        clipped_steps: state.clipped_steps,
                    };
                    for (slot, m) in
                        self.model_mut().matrices_mut().into_iter().zip(&state.params)
                    {
                        *slot = m.clone();
                    }
                    return Ok(DurableFit::Completed {
                        report,
                        health: health_report,
                        resumed_from: None,
                        notes,
                    });
                }
                _ => match session.store.read_artifact("model.txt", "model") {
                    Ok(payload) => {
                        let model = ancstr_gnn::GnnModel::from_text(&payload)
                            .map_err(ExtractError::Model)?;
                        *self =
                            SymmetryExtractor::new(self.config().clone()).with_model(model)?;
                        let note = "train stage was done but no full checkpoint survived; \
                                    loaded sealed model artifact (loss history unavailable)";
                        obs.runstore_note(note);
                        notes.push(note.to_owned());
                        return Ok(DurableFit::Completed {
                            report: TrainReport { epoch_losses: Vec::new() },
                            health: HealthReport::default(),
                            resumed_from: None,
                            notes,
                        });
                    }
                    Err(e) => {
                        let note = format!(
                            "train stage was marked done but its artifacts are gone \
                             ({e}); re-training"
                        );
                        obs.runstore_note(&note);
                        notes.push(note);
                        if let Some(s) =
                            session.manifest.stages.iter_mut().find(|s| s.name == "train")
                        {
                            s.status = StageStatus::Pending;
                        }
                    }
                },
            }
        }

        let dataset: Vec<ancstr_gnn::TrainGraph> =
            circuits.iter().map(|f| self.train_graph_observed(f, obs)).collect();
        let train_config = self.config().train.clone();

        let resume_state = if session.options.resume {
            let (state, mut scan_notes) = session.store.latest_valid_checkpoint();
            for n in &scan_notes {
                obs.runstore_note(n);
            }
            notes.append(&mut scan_notes);
            state
        } else {
            None
        };
        let resumed_from = resume_state.as_ref().map(|s| s.epoch_losses.len());
        let _train_span = obs.stage_with(
            "train",
            &[
                ("epochs", train_config.epochs.into()),
                ("circuits", circuits.len().into()),
                ("seed", train_config.seed.into()),
                ("checkpoint_every", session.options.checkpoint_every.into()),
            ],
        );
        if let Some(epoch) = resumed_from {
            obs.event("train", "resumed_from_checkpoint", &[("epoch", epoch.into())]);
        }

        let store = session.store.clone();
        let writes = Arc::clone(&session.checkpoint_writes);
        let abort_after = session.options.test_abort_after_checkpoints;
        let cancel_after = session.options.test_cancel_after_checkpoints;
        let sink_token = session.options.cancel.clone();
        let mut sink = move |state: &TrainerState| -> Result<(), String> {
            store.write_checkpoint(state).map_err(|e| e.to_string())?;
            let n = writes.fetch_add(1, Ordering::SeqCst) + 1;
            if abort_after.is_some_and(|limit| n >= limit) {
                // Model a SIGKILL mid-run: no unwinding, no destructors.
                std::process::abort();
            }
            if cancel_after.is_some_and(|limit| n >= limit) {
                sink_token.cancel();
            }
            Ok(())
        };
        let cancel_token = session.options.cancel.clone();
        let cancel = move || cancel_token.is_cancelled();
        let mut telemetry = TrainTelemetry::new(obs.clone());
        let observer: Option<&mut dyn TrainerHooks> =
            if obs.enabled() { Some(&mut telemetry) } else { None };
        let hooks = ResumableHooks {
            checkpoint_every: Some(session.options.checkpoint_every.max(1)),
            on_checkpoint: Some(&mut sink),
            cancel: Some(&cancel),
            resume_from: resume_state,
            observer,
        };

        let (report, health_report, outcome) =
            try_train_resumable(self.model_mut(), &dataset, &train_config, health, hooks)
                .map_err(ExtractError::Train)?;

        match outcome {
            TrainOutcome::Cancelled { after_epoch } => {
                session.record_seed_lineage(&health_report);
                session.store.save_manifest(&session.manifest)?;
                Ok(DurableFit::Cancelled { after_epoch })
            }
            TrainOutcome::Completed => {
                // Seal the terminal state: a final checkpoint (the
                // canonical record) and the model artifact, then flip
                // the stage.
                let final_state = TrainerState {
                    gnn: self.model().config().clone(),
                    params: self.model().matrices().into_iter().cloned().collect(),
                    best_params: self.model().matrices().into_iter().cloned().collect(),
                    best_loss: report
                        .epoch_losses
                        .iter()
                        .copied()
                        .fold(f64::INFINITY, f64::min),
                    epoch_losses: report.epoch_losses.clone(),
                    attempt: health_report.retries.len(),
                    seed: health_report
                        .retries
                        .last()
                        .map_or(train_config.seed, |e| e.reseeded_to),
                    rng: [0; 4],
                    order: (0..dataset.len()).collect(),
                    adam_steps: 0,
                    adam_moments: Vec::new(),
                    clipped_steps: health_report.clipped_steps,
                    retries: health_report.retries.clone(),
                };
                session.store.write_checkpoint(&final_state)?;
                session
                    .store
                    .write_artifact("model.txt", "model", &self.model().to_text())?;
                session.record_seed_lineage(&health_report);
                session.mark_done("train", Some("model.txt"))?;
                obs.event(
                    "train",
                    "stage_sealed",
                    &[
                        ("artifact", "model.txt".into()),
                        ("epochs", report.epoch_losses.len().into()),
                    ],
                );
                Ok(DurableFit::Completed {
                    report,
                    health: health_report,
                    resumed_from,
                    notes,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ancstr-runstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let mut m = RunManifest::new(
            "extract",
            "0123456789abcdef".to_owned(),
            7,
            &["a.sp".to_owned(), "dir/b \"q\".sp".to_owned()],
            &["graph", "train", "embed", "detect"],
        );
        m.seed_lineage = vec![7, u64::MAX];
        m.stages[1].status = StageStatus::Done;
        m.stages[1].artifact = Some("model.txt".to_owned());
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        // u64::MAX survives (no f64 round-trip).
        assert_eq!(back.seed_lineage[1], u64::MAX);
    }

    #[test]
    fn manifest_rejects_bad_versions_and_garbage() {
        let m = RunManifest::new("train", "x".into(), 1, &[], &["graph", "train"]);
        let json = m.to_json().replace("\"version\": 1", "\"version\": 99");
        assert_eq!(
            RunManifest::from_json(&json).unwrap_err(),
            RunError::UnsupportedVersion { found: 99 }
        );
        assert!(matches!(
            RunManifest::from_json("not json").unwrap_err(),
            RunError::CorruptManifest { .. }
        ));
        assert!(matches!(
            RunManifest::from_json("{}").unwrap_err(),
            RunError::CorruptManifest { .. }
        ));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp_files() {
        let dir = tmp("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.txt");
        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn store_round_trips_artifacts_and_rejects_corruption() {
        let store = RunStore::create(tmp("artifacts")).unwrap();
        store.write_artifact("blob.txt", "blob", "hello world\n").unwrap();
        assert_eq!(store.read_artifact("blob.txt", "blob").unwrap(), "hello world\n");
        // Kind mismatch is typed.
        assert!(matches!(
            store.read_artifact("blob.txt", "other").unwrap_err(),
            RunError::CorruptArtifact { .. }
        ));
        // A flipped byte is caught by the CRC.
        let path = store.root().join("blob.txt");
        let mut bytes = fs::read(&path).unwrap();
        bytes[1] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            store.read_artifact("blob.txt", "blob").unwrap_err(),
            RunError::CorruptArtifact { .. }
        ));
    }

    #[test]
    fn resume_validates_command_config_and_inputs() {
        let dir = tmp("resume-validate");
        let config = ExtractorConfig::default();
        let inputs = vec!["a.sp".to_owned()];
        let session =
            RunSession::open(RunOptions::new(&dir), "extract", &config, &inputs).unwrap();
        drop(session);

        let mut opts = RunOptions::new(&dir);
        opts.resume = true;
        assert!(RunSession::open(opts.clone(), "extract", &config, &inputs).is_ok());
        assert!(matches!(
            RunSession::open(opts.clone(), "train", &config, &inputs).unwrap_err(),
            RunError::ConfigMismatch { field: "command", .. }
        ));
        let mut other = config.clone();
        other.train.seed = 999;
        assert!(matches!(
            RunSession::open(opts.clone(), "extract", &other, &inputs).unwrap_err(),
            RunError::ConfigMismatch { field: "config_hash", .. }
        ));
        assert!(matches!(
            RunSession::open(opts, "extract", &config, &["b.sp".to_owned()]).unwrap_err(),
            RunError::ConfigMismatch { field: "inputs", .. }
        ));

        // Resuming a directory that never was a run is typed.
        let mut opts = RunOptions::new(tmp("resume-empty"));
        opts.resume = true;
        assert!(matches!(
            RunSession::open(opts, "extract", &config, &inputs).unwrap_err(),
            RunError::NotARun { .. }
        ));
    }

    #[test]
    fn deadline_token_fires() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.arm_deadline(Duration::from_millis(10));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() {
            assert!(std::time::Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn latch() -> FlatCircuit {
        let nl = ancstr_netlist::parse::parse_spice(
            "\
.subckt latch q qb en vdd vss
M1 q qb tail vss nch_lvt w=4u l=0.2u
M2 qb q tail vss nch_lvt w=4u l=0.2u
M5 tail en vss vss nch w=2u l=0.5u
.ends
",
        )
        .unwrap();
        FlatCircuit::elaborate(&nl).unwrap()
    }

    fn quick_config() -> ExtractorConfig {
        ExtractorConfig {
            train: ancstr_gnn::TrainConfig {
                epochs: 12,
                learning_rate: 0.02,
                seed: 7,
                ..ancstr_gnn::TrainConfig::default()
            },
            ..ExtractorConfig::default()
        }
    }

    #[test]
    fn interrupted_resume_is_bit_identical_to_uninterrupted() {
        let flat = latch();
        let config = quick_config();
        let inputs = vec!["latch.sp".to_owned()];
        let health = HealthConfig::default();

        // Reference: one uninterrupted durable run.
        let mut reference = SymmetryExtractor::new(config.clone());
        let mut session = RunSession::open(
            RunOptions::new(tmp("durable-ref")),
            "extract",
            &config,
            &inputs,
        )
        .unwrap();
        let out = reference.fit_durable(&[&flat], &health, &mut session).unwrap();
        assert!(matches!(out, DurableFit::Completed { resumed_from: None, .. }), "{out:?}");

        // Interrupted run: the cancel token fires after the second
        // periodic checkpoint (completed epoch 4), as a deadline would.
        let dir = tmp("durable-interrupted");
        let mut opts = RunOptions::new(&dir);
        opts.checkpoint_every = 2;
        opts.test_cancel_after_checkpoints = Some(2);
        let mut interrupted = SymmetryExtractor::new(config.clone());
        let mut session = RunSession::open(opts, "extract", &config, &inputs).unwrap();
        let out = interrupted.fit_durable(&[&flat], &health, &mut session).unwrap();
        let DurableFit::Cancelled { after_epoch } = out else {
            panic!("expected cancellation, got {out:?}");
        };
        assert_eq!(after_epoch, 4);
        assert!(!session.stage_done("train"));

        // Resume as a fresh process would: new extractor, new session.
        let mut opts = RunOptions::new(&dir);
        opts.resume = true;
        opts.checkpoint_every = 2;
        let mut session = RunSession::open(opts, "extract", &config, &inputs).unwrap();
        let mut resumed = SymmetryExtractor::new(config.clone());
        let out = resumed.fit_durable(&[&flat], &health, &mut session).unwrap();
        let DurableFit::Completed { report, resumed_from, .. } = out else {
            panic!("expected completion, got {out:?}");
        };
        assert_eq!(resumed_from, Some(4));
        assert!(session.stage_done("train"));
        assert_eq!(session.manifest().seed_lineage, vec![config.train.seed]);

        // Bit-identical weights and loss trajectory: vs the durable
        // reference AND vs the plain (non-durable) training path.
        assert_eq!(resumed.model().to_text(), reference.model().to_text());
        let mut plain = SymmetryExtractor::new(config.clone());
        let plain_report = plain.fit(&[&flat]);
        assert_eq!(report, plain_report);
        assert_eq!(resumed.model().to_text(), plain.model().to_text());

        // Resuming the now-completed run skips training entirely and
        // reloads the same weights with the full loss history.
        let mut opts = RunOptions::new(&dir);
        opts.resume = true;
        let mut session = RunSession::open(opts, "extract", &config, &inputs).unwrap();
        let mut reloaded = SymmetryExtractor::new(config.clone());
        let out = reloaded.fit_durable(&[&flat], &health, &mut session).unwrap();
        let DurableFit::Completed { report, resumed_from, .. } = out else {
            panic!("expected completion, got {out:?}");
        };
        assert_eq!(resumed_from, None);
        assert_eq!(report, plain_report);
        assert_eq!(reloaded.model().to_text(), plain.model().to_text());
    }

    #[test]
    fn pre_expired_deadline_checkpoints_before_the_first_epoch() {
        let flat = latch();
        let config = quick_config();
        let dir = tmp("durable-deadline0");
        let opts = RunOptions::new(&dir);
        opts.cancel.cancel();
        let mut session =
            RunSession::open(opts, "extract", &config, &["latch.sp".to_owned()]).unwrap();
        let mut ex = SymmetryExtractor::new(config.clone());
        let out = ex
            .fit_durable(&[&flat], &HealthConfig::default(), &mut session)
            .unwrap();
        let DurableFit::Cancelled { after_epoch } = out else {
            panic!("expected cancellation, got {out:?}");
        };
        assert_eq!(after_epoch, 0);
        // The zero-epoch checkpoint exists and verifies.
        let (state, notes) = session.store().latest_valid_checkpoint();
        assert!(notes.is_empty(), "{notes:?}");
        assert_eq!(state.unwrap().epoch_losses.len(), 0);
    }

    #[test]
    fn config_hash_is_stable_and_discriminating() {
        let a = ExtractorConfig::default();
        let mut b = ExtractorConfig::default();
        assert_eq!(config_hash(&a), config_hash(&b));
        b.train.epochs += 1;
        assert_ne!(config_hash(&a), config_hash(&b));
        assert_eq!(config_hash(&a).len(), 16);
    }
}
