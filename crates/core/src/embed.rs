//! Circuit feature embedding (paper Section IV-D, Algorithm 2).
//!
//! A subcircuit's embedding is the concatenation of the trained feature
//! vectors of its top-M PageRank vertices, computed on the simplified
//! (untyped, de-paralleled) digraph of its own multigraph.

use ancstr_graph::{
    pagerank::top_m_by_pagerank, pagerank, BuildOptions, HetMultigraph, PageRankOptions,
    SimpleDigraph,
};
use ancstr_netlist::flat::{FlatCircuit, HierNodeId};
use ancstr_nn::Matrix;

/// Options of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbedOptions {
    /// Representative-vertex budget `M` (paper: 10; `M = |V_t|` when the
    /// subcircuit is smaller).
    pub m: usize,
    /// PageRank parameters (Eq. 3, damping γ).
    pub pagerank: PageRankOptions,
    /// Multigraph construction options for `G_t`.
    pub build: BuildOptions,
}

impl Default for EmbedOptions {
    fn default() -> EmbedOptions {
        EmbedOptions {
            m: 10,
            pagerank: PageRankOptions::default(),
            // Algorithm 1's clique construction is quadratic in net
            // fanout: a flattened supply rail touching every device of a
            // 100k-device corpus materializes O(n²) multigraph edges in
            // the root block's subgraph before the simple-digraph
            // collapse can dedup them. No hand-built benchmark has a
            // block-local net over 551 pins, so pruning at 1024 leaves
            // every committed result bit-identical while keeping
            // synthetic-scale embedding linear. (The training graph
            // prunes harder, at 64 — see `ExtractorConfig::default`.)
            build: BuildOptions { max_net_degree: Some(1024) },
        }
    }
}

/// Compute a subcircuit's feature embedding `z_t` (Algorithm 2).
///
/// `z` holds the trained per-vertex representations of the *whole*
/// circuit (row = flat device index). Returns the concatenation of the
/// top-M rows by PageRank; length is `min(M, |V_t|) · D`, so embeddings
/// of different subcircuits may differ in length — cosine comparison
/// zero-pads (see [`ancstr_nn::cosine_similarity`]).
///
/// # Panics
///
/// Panics if `node` is not part of `flat` or `z` has fewer rows than the
/// circuit has devices.
pub fn embed_circuit(
    flat: &FlatCircuit,
    node: HierNodeId,
    z: &Matrix,
    options: &EmbedOptions,
) -> Vec<f64> {
    assert!(
        z.rows() >= flat.devices().len(),
        "need one trained feature row per device"
    );
    // Lines 1–4: simplified digraph of the subcircuit's multigraph.
    let g = HetMultigraph::from_subtree(flat, node, &options.build);
    let simple = SimpleDigraph::from_multigraph(&g);
    // Lines 5–6: PageRank and ordering.
    let pr = pagerank(&simple, &options.pagerank);
    let m = options.m.min(g.vertex_count());
    let top = top_m_by_pagerank(&pr, m);
    // Lines 7–10: concatenate the trained features of the top vertices.
    let mut out = Vec::with_capacity(m * z.cols());
    for &v in &top {
        // Subtree graphs index vertices by global flat-device position.
        let global = g.device_index(ancstr_graph::VertexId(v));
        out.extend_from_slice(z.row(global));
    }
    out
}

/// Embeddings for every block node of the circuit, keyed by node id
/// order (missing entries for leaves).
pub fn embed_all_blocks(
    flat: &FlatCircuit,
    z: &Matrix,
    options: &EmbedOptions,
) -> Vec<Option<Vec<f64>>> {
    let mut out = vec![None; flat.nodes().len()];
    let blocks: Vec<HierNodeId> = flat.blocks().map(|b| b.id).collect();
    // Each block runs its own subcircuit PageRank — independent work,
    // fanned out across blocks; `map_items` returns results in block
    // order, so the scatter below is deterministic.
    let embeddings = ancstr_par::map_items(&blocks, 1, |&id| embed_circuit(flat, id, z, options));
    for (id, e) in blocks.into_iter().zip(embeddings) {
        out[id.0] = Some(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;
    use ancstr_nn::cosine_similarity;

    fn flat(src: &str) -> FlatCircuit {
        FlatCircuit::elaborate(&parse_spice(src).unwrap()).unwrap()
    }

    const TWO_INV: &str = "\
.subckt inv in out vdd vss
Mp out in vdd vdd pch w=2u l=0.1u
Mn out in vss vss nch w=1u l=0.1u
.ends
.subckt top a y vdd vss
X1 a m vdd vss inv
X2 m y vdd vss inv
.ends
";

    /// Identity features: row i = one-hot of the device index, so the
    /// embedding is readable in tests.
    fn identity_features(n: usize) -> Matrix {
        Matrix::identity(n)
    }

    #[test]
    fn embedding_length_is_min_m_times_d() {
        let f = flat(TWO_INV);
        let z = identity_features(4);
        let x1 = f.node_by_path("top/X1").unwrap().id;
        let e = embed_circuit(&f, x1, &z, &EmbedOptions::default());
        // |V_t| = 2 < M = 10 → length 2 · D.
        assert_eq!(e.len(), 2 * 4);
        let e1 = embed_circuit(&f, x1, &z, &EmbedOptions { m: 1, ..Default::default() });
        assert_eq!(e1.len(), 4);
    }

    #[test]
    fn identical_subcircuits_embed_identically_under_symmetric_features() {
        let f = flat(TWO_INV);
        // Give matched devices matched features (as a trained GNN would).
        let z = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
        ]);
        let x1 = f.node_by_path("top/X1").unwrap().id;
        let x2 = f.node_by_path("top/X2").unwrap().id;
        let opts = EmbedOptions::default();
        let e1 = embed_circuit(&f, x1, &z, &opts);
        let e2 = embed_circuit(&f, x2, &z, &opts);
        assert!((cosine_similarity(&e1, &e2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_features_separate_subcircuits() {
        let f = flat(TWO_INV);
        let z = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[-1.0, 0.3],
            &[0.3, -1.0],
        ]);
        let x1 = f.node_by_path("top/X1").unwrap().id;
        let x2 = f.node_by_path("top/X2").unwrap().id;
        let opts = EmbedOptions::default();
        let e1 = embed_circuit(&f, x1, &z, &opts);
        let e2 = embed_circuit(&f, x2, &z, &opts);
        assert!(cosine_similarity(&e1, &e2) < 0.9);
    }

    #[test]
    fn pagerank_ordering_prefers_hub_devices() {
        // A star: M0 touches everything, peripherals touch only M0.
        let f = flat(
            "\
.subckt c a vdd vss
M0 h a vss vss nch w=1u l=0.1u
R1 h x1 1k
R2 h x2 1k
R3 h x3 1k
.ends
",
        );
        let z = identity_features(4);
        let root = f.root().id;
        let e = embed_circuit(&f, root, &z, &EmbedOptions { m: 1, ..Default::default() });
        // Top-1 vertex must be the hub M0 → its one-hot row is index 0.
        assert_eq!(e, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn embed_all_blocks_covers_internal_nodes_only() {
        let f = flat(TWO_INV);
        let z = identity_features(4);
        let all = embed_all_blocks(&f, &z, &EmbedOptions::default());
        let blocks = f.blocks().count();
        assert_eq!(all.iter().filter(|e| e.is_some()).count(), blocks);
        for n in f.nodes() {
            assert_eq!(all[n.id.0].is_some(), n.is_block());
        }
    }
}
