//! Observability bridge between the pipeline and [`ancstr_obs`]:
//! stage spans, per-stage metrics, and the [`TrainerHooks`] adapter
//! that turns training telemetry into trace events.
//!
//! [`PipelineObs`] is a cheap-clone handle bundling an optional
//! [`Tracer`] with an always-available metrics [`Registry`]. Every
//! observed pipeline entry point takes `&PipelineObs`; with
//! [`PipelineObs::disabled`] each instrumentation point is a no-op and
//! the pipeline's arithmetic is untouched either way — observation is
//! strictly read-only (proven by integration tests that byte-compare
//! outputs with and without tracing).
//!
//! Span names map onto the paper's algorithms; see DESIGN.md:
//! `parse` → `elaborate` → `graph_build` (Alg. 1) → `feature_init`
//! (Table II) → `train` (Eq. 1–2) → `embed` (GNN inference) → `detect`
//! (Alg. 2–3; the PageRank circuit embedding runs inside detection).

use std::path::Path;
use std::time::Instant;

use ancstr_gnn::{
    try_train_resumable, EmbedError, EpochTelemetry, GraphTensors, HealthConfig, HealthEvent,
    HealthReport, ResumableHooks, TrainGraph, TrainReport, TrainerHooks,
};
use ancstr_graph::HetMultigraph;
use ancstr_netlist::parse::parse_spice_file;
use ancstr_netlist::FlatCircuit;
use ancstr_obs::{Registry, Span, Tracer, Value, DURATION_BUCKETS_S, GRAD_NORM_BUCKETS};

use crate::detect::{detect_constraints, DetectionResult, NumericWarning};
use crate::features::circuit_features;
use crate::metrics::level_confusions;
use crate::pipeline::{Extraction, SymmetryExtractor};
use crate::recover::ExtractError;

/// The seven pipeline stage names, in execution order. Shared by the
/// instrumentation, the docs, and the trace-coverage tests.
pub const STAGES: [&str; 7] = [
    "parse",
    "elaborate",
    "graph_build",
    "feature_init",
    "train",
    "embed",
    "detect",
];

/// Shared observability handle: an optional tracer plus a metrics
/// registry. Cloning is cheap; clones share state.
#[derive(Clone)]
pub struct PipelineObs {
    tracer: Option<Tracer>,
    metrics: Registry,
    enabled: bool,
}

impl PipelineObs {
    /// An enabled handle. `tracer: None` still collects metrics.
    pub fn new(tracer: Option<Tracer>) -> PipelineObs {
        let metrics = Registry::new();
        metrics.help("ancstr_stage_duration_seconds", "Wall-clock time per pipeline stage.");
        metrics.help("ancstr_stage_runs_total", "Completed executions per pipeline stage.");
        metrics.help("ancstr_train_epochs_total", "Successfully completed training epochs.");
        metrics.help("ancstr_train_loss", "Mean context loss of the latest epoch.");
        metrics.help("ancstr_train_grad_norm", "Pre-clip global gradient norm per epoch (max over steps).");
        metrics.help("ancstr_train_clipped_steps_total", "Optimizer steps whose gradient was norm-clipped.");
        metrics.help("ancstr_train_retries_total", "Health-monitor recoveries (checkpoint restore + re-seed).");
        metrics.help("ancstr_checkpoint_write_seconds", "Checkpoint sink write latency.");
        metrics.help("ancstr_checkpoints_written_total", "Trainer checkpoints flushed through the sink.");
        metrics.help("ancstr_runstore_recovery_notes_total", "Run-store fallback decisions (corrupt checkpoint skipped, artifact reload, retrain).");
        metrics.help("ancstr_detect_warnings_total", "Devices quarantined by detection for non-finite features.");
        metrics.help("ancstr_detect_skipped_pairs_total", "Candidate pairs skipped because a member was quarantined.");
        metrics.help("ancstr_detect_constraints", "Accepted symmetry constraints in the latest detection.");
        metrics.help("ancstr_detect_scored_pairs", "Candidate pairs scored in the latest detection.");
        metrics.help("ancstr_quality", "Table V/VI detection quality against ground truth.");
        metrics.help("ancstr_run_aborted_total", "Runs that ended on watchdog cancellation or a run-store failure.");
        PipelineObs { metrics, tracer, enabled: true }
    }

    /// A disabled handle: no tracer, and a registry nobody reads.
    /// Every instrumentation call stays a cheap no-op.
    pub fn disabled() -> PipelineObs {
        PipelineObs { tracer: None, metrics: Registry::new(), enabled: false }
    }

    /// Whether a tracer is attached.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// The raw tracer, when one is attached. The serving layer uses it
    /// to open request-lifecycle spans (queue wait, forward hops) that
    /// do not map onto pipeline stages.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Whether observation is wanted at all. The `*_observed` pipeline
    /// entry points use this to pick the exact pre-observability code
    /// path when nobody is watching.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry (render with
    /// [`Registry::render`] for `metrics.prom`).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Open a stage span named after the stage itself; the guard also
    /// feeds the stage-duration histogram on drop.
    pub fn stage(&self, stage: &'static str) -> StageGuard {
        self.stage_with(stage, &[])
    }

    /// [`PipelineObs::stage`] with extra fields on the `span_start`.
    pub fn stage_with(&self, stage: &'static str, fields: &[(&str, Value)]) -> StageGuard {
        StageGuard {
            span: self.tracer.as_ref().map(|t| t.span(stage, stage, fields)),
            metrics: self.metrics.clone(),
            stage,
            start: Instant::now(),
        }
    }

    /// Emit a point-in-time trace event (no-op without a tracer).
    pub fn event(&self, stage: &str, name: &str, fields: &[(&str, Value)]) {
        if let Some(t) = &self.tracer {
            t.event(stage, name, fields);
        }
    }

    /// Flush the tracer's buffered output.
    pub fn flush(&self) {
        if let Some(t) = &self.tracer {
            t.flush();
        }
    }

    /// Write the current metrics as Prometheus text exposition to
    /// `path` (atomically, via temp + rename).
    ///
    /// # Errors
    ///
    /// Any I/O failure of the underlying atomic write.
    pub fn write_prom(&self, path: &Path) -> Result<(), crate::runstore::RunError> {
        crate::runstore::write_atomic(path, &self.metrics.render())
    }

    /// Record a run-store fallback decision (corrupt checkpoint
    /// skipped, artifact reload, re-train) as a structured trace event
    /// plus a counter, alongside the human-readable note the run store
    /// already surfaces.
    pub fn runstore_note(&self, note: &str) {
        self.event("train", "runstore_note", &[("note", note.into())]);
        self.metrics.counter_add("ancstr_runstore_recovery_notes_total", &[], 1);
    }

    /// Record a finished detection: constraint/pair gauges, plus the
    /// counted [`NumericWarning`] records as structured `numeric_warning`
    /// events in stable (path-sorted) order.
    pub fn record_detection(&self, detection: &DetectionResult) {
        let m = &self.metrics;
        m.gauge_set("ancstr_detect_constraints", &[], detection.constraints.len() as f64);
        m.gauge_set("ancstr_detect_scored_pairs", &[], detection.scored.len() as f64);
        let mut warnings: Vec<&NumericWarning> = detection.warnings.iter().collect();
        warnings.sort_by(|a, b| a.path.cmp(&b.path).then(a.node.cmp(&b.node)));
        for w in warnings {
            self.event(
                "detect",
                "numeric_warning",
                &[
                    ("path", w.path.as_str().into()),
                    ("skipped_pairs", w.skipped_pairs.into()),
                ],
            );
            m.counter_add("ancstr_detect_warnings_total", &[], 1);
            m.counter_add("ancstr_detect_skipped_pairs_total", &[], w.skipped_pairs as u64);
        }
    }

    /// Record the Table V/VI quality gauges for a finished detection —
    /// same [`level_confusions`] source as the CLI's `--metrics` table.
    pub fn record_quality(
        &self,
        flat: &FlatCircuit,
        constraints: &ancstr_netlist::constraint::ConstraintSet,
    ) {
        for (level, c) in level_confusions(flat, constraints) {
            for (stat, value) in [
                ("tpr", c.tpr()),
                ("fpr", c.fpr()),
                ("ppv", c.ppv()),
                ("acc", c.acc()),
                ("f1", c.f1()),
            ] {
                self.metrics
                    .gauge_set("ancstr_quality", &[("level", level), ("stat", stat)], value);
            }
        }
    }
}

/// RAII guard for one pipeline stage: closes the trace span and
/// records the stage-duration histogram + run counter on drop.
pub struct StageGuard {
    span: Option<Span>,
    metrics: Registry,
    stage: &'static str,
    start: Instant,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.metrics.observe(
            "ancstr_stage_duration_seconds",
            &[("stage", self.stage)],
            &DURATION_BUCKETS_S,
            elapsed,
        );
        self.metrics
            .counter_add("ancstr_stage_runs_total", &[("stage", self.stage)], 1);
        self.span.take(); // emits span_end
    }
}

/// [`TrainerHooks`] adapter: forwards per-epoch telemetry, retries,
/// checkpoint latency and cancellation into trace events and metrics.
pub struct TrainTelemetry {
    obs: PipelineObs,
}

impl TrainTelemetry {
    /// An adapter writing into `obs`.
    pub fn new(obs: PipelineObs) -> TrainTelemetry {
        TrainTelemetry { obs }
    }
}

impl TrainerHooks for TrainTelemetry {
    fn on_epoch(&mut self, t: &EpochTelemetry) {
        self.obs.event(
            "train",
            "epoch",
            &[
                ("epoch", t.epoch.into()),
                ("attempt", t.attempt.into()),
                ("loss", t.loss.into()),
                ("steps", t.steps.into()),
                ("grad_norm_max", t.grad_norm_max.into()),
                ("grad_norm_mean", t.grad_norm_mean.into()),
                ("grad_norm_post_clip_max", t.grad_norm_post_clip_max.into()),
                ("clipped_steps", t.clipped_steps.into()),
            ],
        );
        let m = self.obs.metrics();
        m.counter_add("ancstr_train_epochs_total", &[], 1);
        m.gauge_set("ancstr_train_loss", &[], t.loss);
        m.observe("ancstr_train_grad_norm", &[], &GRAD_NORM_BUCKETS, t.grad_norm_max);
        if t.clipped_steps > 0 {
            m.counter_add("ancstr_train_clipped_steps_total", &[], t.clipped_steps as u64);
        }
    }

    fn on_retry(&mut self, e: &HealthEvent) {
        self.obs.event(
            "train",
            "train_retry",
            &[
                ("epoch", e.epoch.into()),
                ("attempt", e.attempt.into()),
                ("cause", format!("{:?}", e.cause).into()),
                ("reseeded_to", e.reseeded_to.into()),
            ],
        );
        self.obs.metrics().counter_add("ancstr_train_retries_total", &[], 1);
    }

    fn on_checkpoint(&mut self, completed_epochs: usize, write_time: std::time::Duration) {
        let secs = write_time.as_secs_f64();
        self.obs.event(
            "train",
            "checkpoint_write",
            &[
                ("completed_epochs", completed_epochs.into()),
                ("write_seconds", secs.into()),
            ],
        );
        let m = self.obs.metrics();
        m.counter_add("ancstr_checkpoints_written_total", &[], 1);
        m.observe("ancstr_checkpoint_write_seconds", &[], &DURATION_BUCKETS_S, secs);
    }

    fn on_cancelled(&mut self, after_epoch: usize) {
        self.obs
            .event("train", "train_cancelled", &[("after_epoch", after_epoch.into())]);
    }
}

/// Load and elaborate a SPICE netlist under `parse` and `elaborate`
/// stage spans. The un-traced equivalent of
/// `parse_spice_file` + [`FlatCircuit::elaborate`].
///
/// # Errors
///
/// [`ExtractError::Parse`] / [`ExtractError::Elaborate`] as usual.
pub fn load_netlist_observed(
    path: &str,
    obs: &PipelineObs,
) -> Result<FlatCircuit, ExtractError> {
    let netlist = {
        let _g = obs.stage_with("parse", &[("path", path.into())]);
        parse_spice_file(path)?
    };
    let flat = {
        let _g = obs.stage("elaborate");
        FlatCircuit::elaborate(&netlist)?
    };
    obs.event(
        "elaborate",
        "circuit_loaded",
        &[
            ("path", path.into()),
            ("devices", flat.devices().len().into()),
            ("nets", flat.net_count().into()),
        ],
    );
    Ok(flat)
}

impl SymmetryExtractor {
    /// [`SymmetryExtractor::train_graph`] under `graph_build` and
    /// `feature_init` stage spans.
    pub fn train_graph_observed(&self, flat: &FlatCircuit, obs: &PipelineObs) -> TrainGraph {
        let tensors = {
            let _g = obs.stage("graph_build");
            let g = HetMultigraph::from_circuit(flat, &self.config().build);
            let t = GraphTensors::from_multigraph(&g);
            obs.event("graph_build", "graph_built", &[("vertices", t.vertex_count().into())]);
            t
        };
        let features = {
            let _g = obs.stage("feature_init");
            circuit_features(flat, &self.config().features)
        };
        TrainGraph { tensors, features }
    }

    /// [`SymmetryExtractor::try_fit`](crate::recover) with observability:
    /// `graph_build`/`feature_init`/`train` stage spans and per-epoch
    /// training telemetry through [`TrainTelemetry`]. With a disabled
    /// handle this *is* `try_fit` — same code path, same results; with
    /// an enabled one the observer is read-only, so results are still
    /// bit-identical (proven by `tests/observability.rs`).
    ///
    /// # Errors
    ///
    /// Exactly those of [`SymmetryExtractor::try_fit`].
    pub fn try_fit_observed(
        &mut self,
        circuits: &[&FlatCircuit],
        health: &HealthConfig,
        obs: &PipelineObs,
    ) -> Result<(TrainReport, HealthReport), ExtractError> {
        if !obs.enabled() {
            return self.try_fit(circuits, health);
        }
        let dataset: Vec<TrainGraph> =
            circuits.iter().map(|f| self.train_graph_observed(f, obs)).collect();
        let train_config = self.config().train.clone();
        let _span = obs.stage_with(
            "train",
            &[
                ("epochs", train_config.epochs.into()),
                ("circuits", circuits.len().into()),
                ("seed", train_config.seed.into()),
            ],
        );
        let mut telemetry = TrainTelemetry::new(obs.clone());
        let (report, health_report, _outcome) = try_train_resumable(
            self.model_mut(),
            &dataset,
            &train_config,
            health,
            ResumableHooks { observer: Some(&mut telemetry), ..ResumableHooks::default() },
        )
        .map_err(ExtractError::Train)?;
        Ok((report, health_report))
    }

    /// [`SymmetryExtractor::try_extract`](crate::recover) with
    /// observability: `graph_build`/`feature_init`/`embed`/`detect`
    /// stage spans, degraded-embed events, and the detection's counted
    /// [`NumericWarning`] records as structured `numeric_warning`
    /// events (stable path-sorted order).
    ///
    /// # Errors
    ///
    /// Exactly those of [`SymmetryExtractor::try_extract`].
    pub fn try_extract_observed(
        &self,
        flat: &FlatCircuit,
        obs: &PipelineObs,
    ) -> Result<Extraction, ExtractError> {
        self.try_extract_cancellable(flat, obs, &crate::runstore::CancelToken::new())
    }

    /// [`SymmetryExtractor::try_extract_observed`] under a
    /// [`CancelToken`](crate::runstore::CancelToken): the token is
    /// polled at every stage boundary (before graph build, before
    /// embedding, before detection), so a request whose deadline
    /// expires mid-pipeline stops occupying a worker at the next
    /// boundary instead of running to completion for nobody. The
    /// checks are read-only — with a never-cancelled token this is
    /// byte-identical to `try_extract_observed`.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Cancelled`] when the token trips; otherwise
    /// exactly those of [`SymmetryExtractor::try_extract`].
    pub fn try_extract_cancellable(
        &self,
        flat: &FlatCircuit,
        obs: &PipelineObs,
        cancel: &crate::runstore::CancelToken,
    ) -> Result<Extraction, ExtractError> {
        if cancel.is_cancelled() {
            return Err(ExtractError::Cancelled);
        }
        let start = Instant::now();
        let tg = self.train_graph_observed(flat, obs);
        if cancel.is_cancelled() {
            return Err(ExtractError::Cancelled);
        }
        let z = {
            let _g = obs.stage("embed");
            match self.model().try_embed(&tg.tensors, &tg.features) {
                Ok(z) => z,
                // Poisoned *inputs* still yield a degraded-but-valid
                // detection (same policy as `try_extract`).
                Err(EmbedError::NonFiniteFeatures) => {
                    obs.event(
                        "embed",
                        "degraded_embed",
                        &[("cause", "non-finite features".into())],
                    );
                    self.model().embed(&tg.tensors, &tg.features)
                }
                Err(other) => return Err(ExtractError::Embed(other)),
            }
        };
        if cancel.is_cancelled() {
            return Err(ExtractError::Cancelled);
        }
        let detection = {
            let _g = obs.stage("detect");
            detect_constraints(flat, &z, &self.config().thresholds, &self.config().embed)
        };
        obs.record_detection(&detection);
        Ok(Extraction { detection, runtime: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_obs::{validate_exposition, validate_trace, Tracer};

    #[test]
    fn disabled_obs_is_a_cheap_no_op() {
        let obs = PipelineObs::disabled();
        {
            let _g = obs.stage("parse");
            obs.event("parse", "nothing", &[]);
        }
        assert!(!obs.tracing());
        // The registry still counts (nobody renders it), proving the
        // code path is identical with and without a tracer.
        assert_eq!(obs.metrics().counter_value("ancstr_stage_runs_total", &[("stage", "parse")]), 1);
    }

    #[test]
    fn stage_guard_emits_span_and_histogram() {
        let (tracer, buf) = Tracer::in_memory();
        let obs = PipelineObs::new(Some(tracer));
        {
            let _g = obs.stage_with("train", &[("epochs", 2u64.into())]);
            obs.event("train", "epoch", &[("loss", 0.1.into())]);
        }
        obs.flush();
        let events = validate_trace(&buf.contents()).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].span, "train");
        assert_eq!(events[1].parent, events[0].id);
        let prom = obs.metrics().render();
        validate_exposition(&prom).unwrap();
        assert!(prom.contains("ancstr_stage_duration_seconds_count{stage=\"train\"} 1"));
        assert!(prom.contains("ancstr_stage_runs_total{stage=\"train\"} 1"));
    }

    #[test]
    fn telemetry_adapter_translates_epochs_and_retries() {
        let (tracer, buf) = Tracer::in_memory();
        let obs = PipelineObs::new(Some(tracer));
        let mut hooks = TrainTelemetry::new(obs.clone());
        hooks.on_epoch(&EpochTelemetry {
            epoch: 0,
            attempt: 0,
            loss: 0.7,
            steps: 4,
            grad_norm_max: 2.0,
            grad_norm_mean: 1.5,
            grad_norm_post_clip_max: 1.0,
            clipped_steps: 1,
        });
        hooks.on_retry(&HealthEvent {
            epoch: 1,
            attempt: 0,
            cause: ancstr_gnn::AnomalyCause::NonFiniteGradient,
            reseeded_to: 42,
        });
        hooks.on_checkpoint(2, std::time::Duration::from_millis(3));
        hooks.on_cancelled(2);
        obs.flush();
        let events = validate_trace(&buf.contents()).unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.span.as_str()).collect();
        assert_eq!(names, ["epoch", "train_retry", "checkpoint_write", "train_cancelled"]);
        let m = obs.metrics();
        assert_eq!(m.counter_value("ancstr_train_epochs_total", &[]), 1);
        assert_eq!(m.counter_value("ancstr_train_retries_total", &[]), 1);
        assert_eq!(m.counter_value("ancstr_train_clipped_steps_total", &[]), 1);
        assert_eq!(m.counter_value("ancstr_checkpoints_written_total", &[]), 1);
        validate_exposition(&m.render()).unwrap();
    }
}
