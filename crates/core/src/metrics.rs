//! Evaluation metrics (paper Eq. 6) and ROC analysis (Figs. 6–7).

/// Confusion counts over the valid pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted matched, truly matched.
    pub tp: usize,
    /// Predicted matched, truly unmatched.
    pub fp: usize,
    /// Predicted unmatched, truly unmatched.
    pub tn: usize,
    /// Predicted unmatched, truly matched.
    pub fn_: usize,
}

impl Confusion {
    /// Accumulate one decision.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Merge another confusion (dataset merging).
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total decisions.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// True positive rate `TP / (TP + FN)` (1 when no positives exist).
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_, 1.0)
    }

    /// False positive rate `FP / (FP + TN)` (0 when no negatives exist).
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn, 0.0)
    }

    /// Positive predictive value `TP / (TP + FP)` (1 when nothing was
    /// predicted positive).
    pub fn ppv(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp, 1.0)
    }

    /// Accuracy `(TP + TN) / total` (1 on an empty set).
    pub fn acc(&self) -> f64 {
        ratio(self.tp + self.tn, self.total(), 1.0)
    }

    /// F₁-score `2TP / (2TP + FP + FN)` (1 when there is nothing to
    /// find and nothing was claimed).
    pub fn f1(&self) -> f64 {
        ratio(2 * self.tp, 2 * self.tp + self.fp + self.fn_, 1.0)
    }
}

fn ratio(num: usize, den: usize, empty: f64) -> f64 {
    if den == 0 {
        empty
    } else {
        num as f64 / den as f64
    }
}

/// Build a confusion from `(predicted, actual)` pairs.
pub fn confusion_from_decisions(
    decisions: impl IntoIterator<Item = (bool, bool)>,
) -> Confusion {
    let mut c = Confusion::default();
    for (p, a) in decisions {
        c.record(p, a);
    }
    c
}

/// One point of an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False positive rate.
    pub fpr: f64,
    /// True positive rate.
    pub tpr: f64,
}

/// An ROC curve with its AUC.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Points ordered by increasing FPR (threshold decreasing), always
    /// starting at (0,0) and ending at (1,1).
    pub points: Vec<RocPoint>,
    /// Area under the curve (trapezoidal).
    pub auc: f64,
}

/// Compute the ROC curve of `(score, actual)` samples by sweeping the
/// threshold over every distinct score.
///
/// Degenerate inputs (no positives or no negatives) yield the diagonal
/// endpoints with `auc` computed over whatever axis varies.
pub fn roc_curve(samples: &[(f64, bool)]) -> RocCurve {
    let positives = samples.iter().filter(|(_, a)| *a).count();
    let negatives = samples.len() - positives;

    let mut sorted: Vec<(f64, bool)> = samples.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));

    let mut points = vec![RocPoint { threshold: f64::INFINITY, fpr: 0.0, tpr: 0.0 }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < sorted.len() {
        // Consume ties together so the curve is threshold-consistent.
        let score = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == score {
            if sorted[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: score,
            fpr: if negatives > 0 { fp as f64 / negatives as f64 } else { 0.0 },
            tpr: if positives > 0 { tp as f64 / positives as f64 } else { 0.0 },
        });
    }
    let last = points.last().copied().expect("at least the origin");
    if last.fpr < 1.0 || last.tpr < 1.0 {
        points.push(RocPoint { threshold: f64::NEG_INFINITY, fpr: 1.0, tpr: 1.0 });
    }

    // Trapezoidal AUC over FPR.
    let mut auc = 0.0;
    for w in points.windows(2) {
        auc += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
    }
    RocCurve { points, auc }
}

/// One point of a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// Recall (= TPR).
    pub recall: f64,
    /// Precision (= PPV).
    pub precision: f64,
}

/// A precision-recall curve with its average precision (AP, the
/// recall-weighted mean of precision — the step-function integral).
#[derive(Debug, Clone, PartialEq)]
pub struct PrCurve {
    /// Points ordered by increasing recall (decreasing threshold).
    pub points: Vec<PrPoint>,
    /// Average precision.
    pub average_precision: f64,
}

/// Compute the precision-recall curve of `(score, actual)` samples.
///
/// Complements [`roc_curve`] for the heavily class-imbalanced regime of
/// symmetry detection, where negatives vastly outnumber positives and
/// ROC can look optimistic. Returns an empty curve with AP = 0 when
/// there are no positives.
pub fn pr_curve(samples: &[(f64, bool)]) -> PrCurve {
    let positives = samples.iter().filter(|(_, a)| *a).count();
    if positives == 0 {
        return PrCurve { points: Vec::new(), average_precision: 0.0 };
    }
    let mut sorted: Vec<(f64, bool)> = samples.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));

    let mut points = Vec::new();
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let score = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == score {
            if sorted[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let recall = tp as f64 / positives as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
        points.push(PrPoint { threshold: score, recall, precision });
    }
    PrCurve { points, average_precision: ap }
}

/// Table V / Table VI confusions of a constraint set against a
/// circuit's ground truth, per symmetry level: `overall`, `system`,
/// `device` (in that order).
///
/// This is the single source of truth behind both the CLI's
/// `--metrics` table ([`render_metrics_table`]) and the Prometheus
/// quality gauges, so the two can never drift apart.
pub fn level_confusions(
    flat: &ancstr_netlist::FlatCircuit,
    constraints: &ancstr_netlist::constraint::ConstraintSet,
) -> [(&'static str, Confusion); 3] {
    use ancstr_netlist::SymmetryKind;
    let gt = flat.ground_truth();
    let pairs = crate::pairs::valid_pairs(flat);
    let confusion = |kind: Option<SymmetryKind>| {
        confusion_from_decisions(
            pairs
                .iter()
                .filter(|p| kind.is_none_or(|k| p.kind == k))
                .map(|p| {
                    let (a, b) = (p.pair.lo(), p.pair.hi());
                    (constraints.contains_pair(a, b), gt.contains_pair(a, b))
                }),
        )
    };
    [
        ("overall", confusion(None)),
        ("system", confusion(Some(SymmetryKind::System))),
        ("device", confusion(Some(SymmetryKind::Device))),
    ]
}

/// Render the Table V / Table VI metric columns (TPR, FPR, PPV, ACC,
/// F₁) of the extracted constraints against the netlist's ground
/// truth, overall and per symmetry level. Deterministic given the same
/// constraints, so CI can diff it across crash/resume runs.
pub fn render_metrics_table(
    flat: &ancstr_netlist::FlatCircuit,
    constraints: &ancstr_netlist::constraint::ConstraintSet,
) -> String {
    let mut out = String::from("# level tpr fpr ppv acc f1\n");
    for (level, c) in level_confusions(flat, constraints) {
        out.push_str(&format!(
            "{level} {:.6} {:.6} {:.6} {:.6} {:.6}\n",
            c.tpr(),
            c.fpr(),
            c.ppv(),
            c.acc(),
            c.f1()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_identities() {
        let c = Confusion { tp: 8, fp: 2, tn: 85, fn_: 5 };
        assert!((c.tpr() - 8.0 / 13.0).abs() < 1e-12);
        assert!((c.fpr() - 2.0 / 87.0).abs() < 1e-12);
        assert!((c.ppv() - 0.8).abs() < 1e-12);
        assert!((c.acc() - 93.0 / 100.0).abs() < 1e-12);
        assert!((c.f1() - 16.0 / 23.0).abs() < 1e-12);
    }

    #[test]
    fn empty_denominators_take_conventions() {
        let c = Confusion::default();
        assert_eq!(c.tpr(), 1.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.ppv(), 1.0);
        assert_eq!(c.acc(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn record_and_merge() {
        let mut a = confusion_from_decisions([(true, true), (false, true)]);
        let b = confusion_from_decisions([(true, false), (false, false)]);
        a.merge(&b);
        assert_eq!(a, Confusion { tp: 1, fn_: 1, fp: 1, tn: 1 });
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn perfect_separation_gives_auc_one() {
        let samples = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        let roc = roc_curve(&samples);
        assert!((roc.auc - 1.0).abs() < 1e-12);
        assert_eq!(roc.points.first().unwrap().tpr, 0.0);
        assert_eq!(roc.points.last().unwrap().tpr, 1.0);
    }

    #[test]
    fn random_scores_give_auc_half() {
        // Interleaved scores → stepwise diagonal.
        let samples = vec![
            (0.9, true),
            (0.8, false),
            (0.7, true),
            (0.6, false),
            (0.5, true),
            (0.4, false),
        ];
        let roc = roc_curve(&samples);
        assert!((roc.auc - 0.5).abs() < 0.2);
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let samples = vec![(0.1, true), (0.9, false)];
        let roc = roc_curve(&samples);
        assert!(roc.auc.abs() < 1e-12);
    }

    #[test]
    fn ties_are_consumed_together() {
        let samples = vec![(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        let roc = roc_curve(&samples);
        // Origin plus one interior point at (1, 1): AUC = 0.5 (the tie
        // diagonal); the (1, 1) terminus is already reached, so no extra
        // endpoint is appended.
        assert!((roc.auc - 0.5).abs() < 1e-12);
        assert_eq!(roc.points.len(), 2);
    }

    #[test]
    fn curve_is_monotone() {
        let samples: Vec<(f64, bool)> = (0..100)
            .map(|i| ((i as f64 * 37.0) % 101.0 / 101.0, i % 3 == 0))
            .collect();
        let roc = roc_curve(&samples);
        for w in roc.points.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
        assert!((0.0..=1.0).contains(&roc.auc));
    }

    #[test]
    fn pr_curve_perfect_separation() {
        let samples = vec![(0.9, true), (0.8, true), (0.2, false)];
        let pr = pr_curve(&samples);
        assert!((pr.average_precision - 1.0).abs() < 1e-12);
        let last = pr.points.last().unwrap();
        assert!((last.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_inverted_scores() {
        let samples = vec![(0.1, true), (0.9, false)];
        let pr = pr_curve(&samples);
        // The single positive is found last: AP = 1 × 1/2.
        assert!((pr.average_precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_no_positives_is_empty() {
        let pr = pr_curve(&[(0.5, false), (0.6, false)]);
        assert!(pr.points.is_empty());
        assert_eq!(pr.average_precision, 0.0);
    }

    #[test]
    fn pr_recall_is_monotone() {
        let samples: Vec<(f64, bool)> = (0..50)
            .map(|i| ((i as f64 * 17.0) % 23.0 / 23.0, i % 4 == 0))
            .collect();
        let pr = pr_curve(&samples);
        for w in pr.points.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        assert!((0.0..=1.0).contains(&pr.average_precision));
    }

    #[test]
    fn degenerate_all_positive() {
        let roc = roc_curve(&[(0.7, true), (0.3, true)]);
        assert!(roc.points.iter().all(|p| p.fpr == 0.0 || p.threshold == f64::NEG_INFINITY));
    }
}
