//! Symmetry *groups*: the union-find closure of pairwise constraints.
//!
//! Analog P&R engines (MAGICAL, ALIGN) consume symmetry groups — sets
//! of modules placed around one axis — rather than raw pairs. This
//! module merges the pairwise constraints of a detection into maximal
//! groups per hierarchy, the form a downstream placer ingests.

use std::collections::HashMap;

use ancstr_netlist::flat::{FlatCircuit, HierNodeId};
use ancstr_netlist::order::natural_cmp;
use ancstr_netlist::{ConstraintSet, SymmetryKind};

/// A maximal matched group under one hierarchy node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetryGroup {
    /// The hierarchy node `T_c` the group lives under.
    pub hierarchy: HierNodeId,
    /// Level of the group's constraints.
    pub kind: SymmetryKind,
    /// The matched modules, sorted by node id.
    pub members: Vec<HierNodeId>,
}

impl SymmetryGroup {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is degenerate (fewer than two members).
    pub fn is_empty(&self) -> bool {
        self.members.len() < 2
    }
}

/// Merge pairwise constraints into maximal groups (connected components
/// of the constraint relation, split by hierarchy and level).
///
/// Groups are returned sorted by hierarchy id, then first member, so the
/// output is deterministic.
///
/// # Example
///
/// ```
/// use ancstr_core::groups::merge_groups;
/// use ancstr_netlist::flat::HierNodeId;
/// use ancstr_netlist::{ConstraintSet, SymmetryConstraint, SymmetryKind};
///
/// let h = HierNodeId(0);
/// let n = |i| HierNodeId(i);
/// let set: ConstraintSet = [
///     SymmetryConstraint::new(h, n(1), n(2), SymmetryKind::Device),
///     SymmetryConstraint::new(h, n(2), n(3), SymmetryKind::Device),
///     SymmetryConstraint::new(h, n(5), n(6), SymmetryKind::Device),
/// ]
/// .into_iter()
/// .collect();
/// let groups = merge_groups(&set);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].members, vec![n(1), n(2), n(3)]);
/// ```
pub fn merge_groups(constraints: &ConstraintSet) -> Vec<SymmetryGroup> {
    // Union-find over the node ids mentioned, keyed per (hierarchy, kind).
    let mut parent: HashMap<HierNodeId, HierNodeId> = HashMap::new();
    let mut meta: HashMap<HierNodeId, (HierNodeId, SymmetryKind)> = HashMap::new();

    fn find(parent: &mut HashMap<HierNodeId, HierNodeId>, x: HierNodeId) -> HierNodeId {
        let p = *parent.get(&x).unwrap_or(&x);
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }

    for c in constraints.iter() {
        let (a, b) = (c.pair.lo(), c.pair.hi());
        for n in [a, b] {
            parent.entry(n).or_insert(n);
            meta.entry(n).or_insert((c.hierarchy, c.kind));
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent.insert(rb, ra);
        }
    }

    let mut members: HashMap<HierNodeId, Vec<HierNodeId>> = HashMap::new();
    let keys: Vec<HierNodeId> = parent.keys().copied().collect();
    for n in keys {
        let root = find(&mut parent, n);
        members.entry(root).or_default().push(n);
    }

    let mut groups: Vec<SymmetryGroup> = members
        .into_iter()
        .map(|(root, mut ms)| {
            ms.sort();
            let (hierarchy, kind) = meta[&root];
            SymmetryGroup { hierarchy, kind, members: ms }
        })
        .filter(|g| !g.is_empty())
        .collect();
    groups.sort_by_key(|g| (g.hierarchy, g.members[0]));
    groups
}

/// Re-order `groups` by hierarchical path: members within each group
/// sort by their node's natural path order (digit runs by value, so
/// `Cu2` precedes `Cu10`), and the groups themselves by their
/// hierarchy path, then first member path. Node ids are an artifact of
/// elaboration order; paths are the stable, human-meaningful key, so
/// every exporter funnels through this before serializing.
pub fn sort_groups_by_path(flat: &FlatCircuit, groups: &mut [SymmetryGroup]) {
    let path = |id: HierNodeId| flat.node(id).path.as_str();
    for g in groups.iter_mut() {
        g.members.sort_by(|&a, &b| natural_cmp(path(a), path(b)));
    }
    groups.sort_by(|a, b| {
        natural_cmp(path(a.hierarchy), path(b.hierarchy))
            .then_with(|| natural_cmp(path(a.members[0]), path(b.members[0])))
    });
}

/// [`merge_groups`] followed by [`sort_groups_by_path`] — the form
/// every serializer (MAGICAL text, ALIGN JSON, group reports) consumes.
pub fn merged_groups_sorted(flat: &FlatCircuit, constraints: &ConstraintSet) -> Vec<SymmetryGroup> {
    let mut groups = merge_groups(constraints);
    sort_groups_by_path(flat, &mut groups);
    groups
}

/// Render groups with full hierarchical paths (human-readable report).
pub fn render_groups(flat: &FlatCircuit, groups: &[SymmetryGroup]) -> String {
    let mut out = String::new();
    for g in groups {
        out.push_str(&format!(
            "[{}] under {} ({} members):\n",
            g.kind,
            flat.node(g.hierarchy).path,
            g.len()
        ));
        for &m in &g.members {
            out.push_str(&format!("  {}\n", flat.node(m).path));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;
    use ancstr_netlist::SymmetryConstraint;

    fn n(i: usize) -> HierNodeId {
        HierNodeId(i)
    }

    #[test]
    fn transitive_pairs_merge() {
        let set: ConstraintSet = [
            SymmetryConstraint::new(n(0), n(1), n(2), SymmetryKind::Device),
            SymmetryConstraint::new(n(0), n(3), n(2), SymmetryKind::Device),
            SymmetryConstraint::new(n(0), n(4), n(1), SymmetryKind::Device),
        ]
        .into_iter()
        .collect();
        let groups = merge_groups(&set);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![n(1), n(2), n(3), n(4)]);
    }

    #[test]
    fn disjoint_hierarchies_stay_apart() {
        let set: ConstraintSet = [
            SymmetryConstraint::new(n(0), n(1), n(2), SymmetryKind::Device),
            SymmetryConstraint::new(n(9), n(11), n(12), SymmetryKind::System),
        ]
        .into_iter()
        .collect();
        let groups = merge_groups(&set);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].kind, SymmetryKind::Device);
        assert_eq!(groups[1].kind, SymmetryKind::System);
        assert_eq!(groups[1].hierarchy, n(9));
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(merge_groups(&ConstraintSet::new()).is_empty());
    }

    /// Members are declared in an order whose node ids disagree with
    /// natural path order (`C10` before `C2`); the exported order must
    /// follow paths, not ids. This pins the `sym_group` determinism fix.
    #[test]
    fn groups_sort_by_natural_path_not_node_id() {
        let nl = parse_spice(
            "\
.subckt top a vdd vss
C10 a vss 10f
C2 a vss 10f
C1 a vss 10f
*.symmetry C10 C2
*.symmetry C2 C1
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        let groups = merged_groups_sorted(&flat, flat.ground_truth());
        assert_eq!(groups.len(), 1);
        let names: Vec<&str> = groups[0]
            .members
            .iter()
            .map(|&m| flat.node(m).name.as_str())
            .collect();
        assert_eq!(names, vec!["C1", "C2", "C10"], "path order, digit runs by value");
        // Node-id (declaration) order would have been C10, C2, C1.
        let ids: Vec<HierNodeId> = groups[0].members.clone();
        let mut by_id = ids.clone();
        by_id.sort();
        assert_ne!(ids, by_id, "the fixture really does distinguish the two orders");
    }

    #[test]
    fn deterministic_ordering() {
        let build = || -> Vec<SymmetryGroup> {
            let set: ConstraintSet = [
                SymmetryConstraint::new(n(2), n(20), n(21), SymmetryKind::Device),
                SymmetryConstraint::new(n(1), n(10), n(11), SymmetryKind::Device),
            ]
            .into_iter()
            .collect();
            merge_groups(&set)
        };
        assert_eq!(build(), build());
        assert_eq!(build()[0].hierarchy, n(1));
    }
}
