//! The end-to-end AncstrGNN pipeline (Fig. 4): multigraph construction →
//! feature initialization → unsupervised GNN training → circuit feature
//! embedding → cosine-similarity classification.

use std::time::{Duration, Instant};

use ancstr_gnn::{train, GnnConfig, GnnModel, GraphTensors, TrainConfig, TrainGraph, TrainReport};
use ancstr_graph::{BuildOptions, HetMultigraph};
use ancstr_netlist::{FlatCircuit, SymmetryKind};
use ancstr_nn::Matrix;

use crate::detect::{detect_constraints, DetectionResult, ThresholdConfig};
use crate::embed::EmbedOptions;
use crate::features::{circuit_features, FeatureConfig, FEATURE_DIM};
use crate::metrics::{Confusion, RocCurve};

/// Everything configurable about the extractor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractorConfig {
    /// GNN hyper-parameters. `gnn.dim` must equal [`FEATURE_DIM`].
    pub gnn: GnnConfig,
    /// Unsupervised training schedule.
    pub train: TrainConfig,
    /// Table II feature options.
    pub features: FeatureConfig,
    /// Eq. 4 thresholds.
    pub thresholds: ThresholdConfig,
    /// Algorithm 2 options (M, PageRank).
    pub embed: EmbedOptions,
    /// Algorithm 1 options.
    pub build: BuildOptions,
}

impl Default for ExtractorConfig {
    fn default() -> ExtractorConfig {
        ExtractorConfig {
            gnn: GnnConfig { dim: FEATURE_DIM, layers: 2, seed: 0xA5C7, ..GnnConfig::default() },
            train: TrainConfig::default(),
            features: FeatureConfig::default(),
            thresholds: ThresholdConfig::default(),
            embed: EmbedOptions::default(),
            // Power/clock rails touch hundreds of pins; their cliques
            // quadratically dominate |E| while carrying no matching
            // signal. The default prunes them (the ablation bench
            // measures the faithful `None` setting on small designs).
            build: BuildOptions { max_net_degree: Some(64) },
        }
    }
}

/// Error returned by [`SymmetryExtractor::with_model`] when the model
/// dimension does not match the Table II feature width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaceModelError {
    /// The offered model's dimension.
    pub found: usize,
}

impl std::fmt::Display for ReplaceModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model dimension {} does not match the feature width {}",
            self.found, FEATURE_DIM
        )
    }
}

impl std::error::Error for ReplaceModelError {}

/// The trained extractor. Inductive: [`SymmetryExtractor::fit`] once on
/// a corpus, then [`SymmetryExtractor::extract`] on any circuit,
/// including unseen ones.
#[derive(Debug, Clone)]
pub struct SymmetryExtractor {
    config: ExtractorConfig,
    model: GnnModel,
}

/// Extraction output with its runtime (training excluded, matching the
/// paper's reporting).
#[derive(Debug, Clone)]
pub struct Extraction {
    /// Scores, decisions, and the accepted constraint set.
    pub detection: DetectionResult,
    /// Wall-clock inference + detection time.
    pub runtime: Duration,
}

/// Extraction compared against ground truth.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The extraction being evaluated.
    pub extraction: Extraction,
    /// Confusion over all valid pairs.
    pub overall: Confusion,
    /// Confusion over system-level pairs only.
    pub system: Confusion,
    /// Confusion over device-level pairs only.
    pub device: Confusion,
    /// `(score, actual)` samples for ROC analysis, all pairs.
    pub samples: Vec<(f64, bool)>,
    /// System-level samples.
    pub system_samples: Vec<(f64, bool)>,
    /// Device-level samples.
    pub device_samples: Vec<(f64, bool)>,
}

impl Evaluation {
    /// ROC curve over all pairs.
    pub fn roc(&self) -> RocCurve {
        crate::metrics::roc_curve(&self.samples)
    }
}

impl SymmetryExtractor {
    /// A fresh (untrained) extractor.
    ///
    /// # Panics
    ///
    /// Panics if `config.gnn.dim != FEATURE_DIM`.
    pub fn new(config: ExtractorConfig) -> SymmetryExtractor {
        assert_eq!(
            config.gnn.dim, FEATURE_DIM,
            "the GNN dimension must match the Table II feature width"
        );
        let model = GnnModel::new(config.gnn.clone());
        SymmetryExtractor { config, model }
    }

    /// The configuration.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// Borrow the underlying model (e.g. to inspect or serialize its
    /// parameters via [`GnnModel::to_text`]).
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// Mutable model access for the guarded training path
    /// (`recover::try_fit`).
    pub(crate) fn model_mut(&mut self) -> &mut GnnModel {
        &mut self.model
    }

    /// Replace the model with a pre-trained one (the inductive
    /// deployment mode: train once on a corpus, ship the weights).
    ///
    /// # Errors
    ///
    /// Returns the extractor unchanged inside `Err` when the model's
    /// dimension differs from [`FEATURE_DIM`].
    pub fn with_model(mut self, model: GnnModel) -> Result<SymmetryExtractor, ReplaceModelError> {
        if model.config().dim != FEATURE_DIM {
            return Err(ReplaceModelError { found: model.config().dim });
        }
        self.config.gnn = model.config().clone();
        self.model = model;
        Ok(self)
    }

    /// Convert a circuit to its training graph.
    pub fn train_graph(&self, flat: &FlatCircuit) -> TrainGraph {
        let g = HetMultigraph::from_circuit(flat, &self.config.build);
        TrainGraph {
            tensors: GraphTensors::from_multigraph(&g),
            features: circuit_features(flat, &self.config.features),
        }
    }

    /// Unsupervised training over a corpus of circuits (Section IV-C).
    ///
    /// # Panics
    ///
    /// Panics if `circuits` is empty.
    pub fn fit(&mut self, circuits: &[&FlatCircuit]) -> TrainReport {
        let dataset: Vec<TrainGraph> =
            circuits.iter().map(|f| self.train_graph(f)).collect();
        train(&mut self.model, &dataset, &self.config.train)
    }

    /// The trained per-vertex representations `Z` for a circuit.
    pub fn vertex_embeddings(&self, flat: &FlatCircuit) -> Matrix {
        let tg = self.train_graph(flat);
        self.model.embed(&tg.tensors, &tg.features)
    }

    /// Run the full inference pipeline on one circuit (Algorithm 3).
    pub fn extract(&self, flat: &FlatCircuit) -> Extraction {
        let start = Instant::now();
        let z = self.vertex_embeddings(flat);
        let detection =
            detect_constraints(flat, &z, &self.config.thresholds, &self.config.embed);
        Extraction { detection, runtime: start.elapsed() }
    }

    /// [`SymmetryExtractor::extract`] followed by the template-consistency
    /// voting post-pass (an extension beyond the paper's Algorithm 3):
    /// device pairs detected in a quorum of a template's instances are
    /// propagated to every instance. Scored decisions are updated so
    /// evaluation reflects the augmented set.
    pub fn extract_with_consistency(
        &self,
        flat: &FlatCircuit,
        options: &crate::consistency::ConsistencyOptions,
    ) -> Extraction {
        let start = Instant::now();
        let mut extraction = self.extract(flat);
        let report = crate::consistency::vote_template_consistency(
            flat,
            &extraction.detection.constraints,
            options,
        );
        for s in &mut extraction.detection.scored {
            if !s.accepted && report.constraints.contains_key(s.candidate.pair) {
                s.accepted = true;
            }
        }
        extraction.detection.constraints = report.constraints;
        extraction.runtime = start.elapsed();
        extraction
    }

    /// Extract and score against the circuit's ground truth.
    pub fn evaluate(&self, flat: &FlatCircuit) -> Evaluation {
        let extraction = self.extract(flat);
        evaluate_detection(flat, extraction)
    }
}

/// Compare a detection against ground truth (used for our detector and
/// for baselines alike).
pub fn evaluate_detection(flat: &FlatCircuit, extraction: Extraction) -> Evaluation {
    let gt = flat.ground_truth();
    let mut overall = Confusion::default();
    let mut system = Confusion::default();
    let mut device = Confusion::default();
    let mut samples = Vec::new();
    let mut system_samples = Vec::new();
    let mut device_samples = Vec::new();

    for s in &extraction.detection.scored {
        let actual = gt.contains_key(s.candidate.pair);
        overall.record(s.accepted, actual);
        samples.push((s.score, actual));
        match s.candidate.kind {
            SymmetryKind::System => {
                system.record(s.accepted, actual);
                system_samples.push((s.score, actual));
            }
            SymmetryKind::Device => {
                device.record(s.accepted, actual);
                device_samples.push((s.score, actual));
            }
        }
    }
    Evaluation {
        extraction,
        overall,
        system,
        device,
        samples,
        system_samples,
        device_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_circuits::{clock::clock_circuit, comparator::comp2, ota::ota3};
    use ancstr_gnn::LossConfig;

    fn quick_config() -> ExtractorConfig {
        ExtractorConfig {
            train: TrainConfig {
                epochs: 30,
                learning_rate: 0.02,
                loss: LossConfig::default(),
                seed: 7,
                ..TrainConfig::default()
            },
            ..ExtractorConfig::default()
        }
    }

    #[test]
    fn fit_then_extract_finds_perfect_pairs() {
        let flat = FlatCircuit::elaborate(&comp2(3)).unwrap();
        let mut ex = SymmetryExtractor::new(quick_config());
        ex.fit(&[&flat]);
        let eval = ex.evaluate(&flat);
        // comp2's matched pairs are exact mirror automorphisms, so they
        // must be found.
        assert_eq!(eval.overall.fn_, 0, "all true pairs found: {:?}", eval.overall);
        assert!(eval.overall.tp >= 3);
        assert!(eval.overall.acc() > 0.8, "acc = {}", eval.overall.acc());
    }

    #[test]
    fn clock_circuit_sizing_story() {
        // The Fig. 2 case: equal-drive inverter pairs match; the x8
        // branch must NOT be constrained to the x1/x2/x4 instances.
        let flat = FlatCircuit::elaborate(&clock_circuit()).unwrap();
        let mut ex = SymmetryExtractor::new(quick_config());
        ex.fit(&[&flat]);
        let eval = ex.evaluate(&flat);
        assert_eq!(eval.system.fn_, 0, "equal-drive pairs found");
        assert_eq!(eval.system.fp, 0, "no cross-drive false alarms: {:?}", eval.system);
    }

    #[test]
    fn inductive_transfer_to_unseen_circuit() {
        // Train on comp2 only, extract on ota3 (never seen).
        let train_c = FlatCircuit::elaborate(&comp2(3)).unwrap();
        let test_c = FlatCircuit::elaborate(&ota3(5)).unwrap();
        let mut ex = SymmetryExtractor::new(quick_config());
        ex.fit(&[&train_c]);
        let eval = ex.evaluate(&test_c);
        // The unseen circuit still gets sensible (better-than-chance)
        // detection quality.
        assert!(eval.overall.acc() > 0.6, "acc = {}", eval.overall.acc());
        assert!(eval.roc().auc > 0.6, "auc = {}", eval.roc().auc);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn wrong_dim_is_rejected() {
        let cfg = ExtractorConfig {
            gnn: GnnConfig { dim: 4, layers: 2, seed: 1, ..GnnConfig::default() },
            ..ExtractorConfig::default()
        };
        let _ = SymmetryExtractor::new(cfg);
    }

    #[test]
    fn runtime_is_measured() {
        let flat = FlatCircuit::elaborate(&comp2(3)).unwrap();
        let ex = SymmetryExtractor::new(quick_config());
        let extraction = ex.extract(&flat);
        assert!(extraction.runtime > Duration::ZERO);
    }
}
