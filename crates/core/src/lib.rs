#![warn(missing_docs)]

//! AncstrGNN: universal symmetry-constraint extraction for AMS circuits
//! with graph neural networks — the paper's primary contribution.
//!
//! Pipeline (Fig. 4): a circuit netlist becomes a heterogeneous
//! multigraph; Table II features initialize each vertex; an unsupervised
//! inductive GNN (Eqs. 1–2) learns structure-aware vertex features;
//! Algorithm 2 aggregates them into per-subcircuit embeddings via
//! PageRank; Algorithm 3 classifies candidate pairs by cosine similarity
//! against the Eq. 4 size-adaptive threshold.
//!
//! Entry point: [`SymmetryExtractor`].
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ancstr_core::{ExtractorConfig, SymmetryExtractor};
//! use ancstr_netlist::{parse::parse_spice, flat::FlatCircuit};
//!
//! // A cross-coupled latch core: (M1, M2) and (M3, M4) mirror exactly.
//! let nl = parse_spice("\
//! .subckt latch q qb en vdd vss
//! M1 q qb tail vss nch_lvt w=4u l=0.2u
//! M2 qb q tail vss nch_lvt w=4u l=0.2u
//! M3 q qb vdd vdd pch w=8u l=0.2u
//! M4 qb q vdd vdd pch w=8u l=0.2u
//! M5 tail en vss vss nch w=2u l=0.5u
//! .ends
//! ")?;
//! let flat = FlatCircuit::elaborate(&nl)?;
//!
//! let mut extractor = SymmetryExtractor::new(ExtractorConfig::default());
//! extractor.fit(&[&flat]);
//! let result = extractor.extract(&flat);
//! // The cross-coupled pair (M1, M2) is found.
//! let m1 = flat.node_by_path("latch/M1").expect("exists").id;
//! let m2 = flat.node_by_path("latch/M2").expect("exists").id;
//! assert!(result.detection.constraints.contains_pair(m1, m2));
//! # Ok(())
//! # }
//! ```

pub mod consistency;
pub mod detect;
pub mod embed;
pub mod export;
pub mod features;
pub mod groups;
pub mod inject;
pub mod metrics;
pub mod observe;
pub mod pairs;
pub mod pipeline;
pub mod recover;
pub mod runstore;
pub mod service;

pub use consistency::{vote_template_consistency, ConsistencyOptions, ConsistencyReport};
pub use detect::{
    detect_constraints, detect_constraints_pruned, DetectionResult, NumericWarning,
    ScoredPair, ThresholdConfig,
};
pub use embed::{embed_all_blocks, embed_circuit, EmbedOptions};
pub use export::{read_constraints, write_constraints, ParseConstraintError};
pub use groups::{merge_groups, merged_groups_sorted, render_groups, sort_groups_by_path, SymmetryGroup};
pub use features::{circuit_features, init_features, FeatureConfig, FEATURE_DIM};
pub use metrics::{
    confusion_from_decisions, level_confusions, pr_curve, render_metrics_table, roc_curve,
    Confusion, PrCurve, PrPoint, RocCurve, RocPoint,
};
pub use observe::{load_netlist_observed, PipelineObs, StageGuard, TrainTelemetry, STAGES};
pub use pairs::{pair_stats, valid_pairs, valid_pairs_of_kind, CandidatePair, PairStats};
pub use inject::{
    inject_checkpoint, inject_model, inject_spice, plan_serve_fault, CheckpointFault, ModelFault,
    ServeFault, SpiceFault, WirePlan, WireStep, ALL_CHECKPOINT_FAULTS, ALL_MODEL_FAULTS,
    ALL_SERVE_FAULTS, ALL_SPICE_FAULTS,
};
pub use pipeline::{
    evaluate_detection, Evaluation, Extraction, ExtractorConfig, SymmetryExtractor,
};
pub use recover::ExtractError;
pub use service::{
    cache_key, extract_source, extract_source_batch, extract_source_batch_cancellable,
    extract_source_batch_cancellable_with, extract_source_cancellable,
    extract_source_cancellable_with, AltFormatter, ServiceReply,
};
pub use runstore::{
    config_hash, write_atomic, CancelToken, DurableFit, RunError, RunManifest, RunOptions,
    RunSession, RunStore, StageEntry, StageStatus, DEFAULT_CHECKPOINT_EVERY, MANIFEST_VERSION,
};
