//! Constraint file export/import in the MAGICAL/ALIGN convention:
//! one `sym` line per pair (or `sym_group` per merged group), addressed
//! by hierarchical path relative to the constraint's `T_c`.
//!
//! ```text
//! # hierarchy: adc1
//! sym        system Xdac1a Xdac1b
//! sym_group  device Ca0 Ca1 Cb0 Cb1
//! ```

use std::fmt::Write as _;

use ancstr_netlist::flat::{FlatCircuit, HierNodeId};
use ancstr_netlist::{ConstraintSet, SymmetryConstraint, SymmetryKind};

use crate::groups::{merged_groups_sorted, SymmetryGroup};

/// Error returned when parsing a constraint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConstraintError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseConstraintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseConstraintError {}

/// Serialize a detection's constraints, grouped per hierarchy and merged
/// into symmetry groups.
pub fn write_constraints(flat: &FlatCircuit, constraints: &ConstraintSet) -> String {
    let groups = merged_groups_sorted(flat, constraints);
    let mut out = String::new();
    let mut current: Option<HierNodeId> = None;
    for g in &groups {
        if current != Some(g.hierarchy) {
            let _ = writeln!(out, "# hierarchy: {}", flat.node(g.hierarchy).path);
            current = Some(g.hierarchy);
        }
        write_group(flat, g, &mut out);
    }
    out
}

fn write_group(flat: &FlatCircuit, g: &SymmetryGroup, out: &mut String) {
    let local = |m: HierNodeId| flat.node(m).name.clone();
    if g.members.len() == 2 {
        let _ = writeln!(
            out,
            "sym        {} {} {}",
            g.kind,
            local(g.members[0]),
            local(g.members[1])
        );
    } else {
        let _ = write!(out, "sym_group  {}", g.kind);
        for &m in &g.members {
            let _ = write!(out, " {}", local(m));
        }
        out.push('\n');
    }
}

/// Parse a constraint file back against a circuit, resolving local
/// names under each `# hierarchy:` header.
///
/// # Errors
///
/// Returns [`ParseConstraintError`] on unknown hierarchies, unknown
/// member names, bad levels, or malformed lines.
pub fn read_constraints(
    flat: &FlatCircuit,
    text: &str,
) -> Result<ConstraintSet, ParseConstraintError> {
    let mut set = ConstraintSet::new();
    let mut hierarchy: Option<HierNodeId> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# hierarchy:") {
            let path = rest.trim();
            let node = flat.node_by_path(path).ok_or_else(|| ParseConstraintError {
                line: lineno,
                reason: format!("unknown hierarchy `{path}`"),
            })?;
            hierarchy = Some(node.id);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let keyword = tok.next().expect("non-empty line");
        if keyword != "sym" && keyword != "sym_group" {
            return Err(ParseConstraintError {
                line: lineno,
                reason: format!("unknown keyword `{keyword}`"),
            });
        }
        let Some(tc) = hierarchy else {
            return Err(ParseConstraintError {
                line: lineno,
                reason: "constraint before any `# hierarchy:` header".to_owned(),
            });
        };
        let kind = match tok.next() {
            Some("system") => SymmetryKind::System,
            Some("device") => SymmetryKind::Device,
            other => {
                return Err(ParseConstraintError {
                    line: lineno,
                    reason: format!("bad level `{other:?}`"),
                })
            }
        };
        let tc_path = &flat.node(tc).path;
        let mut members = Vec::new();
        for name in tok {
            let path = format!("{tc_path}/{name}");
            let node = flat.node_by_path(&path).ok_or_else(|| ParseConstraintError {
                line: lineno,
                reason: format!("unknown member `{name}` under `{tc_path}`"),
            })?;
            members.push(node.id);
        }
        if members.len() < 2 {
            return Err(ParseConstraintError {
                line: lineno,
                reason: "a constraint needs at least two members".to_owned(),
            });
        }
        for a in 0..members.len() {
            for b in (a + 1)..members.len() {
                set.insert(SymmetryConstraint::new(tc, members[a], members[b], kind));
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;

    fn fixture() -> FlatCircuit {
        let nl = parse_spice(
            "\
.subckt inv in out vdd vss
Mp out in vdd vdd pch w=2u l=0.1u
Mn out in vss vss nch w=1u l=0.1u
.ends
.subckt top a y vdd vss
X1 a m vdd vss inv
X2 m y vdd vss inv
C1 a vss 10f
C2 y vss 10f
C3 m vss 10f
*.symmetry X1 X2
*.symmetry C1 C2
.ends
",
        )
        .unwrap();
        FlatCircuit::elaborate(&nl).unwrap()
    }

    #[test]
    fn round_trip_preserves_constraints() {
        let flat = fixture();
        let text = write_constraints(&flat, flat.ground_truth());
        let back = read_constraints(&flat, &text).unwrap();
        assert_eq!(back.len(), flat.ground_truth().len());
        for c in flat.ground_truth().iter() {
            assert!(back.contains_key(c.pair));
        }
    }

    #[test]
    fn groups_expand_to_all_pairs() {
        let flat = fixture();
        let x1 = flat.node_by_path("top/X1").unwrap().id;
        let x2 = flat.node_by_path("top/X2").unwrap().id;
        let root = flat.root().id;
        let c1 = flat.node_by_path("top/C1").unwrap().id;
        let c2 = flat.node_by_path("top/C2").unwrap().id;
        let c3 = flat.node_by_path("top/C3").unwrap().id;
        let set: ConstraintSet = [
            SymmetryConstraint::new(root, x1, x2, SymmetryKind::System),
            SymmetryConstraint::new(root, c1, c2, SymmetryKind::System),
            SymmetryConstraint::new(root, c2, c3, SymmetryKind::System),
        ]
        .into_iter()
        .collect();
        let text = write_constraints(&flat, &set);
        assert!(text.contains("sym_group"), "caps merge to a group:\n{text}");
        let back = read_constraints(&flat, &text).unwrap();
        // The 3-cap group expands to all C(3,2) = 3 pairs.
        assert!(back.contains_pair(c1, c3));
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let flat = fixture();
        let err = read_constraints(&flat, "# hierarchy: nonexistent\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = read_constraints(&flat, "sym device Mp Mn\n").unwrap_err();
        assert!(err.reason.contains("header"));
        let err =
            read_constraints(&flat, "# hierarchy: top\nsym device X1 GHOST\n").unwrap_err();
        assert!(err.reason.contains("GHOST"));
        let err = read_constraints(&flat, "# hierarchy: top\nfrob device X1 X2\n").unwrap_err();
        assert!(err.reason.contains("frob"));
        let err = read_constraints(&flat, "# hierarchy: top\nsym wrong X1 X2\n").unwrap_err();
        assert!(err.reason.contains("level"));
        let err = read_constraints(&flat, "# hierarchy: top\nsym device X1\n").unwrap_err();
        assert!(err.reason.contains("two members"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let flat = fixture();
        let set = read_constraints(
            &flat,
            "\n# a comment\n# hierarchy: top\n\nsym system X1 X2\n",
        )
        .unwrap();
        assert_eq!(set.len(), 1);
    }
}
