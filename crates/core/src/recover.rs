//! Fault-tolerant pipeline entry points: one workspace-level error type
//! ([`ExtractError`]) covering every stage — SPICE parsing, hierarchy
//! elaboration, configuration, model deserialization, guarded training,
//! and inference — plus `try_*` variants of the [`SymmetryExtractor`]
//! API that return those errors instead of panicking.
//!
//! Design rule: the happy path is bit-identical to the unguarded API.
//! Guardrails are read-only scans that only *act* (skip, clip, restore,
//! re-seed) when an anomaly is present; see
//! [`ancstr_gnn::try_train`] and
//! [`detect_constraints`](crate::detect::detect_constraints)'s warning
//! records.

use std::fmt;
use std::time::Instant;

use ancstr_gnn::{
    try_train, EmbedError, GnnModel, HealthConfig, HealthReport, ParseModelError, TrainError,
    TrainReport,
};
use ancstr_netlist::error::{ElaborateError, ParseNetlistError};
use ancstr_netlist::FlatCircuit;

use crate::detect::detect_constraints;
use crate::features::FEATURE_DIM;
use crate::pipeline::{Extraction, ExtractorConfig, ReplaceModelError, SymmetryExtractor};

/// Any failure of the extraction pipeline, from netlist text to
/// constraint set, with enough context to name the offending stage.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// The SPICE source failed to parse (carries the line number).
    Parse(ParseNetlistError),
    /// The netlist parsed but could not be flattened into a circuit.
    Elaborate(ElaborateError),
    /// The extractor configuration is unusable: the GNN dimension does
    /// not match the Table II feature width.
    ConfigDim {
        /// The configured dimension.
        found: usize,
    },
    /// A serialized model file was malformed or carried non-finite
    /// weights.
    Model(ParseModelError),
    /// A well-formed model had the wrong dimensionality for this
    /// pipeline.
    ModelDim(ReplaceModelError),
    /// Guarded training failed (invalid dataset, or anomalies persisted
    /// past the retry budget).
    Train(TrainError),
    /// Inference could not produce usable embeddings (e.g. the model's
    /// parameters are non-finite).
    Embed(EmbedError),
    /// The durable run store failed: run-directory I/O, a corrupt or
    /// mismatched manifest, or an unusable artifact (see
    /// [`RunError`](crate::runstore::RunError)).
    Run(crate::runstore::RunError),
    /// The request's [`CancelToken`](crate::runstore::CancelToken)
    /// tripped (explicit cancellation or deadline expiry) before the
    /// pipeline finished; the partial work is discarded.
    Cancelled,
}

impl ExtractError {
    /// A stable non-zero process exit code per error stage, for CLI
    /// consumers: parse = 4, elaborate = 5, configuration/model = 6,
    /// training = 7, inference = 8, run store = 9, cancellation /
    /// deadline expiry = 10 (the same code the CLI exits with when its
    /// time budget runs out). Codes 1–3 are reserved for generic
    /// failure, usage errors, and I/O respectively.
    pub fn exit_code(&self) -> u8 {
        match self {
            ExtractError::Parse(_) => 4,
            ExtractError::Elaborate(_) => 5,
            ExtractError::ConfigDim { .. } | ExtractError::Model(_) | ExtractError::ModelDim(_) => {
                6
            }
            ExtractError::Train(_) => 7,
            ExtractError::Embed(_) => 8,
            ExtractError::Run(_) => 9,
            ExtractError::Cancelled => 10,
        }
    }

    /// The pipeline stage that failed, as a short human-readable label.
    pub fn stage(&self) -> &'static str {
        match self {
            ExtractError::Parse(_) => "parse",
            ExtractError::Elaborate(_) => "elaborate",
            ExtractError::ConfigDim { .. } => "configure",
            ExtractError::Model(_) | ExtractError::ModelDim(_) => "load-model",
            ExtractError::Train(_) => "train",
            ExtractError::Embed(_) => "embed",
            ExtractError::Run(_) => "run-store",
            ExtractError::Cancelled => "deadline",
        }
    }
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Parse(e) => write!(f, "parse: {e}"),
            ExtractError::Elaborate(e) => write!(f, "elaborate: {e}"),
            ExtractError::ConfigDim { found } => write!(
                f,
                "configure: GNN dimension {found} does not match the Table II feature \
                 width {FEATURE_DIM}"
            ),
            ExtractError::Model(e) => write!(f, "load-model: {e}"),
            ExtractError::ModelDim(e) => write!(f, "load-model: {e}"),
            ExtractError::Train(e) => write!(f, "train: {e}"),
            ExtractError::Embed(e) => write!(f, "embed: {e}"),
            ExtractError::Run(e) => write!(f, "run-store: {e}"),
            ExtractError::Cancelled => {
                write!(f, "deadline: cancelled before the pipeline finished")
            }
        }
    }
}

impl std::error::Error for ExtractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExtractError::Parse(e) => Some(e),
            ExtractError::Elaborate(e) => Some(e),
            ExtractError::ConfigDim { .. } => None,
            ExtractError::Model(e) => Some(e),
            ExtractError::ModelDim(e) => Some(e),
            ExtractError::Train(e) => Some(e),
            ExtractError::Embed(e) => Some(e),
            ExtractError::Run(e) => Some(e),
            ExtractError::Cancelled => None,
        }
    }
}

impl From<ParseNetlistError> for ExtractError {
    fn from(e: ParseNetlistError) -> ExtractError {
        ExtractError::Parse(e)
    }
}

impl From<ElaborateError> for ExtractError {
    fn from(e: ElaborateError) -> ExtractError {
        ExtractError::Elaborate(e)
    }
}

impl From<ParseModelError> for ExtractError {
    fn from(e: ParseModelError) -> ExtractError {
        ExtractError::Model(e)
    }
}

impl From<ReplaceModelError> for ExtractError {
    fn from(e: ReplaceModelError) -> ExtractError {
        ExtractError::ModelDim(e)
    }
}

impl From<TrainError> for ExtractError {
    fn from(e: TrainError) -> ExtractError {
        ExtractError::Train(e)
    }
}

impl From<EmbedError> for ExtractError {
    fn from(e: EmbedError) -> ExtractError {
        ExtractError::Embed(e)
    }
}

impl From<crate::runstore::RunError> for ExtractError {
    fn from(e: crate::runstore::RunError) -> ExtractError {
        ExtractError::Run(e)
    }
}

impl SymmetryExtractor {
    /// Checked [`SymmetryExtractor::new`]: reject a mismatched GNN
    /// dimension with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ExtractError::ConfigDim`] when `config.gnn.dim != FEATURE_DIM`.
    pub fn try_new(config: ExtractorConfig) -> Result<SymmetryExtractor, ExtractError> {
        if config.gnn.dim != FEATURE_DIM {
            return Err(ExtractError::ConfigDim { found: config.gnn.dim });
        }
        Ok(SymmetryExtractor::new(config))
    }

    /// Checked model loading from serialized text: parse, validate
    /// finiteness (the parser already rejects NaN weights), and check
    /// the dimension fits this pipeline.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Model`] on malformed text,
    /// [`ExtractError::ModelDim`] on a dimension mismatch.
    pub fn with_model_text(self, text: &str) -> Result<SymmetryExtractor, ExtractError> {
        let model = GnnModel::from_text(text)?;
        Ok(self.with_model(model)?)
    }

    /// Guarded [`SymmetryExtractor::fit`]: unsupervised training with
    /// NaN/Inf scans, gradient clipping, divergence detection, and
    /// bounded checkpoint-restore recovery (see
    /// [`ancstr_gnn::HealthConfig`]). On a healthy run the result is
    /// bit-identical to [`SymmetryExtractor::fit`] and the
    /// [`HealthReport`] is clean.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Train`] on an empty/invalid corpus or when
    /// anomalies persist past the retry budget.
    pub fn try_fit(
        &mut self,
        circuits: &[&FlatCircuit],
        health: &HealthConfig,
    ) -> Result<(TrainReport, HealthReport), ExtractError> {
        let dataset: Vec<ancstr_gnn::TrainGraph> =
            circuits.iter().map(|f| self.train_graph(f)).collect();
        let train_config = self.config().train.clone();
        let out = try_train(self.model_mut(), &dataset, &train_config, health)?;
        Ok(out)
    }

    /// Guarded [`SymmetryExtractor::extract`]: validates the model and
    /// embeddings before scoring. Devices whose feature vectors come out
    /// non-finite are *skipped with warning records*
    /// ([`DetectionResult::warnings`](crate::detect::DetectionResult))
    /// rather than scored with NaN cosine similarities — a degraded but
    /// valid result.
    ///
    /// # Errors
    ///
    /// [`ExtractError::Embed`] when the model itself is unusable (its
    /// parameters contain NaN/Inf), which would poison every score.
    pub fn try_extract(&self, flat: &FlatCircuit) -> Result<Extraction, ExtractError> {
        let start = Instant::now();
        let tg = self.train_graph(flat);
        let z = match self.model().try_embed(&tg.tensors, &tg.features) {
            Ok(z) => z,
            // Poisoned *inputs* still yield a degraded-but-valid
            // detection: embed anyway and let detection quarantine the
            // affected rows behind warnings.
            Err(EmbedError::NonFiniteFeatures) => self.model().embed(&tg.tensors, &tg.features),
            Err(other) => return Err(ExtractError::Embed(other)),
        };
        let detection =
            detect_constraints(flat, &z, &self.config().thresholds, &self.config().embed);
        Ok(Extraction { detection, runtime: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_gnn::GnnConfig;
    use ancstr_netlist::parse::parse_spice;

    fn quick_config() -> ExtractorConfig {
        ExtractorConfig {
            train: ancstr_gnn::TrainConfig {
                epochs: 12,
                learning_rate: 0.02,
                seed: 7,
                ..ancstr_gnn::TrainConfig::default()
            },
            ..ExtractorConfig::default()
        }
    }

    fn latch() -> FlatCircuit {
        let nl = parse_spice(
            "\
.subckt latch q qb en vdd vss
M1 q qb tail vss nch_lvt w=4u l=0.2u
M2 qb q tail vss nch_lvt w=4u l=0.2u
M5 tail en vss vss nch w=2u l=0.5u
.ends
",
        )
        .unwrap();
        FlatCircuit::elaborate(&nl).unwrap()
    }

    #[test]
    fn try_new_rejects_bad_dim_with_typed_error() {
        let cfg = ExtractorConfig {
            gnn: GnnConfig { dim: 4, layers: 2, seed: 1, ..GnnConfig::default() },
            ..ExtractorConfig::default()
        };
        let err = SymmetryExtractor::try_new(cfg).unwrap_err();
        assert_eq!(err, ExtractError::ConfigDim { found: 4 });
        assert_eq!(err.exit_code(), 6);
        assert_eq!(err.stage(), "configure");
        assert!(SymmetryExtractor::try_new(quick_config()).is_ok());
    }

    #[test]
    fn try_fit_then_try_extract_matches_unguarded_pipeline() {
        let flat = latch();
        let mut guarded = SymmetryExtractor::try_new(quick_config()).unwrap();
        let (report, health) =
            guarded.try_fit(&[&flat], &HealthConfig::default()).unwrap();
        assert!(health.clean(), "{health:?}");

        let mut plain = SymmetryExtractor::new(quick_config());
        let plain_report = plain.fit(&[&flat]);
        assert_eq!(report, plain_report, "guarded training is bit-identical when healthy");

        let guarded_out = guarded.try_extract(&flat).unwrap();
        let plain_out = plain.extract(&flat);
        assert_eq!(guarded_out.detection, plain_out.detection);
        assert!(guarded_out.detection.warnings.is_empty());
    }

    #[test]
    fn try_fit_maps_empty_corpus_to_train_error() {
        let mut ex = SymmetryExtractor::try_new(quick_config()).unwrap();
        let err = ex.try_fit(&[], &HealthConfig::default()).unwrap_err();
        assert_eq!(err, ExtractError::Train(TrainError::EmptyDataset));
        assert_eq!(err.exit_code(), 7);
    }

    #[test]
    fn try_extract_rejects_poisoned_model() {
        let flat = latch();
        let mut ex = SymmetryExtractor::try_new(quick_config()).unwrap();
        ex.model_mut().matrices_mut()[0][(0, 0)] = f64::NAN;
        let err = ex.try_extract(&flat).unwrap_err();
        assert_eq!(err, ExtractError::Embed(EmbedError::NonFiniteParameters));
        assert_eq!(err.exit_code(), 8);
    }

    #[test]
    fn with_model_text_round_trips_and_rejects_garbage() {
        let ex = SymmetryExtractor::try_new(quick_config()).unwrap();
        let text = ex.model().to_text();
        let reloaded = SymmetryExtractor::try_new(quick_config())
            .unwrap()
            .with_model_text(&text)
            .unwrap();
        assert_eq!(reloaded.model(), ex.model());

        let err = SymmetryExtractor::try_new(quick_config())
            .unwrap()
            .with_model_text("not a model")
            .unwrap_err();
        assert!(matches!(err, ExtractError::Model(_)));
        assert_eq!(err.exit_code(), 6);

        // A valid model of the wrong dimension maps to ModelDim.
        let small = GnnModel::new(GnnConfig { dim: 4, layers: 1, seed: 1, ..GnnConfig::default() });
        let err = SymmetryExtractor::try_new(quick_config())
            .unwrap()
            .with_model_text(&small.to_text())
            .unwrap_err();
        assert!(matches!(err, ExtractError::ModelDim(_)));
    }

    #[test]
    fn error_display_names_the_stage() {
        let parse_err: ExtractError = parse_spice(".ends").unwrap_err().into();
        assert!(parse_err.to_string().starts_with("parse: "));
        assert_eq!(parse_err.exit_code(), 4);
        let nl = parse_spice(
            "\
.subckt top a b
X1 a b missing
.ends
",
        )
        .unwrap();
        let elab_err: ExtractError = FlatCircuit::elaborate(&nl).unwrap_err().into();
        assert!(elab_err.to_string().starts_with("elaborate: "));
        assert_eq!(elab_err.exit_code(), 5);
        use std::error::Error;
        assert!(elab_err.source().is_some());
    }
}
