//! Request-level extraction API for long-lived services.
//!
//! The one-shot CLI re-loads the model and re-runs the full pipeline
//! per invocation; a daemon (`ancstr serve`) instead keeps a trained
//! [`SymmetryExtractor`] warm and answers many independent requests
//! against it — the inductive deployment mode of the paper's
//! Section IV-C. This module is the boundary between "a netlist arrived
//! as bytes" and the pipeline: [`extract_source`] runs parse →
//! elaborate → embed → detect on in-memory SPICE text under the usual
//! observability spans, and [`cache_key`] derives the content address
//! a result cache stores the reply under.
//!
//! Everything here is deterministic: the same source text, extractor
//! configuration, and model weights always produce the same
//! [`ServiceReply::constraints_text`] — byte-identical to what
//! `ancstr extract --model` writes for the same inputs. That identity
//! is what makes the reply cacheable at all, and it is asserted
//! end-to-end by `tests/serve.rs`.

use std::time::Duration;

use ancstr_netlist::parse::parse_spice;
use ancstr_netlist::{ConstraintSet, FlatCircuit};

use crate::detect::detect_constraints;
use crate::export::write_constraints;
use crate::observe::PipelineObs;
use crate::pipeline::{ExtractorConfig, SymmetryExtractor};
use crate::recover::ExtractError;
use crate::runstore::{config_hash, CancelToken};

/// The service-level result of one extraction request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReply {
    /// The constraint set in the canonical `write_constraints` text
    /// format — byte-identical to one-shot `ancstr extract` output for
    /// the same netlist, configuration, and model.
    pub constraints_text: String,
    /// Human-readable detection warnings (quarantined devices), in the
    /// stable path-sorted order the CLI reports them in.
    pub warnings: Vec<String>,
    /// Devices in the elaborated circuit.
    pub devices: usize,
    /// Nets in the elaborated circuit.
    pub nets: usize,
    /// Accepted symmetry constraints.
    pub constraints: usize,
    /// Inference + detection wall-clock time (training excluded,
    /// matching the paper's reporting).
    pub runtime: Duration,
    /// The constraints rendered by the caller-supplied alternate
    /// formatter (the serving layer threads the ALIGN-JSON exporter
    /// through here), or `None` on the plain paths. Computed at extract
    /// time so a cached reply can answer either format.
    pub align_json: Option<String>,
}

/// An alternate constraint serializer threaded through the `_with`
/// entry points. Core cannot depend on the hierarchical exporter (it
/// layers *on* core), so services inject it as a function of the
/// elaborated circuit and the detected constraints.
pub type AltFormatter = dyn Fn(&FlatCircuit, &ConstraintSet) -> String + Sync;

/// Run the full extraction pipeline on in-memory SPICE text with a
/// warm, pre-trained extractor. `origin` is a diagnostic label for the
/// request (a peer address, a request id) that lands in the `parse`
/// span where the file path would normally go.
///
/// # Errors
///
/// The usual staged [`ExtractError`]s: `Parse` for malformed SPICE,
/// `Elaborate` for un-flattenable netlists, `Embed` when the model is
/// unusable. Callers map these onto protocol status codes with
/// [`ExtractError::exit_code`] as the stable discriminator.
pub fn extract_source(
    source: &str,
    origin: &str,
    extractor: &SymmetryExtractor,
    obs: &PipelineObs,
) -> Result<ServiceReply, ExtractError> {
    extract_source_cancellable(source, origin, extractor, obs, &CancelToken::new())
}

/// [`extract_source`] under a [`CancelToken`]: the token is polled at
/// every stage boundary (parse → elaborate → graph/embed/detect), so a
/// request whose deadline has already passed — or passes mid-pipeline —
/// returns [`ExtractError::Cancelled`] at the next boundary instead of
/// holding a worker hostage. With a never-cancelled token this is
/// byte-identical to [`extract_source`] (the checks are read-only).
///
/// # Errors
///
/// [`ExtractError::Cancelled`] when the token trips; otherwise exactly
/// those of [`extract_source`].
pub fn extract_source_cancellable(
    source: &str,
    origin: &str,
    extractor: &SymmetryExtractor,
    obs: &PipelineObs,
    cancel: &CancelToken,
) -> Result<ServiceReply, ExtractError> {
    extract_source_cancellable_with(source, origin, extractor, obs, cancel, None)
}

/// [`extract_source_cancellable`] plus an optional [`AltFormatter`]:
/// when `alt` is `Some`, its rendering of the detected constraints is
/// stored in [`ServiceReply::align_json`] alongside the canonical text.
/// With `alt = None` this is exactly [`extract_source_cancellable`].
///
/// # Errors
///
/// Exactly those of [`extract_source_cancellable`].
pub fn extract_source_cancellable_with(
    source: &str,
    origin: &str,
    extractor: &SymmetryExtractor,
    obs: &PipelineObs,
    cancel: &CancelToken,
    alt: Option<&AltFormatter>,
) -> Result<ServiceReply, ExtractError> {
    if cancel.is_cancelled() {
        return Err(ExtractError::Cancelled);
    }
    let netlist = {
        let _g = obs.stage_with("parse", &[("path", origin.into())]);
        parse_spice(source)?
    };
    if cancel.is_cancelled() {
        return Err(ExtractError::Cancelled);
    }
    let flat = {
        let _g = obs.stage("elaborate");
        FlatCircuit::elaborate(&netlist)?
    };
    obs.event(
        "elaborate",
        "circuit_loaded",
        &[
            ("path", origin.into()),
            ("devices", flat.devices().len().into()),
            ("nets", flat.net_count().into()),
        ],
    );
    let extraction = extractor.try_extract_cancellable(&flat, obs, cancel)?;
    let mut warnings: Vec<String> =
        extraction.detection.warnings.iter().map(|w| w.to_string()).collect();
    warnings.sort();
    Ok(ServiceReply {
        constraints_text: write_constraints(&flat, &extraction.detection.constraints),
        devices: flat.devices().len(),
        nets: flat.net_count(),
        constraints: extraction.detection.constraints.len(),
        warnings,
        runtime: extraction.runtime,
        align_json: alt.map(|f| f(&flat, &extraction.detection.constraints)),
    })
}

/// [`extract_source_batch_cancellable`] with a never-cancelled token.
///
/// # Errors
///
/// Never fails as a whole; per-item errors ride inside the returned
/// vector.
pub fn extract_source_batch(
    items: &[(&str, &str)],
    extractor: &SymmetryExtractor,
    obs: &PipelineObs,
) -> Vec<Result<ServiceReply, ExtractError>> {
    extract_source_batch_cancellable(items, extractor, obs, &CancelToken::new())
        .expect("an unarmed token never cancels")
}

/// Batched [`extract_source_cancellable`]: run many `(source, origin)`
/// requests against one warm extractor, sharing a single GNN forward
/// pass over the block-diagonal fusion of their graphs
/// ([`GnnModel::embed_batch`](ancstr_gnn::GnnModel::embed_batch)).
///
/// Per-item semantics match the solo path exactly:
///
/// - parse/elaborate/graph-build failures stay with their item (the
///   inner `Err`); healthy batch-mates are unaffected;
/// - an item with non-finite features degrades (a `degraded_embed`
///   event, then a best-effort embed) just like the solo path — and
///   because the fused forward computes every output row from that
///   row's part alone, its NaNs cannot reach any other item's bytes;
/// - a non-finite *model* fails every item, as it would solo;
/// - successful replies are byte-identical to what
///   [`extract_source_cancellable`] returns for the same item (pinned
///   by `tests/serve_batch.rs` at batch sizes 1/4/16).
///
/// # Errors
///
/// The outer `Err` is always [`ExtractError::Cancelled`] and means the
/// shared pass was abandoned at a stage boundary — no item completed.
/// All other failures are per-item.
pub fn extract_source_batch_cancellable(
    items: &[(&str, &str)],
    extractor: &SymmetryExtractor,
    obs: &PipelineObs,
    cancel: &CancelToken,
) -> Result<Vec<Result<ServiceReply, ExtractError>>, ExtractError> {
    extract_source_batch_cancellable_with(items, extractor, obs, cancel, None)
}

/// [`extract_source_batch_cancellable`] plus an optional
/// [`AltFormatter`], applied per item exactly as on the solo path.
/// With `alt = None` this is exactly the plain batch entry point.
///
/// # Errors
///
/// Exactly those of [`extract_source_batch_cancellable`].
pub fn extract_source_batch_cancellable_with(
    items: &[(&str, &str)],
    extractor: &SymmetryExtractor,
    obs: &PipelineObs,
    cancel: &CancelToken,
    alt: Option<&AltFormatter>,
) -> Result<Vec<Result<ServiceReply, ExtractError>>, ExtractError> {
    use ancstr_gnn::{EmbedError, TrainGraph};

    struct Prepared {
        flat: FlatCircuit,
        tg: TrainGraph,
    }

    if cancel.is_cancelled() {
        return Err(ExtractError::Cancelled);
    }
    let start = std::time::Instant::now();

    // Front half, per item: parse → elaborate → graph/features. Each
    // item's staged failure is its own; the batch keeps going.
    let mut fronts: Vec<Result<Prepared, ExtractError>> = Vec::with_capacity(items.len());
    for &(source, origin) in items {
        fronts.push((|| {
            let netlist = {
                let _g = obs.stage_with("parse", &[("path", origin.into())]);
                parse_spice(source)?
            };
            let flat = {
                let _g = obs.stage("elaborate");
                FlatCircuit::elaborate(&netlist)?
            };
            obs.event(
                "elaborate",
                "circuit_loaded",
                &[
                    ("path", origin.into()),
                    ("devices", flat.devices().len().into()),
                    ("nets", flat.net_count().into()),
                ],
            );
            let tg = extractor.train_graph_observed(&flat, obs);
            Ok(Prepared { flat, tg })
        })());
        if cancel.is_cancelled() {
            return Err(ExtractError::Cancelled);
        }
    }

    // Shared back half: one fused forward pass over every item that
    // survived its front half. Per-item embed policy mirrors the solo
    // path: non-finite *features* degrade the item but still run it
    // (its NaNs stay inside its own block rows), while a non-finite
    // *model* fails the item — unless degradation already claimed it,
    // matching `try_embed`'s check order.
    let model_finite = extractor.model().is_finite();
    let embeddings: Vec<Option<ancstr_nn::Matrix>> = {
        let _g = obs.stage("embed");
        for front in &mut fronts {
            let degraded = match &*front {
                Ok(p) => !p.tg.features.is_finite(),
                Err(_) => continue,
            };
            if degraded {
                obs.event(
                    "embed",
                    "degraded_embed",
                    &[("cause", "non-finite features".into())],
                );
            } else if !model_finite {
                *front = Err(ExtractError::Embed(EmbedError::NonFiniteParameters));
            }
        }
        let parts: Vec<_> = fronts
            .iter()
            .filter_map(|f| f.as_ref().ok().map(|p| (&p.tg.tensors, &p.tg.features)))
            .collect();
        let zs = if parts.is_empty() {
            Vec::new()
        } else {
            extractor.model().embed_batch(&parts)
        };
        let mut split = zs.into_iter();
        fronts
            .iter()
            .map(|f| f.as_ref().ok().map(|_| split.next().expect("one z per part")))
            .collect()
    };
    if cancel.is_cancelled() {
        return Err(ExtractError::Cancelled);
    }

    // Back half, per item: detection over its slice of the fused pass.
    Ok(fronts
        .into_iter()
        .zip(embeddings)
        .map(|(front, z)| {
            let p = front?;
            let z = z.expect("every surviving item has an embedding");
            let detection = {
                let _g = obs.stage("detect");
                detect_constraints(
                    &p.flat,
                    &z,
                    &extractor.config().thresholds,
                    &extractor.config().embed,
                )
            };
            obs.record_detection(&detection);
            let mut warnings: Vec<String> =
                detection.warnings.iter().map(|w| w.to_string()).collect();
            warnings.sort();
            Ok(ServiceReply {
                constraints_text: write_constraints(&p.flat, &detection.constraints),
                devices: p.flat.devices().len(),
                nets: p.flat.net_count(),
                constraints: detection.constraints.len(),
                warnings,
                runtime: start.elapsed(),
                align_json: alt.map(|f| f(&p.flat, &detection.constraints)),
            })
        })
        .collect())
}

/// The content address of a service reply: an FNV-1a 64-bit hash over
/// the raw netlist bytes, folded together with the configuration hash
/// ([`config_hash`]) and the serving model's fingerprint. Two requests
/// share a key exactly when they are byte-identical netlists served by
/// the same configuration and the same model weights — so a cache
/// lookup can never return a reply the current pipeline would not
/// itself produce, and a model hot-swap implicitly invalidates every
/// cached entry (old keys simply stop being generated and age out of
/// the LRU).
pub fn cache_key(netlist: &[u8], config: &ExtractorConfig, model_fingerprint: u64) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(netlist);
    eat(config_hash(config).as_bytes());
    eat(&model_fingerprint.to_le_bytes());
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_gnn::HealthConfig;

    const NETLIST: &str = "\
.subckt sa inp inn outp outn clk vdd vss
*.class comparator
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
.ends
";

    fn quick_config() -> ExtractorConfig {
        let mut cfg = ExtractorConfig::default();
        cfg.train.epochs = 12;
        cfg.train.seed = 7;
        cfg.gnn.seed = 7;
        cfg
    }

    fn trained_extractor() -> SymmetryExtractor {
        let netlist = parse_spice(NETLIST).unwrap();
        let flat = FlatCircuit::elaborate(&netlist).unwrap();
        let mut ex = SymmetryExtractor::try_new(quick_config()).unwrap();
        ex.try_fit(&[&flat], &HealthConfig::default()).unwrap();
        ex
    }

    #[test]
    fn extract_source_matches_the_file_pipeline() {
        let ex = trained_extractor();
        let obs = PipelineObs::disabled();
        let reply = extract_source(NETLIST, "test", &ex, &obs).unwrap();
        // Same model, same netlist, via the file-based path.
        let netlist = parse_spice(NETLIST).unwrap();
        let flat = FlatCircuit::elaborate(&netlist).unwrap();
        let extraction = ex.try_extract(&flat).unwrap();
        assert_eq!(
            reply.constraints_text,
            write_constraints(&flat, &extraction.detection.constraints)
        );
        assert_eq!(reply.devices, 7);
        assert_eq!(reply.constraints, extraction.detection.constraints.len());
        assert!(reply.constraints > 0);
    }

    #[test]
    fn extract_source_is_deterministic() {
        let ex = trained_extractor();
        let obs = PipelineObs::disabled();
        let a = extract_source(NETLIST, "a", &ex, &obs).unwrap();
        let b = extract_source(NETLIST, "b", &ex, &obs).unwrap();
        assert_eq!(a.constraints_text, b.constraints_text);
        assert_eq!(a.warnings, b.warnings);
    }

    #[test]
    fn extract_source_reports_staged_errors() {
        let ex = trained_extractor();
        let obs = PipelineObs::disabled();
        let err = extract_source("M1 a b\n", "bad", &ex, &obs).unwrap_err();
        assert_eq!(err.exit_code(), 4, "malformed SPICE is a parse error: {err}");
    }

    #[test]
    fn cancelled_token_aborts_with_the_deadline_stage() {
        let ex = trained_extractor();
        let obs = PipelineObs::disabled();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = extract_source_cancellable(NETLIST, "t", &ex, &obs, &cancel).unwrap_err();
        assert_eq!(err, ExtractError::Cancelled);
        assert_eq!(err.exit_code(), 10);
        assert_eq!(err.stage(), "deadline");
    }

    #[test]
    fn expired_passive_deadline_aborts_without_a_watchdog_thread() {
        let ex = trained_extractor();
        let obs = PipelineObs::disabled();
        let cancel = CancelToken::expiring_in(Duration::ZERO);
        let err = extract_source_cancellable(NETLIST, "t", &ex, &obs, &cancel).unwrap_err();
        assert_eq!(err, ExtractError::Cancelled);
    }

    #[test]
    fn unarmed_token_is_byte_identical_to_the_plain_path() {
        let ex = trained_extractor();
        let obs = PipelineObs::disabled();
        let plain = extract_source(NETLIST, "t", &ex, &obs).unwrap();
        let guarded =
            extract_source_cancellable(NETLIST, "t", &ex, &obs, &CancelToken::new()).unwrap();
        assert_eq!(plain.constraints_text, guarded.constraints_text);
        assert_eq!(plain.warnings, guarded.warnings);
    }

    const OTHER: &str = "\
.subckt ota inp inn out ib vdd vss
M1 n1 inp tail vss nch w=4u l=0.2u
M2 out inn tail vss nch w=4u l=0.2u
M3 n1 n1 vdd vdd pch w=8u l=0.2u
M4 out n1 vdd vdd pch w=8u l=0.2u
M5 tail ib vss vss nch w=2u l=0.5u
.ends
";

    #[test]
    fn batched_extraction_is_byte_identical_to_solo_extraction() {
        let ex = trained_extractor();
        let obs = PipelineObs::disabled();
        let items = [(NETLIST, "a"), (OTHER, "b"), (NETLIST, "c")];
        let batched = extract_source_batch(&items, &ex, &obs);
        assert_eq!(batched.len(), 3);
        for ((source, origin), got) in items.iter().zip(&batched) {
            let got = got.as_ref().expect("well-formed items succeed");
            let solo = extract_source(source, origin, &ex, &obs).unwrap();
            assert_eq!(got.constraints_text, solo.constraints_text);
            assert_eq!(got.warnings, solo.warnings);
            assert_eq!(got.devices, solo.devices);
            assert_eq!(got.nets, solo.nets);
            assert_eq!(got.constraints, solo.constraints);
        }
    }

    #[test]
    fn batched_extraction_keeps_failures_with_their_item() {
        let ex = trained_extractor();
        let obs = PipelineObs::disabled();
        let items = [(NETLIST, "good"), ("M1 a b\n", "bad"), (OTHER, "also-good")];
        let batched = extract_source_batch(&items, &ex, &obs);
        assert_eq!(batched[1].as_ref().unwrap_err().exit_code(), 4);
        let solo = extract_source(NETLIST, "good", &ex, &obs).unwrap();
        assert_eq!(
            batched[0].as_ref().unwrap().constraints_text,
            solo.constraints_text,
            "a malformed batch-mate must not change a healthy reply"
        );
        assert!(batched[2].is_ok());
    }

    #[test]
    fn batched_extraction_cancels_as_a_whole() {
        let ex = trained_extractor();
        let obs = PipelineObs::disabled();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = extract_source_batch_cancellable(&[(NETLIST, "t")], &ex, &obs, &cancel)
            .unwrap_err();
        assert_eq!(err, ExtractError::Cancelled);
    }

    #[test]
    fn cache_key_separates_every_input_dimension() {
        let cfg = quick_config();
        let base = cache_key(NETLIST.as_bytes(), &cfg, 1);
        // Identical inputs → identical key.
        assert_eq!(base, cache_key(NETLIST.as_bytes(), &cfg, 1));
        // Any single changed dimension → a different key.
        assert_ne!(base, cache_key(b"other netlist", &cfg, 1));
        assert_ne!(base, cache_key(NETLIST.as_bytes(), &cfg, 2));
        let mut other_cfg = quick_config();
        other_cfg.train.epochs += 1;
        assert_ne!(base, cache_key(NETLIST.as_bytes(), &other_cfg, 1));
        // Keys are printable fixed-width hex.
        assert_eq!(base.len(), 16);
        assert!(base.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
