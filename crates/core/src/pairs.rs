//! Valid candidate pair enumeration (Section III-A).
//!
//! A pair `(t_i, t_j)` is *valid* when both modules sit under the same
//! circuit hierarchy `T_c` (they are siblings) and have identical types
//! — the same device type for primitives, the same functional class for
//! building blocks. Pairs across hierarchies or with nonidentical types
//! are invalid and never considered.

use ancstr_netlist::flat::{FlatCircuit, HierNodeId, HierNodeKind, ModuleType};
use ancstr_netlist::{CircuitClass, PairKey, SymmetryKind};

/// A valid candidate pair, the unit the detectors score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidatePair {
    /// The common parent `T_c`.
    pub hierarchy: HierNodeId,
    /// The unordered pair.
    pub pair: PairKey,
    /// System- or device-level, per the Section III-A classification.
    pub kind: SymmetryKind,
    /// The shared module type.
    pub module_type: ModuleType,
}

/// Enumerate every valid pair of the design.
///
/// Complexity is quadratic in the sibling-group sizes (grouped by module
/// type), matching the `for each valid pair` loops of Algorithm 3.
///
/// Hierarchies classed as pure digital [`CircuitClass::Logic`] are
/// skipped: their repeated cells (shift registers, gate banks) get
/// placement *regularity*, not analog symmetry, and the paper's
/// valid-pair counts (e.g. 776 pairs for the 731-device SAR) are only
/// consistent with digital-internal pairs being excluded. Clock-class
/// blocks stay included — Fig. 2's matched inverters are exactly such a
/// case.
pub fn valid_pairs(flat: &FlatCircuit) -> Vec<CandidatePair> {
    let mut out = Vec::new();
    for parent in flat.blocks() {
        if let HierNodeKind::Block { class: CircuitClass::Logic, .. } = &parent.kind {
            continue;
        }
        // Group children by module type.
        let children = &parent.children;
        for i in 0..children.len() {
            let ti = flat.module_type(children[i]);
            for j in (i + 1)..children.len() {
                let tj = flat.module_type(children[j]);
                if ti != tj {
                    continue;
                }
                let (a, b) = (children[i], children[j]);
                out.push(CandidatePair {
                    hierarchy: parent.id,
                    pair: PairKey::new(a, b),
                    kind: flat.classify_pair(parent.id, a, b),
                    module_type: ti.clone(),
                });
            }
        }
    }
    out
}

/// Only the pairs of one level.
pub fn valid_pairs_of_kind(flat: &FlatCircuit, kind: SymmetryKind) -> Vec<CandidatePair> {
    valid_pairs(flat)
        .into_iter()
        .filter(|p| p.kind == kind)
        .collect()
}

/// Sanity statistics over the candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairStats {
    /// All valid pairs.
    pub total: usize,
    /// System-level pairs.
    pub system: usize,
    /// Device-level pairs.
    pub device: usize,
    /// How many valid pairs the ground truth marks positive.
    pub positives: usize,
}

/// Compute [`PairStats`], checking ground truth ⊆ valid pairs.
///
/// # Panics
///
/// Panics if a ground-truth constraint is not a valid pair — that would
/// mean the generators and the Section III-A rules disagree.
pub fn pair_stats(flat: &FlatCircuit) -> PairStats {
    let pairs = valid_pairs(flat);
    let system = pairs.iter().filter(|p| p.kind == SymmetryKind::System).count();
    let mut covered = 0usize;
    let keys: std::collections::HashSet<PairKey> = pairs.iter().map(|p| p.pair).collect();
    for c in flat.ground_truth().iter() {
        assert!(
            keys.contains(&c.pair),
            "ground-truth pair {:?} is not a valid candidate",
            c.pair
        );
        covered += 1;
    }
    PairStats {
        total: pairs.len(),
        system,
        device: pairs.len() - system,
        positives: covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;

    fn flat(src: &str) -> FlatCircuit {
        FlatCircuit::elaborate(&parse_spice(src).unwrap()).unwrap()
    }

    #[test]
    fn same_type_siblings_pair_up() {
        let f = flat(
            "\
.subckt c a b vdd vss
M1 a b t vss nch w=1u l=0.1u
M2 b a t vss nch w=1u l=0.1u
M3 t a vss vss pch w=1u l=0.1u
.ends
",
        );
        let pairs = valid_pairs(&f);
        // Only (M1, M2): M3 is PMOS.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].kind, SymmetryKind::Device);
    }

    #[test]
    fn cross_hierarchy_pairs_are_invalid() {
        let f = flat(
            "\
.subckt inv in out vdd vss
Mp out in vdd vdd pch w=2u l=0.1u
Mn out in vss vss nch w=1u l=0.1u
.ends
.subckt top a y vdd vss
X1 a m vdd vss inv
X2 m y vdd vss inv
.ends
",
        );
        let pairs = valid_pairs(&f);
        // (X1, X2) at top; (Mp, Mn) inside each inv is type-mismatched.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].kind, SymmetryKind::System);
        // Mp of X1 never pairs with Mp of X2 (different hierarchy).
        let mp1 = f.node_by_path("top/X1/Mp").unwrap().id;
        let mp2 = f.node_by_path("top/X2/Mp").unwrap().id;
        assert!(!pairs.iter().any(|p| p.pair == PairKey::new(mp1, mp2)));
    }

    #[test]
    fn passives_next_to_blocks_are_system_level() {
        let f = flat(
            "\
.subckt inv in out vdd vss
Mp out in vdd vdd pch w=2u l=0.1u
Mn out in vss vss nch w=1u l=0.1u
.ends
.subckt top a y vdd vss
X1 a m vdd vss inv
C1 a vss 10f
C2 y vss 10f
.ends
",
        );
        let pairs = valid_pairs(&f);
        let cap_pair = pairs
            .iter()
            .find(|p| matches!(p.module_type, ModuleType::Device(t) if t.is_passive()))
            .unwrap();
        assert_eq!(cap_pair.kind, SymmetryKind::System);
    }

    #[test]
    fn stats_on_generated_benchmarks() {
        let f = ancstr_netlist::flat::FlatCircuit::elaborate(&ancstr_circuits::ota::ota1(1))
            .unwrap();
        let stats = pair_stats(&f);
        assert!(stats.total >= stats.positives);
        assert_eq!(stats.total, stats.system + stats.device);
        assert!(stats.positives >= 2);
    }

    #[test]
    fn kind_filter_partitions() {
        let f = ancstr_netlist::flat::FlatCircuit::elaborate(&ancstr_circuits::adc::adc1())
            .unwrap();
        let all = valid_pairs(&f).len();
        let sys = valid_pairs_of_kind(&f, SymmetryKind::System).len();
        let dev = valid_pairs_of_kind(&f, SymmetryKind::Device).len();
        assert_eq!(all, sys + dev);
        assert!(sys > 0 && dev > 0);
    }
}
