//! Seeded fault injection for robustness testing.
//!
//! Corruption operators over the textual trust boundaries of the
//! pipeline — SPICE netlist sources ([`SpiceFault`]), serialized model
//! files ([`ModelFault`]), and run-store checkpoint/manifest artifacts
//! ([`CheckpointFault`]) — each deterministic in an explicit seed, so a
//! failing case reproduces exactly. The integration suite
//! (`tests/fault_injection.rs`) drives every operator through the full
//! pipeline and asserts the invariant this module exists for: **every
//! fault yields a typed error or a degraded-but-valid result, never a
//! panic**.
//!
//! A third fault class lives in the trainer itself
//! ([`ancstr_gnn::HealthConfig`]'s hidden NaN-gradient hook), because
//! mid-training state cannot be corrupted from outside.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A corruption operator over SPICE netlist text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpiceFault {
    /// Cut the text, keeping roughly this fraction of its bytes
    /// (clamped to `[0, 1]`); models an interrupted transfer.
    TruncateTail {
        /// Fraction of the source to keep.
        keep_frac: f64,
    },
    /// Overwrite this many characters with random printable ASCII;
    /// models bit rot / encoding damage.
    GarbleChars {
        /// Number of characters to overwrite.
        count: usize,
    },
    /// Delete one random line; models a lost card.
    DropLine,
    /// Delete one random token from a random device card; models a
    /// missing pin or parameter.
    DropToken,
    /// Rename a random device card to the name of an earlier card in
    /// the same subcircuit; models a duplicate-name collision.
    DuplicateDevice,
    /// Point a random `X` instance at a subcircuit that does not exist.
    UnknownSubckt,
    /// Zero out one random `w=`/`l=` geometry parameter.
    ZeroGeometry,
    /// Replace one random numeric parameter value with garbage.
    BadNumber,
    /// Delete the first `.ends`; models an unterminated subcircuit.
    RemoveEnds,
    /// Strip every device and instance card, leaving bare subcircuit
    /// shells; models an empty design.
    EmptyBody,
}

/// All SPICE fault classes, for exhaustive sweeps.
pub const ALL_SPICE_FAULTS: [SpiceFault; 10] = [
    SpiceFault::TruncateTail { keep_frac: 0.6 },
    SpiceFault::GarbleChars { count: 12 },
    SpiceFault::DropLine,
    SpiceFault::DropToken,
    SpiceFault::DuplicateDevice,
    SpiceFault::UnknownSubckt,
    SpiceFault::ZeroGeometry,
    SpiceFault::BadNumber,
    SpiceFault::RemoveEnds,
    SpiceFault::EmptyBody,
];

/// Whether a line is a device/instance card (not a directive/comment).
fn is_card(line: &str) -> bool {
    let t = line.trim_start();
    !t.is_empty() && !t.starts_with('.') && !t.starts_with('*') && !t.starts_with('+')
}

fn pick_line(lines: &[String], rng: &mut StdRng, pred: impl Fn(&str) -> bool) -> Option<usize> {
    let candidates: Vec<usize> =
        (0..lines.len()).filter(|&i| pred(&lines[i])).collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

/// Apply `fault` to `source`, deterministically in `seed`.
///
/// The result is intentionally *not* guaranteed to be invalid: some
/// faults on some seeds produce netlists that still parse (that is the
/// point — the pipeline must handle both outcomes without panicking).
pub fn inject_spice(source: &str, fault: SpiceFault, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lines: Vec<String> = source.lines().map(str::to_owned).collect();
    match fault {
        SpiceFault::TruncateTail { keep_frac } => {
            let keep = (source.len() as f64 * keep_frac.clamp(0.0, 1.0)) as usize;
            // Cut on a char boundary.
            let mut cut = keep.min(source.len());
            while cut > 0 && !source.is_char_boundary(cut) {
                cut -= 1;
            }
            return source[..cut].to_owned();
        }
        SpiceFault::GarbleChars { count } => {
            let mut chars: Vec<char> = source.chars().collect();
            if chars.is_empty() {
                return String::new();
            }
            for _ in 0..count {
                let i = rng.gen_range(0..chars.len());
                // Random printable ASCII, newline included so structure
                // can break too.
                let replacement = match rng.gen_range(0..8u32) {
                    0 => '\n',
                    _ => char::from(rng.gen_range(0x21u8..0x7F)),
                };
                chars[i] = replacement;
            }
            return chars.into_iter().collect();
        }
        SpiceFault::DropLine => {
            if !lines.is_empty() {
                let i = rng.gen_range(0..lines.len());
                lines.remove(i);
            }
        }
        SpiceFault::DropToken => {
            if let Some(i) = pick_line(&lines, &mut rng, is_card) {
                let mut tokens: Vec<&str> = lines[i].split_whitespace().collect();
                if tokens.len() > 1 {
                    let t = rng.gen_range(0..tokens.len());
                    tokens.remove(t);
                    lines[i] = tokens.join(" ");
                }
            }
        }
        SpiceFault::DuplicateDevice => {
            let cards: Vec<usize> =
                (0..lines.len()).filter(|&i| is_card(&lines[i])).collect();
            if cards.len() >= 2 {
                let a = cards[rng.gen_range(0..cards.len())];
                let b = cards[rng.gen_range(0..cards.len())];
                let donor_name =
                    lines[b].split_whitespace().next().unwrap_or("M1").to_owned();
                let rest: Vec<&str> = lines[a].split_whitespace().skip(1).collect();
                lines[a] = format!("{donor_name} {}", rest.join(" "));
            }
        }
        SpiceFault::UnknownSubckt => {
            if let Some(i) = pick_line(&lines, &mut rng, |l| {
                is_card(l) && l.trim_start().starts_with(['X', 'x'])
            }) {
                let mut tokens: Vec<String> =
                    lines[i].split_whitespace().map(str::to_owned).collect();
                if let Some(last) = tokens.last_mut() {
                    *last = "no_such_subckt".to_owned();
                }
                lines[i] = tokens.join(" ");
            }
        }
        SpiceFault::ZeroGeometry => {
            if let Some(i) = pick_line(&lines, &mut rng, |l| {
                l.contains("w=") || l.contains("l=")
            }) {
                let key = if lines[i].contains("w=") { "w=" } else { "l=" };
                let line = &lines[i];
                let start = line.find(key).expect("picked for containing key");
                let val_start = start + key.len();
                let val_end = line[val_start..]
                    .find(char::is_whitespace)
                    .map_or(line.len(), |o| val_start + o);
                lines[i] = format!("{}{key}0{}", &line[..start], &line[val_end..]);
            }
        }
        SpiceFault::BadNumber => {
            if let Some(i) = pick_line(&lines, &mut rng, |l| l.contains('=')) {
                let line = lines[i].clone();
                let eq_positions: Vec<usize> =
                    line.char_indices().filter(|&(_, c)| c == '=').map(|(p, _)| p).collect();
                let eq = eq_positions[rng.gen_range(0..eq_positions.len())];
                let val_start = eq + 1;
                let val_end = line[val_start..]
                    .find(char::is_whitespace)
                    .map_or(line.len(), |o| val_start + o);
                lines[i] = format!("{}=$?#{}", &line[..eq], &line[val_end..]);
            }
        }
        SpiceFault::RemoveEnds => {
            if let Some(i) =
                lines.iter().position(|l| l.trim_start().starts_with(".ends"))
            {
                lines.remove(i);
            }
        }
        SpiceFault::EmptyBody => {
            lines.retain(|l| !is_card(l));
        }
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// A corruption operator over serialized model text
/// ([`ancstr_gnn::GnnModel::to_text`] format).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelFault {
    /// Cut the text, keeping roughly this fraction of its lines.
    Truncate {
        /// Fraction of the lines to keep.
        keep_frac: f64,
    },
    /// Replace one random weight with a non-numeric token.
    GarbleValue,
    /// Replace one random weight with `NaN` (parses as `f64`, so only an
    /// explicit finiteness check catches it).
    NanWeight,
    /// Replace one random weight with `inf`.
    InfWeight,
    /// Corrupt the version header.
    CorruptHeader,
    /// Change a declared matrix shape so it no longer fits its slot.
    WrongShape,
}

/// All model fault classes, for exhaustive sweeps.
pub const ALL_MODEL_FAULTS: [ModelFault; 6] = [
    ModelFault::Truncate { keep_frac: 0.5 },
    ModelFault::GarbleValue,
    ModelFault::NanWeight,
    ModelFault::InfWeight,
    ModelFault::CorruptHeader,
    ModelFault::WrongShape,
];

/// Replace one whitespace-separated value on a random weight row.
fn replace_weight(text: &str, rng: &mut StdRng, replacement: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let weight_rows: Vec<usize> = (0..lines.len())
        .filter(|&i| {
            i >= 2
                && !lines[i].starts_with("matrix")
                && !lines[i].trim().is_empty()
        })
        .collect();
    if weight_rows.is_empty() {
        return text.to_owned();
    }
    let row = weight_rows[rng.gen_range(0..weight_rows.len())];
    let mut tokens: Vec<String> =
        lines[row].split_whitespace().map(str::to_owned).collect();
    let t = rng.gen_range(0..tokens.len());
    tokens[t] = replacement.to_owned();
    let mut out: Vec<String> = lines.iter().map(|&l| l.to_owned()).collect();
    out[row] = tokens.join(" ");
    let mut s = out.join("\n");
    s.push('\n');
    s
}

/// Apply `fault` to serialized model text, deterministically in `seed`.
pub fn inject_model(text: &str, fault: ModelFault, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    match fault {
        ModelFault::Truncate { keep_frac } => {
            let lines: Vec<&str> = text.lines().collect();
            let keep = ((lines.len() as f64) * keep_frac.clamp(0.0, 1.0)) as usize;
            let mut s = lines[..keep.min(lines.len())].join("\n");
            s.push('\n');
            s
        }
        ModelFault::GarbleValue => replace_weight(text, &mut rng, "#corrupt#"),
        ModelFault::NanWeight => replace_weight(text, &mut rng, "NaN"),
        ModelFault::InfWeight => replace_weight(text, &mut rng, "inf"),
        ModelFault::CorruptHeader => text.replacen("ancstr-gnn v1", "ancstr-gnn v9", 1),
        ModelFault::WrongShape => {
            // Bump the first declared matrix's row count.
            if let Some(pos) = text.find("matrix ") {
                let line_end = text[pos..].find('\n').map_or(text.len(), |o| pos + o);
                let decl = &text[pos..line_end];
                let mut parts: Vec<String> =
                    decl.split_whitespace().map(str::to_owned).collect();
                if parts.len() == 3 {
                    if let Ok(r) = parts[1].parse::<usize>() {
                        parts[1] = (r + 1).to_string();
                    }
                    return format!("{}{}{}", &text[..pos], parts.join(" "), &text[line_end..]);
                }
            }
            text.to_owned()
        }
    }
}

/// A corruption operator over CRC-sealed run-store artifacts
/// (checkpoints and the run manifest; see [`crate::runstore`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointFault {
    /// Cut the file, keeping roughly this fraction of its bytes; models
    /// a crash mid-write on a filesystem without atomic rename (the
    /// seal footer sits last, so any truncation destroys it).
    TruncateTail {
        /// Fraction of the bytes to keep.
        keep_frac: f64,
    },
    /// Flip this many random bits; models silent media corruption. The
    /// CRC-32 seal catches every such flip.
    FlipBit {
        /// Number of bit flips to apply.
        count: usize,
    },
    /// Rewrite the manifest's `config_hash` to a stale value and
    /// re-seal it, so the file *verifies* but belongs to a different
    /// run; resume must reject it with a typed config mismatch, not
    /// trust the checksum alone. A no-op on non-manifest artifacts.
    StaleManifest,
}

/// All checkpoint/manifest fault classes, for exhaustive sweeps.
pub const ALL_CHECKPOINT_FAULTS: [CheckpointFault; 3] = [
    CheckpointFault::TruncateTail { keep_frac: 0.7 },
    CheckpointFault::FlipBit { count: 1 },
    CheckpointFault::StaleManifest,
];

/// Apply `fault` to a sealed artifact's text, deterministically in
/// `seed`.
pub fn inject_checkpoint(text: &str, fault: CheckpointFault, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    match fault {
        CheckpointFault::TruncateTail { keep_frac } => {
            let keep = (text.len() as f64 * keep_frac.clamp(0.0, 1.0)) as usize;
            let mut cut = keep.min(text.len());
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_owned()
        }
        CheckpointFault::FlipBit { count } => {
            let mut bytes = text.as_bytes().to_vec();
            if bytes.is_empty() {
                return String::new();
            }
            for _ in 0..count {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8u32);
            }
            // Corruption may break UTF-8; lossy decoding models what a
            // reader would see (and still differs from the original).
            String::from_utf8_lossy(&bytes).into_owned()
        }
        CheckpointFault::StaleManifest => {
            // Split off the seal footer, keeping its kind.
            let Some(footer_start) = text.rfind("ancstr-seal ") else {
                return text.to_owned();
            };
            let footer = &text[footer_start..];
            let Some(kind) = footer
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("kind="))
            else {
                return text.to_owned();
            };
            let kind = kind.to_owned();
            let payload = &text[..footer_start];
            // Swap the config hash for a stale one, then re-seal so the
            // checksum is *valid* — only semantic validation can catch it.
            let Some(pos) = payload.find("\"config_hash\": \"") else {
                return text.to_owned();
            };
            let val_start = pos + "\"config_hash\": \"".len();
            let Some(val_len) = payload[val_start..].find('"') else {
                return text.to_owned();
            };
            let stale = format!(
                "{}{}{}",
                &payload[..val_start],
                "0".repeat(val_len),
                &payload[val_start + val_len..]
            );
            ancstr_gnn::seal(&kind, &stale)
        }
    }
}

// ---------------------------------------------------------------------
// Serve-layer faults

/// A fault operator over the daemon's HTTP transport: each one compiles
/// a request into a deterministic [`WirePlan`] — an explicit sequence
/// of socket writes and pauses — that a raw-socket executor (the serve
/// crate's `client::send_plan`) replays byte-for-byte. Keeping the
/// *plan* here and the *socket* in the serve crate preserves the crate
/// layering (core cannot depend on serve) while keeping every fault
/// seeded: the same `(fault, request, seed)` triple always produces the
/// same bytes at the same offsets, so a failing chaos case reproduces
/// exactly, independent of wall-clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeFault {
    /// Declare the full `Content-Length` but send only this fraction of
    /// the body before half-closing; models a client dying mid-upload.
    /// The server must answer a clean `400`/`408`, never hang or serve
    /// a truncated extraction.
    TruncateBody {
        /// Fraction of the body bytes actually sent.
        keep_frac: f64,
    },
    /// Deliver a well-formed request shredded into this many separate
    /// writes with short pauses between them; models pathological TCP
    /// segmentation. The server must reassemble it and answer exactly
    /// as if it arrived in one piece.
    TornWrite {
        /// Number of socket writes the request is split into.
        fragments: usize,
    },
    /// Send a seeded prefix of the request head, then stall for this
    /// long without ever completing it; models a slowloris client. The
    /// server's read deadline must reclaim the worker (`408` or a
    /// dropped connection), never wait forever.
    StalledRead {
        /// How long the client stays silent before giving up.
        hold_ms: u64,
    },
    /// A well-formed request carrying the `x-ancstr-chaos: panic`
    /// cooperation header; a chaos-enabled server panics inside the
    /// handler. The supervised pool must answer `500` with a
    /// `worker_panic` stage and keep the worker slot alive.
    WorkerPanic,
    /// Flip one seeded bit inside a sealed model upload body; the
    /// CRC-32 seal (or the canary inference) must reject it and the old
    /// model must keep serving.
    CorruptModelUpload,
    /// A well-formed request carrying `x-ancstr-chaos: peer-down`: a
    /// chaos-enabled replica treats the owning peer for this key as
    /// dead. The server must fail over to local compute and answer
    /// `200` — failover is a cache miss, never a client-visible error.
    PeerDown,
    /// A well-formed request carrying `x-ancstr-chaos: slow-peer-ms:N`:
    /// the forwarding hop stalls for (a bounded) `N` ms before being
    /// declared dead. Same contract as [`ServeFault::PeerDown`]: the
    /// per-hop deadline reclaims the worker and the reply is a local
    /// `200`.
    SlowPeer {
        /// How long the simulated hop hangs before failing over.
        hold_ms: u64,
    },
    /// A well-formed request carrying `x-ancstr-chaos: poison`: the
    /// fused batch pass it rides in panics. Bisection must isolate it —
    /// this request alone answers `500` with stage `batch_poison`, and
    /// every batch-mate still gets its correct bytes.
    PoisonBatchMate,
}

/// All serve-layer fault classes, for exhaustive sweeps.
pub const ALL_SERVE_FAULTS: [ServeFault; 8] = [
    ServeFault::TruncateBody { keep_frac: 0.5 },
    ServeFault::TornWrite { fragments: 7 },
    ServeFault::StalledRead { hold_ms: 800 },
    ServeFault::WorkerPanic,
    ServeFault::CorruptModelUpload,
    ServeFault::PeerDown,
    ServeFault::SlowPeer { hold_ms: 200 },
    ServeFault::PoisonBatchMate,
];

/// One step of a [`WirePlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireStep {
    /// Write these bytes to the socket.
    Send(Vec<u8>),
    /// Sleep this long before the next step.
    Pause(std::time::Duration),
}

/// A deterministic socket script: the executor connects, replays the
/// steps in order, half-closes the write side, and (when
/// `expect_reply`) reads whatever response the server produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePlan {
    /// Socket writes and pauses, in order.
    pub steps: Vec<WireStep>,
    /// Whether the executor should try to read a response afterwards.
    pub expect_reply: bool,
}

/// Serialize a one-shot HTTP/1.1 request in the exact dialect the
/// daemon speaks (`Content-Length` framing, `Connection: close`).
fn raw_request(method: &str, path: &str, extra_headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut raw = head.into_bytes();
    raw.extend_from_slice(body);
    raw
}

/// Compile `fault` applied to a `method path` request with `body` into
/// a [`WirePlan`], deterministically in `seed`.
pub fn plan_serve_fault(
    fault: ServeFault,
    method: &str,
    path: &str,
    body: &[u8],
    seed: u64,
) -> WirePlan {
    let mut rng = StdRng::seed_from_u64(seed);
    match fault {
        ServeFault::TruncateBody { keep_frac } => {
            let keep = (body.len() as f64 * keep_frac.clamp(0.0, 1.0)) as usize;
            let mut raw = raw_request(method, path, &[], body);
            raw.truncate(raw.len() - (body.len() - keep.min(body.len())));
            WirePlan { steps: vec![WireStep::Send(raw)], expect_reply: true }
        }
        ServeFault::TornWrite { fragments } => {
            let raw = raw_request(method, path, &[], body);
            let fragments = fragments.clamp(1, raw.len().max(1));
            // Seeded cut points; sorted + deduped so every byte is sent
            // exactly once, in order.
            let mut cuts: Vec<usize> =
                (0..fragments - 1).map(|_| rng.gen_range(1..raw.len().max(2))).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let mut steps = Vec::new();
            let mut start = 0;
            for cut in cuts.into_iter().chain(std::iter::once(raw.len())) {
                if cut > start {
                    steps.push(WireStep::Send(raw[start..cut].to_vec()));
                    steps.push(WireStep::Pause(std::time::Duration::from_millis(
                        rng.gen_range(1..5),
                    )));
                    start = cut;
                }
            }
            steps.pop(); // no trailing pause after the final write
            WirePlan { steps, expect_reply: true }
        }
        ServeFault::StalledRead { hold_ms } => {
            let raw = raw_request(method, path, &[], body);
            // A strict prefix of the *head*, so the request can never
            // be complete when the stall begins.
            let head_len = raw
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map_or(raw.len(), |i| i + 4);
            let keep = rng.gen_range(1..head_len.max(2) - 1);
            WirePlan {
                steps: vec![
                    WireStep::Send(raw[..keep].to_vec()),
                    WireStep::Pause(std::time::Duration::from_millis(hold_ms)),
                ],
                expect_reply: true,
            }
        }
        ServeFault::WorkerPanic => WirePlan {
            steps: vec![WireStep::Send(raw_request(
                method,
                path,
                &[("x-ancstr-chaos", "panic")],
                body,
            ))],
            expect_reply: true,
        },
        ServeFault::CorruptModelUpload => {
            let mut corrupted = body.to_vec();
            if !corrupted.is_empty() {
                let i = rng.gen_range(0..corrupted.len());
                corrupted[i] ^= 1 << rng.gen_range(0..8u32);
            }
            WirePlan {
                steps: vec![WireStep::Send(raw_request(method, "/v1/models", &[], &corrupted))],
                expect_reply: true,
            }
        }
        ServeFault::PeerDown => WirePlan {
            steps: vec![WireStep::Send(raw_request(
                method,
                path,
                &[("x-ancstr-chaos", "peer-down")],
                body,
            ))],
            expect_reply: true,
        },
        ServeFault::SlowPeer { hold_ms } => WirePlan {
            steps: vec![WireStep::Send(raw_request(
                method,
                path,
                &[("x-ancstr-chaos", &format!("slow-peer-ms:{hold_ms}"))],
                body,
            ))],
            expect_reply: true,
        },
        ServeFault::PoisonBatchMate => WirePlan {
            steps: vec![WireStep::Send(raw_request(
                method,
                path,
                &[("x-ancstr-chaos", "poison")],
                body,
            ))],
            expect_reply: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_gnn::{GnnConfig, GnnModel};

    const SRC: &str = "\
.subckt dp inp inn o1 o2 ib vdd vss
M1 o1 inp tail vss nch w=4u l=0.2u
M2 o2 inn tail vss nch w=4u l=0.2u
M5 tail ib vss vss nch w=2u l=0.5u
.ends
.subckt top a b vdd vss
X1 a b o1 o2 ibb vdd vss dp
.ends
";

    #[test]
    fn spice_faults_are_seed_deterministic_and_mutating() {
        for fault in ALL_SPICE_FAULTS {
            let a = inject_spice(SRC, fault, 11);
            let b = inject_spice(SRC, fault, 11);
            assert_eq!(a, b, "{fault:?} must be deterministic");
            assert_ne!(a, SRC, "{fault:?} must actually change the text");
            let other = inject_spice(SRC, fault, 12);
            // Not all operators depend on the seed (e.g. RemoveEnds), but
            // every result must still be deterministic for that seed.
            assert_eq!(other, inject_spice(SRC, fault, 12));
        }
    }

    #[test]
    fn targeted_spice_faults_hit_their_target() {
        let zeroed = inject_spice(SRC, SpiceFault::ZeroGeometry, 3);
        assert!(zeroed.contains("w=0") || zeroed.contains("l=0"), "{zeroed}");
        let unknown = inject_spice(SRC, SpiceFault::UnknownSubckt, 3);
        assert!(unknown.contains("no_such_subckt"), "{unknown}");
        let empty = inject_spice(SRC, SpiceFault::EmptyBody, 3);
        assert!(!empty.lines().any(super::is_card), "{empty}");
        let noends = inject_spice(SRC, SpiceFault::RemoveEnds, 3);
        assert_eq!(noends.matches(".ends").count(), 1);
    }

    #[test]
    fn model_faults_mutate_the_text() {
        let model =
            GnnModel::new(GnnConfig { dim: 4, layers: 1, seed: 9, ..GnnConfig::default() });
        let text = model.to_text();
        for fault in ALL_MODEL_FAULTS {
            let mutated = inject_model(&text, fault, 5);
            assert_eq!(mutated, inject_model(&text, fault, 5), "{fault:?} deterministic");
            assert_ne!(mutated, text, "{fault:?} must change the text");
        }
        assert!(inject_model(&text, ModelFault::NanWeight, 5).contains("NaN"));
        assert!(inject_model(&text, ModelFault::InfWeight, 5).contains("inf"));
    }

    #[test]
    fn checkpoint_faults_are_deterministic_and_break_the_seal() {
        let sealed = ancstr_gnn::seal("checkpoint", "ancstr-ckpt v1\npayload data\n");
        for fault in [
            CheckpointFault::TruncateTail { keep_frac: 0.7 },
            CheckpointFault::FlipBit { count: 1 },
        ] {
            let a = inject_checkpoint(&sealed, fault, 21);
            assert_eq!(a, inject_checkpoint(&sealed, fault, 21), "{fault:?} deterministic");
            assert_ne!(a, sealed, "{fault:?} must change the text");
            assert!(
                ancstr_gnn::open_sealed("checkpoint", &a).is_err(),
                "{fault:?} must break checksum verification"
            );
        }
    }

    /// Flatten a plan's `Send` steps back into one byte stream.
    fn sent_bytes(plan: &WirePlan) -> Vec<u8> {
        plan.steps
            .iter()
            .filter_map(|s| match s {
                WireStep::Send(b) => Some(b.as_slice()),
                WireStep::Pause(_) => None,
            })
            .collect::<Vec<_>>()
            .concat()
    }

    #[test]
    fn serve_fault_plans_are_seed_deterministic() {
        for fault in ALL_SERVE_FAULTS {
            let a = plan_serve_fault(fault, "POST", "/v1/extract", SRC.as_bytes(), 17);
            let b = plan_serve_fault(fault, "POST", "/v1/extract", SRC.as_bytes(), 17);
            assert_eq!(a, b, "{fault:?} must be deterministic in the seed");
        }
    }

    #[test]
    fn torn_write_reassembles_to_the_intact_request() {
        let intact = raw_request("POST", "/v1/extract", &[], SRC.as_bytes());
        let plan = plan_serve_fault(
            ServeFault::TornWrite { fragments: 7 },
            "POST",
            "/v1/extract",
            SRC.as_bytes(),
            3,
        );
        assert!(plan.steps.len() > 2, "{plan:?}");
        assert_eq!(sent_bytes(&plan), intact, "torn writes must not lose or reorder bytes");
    }

    #[test]
    fn truncate_body_declares_more_than_it_sends() {
        let plan = plan_serve_fault(
            ServeFault::TruncateBody { keep_frac: 0.5 },
            "POST",
            "/v1/extract",
            SRC.as_bytes(),
            3,
        );
        let sent = sent_bytes(&plan);
        let text = String::from_utf8_lossy(&sent);
        assert!(
            text.contains(&format!("Content-Length: {}", SRC.len())),
            "must declare the full body: {text}"
        );
        assert!(sent.len() < raw_request("POST", "/v1/extract", &[], SRC.as_bytes()).len());
    }

    #[test]
    fn stalled_read_never_completes_the_head() {
        let plan = plan_serve_fault(
            ServeFault::StalledRead { hold_ms: 5 },
            "GET",
            "/healthz",
            b"",
            9,
        );
        let sent = sent_bytes(&plan);
        assert!(!sent.windows(4).any(|w| w == b"\r\n\r\n"), "head must stay incomplete");
        assert!(matches!(plan.steps.last(), Some(WireStep::Pause(_))));
    }

    #[test]
    fn corrupt_model_upload_flips_exactly_one_bit() {
        let model =
            GnnModel::new(GnnConfig { dim: 4, layers: 1, seed: 9, ..GnnConfig::default() });
        let sealed = model.to_text_checksummed();
        let plan = plan_serve_fault(
            ServeFault::CorruptModelUpload,
            "POST",
            "/v1/models",
            sealed.as_bytes(),
            4,
        );
        let sent = sent_bytes(&plan);
        let intact = raw_request("POST", "/v1/models", &[], sealed.as_bytes());
        assert_eq!(sent.len(), intact.len());
        let diffs = sent.iter().zip(&intact).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1, "exactly one corrupted byte");
    }

    #[test]
    fn worker_panic_plan_carries_the_cooperation_header() {
        let plan = plan_serve_fault(ServeFault::WorkerPanic, "POST", "/v1/extract", b"x", 0);
        let text = String::from_utf8_lossy(&sent_bytes(&plan)).into_owned();
        assert!(text.contains("x-ancstr-chaos: panic"), "{text}");
    }

    #[test]
    fn stale_manifest_keeps_a_valid_seal_but_zeroes_the_hash() {
        let payload = "{\n  \"config_hash\": \"49c099dbacda8945\",\n  \"seed\": 7\n}\n";
        let sealed = ancstr_gnn::seal("manifest", payload);
        let stale = inject_checkpoint(&sealed, CheckpointFault::StaleManifest, 0);
        assert_ne!(stale, sealed);
        // The seal still verifies — only semantic validation catches it.
        let opened = ancstr_gnn::open_sealed("manifest", &stale).unwrap();
        assert!(opened.contains("\"config_hash\": \"0000000000000000\""), "{opened}");
        // Non-manifest artifacts are left alone.
        let ckpt = ancstr_gnn::seal("checkpoint", "ancstr-ckpt v1\n");
        assert_eq!(inject_checkpoint(&ckpt, CheckpointFault::StaleManifest, 0), ckpt);
    }
}
