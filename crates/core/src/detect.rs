//! Symmetry constraint detection (paper Section IV-E, Algorithm 3,
//! Eqs. 4–5).

use ancstr_netlist::flat::{FlatCircuit, HierNodeKind};
use ancstr_netlist::{ConstraintSet, SymmetryConstraint, SymmetryKind};
use ancstr_nn::{dot, row_norm, Matrix};

use crate::embed::{embed_all_blocks, EmbedOptions};
use crate::pairs::{valid_pairs, CandidatePair};

/// Threshold parameters (Eq. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdConfig {
    /// Eq. 4 `α` (paper: 0.95).
    pub alpha: f64,
    /// Eq. 4 `β` (paper: 0.95).
    pub beta: f64,
    /// Hard cap of Eq. 4 (paper: 0.999).
    pub cap: f64,
    /// Device-level threshold (paper: 0.99).
    pub device: f64,
}

impl Default for ThresholdConfig {
    fn default() -> ThresholdConfig {
        ThresholdConfig { alpha: 0.95, beta: 0.95, cap: 0.999, device: 0.99 }
    }
}

impl ThresholdConfig {
    /// The system-level threshold
    /// `λ_th = min(cap, α + β / (1 + |N̂_sub|))` for a design whose
    /// largest proper subcircuit has `max_subcircuit_size` devices.
    pub fn system_threshold(&self, max_subcircuit_size: usize) -> f64 {
        (self.alpha + self.beta / (1.0 + max_subcircuit_size as f64)).min(self.cap)
    }
}

/// A numerical-health warning attached to a detection: a hierarchy node
/// whose feature vector contained NaN/Inf, so every pair touching it was
/// skipped instead of being scored with a poisoned cosine similarity.
///
/// Warnings are *counted records*: one per affected node, carrying how
/// many candidate pairs it suppressed, so a badly poisoned node emits
/// one line instead of one line per pair.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericWarning {
    /// The affected node.
    pub node: ancstr_netlist::HierNodeId,
    /// Its hierarchical path (for human-readable reporting).
    pub path: String,
    /// Number of candidate pairs skipped because this node's feature
    /// vector was non-finite.
    pub skipped_pairs: usize,
}

impl std::fmt::Display for NumericWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "skipped {} pair{} touching `{}`: non-finite feature vector",
            self.skipped_pairs,
            if self.skipped_pairs == 1 { "" } else { "s" },
            self.path
        )
    }
}

/// One scored candidate pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPair {
    /// The candidate.
    pub candidate: CandidatePair,
    /// Cosine similarity of the pair's features (Eq. 5).
    pub score: f64,
    /// Whether `score > λ_th` (Algorithm 3 line 7).
    pub accepted: bool,
    /// The threshold applied to this pair.
    pub threshold: f64,
}

/// Output of [`detect_constraints`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionResult {
    /// All valid pairs with scores and decisions.
    pub scored: Vec<ScoredPair>,
    /// The accepted constraints `S`.
    pub constraints: ConstraintSet,
    /// The system-level threshold that was used.
    pub system_threshold: f64,
    /// Nodes whose features were non-finite; pairs touching them were
    /// skipped rather than scored (empty on a healthy run).
    pub warnings: Vec<NumericWarning>,
}

impl DetectionResult {
    /// Scored pairs of one level.
    pub fn scored_of_kind(&self, kind: SymmetryKind) -> impl Iterator<Item = &ScoredPair> {
        self.scored.iter().filter(move |s| s.candidate.kind == kind)
    }
}

/// Segment width of the pruning prepass: per-node feature vectors are
/// split into runs of `SEG` elements and one L2 norm is kept per run.
/// Device vectors are 18-dimensional, so `SEG = 4` yields 5 segments —
/// enough resolution that dissimilar profiles produce a Cauchy–Schwarz
/// bound well below the 0.95+ thresholds. (A segment width near the
/// vector length would collapse the bound to 1 and never prune.)
const PRUNE_SEG: usize = 4;

/// Multiplicative safety margin on the pruning upper bound: the bound
/// is exact in real arithmetic, and this margin absorbs the floating-
/// point rounding of computing it, so pruning can never drop a pair
/// whose exact score clears the threshold.
const PRUNE_MARGIN: f64 = 1.0 + 1e-9;

/// Per-node facts hoisted out of the O(pairs) scoring loop: each node's
/// finiteness flag and full-vector L2 norm are computed once instead of
/// once per pair the node appears in. `seg_norms` (pruned mode only)
/// holds the L2 norm of each `PRUNE_SEG`-wide run of the vector.
struct NodeStat {
    finite: bool,
    norm: f64,
    seg_norms: Vec<f64>,
}

/// Upper bound on the pair's cosine score from segment norms alone:
/// `|Σ_j dot_j| ≤ Σ_j ‖a_j‖‖b_j‖` (Cauchy–Schwarz per segment). The
/// zipped dot only covers `min(#segments)` runs — zero-padding
/// semantics — and a clipped final segment's norm is bounded by the
/// full segment's norm, so truncating the sum keeps the bound valid
/// for unequal-length vectors.
fn score_upper_bound(a: &NodeStat, b: &NodeStat) -> f64 {
    if a.norm == 0.0 || b.norm == 0.0 {
        // The exact score of a zero-norm pair is defined as 0.
        return 0.0;
    }
    let bound: f64 = a
        .seg_norms
        .iter()
        .zip(&b.seg_norms)
        .map(|(x, y)| x * y)
        .sum();
    bound / (a.norm * b.norm) * PRUNE_MARGIN
}

/// Algorithm 3: score every valid pair with cosine similarity and keep
/// those above the level-appropriate threshold.
///
/// * device-level pairs compare the two devices' trained GNN vectors;
/// * system-level pairs between blocks compare Algorithm 2 circuit
///   embeddings;
/// * system-level pairs between passive devices compare device vectors
///   against the system threshold (they are primitives living among
///   blocks).
///
/// Per-node norms and finiteness flags are hoisted out of the pair loop
/// (computed once per node, not once per pair); the resulting quotient
/// `dot / (‖a‖·‖b‖)` is bit-identical to calling
/// [`ancstr_nn::cosine_similarity`] per pair, so scores, decisions and
/// warnings match the historical implementation exactly.
///
/// # Panics
///
/// Panics if `z` has fewer rows than the circuit has devices.
pub fn detect_constraints(
    flat: &FlatCircuit,
    z: &Matrix,
    thresholds: &ThresholdConfig,
    embed: &EmbedOptions,
) -> DetectionResult {
    detect_impl(flat, z, thresholds, embed, false)
}

/// [`detect_constraints`] with a lossless candidate-pruning prepass.
///
/// Per node, the prepass additionally keeps one L2 norm per
/// [`PRUNE_SEG`]-wide segment of the feature vector. A pair whose
/// Cauchy–Schwarz upper bound `Σ_j ‖a_j‖‖b_j‖ / (‖a‖·‖b‖)` (times a
/// [rounding margin](PRUNE_MARGIN)) cannot exceed its threshold is
/// skipped without computing the full dot product. Acceptance requires
/// `score > threshold` strictly, so pruning at `bound ≤ threshold`
/// never drops an acceptable pair:
///
/// * `constraints`, `system_threshold` and `warnings` are **identical**
///   to [`detect_constraints`] on the same inputs;
/// * `scored` contains only the *surviving* pairs (every accepted pair
///   survives by construction; pruned pairs were provably rejections).
///
/// Use this for large flat designs where scoring is pair-dominated; use
/// [`detect_constraints`] when the full ROC (every pair's score) is
/// needed.
///
/// # Panics
///
/// Panics if `z` has fewer rows than the circuit has devices.
pub fn detect_constraints_pruned(
    flat: &FlatCircuit,
    z: &Matrix,
    thresholds: &ThresholdConfig,
    embed: &EmbedOptions,
) -> DetectionResult {
    detect_impl(flat, z, thresholds, embed, true)
}

fn detect_impl(
    flat: &FlatCircuit,
    z: &Matrix,
    thresholds: &ThresholdConfig,
    embed: &EmbedOptions,
    prune: bool,
) -> DetectionResult {
    assert!(
        z.rows() >= flat.devices().len(),
        "need one trained feature row per device"
    );
    let lambda_sys = thresholds.system_threshold(flat.max_subcircuit_size());
    let block_embeddings = embed_all_blocks(flat, z, embed);

    fn feature_of<'a>(
        flat: &FlatCircuit,
        z: &'a Matrix,
        block_embeddings: &'a [Option<Vec<f64>>],
        id: ancstr_netlist::HierNodeId,
    ) -> &'a [f64] {
        match &flat.node(id).kind {
            HierNodeKind::Device(i) => z.row(*i),
            HierNodeKind::Block { .. } => block_embeddings[id.0]
                .as_deref()
                .expect("every block has an embedding"),
        }
    }

    // Hoisted per-node stats. Device norms come from the backend's
    // row-norm kernel via `Matrix::row_norms`; block-embedding norms go
    // through the same free `row_norm` — one source of truth for the
    // denominator arithmetic.
    let device_norms = z.row_norms();
    let stats: Vec<NodeStat> = (0..block_embeddings.len())
        .map(|raw| {
            let id = ancstr_netlist::HierNodeId(raw);
            let feature = feature_of(flat, z, &block_embeddings, id);
            let norm = match &flat.node(id).kind {
                HierNodeKind::Device(i) => device_norms[*i],
                HierNodeKind::Block { .. } => row_norm(feature),
            };
            NodeStat {
                finite: feature.iter().all(|x| x.is_finite()),
                norm,
                seg_norms: if prune {
                    feature.chunks(PRUNE_SEG).map(row_norm).collect()
                } else {
                    Vec::new()
                },
            }
        })
        .collect();

    /// What the parallel scoring pass found for one candidate, in
    /// candidate order; folded serially below so warning/constraint
    /// encounter order is identical to the historical sequential loop.
    enum PairOutcome {
        Scored(f64),
        Skipped { lo_bad: bool, hi_bad: bool },
        /// Upper bound cannot clear the threshold: a provable
        /// rejection, dropped without scoring (pruned mode only).
        Pruned,
    }

    let candidates = valid_pairs(flat);
    let outcomes = ancstr_par::map_items(&candidates, 64, |candidate| {
        let (sa, sb) =
            (&stats[candidate.pair.lo().0], &stats[candidate.pair.hi().0]);
        // A NaN anywhere would turn the cosine score into NaN, which
        // compares false against every threshold and silently becomes a
        // rejection. Surface it as a counted warning record instead.
        if !sa.finite || !sb.finite {
            return PairOutcome::Skipped { lo_bad: !sa.finite, hi_bad: !sb.finite };
        }
        if prune {
            let threshold = match candidate.kind {
                SymmetryKind::System => lambda_sys,
                SymmetryKind::Device => thresholds.device,
            };
            if score_upper_bound(sa, sb) <= threshold {
                return PairOutcome::Pruned;
            }
        }
        let za = feature_of(flat, z, &block_embeddings, candidate.pair.lo());
        let zb = feature_of(flat, z, &block_embeddings, candidate.pair.hi());
        PairOutcome::Scored(if sa.norm == 0.0 || sb.norm == 0.0 {
            0.0
        } else {
            dot(za, zb) / (sa.norm * sb.norm)
        })
    });

    let mut scored = Vec::new();
    let mut constraints = ConstraintSet::new();
    let mut warnings: Vec<NumericWarning> = Vec::new();
    let mut warned = std::collections::HashMap::new();
    for (candidate, outcome) in candidates.into_iter().zip(outcomes) {
        let score = match outcome {
            PairOutcome::Skipped { lo_bad, hi_bad } => {
                for (id, bad) in
                    [(candidate.pair.lo(), lo_bad), (candidate.pair.hi(), hi_bad)]
                {
                    if !bad {
                        continue;
                    }
                    let slot = *warned.entry(id).or_insert_with(|| {
                        warnings.push(NumericWarning {
                            node: id,
                            path: flat.node(id).path.clone(),
                            skipped_pairs: 0,
                        });
                        warnings.len() - 1
                    });
                    warnings[slot].skipped_pairs += 1;
                }
                continue;
            }
            PairOutcome::Pruned => continue,
            PairOutcome::Scored(score) => score,
        };
        let threshold = match candidate.kind {
            SymmetryKind::System => lambda_sys,
            SymmetryKind::Device => thresholds.device,
        };
        let accepted = score > threshold;
        if accepted {
            constraints.insert(SymmetryConstraint {
                hierarchy: candidate.hierarchy,
                pair: candidate.pair,
                kind: candidate.kind,
            });
        }
        scored.push(ScoredPair { candidate, score, accepted, threshold });
    }
    DetectionResult { scored, constraints, system_threshold: lambda_sys, warnings }
}

/// Detect *self-symmetric* devices: modules placed on the symmetry axis
/// (tail current sources, clock tails, equalizer switches).
///
/// A device is flagged when (a) it participates in no accepted pairwise
/// constraint, and (b) its in-neighbours pair up among themselves — for
/// every neighbour `u` there is a distinct neighbour `u'` with
/// `cos(z_u, z_u') > pair_threshold` — i.e. the device bridges two
/// matched halves. This extends the paper's pairwise output with the
/// axis annotations analog placers additionally need (the benchmark
/// generators record them as `*.selfsym`).
///
/// Returns hierarchy node ids of the flagged devices, sorted.
pub fn detect_self_symmetric(
    flat: &FlatCircuit,
    z: &Matrix,
    detection: &DetectionResult,
    pair_threshold: f64,
) -> Vec<ancstr_netlist::HierNodeId> {
    use ancstr_graph::{BuildOptions, HetMultigraph};

    let g = HetMultigraph::from_circuit(flat, &BuildOptions { max_net_degree: Some(64) });
    let mut paired = std::collections::HashSet::new();
    for c in detection.constraints.iter() {
        paired.insert(c.pair.lo());
        paired.insert(c.pair.hi());
    }

    // Hoisted per-device row norms: the nested neighbour check below
    // compares O(pairs) combinations, and recomputing both norms inside
    // `cosine_similarity` per comparison re-normalized each row once
    // per *pair* instead of once per *device*. `row_norms` uses the
    // exact arithmetic of `cosine_similarity`'s denominators, so the
    // quotient below is bit-identical to the old nested call.
    let norms = z.row_norms();
    let cosine = |iu: usize, iw: usize| -> f64 {
        if norms[iu] == 0.0 || norms[iw] == 0.0 {
            return 0.0;
        }
        dot(z.row(iu), z.row(iw)) / (norms[iu] * norms[iw])
    };

    let mut out = Vec::new();
    for (i, d) in flat.devices().iter().enumerate() {
        if paired.contains(&d.node) {
            continue;
        }
        let Some(v) = g.vertex_for_device(i) else { continue };
        let neighbors = g.in_neighbors(v);
        if neighbors.len() < 2 {
            continue;
        }
        // Every neighbour must have a distinct matching partner.
        let all_paired = neighbors.iter().all(|&u| {
            neighbors.iter().any(|&w| {
                u != w && cosine(g.device_index(u), g.device_index(w)) > pair_threshold
            })
        });
        if all_paired {
            out.push(d.node);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;
    use ancstr_nn::cosine_similarity;

    #[test]
    fn eq4_threshold_shape() {
        let t = ThresholdConfig::default();
        // Tiny design: 0.95 + 0.95/(1+2) ≈ 1.27 → capped at 0.999.
        assert_eq!(t.system_threshold(2), 0.999);
        // Large design: approaches α.
        let large = t.system_threshold(500);
        assert!(large > 0.95 && large < 0.96);
        // Monotone decreasing in subcircuit size.
        assert!(t.system_threshold(10) >= t.system_threshold(100));
    }

    fn two_inv() -> FlatCircuit {
        let nl = parse_spice(
            "\
.subckt inv in out vdd vss
Mp out in vdd vdd pch w=2u l=0.1u
Mn out in vss vss nch w=1u l=0.1u
.ends
.subckt top a y vdd vss
X1 a m vdd vss inv
X2 m y vdd vss inv
C1 a vss 10f
C2 y vss 10f
.ends
",
        )
        .unwrap();
        FlatCircuit::elaborate(&nl).unwrap()
    }

    #[test]
    fn identical_embeddings_are_accepted() {
        let flat = two_inv();
        // 6 devices; give matched ones identical vectors.
        let z = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[0.5, 0.5],
            &[0.5, 0.5],
        ]);
        let result = detect_constraints(
            &flat,
            &z,
            &ThresholdConfig::default(),
            &EmbedOptions::default(),
        );
        // Valid pairs: (X1, X2) blocks and (C1, C2) passives → both
        // system-level, both perfectly similar.
        assert_eq!(result.scored.len(), 2);
        assert!(result.scored.iter().all(|s| s.accepted));
        assert_eq!(result.constraints.len(), 2);
        let x1 = flat.node_by_path("top/X1").unwrap().id;
        let x2 = flat.node_by_path("top/X2").unwrap().id;
        assert!(result.constraints.contains_pair(x1, x2));
    }

    #[test]
    fn dissimilar_embeddings_are_rejected() {
        let flat = two_inv();
        let z = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[-0.2, 0.9],
            &[0.9, -0.2],
            &[0.5, 0.5],
            &[-0.5, 0.5],
        ]);
        let result = detect_constraints(
            &flat,
            &z,
            &ThresholdConfig::default(),
            &EmbedOptions::default(),
        );
        assert!(result.scored.iter().all(|s| !s.accepted));
        assert!(result.constraints.is_empty());
    }

    #[test]
    fn device_pairs_use_device_threshold() {
        let nl = parse_spice(
            "\
.subckt cell a b vdd vss
M1 a b t vss nch w=1u l=0.1u
M2 b a t vss nch w=1u l=0.1u
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        // Similarity 0.995: above device λ = 0.99 → accepted.
        let z = Matrix::from_rows(&[&[1.0, 0.1], &[1.0, 0.0]]);
        let sim = cosine_similarity(z.row(0), z.row(1));
        assert!(sim > 0.99 && sim < 0.999);
        let result = detect_constraints(
            &flat,
            &z,
            &ThresholdConfig::default(),
            &EmbedOptions::default(),
        );
        assert_eq!(result.scored.len(), 1);
        assert_eq!(result.scored[0].threshold, 0.99);
        assert!(result.scored[0].accepted);
    }

    #[test]
    fn self_symmetric_tail_is_flagged() {
        // A differential pair M1/M2 over a tail M5: the tail's
        // neighbours (M1, M2) are matched, so M5 sits on the axis.
        let nl = parse_spice(
            "\
.subckt dp inp inn o1 o2 ib vdd vss
M1 o1 inp tail vss nch w=4u l=0.2u
M2 o2 inn tail vss nch w=4u l=0.2u
M5 tail ib vss vss nch w=2u l=0.5u
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        // Matched features for M1/M2, distinct for M5.
        let z = Matrix::from_rows(&[&[1.0, 0.2], &[1.0, 0.2], &[0.1, 1.0]]);
        let detection = detect_constraints(
            &flat,
            &z,
            &ThresholdConfig::default(),
            &EmbedOptions::default(),
        );
        let selfsym = detect_self_symmetric(&flat, &z, &detection, 0.95);
        let m5 = flat.node_by_path("dp/M5").unwrap().id;
        assert!(selfsym.contains(&m5), "tail flagged: {selfsym:?}");
        // The paired devices themselves are not flagged.
        let m1 = flat.node_by_path("dp/M1").unwrap().id;
        assert!(!selfsym.contains(&m1));
    }

    #[test]
    fn asymmetric_devices_are_not_self_symmetric() {
        let nl = parse_spice(
            "\
.subckt c a b vdd vss
M1 x a y vss nch w=1u l=0.1u
M2 y b vss vss nch w=3u l=0.3u
M3 x x vdd vdd pch w=2u l=0.1u
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        // All-distinct features: nothing pairs, nothing is on an axis.
        let z = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[-1.0, 0.5]]);
        let detection = detect_constraints(
            &flat,
            &z,
            &ThresholdConfig::default(),
            &EmbedOptions::default(),
        );
        let selfsym = detect_self_symmetric(&flat, &z, &detection, 0.95);
        assert!(selfsym.is_empty(), "{selfsym:?}");
    }

    #[test]
    fn non_finite_rows_are_skipped_with_warnings() {
        let nl = parse_spice(
            "\
.subckt cell a b vdd vss
M1 a b t vss nch w=1u l=0.1u
M2 b a t vss nch w=1u l=0.1u
M3 a b s vss nch w=2u l=0.1u
M4 b a s vss nch w=2u l=0.1u
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        // M1's row is poisoned; the matched M3/M4 pair stays scoreable.
        let z = Matrix::from_rows(&[
            &[f64::NAN, 1.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[0.0, 1.0],
        ]);
        let result = detect_constraints(
            &flat,
            &z,
            &ThresholdConfig::default(),
            &EmbedOptions::default(),
        );
        // No NaN score leaks out.
        assert!(result.scored.iter().all(|s| s.score.is_finite()));
        // The poisoned device is reported exactly once, by path, with
        // the number of pairs it suppressed.
        assert_eq!(result.warnings.len(), 1);
        assert_eq!(result.warnings[0].path, "cell/M1");
        assert!(result.warnings[0].skipped_pairs >= 1);
        let rendered = result.warnings[0].to_string();
        assert!(rendered.contains("cell/M1"), "{rendered}");
        assert!(
            rendered.contains(&result.warnings[0].skipped_pairs.to_string()),
            "{rendered}"
        );
        // The healthy pair is still detected.
        let m3 = flat.node_by_path("cell/M3").unwrap().id;
        let m4 = flat.node_by_path("cell/M4").unwrap().id;
        assert!(result.constraints.contains_pair(m3, m4));
        // No scored entry touches the poisoned node.
        let m1 = flat.node_by_path("cell/M1").unwrap().id;
        assert!(result
            .scored
            .iter()
            .all(|s| s.candidate.pair.lo() != m1 && s.candidate.pair.hi() != m1));
    }

    #[test]
    fn pruned_detection_matches_exact_and_prunes_provable_rejections() {
        let flat = two_inv();
        // 8-dim features (two PRUNE_SEG segments): X1's devices match
        // X2's, so the block pair is accepted and must survive pruning;
        // C1/C2 live in disjoint segments, so their Cauchy–Schwarz
        // bound is 0 and the pair is pruned without scoring.
        let z = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0],
        ]);
        let cfg = ThresholdConfig::default();
        let opts = EmbedOptions::default();
        let exact = detect_constraints(&flat, &z, &cfg, &opts);
        let pruned = detect_constraints_pruned(&flat, &z, &cfg, &opts);
        // The lossless contract: identical constraints, threshold,
        // warnings.
        assert_eq!(exact.constraints, pruned.constraints);
        assert_eq!(exact.system_threshold, pruned.system_threshold);
        assert_eq!(exact.warnings, pruned.warnings);
        assert!(!exact.constraints.is_empty());
        // Something was actually pruned (the C1/C2 pair).
        assert!(pruned.scored.len() < exact.scored.len(), "nothing pruned");
        // Survivors are bit-identical to their exact counterparts, and
        // every accepted pair survived.
        for p in &pruned.scored {
            let e = exact
                .scored
                .iter()
                .find(|e| e.candidate == p.candidate)
                .expect("survivor exists in exact scoring");
            assert_eq!(e.score.to_bits(), p.score.to_bits());
            assert_eq!(e.accepted, p.accepted);
            assert_eq!(e.threshold, p.threshold);
        }
        for e in exact.scored.iter().filter(|e| e.accepted) {
            assert!(
                pruned.scored.iter().any(|p| p.candidate == e.candidate),
                "accepted pair pruned: {:?}",
                e.candidate
            );
        }

        // Non-finite features are skipped (and warned about) before the
        // pruning bound is consulted — warning records stay identical.
        let mut poisoned = z.clone();
        poisoned[(4, 0)] = f64::NAN;
        let exact = detect_constraints(&flat, &poisoned, &cfg, &opts);
        let pruned = detect_constraints_pruned(&flat, &poisoned, &cfg, &opts);
        assert_eq!(exact.warnings, pruned.warnings);
        assert_eq!(exact.warnings.len(), 1);
        assert_eq!(exact.constraints, pruned.constraints);
    }

    #[test]
    fn healthy_runs_produce_no_warnings() {
        let flat = two_inv();
        let result = detect_constraints(
            &flat,
            &Matrix::identity(6),
            &ThresholdConfig::default(),
            &EmbedOptions::default(),
        );
        assert!(result.warnings.is_empty());
    }

    #[test]
    fn scores_are_reported_for_roc() {
        let flat = two_inv();
        let z = Matrix::identity(6);
        let result = detect_constraints(
            &flat,
            &z,
            &ThresholdConfig::default(),
            &EmbedOptions::default(),
        );
        for s in &result.scored {
            assert!((-1.0..=1.0).contains(&s.score));
        }
    }
}
